//! Compiled programs: SIMPLER-mapped functions cached on a device.

use pimecc_simpler::Program;
use std::sync::Arc;

#[derive(Debug)]
pub(crate) struct CompiledInner {
    pub(crate) id: u64,
    pub(crate) program: Program,
    pub(crate) footprint: usize,
    pub(crate) fingerprint: u64,
}

/// A function compiled for a [`PimDevice`](crate::device::PimDevice): the
/// SIMPLER-mapped step sequence plus the metadata batching needs, behind a
/// cheap-to-clone shared handle.
///
/// Because SIMPLER maps onto a *single row* and MAGIC replays each row gate
/// across every selected row simultaneously, one `CompiledProgram` is also
/// the SIMD program for an arbitrary set of rows — the property
/// `run_batch` exploits. Compile (or [`adopt`]) once, run on any batch.
///
/// [`adopt`]: crate::device::PimDevice::adopt
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    inner: Arc<CompiledInner>,
}

impl CompiledProgram {
    pub(crate) fn new(id: u64, program: Program) -> Self {
        let footprint = program.footprint();
        let fingerprint = program.fingerprint();
        CompiledProgram {
            inner: Arc::new(CompiledInner {
                id,
                program,
                footprint,
                fingerprint,
            }),
        }
    }

    /// Device-local compilation id (stable for the lifetime of the device;
    /// cache hits return the same id).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The underlying mapped program.
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// Number of primary inputs each request must supply.
    pub fn num_inputs(&self) -> usize {
        self.inner.program.num_inputs
    }

    /// Number of primary outputs each request receives.
    pub fn num_outputs(&self) -> usize {
        self.inner.program.output_cells.len()
    }

    /// Width of the row slice one request occupies (see
    /// [`Program::footprint`]).
    pub fn footprint(&self) -> usize {
        self.inner.footprint
    }

    /// Structural identity of the mapped program (see
    /// [`Program::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }

    /// Program latency in MEM clock cycles per batch, regardless of batch
    /// size.
    pub fn cycles(&self) -> u64 {
        self.inner.program.cycles()
    }

    /// NOR-gate cycles — one gate evaluation *per occupied row* each cycle.
    pub fn gate_cycles(&self) -> u64 {
        self.inner.program.gate_cycles()
    }

    /// ECC-critical gate operations per execution.
    pub fn critical_count(&self) -> usize {
        self.inner.program.critical_count()
    }
}
