//! Compiled programs: SIMPLER-mapped functions cached on a device — and
//! the [`ProgramCache`] both the device and the cluster key them in.

use pimecc_netlist::NorNetlist;
use pimecc_simpler::{map, map_dense, MapError, MapperConfig, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Salt separating `compile_packed` cache entries from `compile` entries
/// for the same netlist — the two produce different mappings of one
/// source function.
const PACKED_KEY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The compile cache shared in shape by [`PimDevice`] and
/// [`PimCluster`]: compiled handles keyed in three disjoint domains —
/// netlist fingerprints (full-width mappings), salted netlist
/// fingerprints (dense packed mappings) and program fingerprints
/// (adopted programs) — so one cache serves all entry points without
/// collisions, and the keying rules live in exactly one place.
///
/// [`PimDevice`]: crate::device::PimDevice
/// [`PimCluster`]: crate::cluster::PimCluster
#[derive(Debug, Default)]
pub(crate) struct ProgramCache {
    programs: HashMap<u64, CompiledProgram>,
}

impl ProgramCache {
    /// Number of distinct cached programs.
    pub(crate) fn len(&self) -> usize {
        self.programs.len()
    }

    /// Empties the cache; outstanding handles stay valid (they own their
    /// program) and are re-inserted if compiled or adopted again.
    pub(crate) fn clear(&mut self) {
        self.programs.clear();
    }

    /// Full-width mapping of `netlist` onto a `row_size`-cell row, keyed
    /// by structural netlist fingerprint.
    pub(crate) fn compile(
        &mut self,
        netlist: &NorNetlist,
        row_size: usize,
    ) -> Result<CompiledProgram, MapError> {
        let key = netlist_fingerprint(netlist);
        if let Some(cached) = self.programs.get(&key) {
            return Ok(cached.clone());
        }
        let program = map(netlist, &MapperConfig { row_size })?;
        Ok(self.insert(key, program))
    }

    /// Dense co-packable mapping of `netlist` ([`map_dense`]), keyed by
    /// the salted netlist fingerprint so it coexists with the full-width
    /// entry.
    pub(crate) fn compile_packed(
        &mut self,
        netlist: &NorNetlist,
        row_size: usize,
    ) -> Result<CompiledProgram, MapError> {
        let key = netlist_fingerprint(netlist) ^ PACKED_KEY_SALT;
        if let Some(cached) = self.programs.get(&key) {
            return Ok(cached.clone());
        }
        let program = map_dense(netlist, &MapperConfig { row_size })?;
        Ok(self.insert(key, program))
    }

    /// Adopts an externally mapped program, keyed by its own
    /// [`Program::fingerprint`].
    pub(crate) fn adopt(&mut self, program: &Program) -> CompiledProgram {
        let key = program.fingerprint();
        if let Some(cached) = self.programs.get(&key) {
            return cached.clone();
        }
        self.insert(key, program.clone())
    }

    /// Shares a foreign compiled handle (same key domain as
    /// [`ProgramCache::adopt`]) without deep-cloning its program.
    pub(crate) fn adopt_compiled(&mut self, compiled: &CompiledProgram) -> CompiledProgram {
        let key = compiled.fingerprint();
        if let Some(cached) = self.programs.get(&key) {
            return cached.clone();
        }
        self.programs.insert(key, compiled.clone());
        compiled.clone()
    }

    fn insert(&mut self, key: u64, program: Program) -> CompiledProgram {
        let compiled = CompiledProgram::new(program);
        self.programs.insert(key, compiled.clone());
        compiled
    }
}

/// Process-wide compilation-id allocator: ids stay unique even when
/// handles cross compilers via
/// [`PimDevice::adopt_compiled`](crate::device::PimDevice::adopt_compiled).
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Structural fingerprint of a NOR netlist — the compile-cache key used by
/// [`PimDevice::compile`](crate::device::PimDevice::compile) and
/// [`PimCluster::compile`](crate::cluster::PimCluster::compile), so a
/// device and a cluster (or two shards) recognize the same source function
/// without re-running the mapper.
///
/// The value lives in a separate domain from [`Program::fingerprint`]
/// (adopted programs), so both can share one cache without collisions.
pub fn netlist_fingerprint(netlist: &NorNetlist) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    netlist.num_inputs().hash(&mut h);
    for gate in netlist.gates() {
        gate.inputs.hash(&mut h);
    }
    netlist.outputs().hash(&mut h);
    // Distinguish the netlist-key domain from program fingerprints, which
    // share the same cache.
    h.write_u8(0x4E);
    h.finish()
}

#[derive(Debug)]
pub(crate) struct CompiledInner {
    pub(crate) id: u64,
    pub(crate) program: Program,
    pub(crate) footprint: usize,
    pub(crate) fingerprint: u64,
}

/// A function compiled for a [`PimDevice`](crate::device::PimDevice): the
/// SIMPLER-mapped step sequence plus the metadata batching needs, behind a
/// cheap-to-clone shared handle.
///
/// Because SIMPLER maps onto a *single row* and MAGIC replays each row gate
/// across every selected row simultaneously, one `CompiledProgram` is also
/// the SIMD program for an arbitrary set of rows — the property
/// `run_batch` exploits. Compile (or [`adopt`]) once, run on any batch.
///
/// [`adopt`]: crate::device::PimDevice::adopt
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    inner: Arc<CompiledInner>,
}

impl CompiledProgram {
    pub(crate) fn new(program: Program) -> Self {
        let footprint = program.footprint();
        let fingerprint = program.fingerprint();
        CompiledProgram {
            inner: Arc::new(CompiledInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                program,
                footprint,
                fingerprint,
            }),
        }
    }

    /// Process-unique compilation id: every fresh compilation (or
    /// adoption of an uncached program) allocates a new id, and cache
    /// hits return the handle — and id — of the original compilation, so
    /// two handles with one id always carry the same program, even across
    /// devices and clusters.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The underlying mapped program.
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// Number of primary inputs each request must supply.
    pub fn num_inputs(&self) -> usize {
        self.inner.program.num_inputs
    }

    /// Number of primary outputs each request receives.
    pub fn num_outputs(&self) -> usize {
        self.inner.program.output_cells.len()
    }

    /// Width of the row slice one request occupies (see
    /// [`Program::footprint`]).
    pub fn footprint(&self) -> usize {
        self.inner.footprint
    }

    /// Structural identity of the mapped program (see
    /// [`Program::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }

    /// Program latency in MEM clock cycles per batch, regardless of batch
    /// size.
    pub fn cycles(&self) -> u64 {
        self.inner.program.cycles()
    }

    /// NOR-gate cycles — one gate evaluation *per occupied row* each cycle.
    pub fn gate_cycles(&self) -> u64 {
        self.inner.program.gate_cycles()
    }

    /// ECC-critical gate operations per execution.
    pub fn critical_count(&self) -> usize {
        self.inner.program.critical_count()
    }
}
