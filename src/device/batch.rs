//! Batch outcomes: per-request outputs plus whole-batch accounting.

use pimecc_core::{CheckReport, MachineStats};

/// Result of one batched execution
/// ([`PimDevice::run_batch`](crate::device::PimDevice::run_batch)).
///
/// The stats are a *delta*: only the cycles and events this batch caused,
/// so dividing work by `stats.mem_cycles` yields the batch's own
/// throughput, independent of whatever ran on the device before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Primary outputs per request, in submission order.
    pub outputs: Vec<Vec<bool>>,
    /// Row each request executed on (parallel to `outputs`).
    pub rows: Vec<usize>,
    /// Aggregated result of the pre-execution input checks, one per
    /// *touched block-row* (not one per request — the batch amortization).
    pub input_check: CheckReport,
    /// Machine activity attributable to this batch.
    pub stats: MachineStats,
    /// Gate evaluations performed: program gate cycles × batch size, since
    /// every gate cycle evaluates once in each occupied row.
    pub gate_evals: u64,
}

impl BatchOutcome {
    /// Number of requests served.
    pub fn requests(&self) -> usize {
        self.outputs.len()
    }

    /// The headline throughput figure: gate evaluations per MEM clock
    /// cycle. Grows towards the batch size as per-batch overheads amortize
    /// — a serial one-row flow is pinned below 1.
    pub fn gate_evals_per_mem_cycle(&self) -> f64 {
        if self.stats.mem_cycles == 0 {
            0.0
        } else {
            self.gate_evals as f64 / self.stats.mem_cycles as f64
        }
    }

    /// MEM cycles spent per request — the batch-amortized latency.
    pub fn mem_cycles_per_request(&self) -> f64 {
        if self.outputs.is_empty() {
            0.0
        } else {
            self.stats.mem_cycles as f64 / self.outputs.len() as f64
        }
    }
}
