//! Batch outcomes: per-request outputs plus whole-batch accounting.

use super::placement::{Axis, PlacementPlan, Slot};
use pimecc_core::{CheckReport, MachineStats};

/// Detail attached to a [`BatchOutcome`] when the batch's checks reported
/// **uncorrectable** errors on block-lines the placement touched.
///
/// The outputs of every request whose slot sits on one of these
/// block-lines are *suspect* — the diagonal code detected a multi-bit (or
/// stuck-at) pattern it refused to guess-correct, so the data the program
/// consumed or produced there cannot be trusted. Callers that previously
/// keyed off `input_check.is_clean()` alone can now tell *which* requests
/// are affected ([`BatchOutcome::suspect_requests`]) instead of discarding
/// the whole batch. The cluster scheduler uses exactly this detail to
/// suppress and retry the affected tickets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncorrectableInput {
    /// Block-line indices (on the plan's axis) with uncorrectable
    /// verdicts, ascending.
    pub lines: Vec<usize>,
    /// Block size `m`: slot line `l` belongs to block-line `l / block`.
    pub block: usize,
}

impl UncorrectableInput {
    /// Whether a slot on physical line `line` is affected.
    pub fn covers_line(&self, line: usize) -> bool {
        self.lines.binary_search(&(line / self.block)).is_ok()
    }
}

/// Arena-backed per-request outputs of one batch: every request's bits in
/// **one contiguous allocation**, `width` bits per request, request-major.
///
/// The previous API allocated one `Vec<bool>` per request — at millions of
/// requests per second the readback allocation dominated. The arena is a
/// single buffer; [`OutputArena::get`] hands out borrowed slices, and the
/// whole buffer can be moved behind an `Arc` once per batch
/// ([`OutputArena::into_bits`]) so per-ticket results share it without
/// copying.
///
/// Iteration yields `&[bool]` per request:
///
/// ```
/// # use pimecc::device::OutputArena;
/// # let arena = OutputArena::default();
/// for request_bits in &arena {
///     assert_eq!(request_bits.len(), arena.width());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[must_use]
pub struct OutputArena {
    /// All output bits, request-major: request `i` owns
    /// `bits[i*width .. (i+1)*width]`.
    pub(crate) bits: Vec<bool>,
    /// Output bits per request.
    pub(crate) width: usize,
    /// Requests stored — tracked explicitly so zero-output programs still
    /// count their requests.
    pub(crate) requests: usize,
}

impl OutputArena {
    pub(crate) fn with_capacity(width: usize, requests: usize) -> Self {
        OutputArena {
            bits: Vec::with_capacity(width * requests),
            width,
            requests: 0,
        }
    }

    /// Appends one request's output bits (device-side fill).
    ///
    /// The slice length must equal the arena's width.
    pub(crate) fn push_request(&mut self, bits: &[bool]) {
        debug_assert_eq!(bits.len(), self.width);
        self.bits.extend_from_slice(bits);
        self.requests += 1;
    }

    /// Output bits per request.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of requests stored.
    pub fn len(&self) -> usize {
        self.requests
    }

    /// Whether the arena holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests == 0
    }

    /// Request `i`'s output bits.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> &[bool] {
        assert!(i < self.requests, "request {i} of {}", self.requests);
        &self.bits[i * self.width..(i + 1) * self.width]
    }

    /// Borrowed per-request slices, in submission order.
    pub fn iter(&self) -> OutputArenaIter<'_> {
        OutputArenaIter {
            arena: self,
            next: 0,
        }
    }

    /// The whole request-major bit buffer (request `i` owns
    /// `[i*width, (i+1)*width)`).
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// Consumes the arena into its flat buffer — the cluster dispatch
    /// moves this behind one `Arc` per batch and slices it per ticket.
    pub fn into_bits(self) -> Vec<bool> {
        self.bits
    }

    /// The pre-arena shape: one freshly allocated `Vec<bool>` per request.
    #[deprecated(
        since = "0.10.0",
        note = "allocates one Vec per request; use `get`, `iter` or `as_bits` on the arena instead"
    )]
    pub fn to_vecs(&self) -> Vec<Vec<bool>> {
        self.iter().map(<[bool]>::to_vec).collect()
    }
}

impl std::ops::Index<usize> for OutputArena {
    type Output = [bool];

    fn index(&self, i: usize) -> &[bool] {
        self.get(i)
    }
}

/// Iterator over an [`OutputArena`]'s per-request slices.
#[derive(Debug, Clone)]
pub struct OutputArenaIter<'a> {
    arena: &'a OutputArena,
    next: usize,
}

impl<'a> Iterator for OutputArenaIter<'a> {
    type Item = &'a [bool];

    fn next(&mut self) -> Option<&'a [bool]> {
        if self.next >= self.arena.requests {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(&self.arena.bits[i * self.arena.width..(i + 1) * self.arena.width])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.arena.requests - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OutputArenaIter<'_> {}

impl<'a> IntoIterator for &'a OutputArena {
    type Item = &'a [bool];
    type IntoIter = OutputArenaIter<'a>;

    fn into_iter(self) -> OutputArenaIter<'a> {
        self.iter()
    }
}

/// Result of one batched execution
/// ([`PimDevice::run_batch`](crate::device::PimDevice::run_batch) /
/// [`PimDevice::run_plan`](crate::device::PimDevice::run_plan)).
///
/// The stats are a *delta*: only the cycles and events this batch caused,
/// so dividing work by `stats.mem_cycles` yields the batch's own
/// throughput, independent of whatever ran on the device before.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct BatchOutcome {
    /// Primary outputs per request, in submission order, arena-backed
    /// (request `i` is `outputs.get(i)`).
    pub outputs: OutputArena,
    /// Where each request executed: the axis, and one (line, offset) slot
    /// per request (parallel to `outputs`).
    pub placement: PlacementPlan,
    /// Aggregated result of the pre-execution input checks, one per
    /// *touched block-line* (not one per request — the batch amortization).
    pub input_check: CheckReport,
    /// Machine activity attributable to this batch.
    pub stats: MachineStats,
    /// Gate evaluations performed: program gate cycles × batch size, since
    /// every gate cycle evaluates once in each occupied slot.
    pub gate_evals: u64,
    /// `Some` when a pre- or post-execution check reported uncorrectable
    /// errors on touched block-lines: the affected requests' outputs are
    /// suspect and must not be trusted. See [`UncorrectableInput`].
    pub uncorrectable_input: Option<UncorrectableInput>,
}

impl BatchOutcome {
    /// Number of requests served.
    pub fn requests(&self) -> usize {
        self.outputs.len()
    }

    /// The axis the batch occupied.
    pub fn axis(&self) -> Axis {
        self.placement.axis()
    }

    /// The slot request `i` executed in.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slot(&self, i: usize) -> Slot {
        self.placement.slots()[i]
    }

    /// The headline throughput figure: gate evaluations per MEM clock
    /// cycle. Grows towards the batch size as per-batch overheads amortize
    /// — a serial one-row flow is pinned below 1.
    pub fn gate_evals_per_mem_cycle(&self) -> f64 {
        if self.stats.mem_cycles == 0 {
            0.0
        } else {
            self.gate_evals as f64 / self.stats.mem_cycles as f64
        }
    }

    /// Indices of requests whose outputs are suspect because their slots
    /// sit on block-lines with uncorrectable check verdicts. Empty when
    /// the batch was clean — those outputs are verified-correct.
    pub fn suspect_requests(&self) -> Vec<usize> {
        let Some(unc) = &self.uncorrectable_input else {
            return Vec::new();
        };
        self.placement
            .slots()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| unc.covers_line(s.line).then_some(i))
            .collect()
    }

    /// MEM cycles spent per request — the batch-amortized latency.
    pub fn mem_cycles_per_request(&self) -> f64 {
        if self.outputs.is_empty() {
            0.0
        } else {
            self.stats.mem_cycles as f64 / self.outputs.len() as f64
        }
    }
}

/// Result of one **multi-program** wave
/// ([`PimDevice::run_multi`](crate::device::PimDevice::run_multi)): the
/// per-part output arenas plus accounting shared across every co-located
/// part — one pre-check sweep over the union of touched block-lines, one
/// stats delta, one suspect verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct MultiBatchOutcome {
    /// Per-part outputs, parallel to the plan's parts; part `p`, request
    /// `i` is `parts[p].get(i)`.
    pub parts: Vec<OutputArena>,
    /// Aggregated pre-execution input checks over the **union** of
    /// block-lines the parts touch — co-residency shares each check.
    pub input_check: CheckReport,
    /// Machine activity attributable to this wave (delta, as in
    /// [`BatchOutcome`]).
    pub stats: MachineStats,
    /// Gate evaluations: `Σ part gate cycles × part batch size`.
    pub gate_evals: u64,
    /// Uncorrectable verdicts on touched block-lines, shared across the
    /// parts (block-lines are physical; [`UncorrectableInput::covers_line`]
    /// applies to any part's slot lines).
    pub uncorrectable_input: Option<UncorrectableInput>,
}

impl MultiBatchOutcome {
    /// Total requests served across all parts.
    pub fn requests(&self) -> usize {
        self.parts.iter().map(OutputArena::len).sum()
    }
}
