//! Batch outcomes: per-request outputs plus whole-batch accounting.

use super::placement::{Axis, PlacementPlan, Slot};
use pimecc_core::{CheckReport, MachineStats};

/// Detail attached to a [`BatchOutcome`] when the batch's checks reported
/// **uncorrectable** errors on block-lines the placement touched.
///
/// The outputs of every request whose slot sits on one of these
/// block-lines are *suspect* — the diagonal code detected a multi-bit (or
/// stuck-at) pattern it refused to guess-correct, so the data the program
/// consumed or produced there cannot be trusted. Callers that previously
/// keyed off `input_check.is_clean()` alone can now tell *which* requests
/// are affected ([`BatchOutcome::suspect_requests`]) instead of discarding
/// the whole batch. The cluster scheduler uses exactly this detail to
/// suppress and retry the affected tickets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncorrectableInput {
    /// Block-line indices (on the plan's axis) with uncorrectable
    /// verdicts, ascending.
    pub lines: Vec<usize>,
    /// Block size `m`: slot line `l` belongs to block-line `l / block`.
    pub block: usize,
}

impl UncorrectableInput {
    /// Whether a slot on physical line `line` is affected.
    pub fn covers_line(&self, line: usize) -> bool {
        self.lines.binary_search(&(line / self.block)).is_ok()
    }
}

/// Result of one batched execution
/// ([`PimDevice::run_batch`](crate::device::PimDevice::run_batch) /
/// [`PimDevice::run_plan`](crate::device::PimDevice::run_plan)).
///
/// The stats are a *delta*: only the cycles and events this batch caused,
/// so dividing work by `stats.mem_cycles` yields the batch's own
/// throughput, independent of whatever ran on the device before.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct BatchOutcome {
    /// Primary outputs per request, in submission order.
    pub outputs: Vec<Vec<bool>>,
    /// Where each request executed: the axis, and one (line, offset) slot
    /// per request (parallel to `outputs`).
    pub placement: PlacementPlan,
    /// Aggregated result of the pre-execution input checks, one per
    /// *touched block-line* (not one per request — the batch amortization).
    pub input_check: CheckReport,
    /// Machine activity attributable to this batch.
    pub stats: MachineStats,
    /// Gate evaluations performed: program gate cycles × batch size, since
    /// every gate cycle evaluates once in each occupied slot.
    pub gate_evals: u64,
    /// `Some` when a pre- or post-execution check reported uncorrectable
    /// errors on touched block-lines: the affected requests' outputs are
    /// suspect and must not be trusted. See [`UncorrectableInput`].
    pub uncorrectable_input: Option<UncorrectableInput>,
}

impl BatchOutcome {
    /// Number of requests served.
    pub fn requests(&self) -> usize {
        self.outputs.len()
    }

    /// The axis the batch occupied.
    pub fn axis(&self) -> Axis {
        self.placement.axis()
    }

    /// The slot request `i` executed in.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slot(&self, i: usize) -> Slot {
        self.placement.slots()[i]
    }

    /// The headline throughput figure: gate evaluations per MEM clock
    /// cycle. Grows towards the batch size as per-batch overheads amortize
    /// — a serial one-row flow is pinned below 1.
    pub fn gate_evals_per_mem_cycle(&self) -> f64 {
        if self.stats.mem_cycles == 0 {
            0.0
        } else {
            self.gate_evals as f64 / self.stats.mem_cycles as f64
        }
    }

    /// Indices of requests whose outputs are suspect because their slots
    /// sit on block-lines with uncorrectable check verdicts. Empty when
    /// the batch was clean — those outputs are verified-correct.
    pub fn suspect_requests(&self) -> Vec<usize> {
        let Some(unc) = &self.uncorrectable_input else {
            return Vec::new();
        };
        self.placement
            .slots()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| unc.covers_line(s.line).then_some(i))
            .collect()
    }

    /// MEM cycles spent per request — the batch-amortized latency.
    pub fn mem_cycles_per_request(&self) -> f64 {
        if self.outputs.is_empty() {
            0.0
        } else {
            self.stats.mem_cycles as f64 / self.outputs.len() as f64
        }
    }
}
