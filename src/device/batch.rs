//! Batch outcomes: per-request outputs plus whole-batch accounting.

use super::placement::{Axis, PlacementPlan, Slot};
use pimecc_core::{CheckReport, MachineStats};

/// Result of one batched execution
/// ([`PimDevice::run_batch`](crate::device::PimDevice::run_batch) /
/// [`PimDevice::run_plan`](crate::device::PimDevice::run_plan)).
///
/// The stats are a *delta*: only the cycles and events this batch caused,
/// so dividing work by `stats.mem_cycles` yields the batch's own
/// throughput, independent of whatever ran on the device before.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct BatchOutcome {
    /// Primary outputs per request, in submission order.
    pub outputs: Vec<Vec<bool>>,
    /// Where each request executed: the axis, and one (line, offset) slot
    /// per request (parallel to `outputs`).
    pub placement: PlacementPlan,
    /// Aggregated result of the pre-execution input checks, one per
    /// *touched block-line* (not one per request — the batch amortization).
    pub input_check: CheckReport,
    /// Machine activity attributable to this batch.
    pub stats: MachineStats,
    /// Gate evaluations performed: program gate cycles × batch size, since
    /// every gate cycle evaluates once in each occupied slot.
    pub gate_evals: u64,
}

impl BatchOutcome {
    /// Number of requests served.
    pub fn requests(&self) -> usize {
        self.outputs.len()
    }

    /// The axis the batch occupied.
    pub fn axis(&self) -> Axis {
        self.placement.axis()
    }

    /// The slot request `i` executed in.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slot(&self, i: usize) -> Slot {
        self.placement.slots()[i]
    }

    /// The headline throughput figure: gate evaluations per MEM clock
    /// cycle. Grows towards the batch size as per-batch overheads amortize
    /// — a serial one-row flow is pinned below 1.
    pub fn gate_evals_per_mem_cycle(&self) -> f64 {
        if self.stats.mem_cycles == 0 {
            0.0
        } else {
            self.gate_evals as f64 / self.stats.mem_cycles as f64
        }
    }

    /// MEM cycles spent per request — the batch-amortized latency.
    pub fn mem_cycles_per_request(&self) -> f64 {
        if self.outputs.is_empty() {
            0.0
        } else {
            self.stats.mem_cycles as f64 / self.outputs.len() as f64
        }
    }
}
