//! Multi-program plans: several per-program sub-plans co-located on
//! disjoint line ranges of one crossbar.
//!
//! One fingerprint per wave caps utilization on long-tail traffic: a wave
//! of a 6-line program on a 30-line shard leaves 24 lines idle. A
//! [`MultiProgramPlan`] lets one wave carry *different* programs side by
//! side — each part is an ordinary validated [`PlacementPlan`], the parts
//! are pairwise line-disjoint, and the executor shares the input-load
//! pass, the per-touched-block-line ECC pre-checks and the suspect/retire
//! escalation across all of them (checks scale with touched block-lines,
//! not with programs — co-residency is free at the ECC layer).

use super::plan::{Axis, PlacementPlan};
use crate::device::DeviceError;

/// A validated set of per-program sub-plans on one axis of one crossbar,
/// pairwise line-disjoint — the placement of one multi-program wave for
/// [`PimDevice::run_multi`](crate::device::PimDevice::run_multi).
///
/// ```
/// use pimecc::device::placement::{Axis, MultiProgramPlan, PlacementPlan};
///
/// # fn main() -> Result<(), pimecc::device::DeviceError> {
/// // Program A on lines 0..4, program B co-located on lines 4..10.
/// let a = PlacementPlan::pack(Axis::Rows, 30, 8, 4, usize::MAX, 4)?;
/// let b = PlacementPlan::pack_avoiding(
///     Axis::Rows, 30, 5, 30, usize::MAX, 6, 0, &[0, 1, 2, 3])?;
/// let multi = MultiProgramPlan::new(vec![a, b])?;
/// assert_eq!(multi.requests(), 10);
/// assert_eq!(multi.lines_occupied(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct MultiProgramPlan {
    axis: Axis,
    line_len: usize,
    parts: Vec<PlacementPlan>,
}

impl MultiProgramPlan {
    /// Builds a multi-program plan from per-program sub-plans.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::EmptyMultiPlan`] — no parts;
    /// * [`DeviceError::MultiPlanGeometry`] — a part disagrees with part 0
    ///   on axis or line length;
    /// * [`DeviceError::MultiPlanOverlap`] — two parts occupy the same
    ///   physical line (parts must be line-disjoint; slot-level sharing of
    ///   a line across programs would break the per-offset replay).
    pub fn new(parts: Vec<PlacementPlan>) -> Result<Self, DeviceError> {
        let Some(first) = parts.first() else {
            return Err(DeviceError::EmptyMultiPlan);
        };
        let (axis, line_len) = (first.axis(), first.line_len());
        let mut lines: Vec<usize> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            if part.axis() != axis || part.line_len() != line_len {
                return Err(DeviceError::MultiPlanGeometry { part: i });
            }
            lines.extend(part.lines());
        }
        lines.sort_unstable();
        if let Some(w) = lines.windows(2).find(|w| w[0] == w[1]) {
            return Err(DeviceError::MultiPlanOverlap { line: w[0] });
        }
        Ok(MultiProgramPlan {
            axis,
            line_len,
            parts,
        })
    }

    /// The axis every part occupies.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Line length (= line count) the parts were built for.
    pub fn line_len(&self) -> usize {
        self.line_len
    }

    /// The per-program sub-plans, in part order.
    pub fn parts(&self) -> &[PlacementPlan] {
        &self.parts
    }

    /// Total requests placed across all parts.
    pub fn requests(&self) -> usize {
        self.parts.iter().map(PlacementPlan::requests).sum()
    }

    /// Distinct lines occupied across all parts (disjoint by
    /// construction, so this is a plain sum).
    pub fn lines_occupied(&self) -> usize {
        self.parts.iter().map(PlacementPlan::lines_occupied).sum()
    }

    /// Cells reserved across all parts.
    pub fn cells_occupied(&self) -> usize {
        self.parts.iter().map(PlacementPlan::cells_occupied).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(lines: std::ops::Range<usize>, width: usize) -> PlacementPlan {
        let avoid: Vec<usize> = (0..30).filter(|l| !lines.contains(l)).collect();
        PlacementPlan::pack_avoiding(
            Axis::Rows,
            30,
            width,
            lines.len(),
            usize::MAX,
            lines.len(),
            0,
            &avoid,
        )
        .expect("packs")
    }

    #[test]
    fn disjoint_parts_validate_and_account() {
        let multi = MultiProgramPlan::new(vec![part(0..4, 8), part(4..10, 5)]).expect("disjoint");
        assert_eq!(multi.requests(), 10);
        assert_eq!(multi.lines_occupied(), 10);
        assert_eq!(multi.cells_occupied(), 4 * 8 + 6 * 5);
        assert_eq!(multi.axis(), Axis::Rows);
        assert_eq!(multi.line_len(), 30);
        assert_eq!(multi.parts().len(), 2);
    }

    #[test]
    fn empty_geometry_and_overlap_are_rejected() {
        assert_eq!(
            MultiProgramPlan::new(Vec::new()).unwrap_err(),
            DeviceError::EmptyMultiPlan
        );
        let rows = part(0..4, 8);
        let cols = PlacementPlan::pack(Axis::Cols, 30, 5, 30, usize::MAX, 4).unwrap();
        assert_eq!(
            MultiProgramPlan::new(vec![rows.clone(), cols]).unwrap_err(),
            DeviceError::MultiPlanGeometry { part: 1 }
        );
        let narrow = PlacementPlan::pack(Axis::Rows, 20, 5, 20, usize::MAX, 4).unwrap();
        assert_eq!(
            MultiProgramPlan::new(vec![rows.clone(), narrow]).unwrap_err(),
            DeviceError::MultiPlanGeometry { part: 1 }
        );
        assert_eq!(
            MultiProgramPlan::new(vec![rows, part(3..6, 5)]).unwrap_err(),
            DeviceError::MultiPlanOverlap { line: 3 }
        );
    }
}
