//! The dense offset-major packer — the pure planning function the device
//! entry points and the cluster scheduler share.

use super::plan::{Axis, PlacementPlan, Slot};
use crate::device::DeviceError;

impl PlacementPlan {
    /// Packs `requests` slots of `slot_width` cells onto a `line_len ×
    /// line_len` crossbar, using at most `line_limit` lines and at most
    /// `per_line_cap` slots per line.
    ///
    /// The fill is **offset-major**: request `i` lands on line `i % L` at
    /// offset `(i / L) * slot_width`, where `L = min(requests, line_limit,
    /// line_len)`. Every line therefore carries a request at offset 0
    /// before any line opens a second slot — for `requests <= L` the plan
    /// is exactly the classic one-request-per-line placement, and deeper
    /// batches add whole offset columns, which keeps the number of
    /// gate-replay passes at its minimum `ceil(requests / L)`.
    ///
    /// Pure and deterministic: the plan is a function of the arguments
    /// alone, which is what the cluster scheduler's reproducibility
    /// guarantee rests on.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::ZeroSlotWidth`] / [`DeviceError::EmptyBatch`] as in
    ///   [`PlacementPlan::new`];
    /// * [`DeviceError::ProgramTooWide`] — `slot_width` exceeds the line;
    /// * [`DeviceError::BatchTooLarge`] — more requests than the admitted
    ///   lines can hold even fully packed.
    pub fn pack(
        axis: Axis,
        line_len: usize,
        slot_width: usize,
        line_limit: usize,
        per_line_cap: usize,
        requests: usize,
    ) -> Result<Self, DeviceError> {
        Self::pack_rotated(
            axis,
            line_len,
            slot_width,
            line_limit,
            per_line_cap,
            requests,
            0,
        )
    }

    /// [`PlacementPlan::pack`] with a rotated slot-offset **fill origin**:
    /// depth `j` of the offset-major fill lands on physical offset column
    /// `(origin + j) % (line_len / slot_width)` instead of column `j`.
    ///
    /// A batch always filling from cell 0 concentrates memristor wear in
    /// the low cells of every line; rotating the origin — the cluster
    /// scheduler passes its wave index — levels write traffic across the
    /// whole line over time. `origin` may be any value (it is reduced
    /// modulo the line's geometric slot capacity), `origin == 0` is
    /// exactly [`PlacementPlan::pack`], and the plan remains a pure
    /// function of the arguments, so rotation preserves the scheduler's
    /// determinism guarantee.
    ///
    /// # Errors
    ///
    /// As [`PlacementPlan::pack`].
    pub fn pack_rotated(
        axis: Axis,
        line_len: usize,
        slot_width: usize,
        line_limit: usize,
        per_line_cap: usize,
        requests: usize,
        origin: usize,
    ) -> Result<Self, DeviceError> {
        Self::pack_avoiding(
            axis,
            line_len,
            slot_width,
            line_limit,
            per_line_cap,
            requests,
            origin,
            &[],
        )
    }

    /// [`PlacementPlan::pack_rotated`] that additionally skips the
    /// physical lines in `avoid` — the retired-line map of flash-style
    /// bad-block management (see
    /// [`RetiredLines`](crate::device::RetiredLines)).
    ///
    /// The offset-major fill runs over *logical* lines `0..L` exactly as
    /// in [`PlacementPlan::pack`]; logical line `l` is then mapped to the
    /// `l`-th non-avoided physical line, so avoided lines shrink capacity
    /// (`BatchTooLarge` reflects only the lines still in service) without
    /// changing the fill shape. `avoid` must be sorted ascending and
    /// deduplicated; an empty `avoid` is exactly
    /// [`PlacementPlan::pack_rotated`].
    ///
    /// # Errors
    ///
    /// As [`PlacementPlan::pack`], with `BatchTooLarge::rows` counting
    /// only non-avoided admitted lines.
    #[allow(clippy::too_many_arguments)]
    pub fn pack_avoiding(
        axis: Axis,
        line_len: usize,
        slot_width: usize,
        line_limit: usize,
        per_line_cap: usize,
        requests: usize,
        origin: usize,
        avoid: &[usize],
    ) -> Result<Self, DeviceError> {
        if slot_width == 0 {
            return Err(DeviceError::ZeroSlotWidth);
        }
        if requests == 0 {
            return Err(DeviceError::EmptyBatch);
        }
        if slot_width > line_len {
            return Err(DeviceError::ProgramTooWide {
                row_size: slot_width,
                footprint: slot_width,
                n: line_len,
            });
        }
        debug_assert!(
            avoid.windows(2).all(|w| w[0] < w[1]),
            "avoid must be sorted ascending and deduplicated"
        );
        // Physical lines still in service, in order: logical line `l` of
        // the fill lands on `allowed[l]`. Empty `avoid` keeps the identity
        // mapping without allocating.
        let allowed: Vec<usize> = if avoid.is_empty() {
            Vec::new()
        } else {
            let mut next_avoided = avoid.iter().copied().peekable();
            (0..line_len)
                .filter(|&l| {
                    if next_avoided.peek() == Some(&l) {
                        next_avoided.next();
                        false
                    } else {
                        true
                    }
                })
                .collect()
        };
        let in_service = if avoid.is_empty() {
            line_len
        } else {
            allowed.len()
        };
        let lines_avail = line_limit.min(in_service);
        // Admitted fill depth vs the line's full geometric slot capacity:
        // the former caps how many requests share a line, the latter is
        // the ring the fill origin rotates over.
        let slot_columns = line_len / slot_width;
        let per_line = slot_columns.min(per_line_cap).max(1);
        if requests > lines_avail * per_line {
            return Err(DeviceError::BatchTooLarge {
                requests,
                rows: lines_avail,
            });
        }
        let lines_used = requests.min(lines_avail);
        let origin = origin % slot_columns;
        let slots = (0..requests)
            .map(|i| {
                let logical = i % lines_used;
                Slot {
                    line: if avoid.is_empty() {
                        logical
                    } else {
                        allowed[logical]
                    },
                    offset: ((origin + i / lines_used) % slot_columns) * slot_width,
                }
            })
            .collect();
        PlacementPlan::new(axis, line_len, slot_width, slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shallow_batches_degenerate_to_one_request_per_line() {
        let plan = PlacementPlan::pack(Axis::Rows, 30, 7, 30, usize::MAX, 12).expect("packs");
        assert_eq!(plan.max_per_line(), 1);
        for (i, slot) in plan.slots().iter().enumerate() {
            assert_eq!((slot.line, slot.offset), (i, 0), "request {i}");
        }
    }

    #[test]
    fn deep_batches_fill_whole_offset_columns() {
        // 70 requests over 30 lines: offsets 0 and 7 full, offset 14 gets 10.
        let plan = PlacementPlan::pack(Axis::Rows, 30, 7, 30, usize::MAX, 70).expect("packs");
        assert_eq!(plan.max_per_line(), 3);
        let groups = plan.offset_groups();
        assert_eq!(groups.len(), 3, "minimal gate-replay passes");
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[1], (7, (0..30).collect()));
        assert_eq!(groups[2], (14, (0..10).collect()));
    }

    #[test]
    fn caps_and_limits_bound_the_capacity() {
        // 4 lines x 2 per line = 8 slots; 9 requests overflow.
        assert_eq!(
            PlacementPlan::pack(Axis::Cols, 30, 7, 4, 2, 9).unwrap_err(),
            DeviceError::BatchTooLarge {
                requests: 9,
                rows: 4
            }
        );
        let plan = PlacementPlan::pack(Axis::Cols, 30, 7, 4, 2, 8).expect("packs");
        assert_eq!(plan.lines_occupied(), 4);
        assert_eq!(plan.max_per_line(), 2);
        // per_line_cap = 1 is the row-only scheduler.
        assert_eq!(
            PlacementPlan::pack(Axis::Rows, 30, 7, 30, 1, 31).unwrap_err(),
            DeviceError::BatchTooLarge {
                requests: 31,
                rows: 30
            }
        );
        assert_eq!(
            PlacementPlan::pack(Axis::Rows, 30, 31, 30, 1, 1).unwrap_err(),
            DeviceError::ProgramTooWide {
                row_size: 31,
                footprint: 31,
                n: 30
            }
        );
    }

    #[test]
    fn rotated_fill_starts_at_the_origin_column_and_wraps() {
        // 30-cell lines, width 7: 4 slot columns at offsets 0/7/14/21.
        // Origin 2 over 3 lines × 70 requests... keep it readable: 8
        // requests on 3 lines, depth 3 → columns 2, 3, 0 in fill order.
        let plan =
            PlacementPlan::pack_rotated(Axis::Rows, 30, 7, 3, usize::MAX, 8, 2).expect("packs");
        let groups = plan.offset_groups();
        // offset_groups is offset-ascending; the *fill order* puts the
        // first 3 requests at column 2 (offset 14), next 3 at column 3
        // (offset 21), last 2 wrap to column 0 (offset 0).
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (0, vec![0, 1]));
        assert_eq!(groups[1], (14, vec![0, 1, 2]));
        assert_eq!(groups[2], (21, vec![0, 1, 2]));
        // Spread slots (the first lines_used requests) sit at the origin.
        for (i, slot) in plan.slots().iter().take(3).enumerate() {
            assert_eq!((slot.line, slot.offset), (i, 14), "request {i}");
        }
    }

    #[test]
    fn origin_zero_is_exactly_the_classic_pack() {
        for requests in [1usize, 12, 70] {
            let classic =
                PlacementPlan::pack(Axis::Rows, 30, 7, 30, usize::MAX, requests).expect("packs");
            let rotated =
                PlacementPlan::pack_rotated(Axis::Rows, 30, 7, 30, usize::MAX, requests, 0)
                    .expect("packs");
            assert_eq!(classic, rotated, "{requests} requests");
            // And the origin wraps modulo the slot-column count (4 here).
            let wrapped =
                PlacementPlan::pack_rotated(Axis::Rows, 30, 7, 30, usize::MAX, requests, 4)
                    .expect("packs");
            assert_eq!(classic, wrapped, "{requests} requests, origin 4");
        }
    }

    #[test]
    fn avoided_lines_are_never_occupied_on_either_axis() {
        // Retire the first block-line band (lines 0..15) of a 30-line
        // device; every slot must land in the surviving band.
        let avoid: Vec<usize> = (0..15).collect();
        for axis in [Axis::Rows, Axis::Cols] {
            let plan = PlacementPlan::pack_avoiding(axis, 30, 7, 30, usize::MAX, 12, 0, &avoid)
                .expect("packs");
            for (i, slot) in plan.slots().iter().enumerate() {
                assert!(slot.line >= 15, "request {i} on retired line {}", slot.line);
                assert_eq!((slot.line, slot.offset), (15 + i, 0), "request {i}");
            }
        }
    }

    #[test]
    fn avoided_lines_shrink_capacity_on_either_axis() {
        // 15 of 30 lines retired, 4 slot columns: 60 slots remain.
        let avoid: Vec<usize> = (15..30).collect();
        for axis in [Axis::Rows, Axis::Cols] {
            let plan = PlacementPlan::pack_avoiding(axis, 30, 7, 30, usize::MAX, 60, 0, &avoid)
                .expect("packs");
            assert_eq!(plan.lines_occupied(), 15);
            assert_eq!(plan.max_per_line(), 4);
            assert_eq!(
                PlacementPlan::pack_avoiding(axis, 30, 7, 30, usize::MAX, 61, 0, &avoid)
                    .unwrap_err(),
                DeviceError::BatchTooLarge {
                    requests: 61,
                    rows: 15
                },
                "capacity must reflect only lines in service"
            );
        }
    }

    #[test]
    fn interleaved_avoid_list_preserves_the_fill_shape() {
        // Avoid every other line: logical lines 0..3 map to 1, 3, 5, 7.
        let avoid: Vec<usize> = (0..30).step_by(2).collect();
        let plan = PlacementPlan::pack_avoiding(Axis::Rows, 30, 7, 4, usize::MAX, 8, 0, &avoid)
            .expect("packs");
        let lines: Vec<usize> = plan.slots().iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 3, 5, 7, 1, 3, 5, 7]);
        assert_eq!(plan.slots()[4].offset, 7, "second offset column");
    }

    #[test]
    fn empty_avoid_is_exactly_pack_rotated() {
        for (requests, origin) in [(1usize, 0usize), (12, 2), (70, 5)] {
            let classic =
                PlacementPlan::pack_rotated(Axis::Cols, 30, 7, 30, usize::MAX, requests, origin)
                    .expect("packs");
            let avoiding = PlacementPlan::pack_avoiding(
                Axis::Cols,
                30,
                7,
                30,
                usize::MAX,
                requests,
                origin,
                &[],
            )
            .expect("packs");
            assert_eq!(classic, avoiding, "{requests} requests, origin {origin}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Any pack the packer accepts is internally consistent: slots
        // disjoint (enforced by the validating constructor — reaching
        // `Ok` proves it), density within caps, line usage minimal.
        #[test]
        fn packed_plans_are_disjoint_and_within_caps(
            line_len in 4usize..64,
            slot_width in 1usize..16,
            line_limit in 1usize..64,
            per_line_cap in 1usize..8,
            requests in 1usize..200,
        ) {
            match PlacementPlan::pack(
                Axis::Rows, line_len, slot_width, line_limit, per_line_cap, requests,
            ) {
                Ok(plan) => {
                    prop_assert_eq!(plan.requests(), requests);
                    prop_assert!(plan.max_per_line() <= per_line_cap);
                    prop_assert!(plan.lines_occupied() <= line_limit.min(line_len));
                    // Offset-major: lines only repeat once all are used.
                    prop_assert_eq!(
                        plan.lines_occupied(),
                        requests.min(line_limit.min(line_len))
                    );
                    for slot in plan.slots() {
                        prop_assert!(slot.offset + slot_width <= line_len);
                    }
                }
                Err(
                    DeviceError::BatchTooLarge { .. } | DeviceError::ProgramTooWide { .. },
                ) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }

        // Rotating the fill origin never changes the capacity envelope,
        // keeps slots legal, and stays a pure function of its arguments.
        #[test]
        fn rotated_packs_are_disjoint_deterministic_and_capacity_equivalent(
            line_len in 4usize..64,
            slot_width in 1usize..16,
            line_limit in 1usize..64,
            per_line_cap in 1usize..8,
            requests in 1usize..200,
            origin in 0usize..100,
        ) {
            let rotated = PlacementPlan::pack_rotated(
                Axis::Cols, line_len, slot_width, line_limit, per_line_cap, requests, origin,
            );
            let classic = PlacementPlan::pack(
                Axis::Cols, line_len, slot_width, line_limit, per_line_cap, requests,
            );
            match rotated {
                Ok(plan) => {
                    let again = PlacementPlan::pack_rotated(
                        Axis::Cols, line_len, slot_width, line_limit, per_line_cap,
                        requests, origin,
                    ).expect("same arguments pack again");
                    prop_assert_eq!(&plan, &again, "rotation must be deterministic");
                    prop_assert_eq!(plan.requests(), requests);
                    prop_assert!(plan.max_per_line() <= per_line_cap);
                    prop_assert_eq!(
                        plan.lines_occupied(),
                        requests.min(line_limit.min(line_len))
                    );
                    for slot in plan.slots() {
                        prop_assert_eq!(slot.offset % slot_width, 0);
                        prop_assert!(slot.offset + slot_width <= line_len);
                    }
                    let classic = classic.expect("rotation does not change capacity");
                    prop_assert_eq!(classic.lines_occupied(), plan.lines_occupied());
                    prop_assert_eq!(classic.max_per_line(), plan.max_per_line());
                }
                Err(e) => prop_assert_eq!(classic.unwrap_err(), e),
            }
        }
    }
}
