//! The plan types: [`Axis`], [`Slot`], and the validated [`PlacementPlan`].

use crate::device::DeviceError;

/// Which crossbar dimension a batch occupies.
///
/// MAGIC's row/column symmetry (the paper's §IV "row (column)" phrasing)
/// means the same compiled program executes on either axis; the diagonal
/// ECC checks a block-*row* or a block-*column* at the same cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Axis {
    /// Requests occupy rows; gates drive column voltages (`exec_*_rows`).
    #[default]
    Rows,
    /// Requests occupy columns; gates drive row voltages (`exec_*_cols`).
    Cols,
}

impl Axis {
    /// The other axis.
    #[must_use]
    pub fn flipped(self) -> Axis {
        match self {
            Axis::Rows => Axis::Cols,
            Axis::Cols => Axis::Rows,
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::Rows => write!(f, "rows"),
            Axis::Cols => write!(f, "cols"),
        }
    }
}

/// One request's home: a line of the plan's axis and the first cell of its
/// slot within that line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    /// Row index under [`Axis::Rows`], column index under [`Axis::Cols`].
    pub line: usize,
    /// First cell of the request's slot; the program's cell `c` lives at
    /// `offset + c`.
    pub offset: usize,
}

/// A validated assignment of one slot per request on one axis.
///
/// Construction ([`PlacementPlan::new`] or the [`PlacementPlan::pack`]
/// packer) guarantees every slot lies on the `line_len × line_len`
/// crossbar and no two slots overlap; a plan is therefore safe to hand to
/// [`PimDevice::run_plan`](crate::device::PimDevice::run_plan), which only
/// re-checks it against the *device's* geometry and program footprint.
///
/// ```
/// use pimecc::device::placement::{Axis, PlacementPlan};
///
/// # fn main() -> Result<(), pimecc::device::DeviceError> {
/// // 10 requests of footprint 8 on a 30-cell crossbar: 3 fit per line.
/// let plan = PlacementPlan::pack(Axis::Cols, 30, 8, 4, usize::MAX, 10)?;
/// assert_eq!(plan.requests(), 10);
/// assert_eq!(plan.lines_occupied(), 4);
/// assert_eq!(plan.max_per_line(), 3);
/// assert_eq!(plan.cells_occupied(), 80);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct PlacementPlan {
    axis: Axis,
    line_len: usize,
    slot_width: usize,
    slots: Vec<Slot>,
    /// Distinct lines the slots touch, counted once at construction (the
    /// validation pass sorts the slots anyway) so per-wave reporting does
    /// not re-sort.
    lines_occupied: usize,
}

impl PlacementPlan {
    /// Builds a plan from explicit slots: request `i` executes in
    /// `slots[i]`, each slot reserving `slot_width` cells of its line on a
    /// `line_len × line_len` crossbar.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::ZeroSlotWidth`] — a slot must reserve ≥ 1 cell;
    /// * [`DeviceError::EmptyBatch`] — no slots;
    /// * [`DeviceError::RowOutOfRange`] — a line beyond the crossbar;
    /// * [`DeviceError::OffsetOutOfRange`] — a slot past the line end;
    /// * [`DeviceError::RowConflict`] — two slots overlap on one line.
    pub fn new(
        axis: Axis,
        line_len: usize,
        slot_width: usize,
        slots: Vec<Slot>,
    ) -> Result<Self, DeviceError> {
        if slot_width == 0 {
            return Err(DeviceError::ZeroSlotWidth);
        }
        if slots.is_empty() {
            return Err(DeviceError::EmptyBatch);
        }
        for slot in &slots {
            if slot.line >= line_len {
                return Err(DeviceError::RowOutOfRange {
                    row: slot.line,
                    n: line_len,
                });
            }
            if slot.offset + slot_width > line_len {
                return Err(DeviceError::OffsetOutOfRange {
                    line: slot.line,
                    offset: slot.offset,
                    slot_width,
                    n: line_len,
                });
            }
        }
        // Overlap: sort a copy by (line, offset); equal-width slots overlap
        // iff adjacent on a line closer than one width.
        let mut sorted: Vec<Slot> = slots.clone();
        sorted.sort_unstable_by_key(|s| (s.line, s.offset));
        for pair in sorted.windows(2) {
            if pair[0].line == pair[1].line && pair[1].offset < pair[0].offset + slot_width {
                return Err(DeviceError::RowConflict { row: pair[0].line });
            }
        }
        let lines_occupied = 1 + sorted
            .windows(2)
            .filter(|pair| pair[0].line != pair[1].line)
            .count();
        Ok(PlacementPlan {
            axis,
            line_len,
            slot_width,
            slots,
            lines_occupied,
        })
    }

    /// The axis the batch occupies.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Line length (= line count; crossbars are square) the plan was built
    /// for.
    pub fn line_len(&self) -> usize {
        self.line_len
    }

    /// Cells each slot reserves.
    pub fn slot_width(&self) -> usize {
        self.slot_width
    }

    /// One slot per request, in request order.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Number of requests placed.
    pub fn requests(&self) -> usize {
        self.slots.len()
    }

    /// The distinct lines the plan touches, ascending.
    pub fn lines(&self) -> Vec<usize> {
        let mut lines: Vec<usize> = self.slots.iter().map(|s| s.line).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Number of distinct lines the plan touches.
    pub fn lines_occupied(&self) -> usize {
        self.lines_occupied
    }

    /// Cells reserved across the crossbar: requests × slot width.
    pub fn cells_occupied(&self) -> usize {
        self.slots.len() * self.slot_width
    }

    /// Fraction of the whole crossbar's cells this plan occupies — the
    /// packing-density figure surfaced per shard in
    /// [`ShardReport`](crate::cluster::ShardReport).
    pub fn cell_utilization(&self) -> f64 {
        self.cells_occupied() as f64 / (self.line_len * self.line_len) as f64
    }

    /// Fraction of the crossbar's lines this plan occupies.
    pub fn line_utilization(&self) -> f64 {
        self.lines_occupied() as f64 / self.line_len as f64
    }

    /// Most requests sharing one line — the co-packing density the
    /// acceptance figures quote (1 = row-only placement).
    pub fn max_per_line(&self) -> usize {
        let mut lines: Vec<usize> = self.slots.iter().map(|s| s.line).collect();
        lines.sort_unstable();
        lines
            .chunk_by(|a, b| a == b)
            .map(<[usize]>::len)
            .max()
            .unwrap_or(0)
    }

    /// The slots grouped by offset, ascending: each group is the set of
    /// lines carrying a request at that offset — one gate-replay pass of
    /// the executor, in deterministic order.
    pub fn offset_groups(&self) -> Vec<(usize, Vec<usize>)> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut sorted: Vec<Slot> = self.slots.clone();
        sorted.sort_unstable_by_key(|s| (s.offset, s.line));
        for slot in sorted {
            match groups.last_mut() {
                Some((offset, lines)) if *offset == slot.offset => lines.push(slot.line),
                _ => groups.push((slot.offset, vec![slot.line])),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(line: usize, offset: usize) -> Slot {
        Slot { line, offset }
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        assert_eq!(
            PlacementPlan::new(Axis::Rows, 30, 0, vec![slot(0, 0)]).unwrap_err(),
            DeviceError::ZeroSlotWidth
        );
        assert_eq!(
            PlacementPlan::new(Axis::Rows, 30, 5, Vec::new()).unwrap_err(),
            DeviceError::EmptyBatch
        );
        assert_eq!(
            PlacementPlan::new(Axis::Rows, 30, 5, vec![slot(30, 0)]).unwrap_err(),
            DeviceError::RowOutOfRange { row: 30, n: 30 }
        );
        assert_eq!(
            PlacementPlan::new(Axis::Rows, 30, 5, vec![slot(2, 26)]).unwrap_err(),
            DeviceError::OffsetOutOfRange {
                line: 2,
                offset: 26,
                slot_width: 5,
                n: 30
            }
        );
    }

    #[test]
    fn overlapping_slots_are_rejected_and_touching_slots_are_not() {
        // Offsets 0 and 4 overlap at width 5; 0 and 5 touch exactly.
        assert_eq!(
            PlacementPlan::new(Axis::Cols, 30, 5, vec![slot(3, 0), slot(3, 4)]).unwrap_err(),
            DeviceError::RowConflict { row: 3 }
        );
        let plan = PlacementPlan::new(Axis::Cols, 30, 5, vec![slot(3, 5), slot(3, 0)])
            .expect("touching slots are disjoint");
        assert_eq!(plan.max_per_line(), 2);
        assert_eq!(
            PlacementPlan::new(Axis::Rows, 30, 5, vec![slot(1, 10), slot(1, 10)]).unwrap_err(),
            DeviceError::RowConflict { row: 1 },
        );
    }

    #[test]
    fn accounting_tracks_lines_cells_and_density() {
        let plan = PlacementPlan::new(
            Axis::Rows,
            30,
            6,
            vec![slot(0, 0), slot(4, 0), slot(0, 6), slot(0, 12)],
        )
        .expect("legal plan");
        assert_eq!(plan.requests(), 4);
        assert_eq!(plan.lines(), vec![0, 4]);
        assert_eq!(plan.lines_occupied(), 2);
        assert_eq!(plan.cells_occupied(), 24);
        assert_eq!(plan.max_per_line(), 3);
        assert!((plan.cell_utilization() - 24.0 / 900.0).abs() < 1e-12);
        assert!((plan.line_utilization() - 2.0 / 30.0).abs() < 1e-12);
        assert_eq!(
            plan.offset_groups(),
            vec![(0, vec![0, 4]), (6, vec![0]), (12, vec![0])]
        );
    }
}
