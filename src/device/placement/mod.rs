//! Two-dimensional placement: where on the crossbar each request runs.
//!
//! MAGIC executes one gate across *all selected rows — or columns — in a
//! single MEM cycle*, and a mapped program touches only
//! [`footprint()`](crate::device::CompiledProgram::footprint) cells of the
//! line it rides. Placement therefore has two independent degrees of
//! freedom that pure row-batching leaves on the table:
//!
//! * **Axis** — a batch can occupy rows *or* columns. The machine layer has
//!   carried the transposed ops (`exec_*_cols`, `check_block_col`) since
//!   the seed; a [`PlacementPlan`] makes them reachable from the device.
//! * **Offset** — a narrow program can sit at any aligned offset inside a
//!   line, so `k = line_len / footprint` requests *co-pack* onto one
//!   physical line. Their gate steps replay once per occupied offset (a
//!   single voltage pattern drives one column set per cycle), but the
//!   input loads merge into **one** driven write per line and the
//!   pre-execution ECC check still runs **once per touched block-line** —
//!   the per-wave overheads divide by the packing density.
//!
//! ```text
//!              offset 0     offset w    offset 2w      (slot width w)
//!            ┌───────────┬───────────┬───────────┬───┐
//!     line 0 │ request 0 │ request 6 │ request 12│...│   Axis::Rows:
//!     line 1 │ request 1 │ request 7 │ request 13│...│   lines are rows,
//!     line 2 │ request 2 │ request 8 │     …     │   │   slots grow to
//!       …    │     …     │     …     │           │   │   the right
//!            └───────────┴───────────┴───────────┴───┘
//!              (transpose the picture for Axis::Cols)
//! ```
//!
//! [`PlacementPlan::pack`] fills **offset-major**: every available line
//! receives a request at offset 0 before any second slot opens, so a batch
//! that fits one request per line is placed exactly like the row-only
//! scheduler placed it — and gate replays (the only cost of co-packing)
//! only appear once real line pressure exists.
//!
//! A plan is validated at construction (slots on the crossbar, pairwise
//! non-overlapping) and again by
//! [`PimDevice::run_plan`](crate::device::PimDevice::run_plan) against the
//! executing device's geometry and program, so a plan that executes is a
//! plan that was legal.

mod multi;
mod packer;
mod plan;

pub use multi::MultiProgramPlan;
pub use plan::{Axis, PlacementPlan, Slot};
