//! Batch-first execution on an ECC-protected MAGIC crossbar.
//!
//! The paper's headline is *high-throughput* PIM: MAGIC executes one
//! instruction stream across all rows of a crossbar simultaneously, and the
//! diagonal ECC keeps its check-bits current at Θ(1) in-memory operations
//! per parallel write. A [`PimDevice`] exposes exactly that shape:
//!
//! 1. [`PimDevice::compile`] maps a function once with SIMPLER and caches
//!    the resulting [`CompiledProgram`] on the device
//!    ([`PimDevice::compile_packed`] maps it *narrow* instead, so several
//!    requests co-pack per line);
//! 2. [`PimDevice::run_batch`] packs up to `n` requests onto distinct rows
//!    (without clobbering the others), performs **one** pre-execution ECC
//!    check per *touched block-row* — not per request — and then executes
//!    each program step **exactly once** for the whole batch via
//!    row-parallel MAGIC. Placement is two-dimensional: a
//!    [`PlacementPlan`] (see [`placement`]) also runs batches
//!    column-parallel ([`Axis::Cols`]) and co-packs several narrow
//!    requests per line at distinct offsets
//!    ([`PimDevice::run_packed`] / [`PimDevice::run_plan`]);
//! 3. the [`BatchOutcome`] carries per-request outputs plus the batch's own
//!    [`MachineStats`] delta and a derived throughput figure (gate
//!    evaluations per MEM cycle).
//!
//! Batching therefore costs ~O(steps + k) MEM cycles for k requests where
//! a serial one-request-per-pass flow costs
//! O(steps × k) — the ~k× amortization every scaling layer above this API
//! (sharding, async queues, multi-device) builds on. Co-packing stacks a
//! second amortization on top: d requests per line divide the input-load
//! writes and block-line checks by d again.
//!
//! # Example
//!
//! ```
//! use pimecc::device::PimDevice;
//! use pimecc::netlist::NetlistBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new();
//! let x = b.input();
//! let y = b.input();
//! let g = b.xor(x, y);
//! b.output(g);
//! let netlist = b.finish();
//!
//! let mut device = PimDevice::new(30, 3)?; // 30x30 crossbar, 3x3 ECC blocks
//! let program = device.compile(&netlist.to_nor())?;
//!
//! // Four requests ride the same step sequence on four rows at once.
//! let batch: Vec<Vec<bool>> = (0..4u32)
//!     .map(|v| vec![v & 1 != 0, v & 2 != 0])
//!     .collect();
//! let outcome = device.run_batch(&program, &batch)?;
//! for (req, out) in batch.iter().zip(&outcome.outputs) {
//!     assert_eq!(out, &netlist.eval(req));
//! }
//! assert_eq!(outcome.requests(), 4);
//! # Ok(())
//! # }
//! ```

mod batch;
mod error;
pub mod placement;
mod program;
mod retire;

pub use batch::{
    BatchOutcome, MultiBatchOutcome, OutputArena, OutputArenaIter, UncorrectableInput,
};
pub use error::DeviceError;
pub use pimecc_core::SimEngine;
pub use placement::{Axis, MultiProgramPlan, PlacementPlan, Slot};
pub use program::{netlist_fingerprint, CompiledProgram};
pub use retire::RetiredLines;

pub(crate) use program::ProgramCache;

use pimecc_core::{BlockGeometry, CheckReport, FusedProgram, MachineStats, ProtectedMemory};
use pimecc_netlist::NorNetlist;
use pimecc_simpler::{Program, Step};
use pimecc_xbar::{LineSet, ParallelStep};
use std::collections::HashMap;

// The cluster service moves whole devices into its worker thread and
// ships compiled-program handles across an MPSC channel, so these bounds
// are load-bearing API contracts — pin them at compile time rather than
// discovering a regression at a distant spawn site.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<PimDevice>();
    assert_send_sync::<CompiledProgram>();
};

/// Telemetry of one [`PimDevice::scrub_pass`]: what the check half found
/// (and repaired) plus the machine activity the whole pass cost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[must_use]
pub struct ScrubReport {
    /// The full-memory check's findings: blocks examined, single errors
    /// corrected, uncorrectable patterns left behind. Blocks retired on
    /// **both** axes are out of service and excluded from the sweep, so a
    /// shard whose hard faults are fully retired scrubs clean again.
    pub check: CheckReport,
    /// Blocks `(block_row, block_col)` with uncorrectable verdicts this
    /// pass — each one struck its row *and* column line in the device's
    /// [`RetiredLines`] ledger.
    pub struck_blocks: Vec<(usize, usize)>,
    /// Machine activity attributable to this pass (a delta, like a
    /// batch's).
    pub stats: MachineStats,
}

impl ScrubReport {
    /// Whether the pass found nothing to repair and nothing beyond
    /// repair — the "clean scrub" a quarantine recovery counts.
    pub fn is_clean(&self) -> bool {
        self.check.corrected == 0 && self.check.uncorrectable == 0
    }
}

/// One program's share of a multi-program wave for
/// [`PimDevice::run_multi`]: the compiled program and its request group,
/// parallel to one part of a [`MultiProgramPlan`].
#[derive(Debug, Clone, Copy)]
pub struct MultiPartRequest<'a> {
    /// The compiled program this part executes.
    pub program: &'a CompiledProgram,
    /// The part's requests, in the part plan's slot order.
    pub requests: &'a [Vec<bool>],
}

/// When (and how aggressively) the device verifies ECC around a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPolicy {
    /// The paper's §IV flow: before execution, every block-row holding a
    /// request of the batch is checked and single errors repaired.
    #[default]
    PreExecution,
    /// No pre-execution check; rely on the continuous maintenance and the
    /// periodic scrub alone.
    Skip,
    /// [`CheckPolicy::PreExecution`] plus a pre-*write* check of every
    /// critical operation — closes the paper's §III false-positive window
    /// at the price of one block check per covered write.
    Paranoid,
}

/// Which blocks of the device carry ECC coverage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CoveragePolicy {
    /// Every block is covered (the safe default).
    #[default]
    Full,
    /// The listed `(block_row, block_col)` blocks are uncovered scratch —
    /// the paper's model where only function inputs/outputs are protected.
    Uncovered(Vec<(usize, usize)>),
}

/// Hook invoked after a batch's inputs are loaded and before its
/// pre-execution check — the window soft errors strike in; fault-injection
/// campaigns register one through
/// [`PimDeviceBuilder::on_batch_loaded`].
///
/// The hook is `Send` so that a device carrying one can still serve as a
/// shard of a [`PimCluster`](crate::cluster::PimCluster), whose scheduler
/// dispatches shards on scoped threads.
pub type BatchFaultHook = Box<dyn FnMut(&mut ProtectedMemory) + Send>;

/// Configures and builds a [`PimDevice`].
///
/// ```
/// use pimecc::device::{CheckPolicy, PimDeviceBuilder};
///
/// # fn main() -> Result<(), pimecc::device::DeviceError> {
/// let device = PimDeviceBuilder::new(45, 15)
///     .check_policy(CheckPolicy::Paranoid)
///     .build()?;
/// assert_eq!(device.capacity(), 45);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub struct PimDeviceBuilder {
    n: usize,
    m: usize,
    check_policy: CheckPolicy,
    coverage: CoveragePolicy,
    engine: SimEngine,
    threads: usize,
    fault_hook: Option<BatchFaultHook>,
    retire_after: Option<u32>,
}

impl PimDeviceBuilder {
    /// Starts a builder for an `n×n` crossbar with `m×m` ECC blocks.
    pub fn new(n: usize, m: usize) -> Self {
        PimDeviceBuilder {
            n,
            m,
            check_policy: CheckPolicy::default(),
            coverage: CoveragePolicy::default(),
            engine: SimEngine::default(),
            threads: 1,
            fault_hook: None,
            retire_after: None,
        }
    }

    /// Retires a block-line after `strikes` uncorrectable verdicts against
    /// it (pre-/post-execution checks or scrub findings): the packer stops
    /// placing requests on its physical lines and capacity shrinks
    /// accordingly — flash-style bad-block management (see
    /// [`RetiredLines`]). Default: disabled — strikes are counted but no
    /// line is ever taken out of service. `0` is rejected at
    /// [`PimDeviceBuilder::build`] time with
    /// [`DeviceError::ZeroRetireAfter`].
    pub fn retire_after(mut self, strikes: u32) -> Self {
        self.retire_after = Some(strikes);
        self
    }

    /// Number of host worker threads a fused row-parallel replay may fan
    /// out across (default `1`: run inline). Results, statistics and
    /// check-bits are bit-identical for every thread count — the row range
    /// splits at fixed block-row boundaries and per-chunk ECC deltas merge
    /// deterministically — so this is purely a host-side wall-clock knob.
    /// `0` is rejected at [`PimDeviceBuilder::build`] time with
    /// [`DeviceError::ZeroThreads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the host simulation engine (default:
    /// [`SimEngine::WordParallel`]). The scalar reference is bit-identical
    /// but slower; benchmarks select it to measure the word-parallel
    /// speedup.
    pub fn engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the ECC checking policy (default:
    /// [`CheckPolicy::PreExecution`]).
    pub fn check_policy(mut self, policy: CheckPolicy) -> Self {
        self.check_policy = policy;
        self
    }

    /// Selects the block coverage policy (default: [`CoveragePolicy::Full`]).
    pub fn coverage(mut self, coverage: CoveragePolicy) -> Self {
        self.coverage = coverage;
        self
    }

    /// Registers a fault-injection hook, run once per batch after the
    /// inputs are written and before the pre-execution check.
    pub fn on_batch_loaded(
        mut self,
        hook: impl FnMut(&mut ProtectedMemory) + Send + 'static,
    ) -> Self {
        self.fault_hook = Some(Box::new(hook));
        self
    }

    /// Builds the device.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation and coverage-map errors as
    /// [`DeviceError::Core`].
    pub fn build(self) -> Result<PimDevice, DeviceError> {
        if self.threads == 0 {
            return Err(DeviceError::ZeroThreads);
        }
        if self.retire_after == Some(0) {
            return Err(DeviceError::ZeroRetireAfter);
        }
        let mut memory = ProtectedMemory::new(BlockGeometry::new(self.n, self.m)?)?;
        memory.set_engine(self.engine);
        if let CoveragePolicy::Uncovered(blocks) = &self.coverage {
            for &(br, bc) in blocks {
                memory.set_block_covered(br, bc, false)?;
            }
        }
        memory.set_check_on_critical(matches!(self.check_policy, CheckPolicy::Paranoid));
        Ok(PimDevice {
            retired: RetiredLines::new(self.n, self.m, self.retire_after),
            memory,
            check_policy: self.check_policy,
            threads: self.threads,
            fault_hook: self.fault_hook,
            programs: ProgramCache::default(),
            fused_plans: HashMap::new(),
            line_loads: Vec::new(),
            touched_lines: Vec::new(),
            readback_runs: Vec::new(),
            plane_msk: Vec::new(),
            plane_val: Vec::new(),
            plane_touched: Vec::new(),
            block_lines: Vec::new(),
            slot_scratch: Vec::new(),
        })
    }
}

impl std::fmt::Debug for PimDeviceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimDeviceBuilder")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("check_policy", &self.check_policy)
            .field("coverage", &self.coverage)
            .field("engine", &self.engine)
            .field("threads", &self.threads)
            .field("fault_hook", &self.fault_hook.is_some())
            .field("retire_after", &self.retire_after)
            .finish()
    }
}

/// An ECC-protected MAGIC crossbar exposed as a batch-first compute device.
///
/// See the [module documentation](self) for the execution model and an
/// end-to-end example.
pub struct PimDevice {
    memory: ProtectedMemory,
    check_policy: CheckPolicy,
    /// Strike ledger and bad-line map (see [`RetiredLines`]).
    retired: RetiredLines,
    /// Worker-team width for fused row-parallel replays.
    threads: usize,
    fault_hook: Option<BatchFaultHook>,
    /// Compiled-program cache (netlist / packed / program key domains).
    programs: ProgramCache,
    /// Fused execution plans, compiled once per
    /// `(program id, offset, axis)` and replayed every wave; `None` caches
    /// ineligibility so the per-step fallback is chosen without
    /// re-analysis.
    fused_plans: HashMap<(u64, usize, Axis), Option<FusedProgram>>,
    /// Reusable per-line input-load buffers (batch scratch).
    line_loads: Vec<Vec<(usize, bool)>>,
    /// Lines touched by the current batch's loads (batch scratch).
    touched_lines: Vec<usize>,
    /// Consecutive-run decomposition of the program's output cells
    /// (readback scratch): `(first cell, run length)`.
    readback_runs: Vec<(usize, usize)>,
    /// Word-plane load staging (batch scratch, `capacity × stride` words,
    /// all-zero between batches): request bits packed per line for the
    /// machine's word-plane writers on the fused path.
    plane_msk: Vec<u64>,
    /// Value plane paired with `plane_msk`.
    plane_val: Vec<u64>,
    /// One bit per line: already listed in `touched_lines` this batch
    /// (batch scratch).
    plane_touched: Vec<u64>,
    /// Deduplicated block-line list of the current plan (check scratch).
    block_lines: Vec<usize>,
    /// Plan slots re-sorted by `(offset, line)` (execute scratch) — the
    /// offset-group walk without a per-wave `Vec` of groups.
    slot_scratch: Vec<Slot>,
}

impl PimDevice {
    /// Shorthand for [`PimDeviceBuilder::new`]`(n, m).build()`.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn new(n: usize, m: usize) -> Result<Self, DeviceError> {
        PimDeviceBuilder::new(n, m).build()
    }

    /// Wraps an existing protected memory with the default policies.
    pub fn from_memory(memory: ProtectedMemory) -> Self {
        // Keep the reported policy truthful: a memory that already checks
        // before every critical write is a paranoid device. Skip is not
        // observable in machine state — callers that want it pass it
        // explicitly via `from_memory_with_policy`.
        let check_policy = if memory.check_on_critical() {
            CheckPolicy::Paranoid
        } else {
            CheckPolicy::default()
        };
        Self::from_memory_with_policy(memory, check_policy)
    }

    /// Wraps an existing protected memory under an explicit [`CheckPolicy`]
    /// (e.g. to round-trip a [`CheckPolicy::Skip`] device through
    /// [`PimDevice::into_memory`], which [`PimDevice::from_memory`] cannot
    /// infer). The memory's pre-write checking flag is aligned with
    /// `policy`.
    pub fn from_memory_with_policy(mut memory: ProtectedMemory, policy: CheckPolicy) -> Self {
        memory.set_check_on_critical(matches!(policy, CheckPolicy::Paranoid));
        PimDevice {
            retired: RetiredLines::new(memory.geometry().n(), memory.geometry().m(), None),
            memory,
            check_policy: policy,
            threads: 1,
            fault_hook: None,
            programs: ProgramCache::default(),
            fused_plans: HashMap::new(),
            line_loads: Vec::new(),
            touched_lines: Vec::new(),
            readback_runs: Vec::new(),
            plane_msk: Vec::new(),
            plane_val: Vec::new(),
            plane_touched: Vec::new(),
            block_lines: Vec::new(),
            slot_scratch: Vec::new(),
        }
    }

    /// Worker-team width for fused row-parallel replays (see
    /// [`PimDeviceBuilder::threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of rows — the maximum batch size.
    pub fn capacity(&self) -> usize {
        self.memory.geometry().n()
    }

    /// The geometry in force.
    pub fn geometry(&self) -> &BlockGeometry {
        self.memory.geometry()
    }

    /// The checking policy in force.
    pub fn check_policy(&self) -> CheckPolicy {
        self.check_policy
    }

    /// Read access to the underlying machine (stats, consistency checks).
    pub fn memory(&self) -> &ProtectedMemory {
        &self.memory
    }

    /// The device's strike ledger and bad-line map. Lines retire
    /// automatically from recurring uncorrectable evidence when
    /// [`PimDeviceBuilder::retire_after`] is set; schedulers read
    /// [`RetiredLines::avoid_lines`] to pack around them.
    pub fn retired(&self) -> &RetiredLines {
        &self.retired
    }

    /// Consumes the device, returning the machine.
    pub fn into_memory(self) -> ProtectedMemory {
        self.memory
    }

    /// Lifetime machine statistics (batches report their own deltas).
    pub fn stats(&self) -> &MachineStats {
        self.memory.stats()
    }

    /// Number of distinct programs held in the compile cache.
    pub fn compiled_count(&self) -> usize {
        self.programs.len()
    }

    /// Empties the compile cache. The cache grows by one entry per
    /// distinct program for the device's lifetime; long-running flows that
    /// stream many one-off programs (fault campaigns, benchmark sweeps)
    /// call this between phases. Outstanding [`CompiledProgram`] handles
    /// stay valid — they own their program — and still execute; they are
    /// simply re-inserted if adopted again.
    pub fn clear_compiled(&mut self) {
        self.programs.clear();
        self.fused_plans.clear();
    }

    /// Injects a soft error (forwarded to the machine, for campaigns).
    pub fn inject_fault(&mut self, r: usize, c: usize) {
        self.memory.inject_fault(r, c);
    }

    /// The periodic full-memory check: every covered block is verified,
    /// single errors repaired, and the counts reported — the check half of
    /// a background scrub wave.
    ///
    /// # Errors
    ///
    /// Infallible in practice (mirrors
    /// [`ProtectedMemory::check_all`](pimecc_core::ProtectedMemory::check_all)).
    pub fn check_all(&mut self) -> Result<CheckReport, DeviceError> {
        Ok(self.memory.check_all()?)
    }

    /// One background scrub wave: the full-memory check (single errors
    /// repaired, counts reported) followed by a scrub that re-encodes
    /// every covered block's check-bits from the repaired data — clearing
    /// any stale parity left by the §III false-positive window. The
    /// returned [`ScrubReport`] carries the check's telemetry and the
    /// pass's own [`MachineStats`] delta, so a health loop can attribute
    /// scrub cost and scrub findings per shard.
    ///
    /// # Errors
    ///
    /// Infallible in practice (mirrors [`PimDevice::check_all`]).
    pub fn scrub_pass(&mut self) -> Result<ScrubReport, DeviceError> {
        let before = *self.memory.stats();
        let bps = self.memory.geometry().blocks_per_side();
        let mut check;
        let mut struck_blocks = Vec::new();
        let fully_healthy = self.retired.retired_count(Axis::Rows) == 0
            && self.retired.retired_count(Axis::Cols) == 0;
        if fully_healthy {
            // The common case sweeps the whole memory at the amortized
            // row-read cost; only an uncorrectable verdict pays the
            // per-block re-walk that localizes the evidence.
            check = self.memory.check_all()?;
            if check.uncorrectable > 0 {
                for br in 0..bps {
                    for bc in 0..bps {
                        if matches!(
                            self.memory.check_block(br, bc)?,
                            pimecc_core::ErrorLocation::Uncorrectable
                        ) {
                            struck_blocks.push((br, bc));
                        }
                    }
                }
            }
        } else {
            // Retired territory exists: walk per block so lines retired on
            // both axes — fully out of service — stop generating findings,
            // which is what lets a quarantined shard scrub clean again
            // once its hard faults are all retired.
            check = CheckReport::default();
            for br in 0..bps {
                for bc in 0..bps {
                    if !self.memory.block_covered(br, bc)
                        || (self.retired.is_retired(Axis::Rows, br)
                            && self.retired.is_retired(Axis::Cols, bc))
                    {
                        continue;
                    }
                    let loc = self.memory.check_block(br, bc)?;
                    check.checked += 1;
                    match loc {
                        pimecc_core::ErrorLocation::None => {}
                        pimecc_core::ErrorLocation::Uncorrectable => {
                            check.uncorrectable += 1;
                            struck_blocks.push((br, bc));
                        }
                        _ => check.corrected += 1,
                    }
                }
            }
        }
        // Scrub evidence localizes to a block, so it strikes both of the
        // block's lines: a quarantined shard retires its bad lines from
        // scrubs alone, without serving a single request.
        for &(br, bc) in &struck_blocks {
            self.retired.strike(Axis::Rows, br);
            self.retired.strike(Axis::Cols, bc);
        }
        self.memory.scrub();
        Ok(ScrubReport {
            check,
            struck_blocks,
            stats: *self.memory.stats() - before,
        })
    }

    /// Maps `netlist` onto this device's row width with SIMPLER and caches
    /// the result: compiling the same netlist again returns the cached
    /// [`CompiledProgram`] without re-running the mapper.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Map`] when the function does not fit one row.
    pub fn compile(&mut self, netlist: &NorNetlist) -> Result<CompiledProgram, DeviceError> {
        let row_size = self.capacity();
        Ok(self.programs.compile(netlist, row_size)?)
    }

    /// Maps `netlist` for *co-packing*: [`map_dense`](pimecc_simpler::map_dense) squeezes the
    /// function into the narrowest slot that stays within 3/2 of the
    /// full-width cycle count, so several requests share each row (or
    /// column) under a dense [`PlacementPlan`]. Cached separately from
    /// [`PimDevice::compile`] — the two mappings of one netlist coexist.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Map`] when the function does not fit one row even at
    /// full width.
    pub fn compile_packed(&mut self, netlist: &NorNetlist) -> Result<CompiledProgram, DeviceError> {
        let row_size = self.capacity();
        Ok(self.programs.compile_packed(netlist, row_size)?)
    }

    /// Adopts an externally mapped [`Program`] (for example one widened
    /// with [`map_auto`](pimecc_simpler::map_auto) or parsed from a
    /// listing), caching it by its [`Program::fingerprint`].
    pub fn adopt(&mut self, program: &Program) -> CompiledProgram {
        self.programs.adopt(program)
    }

    /// Adopts a [`CompiledProgram`] handle compiled elsewhere — another
    /// device, or a [`PimCluster`](crate::cluster::PimCluster) compile
    /// cache — *sharing* the underlying mapped program instead of deep
    /// cloning it. The foreign handle keeps its original id; a later
    /// [`PimDevice::adopt`] (or `adopt_compiled`) of the same mapped
    /// program hits this cache entry. [`PimDevice::compile`] keys by
    /// *netlist* fingerprint — a different domain — so compiling the
    /// source netlist still re-runs the mapper.
    pub fn adopt_compiled(&mut self, compiled: &CompiledProgram) -> CompiledProgram {
        self.programs.adopt_compiled(compiled)
    }

    /// Checks that `program` fits this device at all — every placement
    /// entry point runs this first so a too-wide program is reported as
    /// such rather than as a slot geometry error.
    fn check_width(&self, program: &CompiledProgram) -> Result<(), DeviceError> {
        let n = self.capacity();
        if program.program().row_size > n {
            return Err(DeviceError::ProgramTooWide {
                row_size: program.program().row_size,
                footprint: program.footprint(),
                n,
            });
        }
        Ok(())
    }

    /// Validates `plan` against this device and `program`: geometry match
    /// and slots wide enough for the program's footprint. Slot legality
    /// (bounds, overlap) was already proven by the plan's constructor.
    fn check_plan(
        &self,
        program: &CompiledProgram,
        plan: &PlacementPlan,
    ) -> Result<(), DeviceError> {
        self.check_width(program)?;
        let n = self.capacity();
        if plan.line_len() != n {
            return Err(DeviceError::PlanGeometry {
                plan: plan.line_len(),
                n,
            });
        }
        let footprint = program.footprint().max(1);
        if plan.slot_width() < footprint {
            return Err(DeviceError::SlotTooNarrow {
                slot_width: plan.slot_width(),
                footprint,
            });
        }
        Ok(())
    }

    /// The trivial one-request-per-row plan over explicit `rows` — the
    /// legacy placement shape, now expressed as a [`PlacementPlan`].
    fn rows_plan(
        &self,
        program: &CompiledProgram,
        rows: &[usize],
    ) -> Result<PlacementPlan, DeviceError> {
        self.check_width(program)?;
        PlacementPlan::new(
            Axis::Rows,
            self.capacity(),
            program.footprint().max(1),
            rows.iter().map(|&line| Slot { line, offset: 0 }).collect(),
        )
    }

    /// Writes one request's inputs into cells `0..num_inputs` of `row`
    /// through the write-with-ECC path, leaving every other row of the
    /// device untouched.
    ///
    /// # Errors
    ///
    /// Placement errors as in [`PimDevice::run_batch_on_rows`];
    /// [`DeviceError::InputArity`] on an input-width mismatch.
    pub fn load_request(
        &mut self,
        program: &CompiledProgram,
        row: usize,
        inputs: &[bool],
    ) -> Result<(), DeviceError> {
        self.check_width(program)?;
        if row >= self.capacity() {
            return Err(DeviceError::RowOutOfRange {
                row,
                n: self.capacity(),
            });
        }
        if inputs.len() != program.num_inputs() {
            return Err(DeviceError::InputArity {
                request: 0,
                got: inputs.len(),
                want: program.num_inputs(),
            });
        }
        let cells: Vec<(usize, bool)> = inputs.iter().copied().enumerate().collect();
        self.memory.write_row_cells(row, &cells)?;
        Ok(())
    }

    /// Executes `program` once across the already loaded `rows`: the
    /// pre-execution check of every touched block-row (per
    /// [`CheckPolicy`]), then every program step exactly once via
    /// [`LineSet::Explicit`], then per-row output readback.
    ///
    /// Most callers want [`PimDevice::run_batch`], which also loads the
    /// inputs; this lower-level entry point exists for flows that separate
    /// loading from execution (e.g. fault-injection between the two).
    ///
    /// # Errors
    ///
    /// Placement errors as in [`PimDevice::run_batch_on_rows`]; MAGIC
    /// legality violations as [`DeviceError::Core`].
    pub fn execute_rows(
        &mut self,
        program: &CompiledProgram,
        rows: &[usize],
    ) -> Result<BatchOutcome, DeviceError> {
        let plan = self.rows_plan(program, rows)?;
        self.execute_plan_checked(program, &plan)
    }

    /// Executes `program` across the already loaded slots of `plan`: one
    /// ECC pre-check per touched block-line *of the plan's axis* (per
    /// [`CheckPolicy`]), then the program's steps — replayed once per
    /// occupied offset, each pass parallel over that offset's lines — then
    /// per-slot output readback.
    ///
    /// The plan-level sibling of [`PimDevice::execute_rows`], for flows
    /// that separate loading from execution.
    ///
    /// # Errors
    ///
    /// Plan validation errors as in [`PimDevice::run_plan`]; MAGIC
    /// legality violations as [`DeviceError::Core`].
    pub fn execute_plan(
        &mut self,
        program: &CompiledProgram,
        plan: &PlacementPlan,
    ) -> Result<BatchOutcome, DeviceError> {
        self.check_plan(program, plan)?;
        self.execute_plan_checked(program, plan)
    }

    /// [`PimDevice::execute_plan`] after validation — the shared tail of
    /// every batch entry point, so validation runs once per batch. The
    /// single-program case of [`PimDevice::execute_parts_checked`], so
    /// one-program batches and multi-program waves cannot drift apart.
    fn execute_plan_checked(
        &mut self,
        program: &CompiledProgram,
        plan: &PlacementPlan,
    ) -> Result<BatchOutcome, DeviceError> {
        let MultiBatchOutcome {
            mut parts,
            input_check,
            stats,
            gate_evals,
            uncorrectable_input,
        } = self.execute_parts_checked(&[(program, plan)])?;
        Ok(BatchOutcome {
            outputs: parts.pop().expect("single-part execution yields one arena"),
            placement: plan.clone(),
            input_check,
            stats,
            gate_evals,
            uncorrectable_input,
        })
    }

    /// The shared execution tail for one wave of one or more co-located
    /// program parts (each `(program, plan)` pre-validated; plans pairwise
    /// line-disjoint when more than one): **one** ECC pre-check sweep over
    /// the union of touched block-lines, each part's steps replayed once
    /// per occupied offset, one stuck-gated post-check, one scrub/strike
    /// pass for the suspect lines, then per-part arena readback. Checks
    /// scale with touched block-lines, not parts — co-residency is free at
    /// the ECC layer.
    fn execute_parts_checked(
        &mut self,
        parts: &[(&CompiledProgram, &PlacementPlan)],
    ) -> Result<MultiBatchOutcome, DeviceError> {
        let stats_before = *self.memory.stats();
        let axis = parts[0].1.axis();
        let m = self.memory.geometry().m();

        // Block-lines with uncorrectable verdicts this wave: every
        // request placed on one of them gets suspect outputs.
        let mut suspects: Vec<usize> = Vec::new();
        let mut input_check = CheckReport::default();
        if !matches!(self.check_policy, CheckPolicy::Skip) {
            let bps = self.memory.geometry().blocks_per_side();
            self.block_lines.clear();
            for (_, plan) in parts {
                self.block_lines
                    .extend(plan.slots().iter().map(|s| s.line / m));
            }
            self.block_lines.sort_unstable();
            self.block_lines.dedup();
            if matches!(axis, Axis::Cols) && self.block_lines.len() == bps {
                // A full wave touches every block column; checking them all
                // is the same block set as checking every block row, which
                // the machine can sweep reading each MEM row once instead
                // of once per column.
                input_check = self.memory.check_all_cols()?;
                if input_check.uncorrectable > 0 {
                    // The sweep doesn't say *which* column is bad; only
                    // this (rare) verdict pays a per-column re-walk to
                    // localize the evidence. Billed honestly to the batch.
                    for i in 0..self.block_lines.len() {
                        let bl = self.block_lines[i];
                        if self.memory.check_block_col(bl)?.uncorrectable > 0 {
                            suspects.push(bl);
                        }
                    }
                }
            } else {
                for i in 0..self.block_lines.len() {
                    let bl = self.block_lines[i];
                    let line_check = match axis {
                        Axis::Rows => self.memory.check_block_row(bl)?,
                        Axis::Cols => self.memory.check_block_col(bl)?,
                    };
                    if line_check.uncorrectable > 0 {
                        suspects.push(bl);
                    }
                    input_check += line_check;
                }
            }
        }

        // Co-packed offsets replay the step sequence once per offset: a
        // MAGIC cycle drives one set of line voltages, so gates at
        // different offsets cannot share a cycle — but each pass still
        // covers *all* lines occupied at that offset in parallel. One
        // scratch buffer shifts cell lists for non-zero offsets; the
        // common offset-0 pass (every plain `run_batch`) borrows the
        // program's cells directly, allocation-free as before.
        let mut shifted: Vec<usize> = Vec::new();
        fn shift<'a>(
            cells: &'a [usize],
            offset: usize,
            scratch: &'a mut Vec<usize>,
        ) -> &'a [usize] {
            if offset == 0 {
                cells
            } else {
                scratch.clear();
                scratch.extend(cells.iter().map(|&c| c + offset));
                scratch
            }
        }
        // Parts execute in part order — a MAGIC cycle drives one program's
        // voltages, so co-located programs serialize their step sequences
        // (the loads and checks they share are where the wave wins).
        for &(program, plan) in parts {
            // Walk the offset groups off a reused sorted-slot scratch
            // instead of `plan.offset_groups()` — same groups in the same
            // order, but no per-wave Vec-of-Vecs.
            self.slot_scratch.clear();
            self.slot_scratch.extend_from_slice(plan.slots());
            self.slot_scratch
                .sort_unstable_by_key(|s| (s.offset, s.line));
            let mut gi = 0;
            while gi < self.slot_scratch.len() {
                let offset = self.slot_scratch[gi].offset;
                let mut ge = gi;
                while ge < self.slot_scratch.len() && self.slot_scratch[ge].offset == offset {
                    ge += 1;
                }
                let group = &self.slot_scratch[gi..ge];
                // Contiguous groups (every full wave) select as a Range, which
                // the simulator turns into whole-word masks instead of
                // per-line set bits; sparse groups stay explicit.
                let selected = if group.windows(2).all(|w| w[1].line == w[0].line + 1) {
                    LineSet::Range(group[0].line..group[0].line + group.len())
                } else {
                    LineSet::Explicit(group.iter().map(|s| s.line).collect())
                };
                gi = ge;
                // Contiguous replays on either axis go through a fused plan —
                // the whole sequence compiled once per (program, offset, axis)
                // and cached on the device, then replayed as one pass over the
                // lines instead of one per step, bit- and stats-identical.
                // Ineligible configurations (scalar engine, partial coverage,
                // paranoid checking, sparse line sets, unfusable sequences)
                // fall through to the per-step replay below; ineligibility is
                // cached too, so the analysis never re-runs.
                if let LineSet::Range(range) = &selected {
                    if self.memory.supports_fused_rows() {
                        let key = (program.id(), offset, axis);
                        let PimDevice {
                            ref mut fused_plans,
                            ref memory,
                            ..
                        } = *self;
                        let entry = fused_plans.entry(key).or_insert_with(|| {
                            let steps: Vec<ParallelStep> = program
                                .program()
                                .steps
                                .iter()
                                .map(|step| match step {
                                    Step::Init { cells } => ParallelStep::Init(
                                        cells.iter().map(|&c| c + offset).collect(),
                                    ),
                                    Step::Gate { inputs, output, .. } => ParallelStep::Nor(
                                        inputs.iter().map(|&c| c + offset).collect(),
                                        output + offset,
                                    ),
                                })
                                .collect();
                            match axis {
                                Axis::Rows => memory.compile_fused_rows(&steps),
                                Axis::Cols => memory.compile_fused_cols(&steps),
                            }
                        });
                        if let Some(fused) = entry.as_ref() {
                            match axis {
                                Axis::Rows => {
                                    self.memory
                                        .exec_fused_rows(fused, range.clone(), self.threads)
                                }
                                Axis::Cols => self.memory.exec_fused_cols(fused, range.clone()),
                            }
                            continue;
                        }
                    }
                }
                for step in &program.program().steps {
                    match step {
                        Step::Init { cells } => {
                            let cells = shift(cells, offset, &mut shifted);
                            match axis {
                                Axis::Rows => self.memory.exec_init_rows(cells, &selected)?,
                                Axis::Cols => self.memory.exec_init_cols(cells, &selected)?,
                            }
                        }
                        Step::Gate { inputs, output, .. } => {
                            let inputs = shift(inputs, offset, &mut shifted);
                            match axis {
                                Axis::Rows => {
                                    self.memory
                                        .exec_nor_rows(inputs, output + offset, &selected)?
                                }
                                Axis::Cols => {
                                    self.memory
                                        .exec_nor_cols(inputs, output + offset, &selected)?
                                }
                            }
                        }
                    }
                }
            }
        }

        // Post-execution guard, *before* readback: a stuck cell inside the
        // batch's working set corrupts data the program wrote after the
        // pre-check passed. Free on healthy hardware (one `Vec::is_empty`
        // probe); on a device with wedged cells, each touched block-line
        // holding one is re-checked so single transient output flips are
        // corrected before extraction and anything worse marks the line
        // suspect rather than letting garbage read back as an answer.
        if !matches!(self.check_policy, CheckPolicy::Skip) && self.memory.has_stuck_cells() {
            for i in 0..self.block_lines.len() {
                let bl = self.block_lines[i];
                let wedged = match axis {
                    Axis::Rows => self.memory.block_row_has_stuck(bl),
                    Axis::Cols => self.memory.block_col_has_stuck(bl),
                };
                if !wedged {
                    continue;
                }
                let out_check = match axis {
                    Axis::Rows => self.memory.check_block_row(bl)?,
                    Axis::Cols => self.memory.check_block_col(bl)?,
                };
                if out_check.uncorrectable > 0 {
                    suspects.push(bl);
                }
                input_check += out_check;
            }
        }
        suspects.sort_unstable();
        suspects.dedup();
        // Uncorrectable residue is re-encoded away *now*, before the next
        // batch lands on these lines: a multi-bit transient pattern left
        // in place could later alias into a "correctable" single and be
        // repaired into consistent garbage. Each suspect line also strikes
        // the retirement ledger — recurring evidence takes it out of
        // service once the threshold is crossed.
        for &bl in &suspects {
            match axis {
                Axis::Rows => self.memory.scrub_block_row(bl),
                Axis::Cols => self.memory.scrub_block_col(bl),
            }
            self.retired.strike(axis, bl);
        }
        let uncorrectable_input = (!suspects.is_empty()).then_some(UncorrectableInput {
            lines: suspects,
            block: m,
        });

        // Output readback groups consecutive output cells into runs (most
        // programs emit contiguous result words) and pulls each run as one
        // word extraction instead of per-bit probes, appending straight
        // into each part's contiguous [`OutputArena`] — one allocation per
        // part, not one per request. Readback is free in the device model
        // either way — this only changes host time.
        let mut out_parts: Vec<OutputArena> = Vec::with_capacity(parts.len());
        let mut gate_evals = 0u64;
        let mut bits: Vec<bool> = Vec::new();
        for &(program, plan) in parts {
            gate_evals += program.gate_cycles() * plan.requests() as u64;
            self.readback_runs.clear();
            for &c in &program.program().output_cells {
                match self.readback_runs.last_mut() {
                    Some((s, l)) if *s + *l == c && *l < 64 => *l += 1,
                    _ => self.readback_runs.push((c, 1)),
                }
            }
            let grid = self.memory.mem().grid();
            let mut arena = OutputArena::with_capacity(program.num_outputs(), plan.requests());
            for slot in plan.slots() {
                bits.clear();
                for &(s, l) in &self.readback_runs {
                    let word = match axis {
                        Axis::Rows => grid.extract_bits(slot.line, slot.offset + s, l),
                        Axis::Cols => grid.extract_col_bits(slot.line, slot.offset + s, l),
                    };
                    bits.extend((0..l).map(|i| word >> i & 1 != 0));
                }
                arena.push_request(&bits);
            }
            out_parts.push(arena);
        }
        Ok(MultiBatchOutcome {
            parts: out_parts,
            input_check,
            stats: *self.memory.stats() - stats_before,
            gate_evals,
            uncorrectable_input,
        })
    }

    /// Serves a batch: packs request `i` onto row `i`, then loads, checks
    /// and executes as described in the [module documentation](self).
    /// One request per row — for denser placement (co-packing, column
    /// axis) see [`PimDevice::run_packed`] and [`PimDevice::run_plan`].
    ///
    /// # Errors
    ///
    /// See [`PimDevice::run_batch_on_rows`].
    pub fn run_batch(
        &mut self,
        program: &CompiledProgram,
        requests: &[Vec<bool>],
    ) -> Result<BatchOutcome, DeviceError> {
        self.check_width(program)?;
        let plan = PlacementPlan::pack(
            Axis::Rows,
            self.capacity(),
            program.footprint().max(1),
            self.capacity(),
            1,
            requests.len(),
        )?;
        self.run_plan(program, &plan, requests)
    }

    /// Serves a batch at maximum density on the chosen axis: requests fill
    /// every line at offset 0 first, then co-pack additional offsets as
    /// long as `footprint() * k <= n`, so a narrow program serves up to
    /// `n * (n / footprint)` requests in one call.
    ///
    /// # Errors
    ///
    /// As [`PimDevice::run_batch`]; [`DeviceError::BatchTooLarge`] reflects
    /// the packed capacity.
    pub fn run_packed(
        &mut self,
        program: &CompiledProgram,
        axis: Axis,
        requests: &[Vec<bool>],
    ) -> Result<BatchOutcome, DeviceError> {
        self.check_width(program)?;
        let plan = PlacementPlan::pack(
            axis,
            self.capacity(),
            program.footprint().max(1),
            self.capacity(),
            usize::MAX,
            requests.len(),
        )?;
        self.run_plan(program, &plan, requests)
    }

    /// Serves a batch with explicit row placement: request `i` executes on
    /// `rows[i]`. Rows not listed are never written — concurrent residents
    /// of the crossbar are preserved.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::PlacementArity`] if `rows` and `requests` differ in
    ///   length;
    /// * [`DeviceError::EmptyBatch`] / [`DeviceError::BatchTooLarge`] /
    ///   [`DeviceError::RowOutOfRange`] / [`DeviceError::RowConflict`] on
    ///   bad placements;
    /// * [`DeviceError::ProgramTooWide`] if the program does not fit;
    /// * [`DeviceError::InputArity`] if a request's width is wrong;
    /// * [`DeviceError::Core`] for machine-level failures.
    pub fn run_batch_on_rows(
        &mut self,
        program: &CompiledProgram,
        rows: &[usize],
        requests: &[Vec<bool>],
    ) -> Result<BatchOutcome, DeviceError> {
        if rows.len() != requests.len() {
            return Err(DeviceError::PlacementArity {
                rows: rows.len(),
                requests: requests.len(),
            });
        }
        let plan = self.rows_plan(program, rows)?;
        self.run_plan(program, &plan, requests)
    }

    /// Serves a batch under an explicit [`PlacementPlan`]: request `i`
    /// occupies `plan.slots()[i]` on the plan's axis. Loads every touched
    /// line with **one** driven write (co-packed requests share it), runs
    /// the fault hook, then checks and executes as
    /// [`PimDevice::execute_plan`]. Lines not in the plan are never
    /// written.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::ProgramTooWide`] if the program does not fit the
    ///   device at all;
    /// * [`DeviceError::PlanGeometry`] if the plan was built for another
    ///   line length;
    /// * [`DeviceError::SlotTooNarrow`] if the program's footprint exceeds
    ///   the plan's slot width;
    /// * [`DeviceError::PlacementArity`] if the plan and `requests` differ
    ///   in length;
    /// * [`DeviceError::InputArity`] if a request's width is wrong;
    /// * [`DeviceError::Core`] for machine-level failures.
    pub fn run_plan(
        &mut self,
        program: &CompiledProgram,
        plan: &PlacementPlan,
        requests: &[Vec<bool>],
    ) -> Result<BatchOutcome, DeviceError> {
        self.check_plan(program, plan)?;
        if plan.requests() != requests.len() {
            return Err(DeviceError::PlacementArity {
                rows: plan.requests(),
                requests: requests.len(),
            });
        }
        let want = program.num_inputs();
        if let Some((i, req)) = requests.iter().enumerate().find(|(_, r)| r.len() != want) {
            return Err(DeviceError::InputArity {
                request: i,
                got: req.len(),
                want,
            });
        }
        let stats_before = *self.memory.stats();
        self.load_inputs(plan.axis(), &[(plan, requests)])?;
        if let Some(hook) = self.fault_hook.as_mut() {
            hook(&mut self.memory);
        }
        let mut outcome = self.execute_plan_checked(program, plan)?;
        // Fold the load phase into the batch's accounting.
        outcome.stats = *self.memory.stats() - stats_before;
        Ok(outcome)
    }

    /// Serves one **multi-program wave**: part `p`'s requests execute
    /// `parts[p].program` under `plan.parts()[p]`, all co-resident on this
    /// crossbar. Every part's input loads merge into one driven write per
    /// touched line, the ECC pre-check runs once per touched block-line of
    /// the **union** of parts (co-residency is free at the ECC layer),
    /// each part's steps replay once per occupied offset, and one
    /// suspect/scrub/strike pass covers all parts —
    /// [`UncorrectableInput::covers_line`] applies to any part's slot
    /// lines, so retirement/retry escalation above works unchanged.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::MultiPartArity`] if `parts` and the plan disagree
    ///   on part count;
    /// * per part, everything [`PimDevice::run_plan`] reports.
    pub fn run_multi(
        &mut self,
        plan: &MultiProgramPlan,
        parts: &[MultiPartRequest<'_>],
    ) -> Result<MultiBatchOutcome, DeviceError> {
        if plan.parts().len() != parts.len() {
            return Err(DeviceError::MultiPartArity {
                parts: plan.parts().len(),
                groups: parts.len(),
            });
        }
        for (sub, part) in plan.parts().iter().zip(parts) {
            self.check_plan(part.program, sub)?;
            if sub.requests() != part.requests.len() {
                return Err(DeviceError::PlacementArity {
                    rows: sub.requests(),
                    requests: part.requests.len(),
                });
            }
            let want = part.program.num_inputs();
            if let Some((i, req)) = part
                .requests
                .iter()
                .enumerate()
                .find(|(_, r)| r.len() != want)
            {
                return Err(DeviceError::InputArity {
                    request: i,
                    got: req.len(),
                    want,
                });
            }
        }
        let stats_before = *self.memory.stats();
        let loads: Vec<(&PlacementPlan, &[Vec<bool>])> = plan
            .parts()
            .iter()
            .zip(parts)
            .map(|(sub, part)| (sub, part.requests))
            .collect();
        self.load_inputs(plan.axis(), &loads)?;
        if let Some(hook) = self.fault_hook.as_mut() {
            hook(&mut self.memory);
        }
        let execs: Vec<(&CompiledProgram, &PlacementPlan)> = plan
            .parts()
            .iter()
            .zip(parts)
            .map(|(sub, part)| (part.program, sub))
            .collect();
        let mut outcome = self.execute_parts_checked(&execs)?;
        outcome.stats = *self.memory.stats() - stats_before;
        Ok(outcome)
    }

    /// Loads every part's requests into its planned slots, merging all
    /// requests sharing a line into one driven write — the
    /// load-amortization half of co-packing, shared across the co-located
    /// parts of a multi-program wave (deterministic line order; parts are
    /// line-disjoint, and slots on one line never overlap). On the fused
    /// word path the requests pack straight into reusable word planes (64
    /// bits per store, no per-cell tuples); other configurations stage
    /// sparse cell lists per line. Both machine entry points are bit- and
    /// stats-identical to per-line driven writes.
    fn load_inputs(
        &mut self,
        axis: Axis,
        parts: &[(&PlacementPlan, &[Vec<bool>])],
    ) -> Result<(), DeviceError> {
        let written = if self.memory.supports_fused_rows() {
            let stride = self.capacity().div_ceil(64);
            self.plane_msk.resize(self.capacity() * stride, 0);
            self.plane_val.resize(self.capacity() * stride, 0);
            self.plane_touched.resize(self.capacity().div_ceil(64), 0);
            self.touched_lines.clear();
            for &(plan, requests) in parts {
                for (slot, req) in plan.slots().iter().zip(requests) {
                    let (tw, tb) = (slot.line / 64, 1u64 << (slot.line % 64));
                    if self.plane_touched[tw] & tb == 0 {
                        self.plane_touched[tw] |= tb;
                        self.touched_lines.push(slot.line);
                    }
                    // Pack the request 64 bits at a time, then lay each
                    // chunk into the line's plane words at the slot offset
                    // (plain ORs suffice — nothing on a line overlaps).
                    let base = slot.line * stride;
                    let mut i = 0;
                    while i < req.len() {
                        let take = (req.len() - i).min(64);
                        let mut word = 0u64;
                        for (k, &b) in req[i..i + take].iter().enumerate() {
                            word |= (b as u64) << k;
                        }
                        let chunk_mask = if take == 64 {
                            u64::MAX
                        } else {
                            (1u64 << take) - 1
                        };
                        let pos = slot.offset + i;
                        let (wi, sh) = (pos / 64, (pos % 64) as u32);
                        self.plane_msk[base + wi] |= chunk_mask << sh;
                        self.plane_val[base + wi] |= word << sh;
                        if sh != 0 && sh as usize + take > 64 {
                            self.plane_msk[base + wi + 1] |= chunk_mask >> (64 - sh);
                            self.plane_val[base + wi + 1] |= word >> (64 - sh);
                        }
                        i += take;
                    }
                }
            }
            self.plane_touched.fill(0);
            self.touched_lines.sort_unstable();
            let PimDevice {
                ref mut memory,
                ref touched_lines,
                ref mut plane_msk,
                ref mut plane_val,
                ..
            } = *self;
            let written = match axis {
                Axis::Rows => memory.write_rows_words_batched(touched_lines, plane_msk, plane_val),
                Axis::Cols => memory.write_cols_words_batched(touched_lines, plane_msk, plane_val),
            };
            if written.is_err() {
                // The machine zeroes the planes only on success; restore
                // the all-zero invariant before surfacing the failure.
                for &line in touched_lines {
                    plane_msk[line * stride..(line + 1) * stride].fill(0);
                    plane_val[line * stride..(line + 1) * stride].fill(0);
                }
            }
            written
        } else {
            if self.line_loads.len() < self.capacity() {
                self.line_loads.resize_with(self.capacity(), Vec::new);
            }
            self.touched_lines.clear();
            for &(plan, requests) in parts {
                for (slot, req) in plan.slots().iter().zip(requests) {
                    let cells = &mut self.line_loads[slot.line];
                    if cells.is_empty() {
                        self.touched_lines.push(slot.line);
                    }
                    cells.extend(req.iter().enumerate().map(|(i, &b)| (slot.offset + i, b)));
                }
            }
            self.touched_lines.sort_unstable();
            let written = match axis {
                Axis::Rows => self
                    .memory
                    .write_rows_cells_batched(&self.touched_lines, &self.line_loads),
                Axis::Cols => self
                    .memory
                    .write_cols_cells_batched(&self.touched_lines, &self.line_loads),
            };
            // Hand every buffer back emptied (capacity intact) even past a
            // failure, or the stale cells would poison the next batch.
            for i in 0..self.touched_lines.len() {
                let line = self.touched_lines[i];
                self.line_loads[line].clear();
            }
            written
        };
        Ok(written?)
    }
}

impl std::fmt::Debug for PimDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimDevice")
            .field("n", &self.capacity())
            .field("m", &self.memory.geometry().m())
            .field("check_policy", &self.check_policy)
            .field("compiled_programs", &self.programs.len())
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimecc_netlist::{Netlist, NetlistBuilder};

    fn small_circuit() -> (NorNetlist, Netlist) {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(3);
        let g1 = b.xor(ins[0], ins[1]);
        let g2 = b.mux(ins[2], g1, ins[0]);
        b.output(g1);
        b.output(g2);
        let nl = b.finish();
        (nl.to_nor(), nl)
    }

    #[test]
    fn full_device_batch_matches_reference_on_every_row() {
        let (nor, nl) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let program = device.compile(&nor).expect("compiles");
        let requests: Vec<Vec<bool>> = (0..30u32)
            .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
            .collect();
        let outcome = device.run_batch(&program, &requests).expect("runs");
        assert_eq!(outcome.requests(), 30);
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(outcome.outputs[i], nl.eval(req), "request {i}");
            assert_eq!(outcome.slot(i), Slot { line: i, offset: 0 });
        }
        assert_eq!(outcome.axis(), Axis::Rows);
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn each_step_executes_once_per_batch() {
        // A NOR chain long enough that program steps dominate per-request
        // packing work, as they do for real functions.
        let mut b = NetlistBuilder::new();
        let mut x = b.input();
        let y = b.input();
        for _ in 0..60 {
            x = b.nor(x, y);
        }
        b.output(x);
        let nor = b.finish().to_nor();

        let mut single = PimDevice::new(30, 3).expect("device");
        let p = single.compile(&nor).expect("compiles");
        let one = single.run_batch(&p, &[vec![true, false]]).expect("runs");

        let mut batched = PimDevice::new(30, 3).expect("device");
        let p = batched.compile(&nor).expect("compiles");
        let requests: Vec<Vec<bool>> = (0..30u32).map(|v| vec![v & 1 != 0, v & 2 != 0]).collect();
        let thirty = batched.run_batch(&p, &requests).expect("runs");

        assert!(
            thirty.stats.mem_cycles < 2 * one.stats.mem_cycles,
            "30-deep batch must not double the single-run cycle count: {} vs {}",
            thirty.stats.mem_cycles,
            one.stats.mem_cycles
        );
        assert!(thirty.gate_evals_per_mem_cycle() > 10.0 * one.gate_evals_per_mem_cycle());
    }

    #[test]
    fn compile_cache_hits_by_structure() {
        let (nor, _) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let a = device.compile(&nor).expect("compiles");
        let b = device.compile(&nor).expect("compiles");
        assert_eq!(
            a.id(),
            b.id(),
            "structurally equal netlists share a compilation"
        );
        assert_eq!(device.compiled_count(), 1);
        let adopted = device.adopt(a.program());
        assert_eq!(
            device.compiled_count(),
            2,
            "program fingerprints are a separate domain"
        );
        let again = device.adopt(a.program());
        assert_eq!(adopted.id(), again.id());
        // Clearing drops the cache but not outstanding handles.
        device.clear_compiled();
        assert_eq!(device.compiled_count(), 0);
        let out = device
            .run_batch(&adopted, &[vec![true, false, true]])
            .expect("cleared cache does not invalidate handles");
        assert_eq!(out.requests(), 1);
    }

    #[test]
    fn adopt_compiled_shares_handles_across_devices() {
        let (nor, nl) = small_circuit();
        let mut a = PimDevice::new(30, 3).expect("device");
        let p = a.compile(&nor).expect("compiles");
        let mut b = PimDevice::new(30, 3).expect("device");
        let shared = b.adopt_compiled(&p);
        assert_eq!(shared.id(), p.id(), "the handle crosses devices intact");
        assert_eq!(b.compiled_count(), 1);
        let again = b.adopt(p.program());
        assert_eq!(again.id(), p.id(), "adopt hits the shared cache entry");
        let out = b
            .run_batch(&shared, &[vec![true, false, true]])
            .expect("runs");
        assert_eq!(out.outputs[0], nl.eval(&[true, false, true]));
    }

    #[test]
    fn explicit_placement_preserves_other_rows() {
        let (nor, nl) = small_circuit();
        let mut device = PimDevice::new(30, 5).expect("device");
        let p = device.compile(&nor).expect("compiles");
        let first = device
            .run_batch_on_rows(&p, &[4], &[vec![true, true, false]])
            .expect("runs");
        // A second batch on different rows must not disturb row 4.
        let resident: Vec<bool> = (0..30).map(|c| device.memory().bit(4, c)).collect();
        let second = device
            .run_batch_on_rows(
                &p,
                &[11, 28],
                &[vec![false, true, true], vec![true, false, true]],
            )
            .expect("runs");
        let after: Vec<bool> = (0..30).map(|c| device.memory().bit(4, c)).collect();
        assert_eq!(resident, after, "row 4 untouched by the second batch");
        assert_eq!(first.outputs[0], nl.eval(&[true, true, false]));
        assert_eq!(second.outputs[1], nl.eval(&[true, false, true]));
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn fault_hook_faults_are_repaired_without_disturbing_neighbors() {
        let (nor, nl) = small_circuit();
        let mut device = PimDeviceBuilder::new(30, 3)
            .on_batch_loaded(|pm| pm.inject_fault(5, 1))
            .build()
            .expect("device");
        let p = device.compile(&nor).expect("compiles");
        let requests: Vec<Vec<bool>> = (0..12u32)
            .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
            .collect();
        let outcome = device.run_batch(&p, &requests).expect("runs");
        assert_eq!(
            outcome.input_check.corrected, 1,
            "the struck input was repaired"
        );
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(outcome.outputs[i], nl.eval(req), "request {i}");
        }
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn column_axis_batch_matches_reference_on_every_column() {
        let (nor, nl) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let program = device.compile(&nor).expect("compiles");
        let requests: Vec<Vec<bool>> = (0..30u32)
            .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
            .collect();
        let outcome = device
            .run_packed(&program, Axis::Cols, &requests)
            .expect("runs");
        assert_eq!(outcome.axis(), Axis::Cols);
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(outcome.outputs[i], nl.eval(req), "request {i}");
        }
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn co_packed_batch_is_bit_identical_to_row_only_on_both_axes() {
        // A packed program (narrow slots) serving more requests than the
        // device has lines: the plan co-packs several per line, and the
        // outputs must equal the row-only runs of the same requests.
        let (nor, nl) = small_circuit();
        let requests: Vec<Vec<bool>> = (0..72u32)
            .map(|v| (0..3).map(|i| (v * 7 + v) >> i & 1 != 0).collect())
            .collect();
        for axis in [Axis::Rows, Axis::Cols] {
            let mut device = PimDevice::new(30, 5).expect("device");
            let program = device.compile_packed(&nor).expect("compiles");
            assert!(
                program.footprint() * 2 <= 30,
                "packed mapping must co-pack: footprint {}",
                program.footprint()
            );
            let outcome = device.run_packed(&program, axis, &requests).expect("runs");
            assert!(
                outcome.placement.max_per_line() >= 2,
                "72 requests on 30 lines must co-pack ({axis})"
            );
            for (i, req) in requests.iter().enumerate() {
                assert_eq!(outcome.outputs[i], nl.eval(req), "{axis}, request {i}");
            }
            assert!(device.memory().verify_consistency().is_ok(), "{axis}");
        }
    }

    #[test]
    fn run_plan_places_requests_at_explicit_slots() {
        let (nor, nl) = small_circuit();
        let mut device = PimDevice::new(30, 5).expect("device");
        let program = device.compile_packed(&nor).expect("compiles");
        let w = program.footprint();
        // Two requests co-packed on line 4, a third on line 17.
        let plan = PlacementPlan::new(
            Axis::Rows,
            30,
            w,
            vec![
                Slot { line: 4, offset: 0 },
                Slot { line: 4, offset: w },
                Slot {
                    line: 17,
                    offset: 0,
                },
            ],
        )
        .expect("legal plan");
        let requests = vec![
            vec![true, false, true],
            vec![false, true, true],
            vec![true, true, false],
        ];
        let outcome = device.run_plan(&program, &plan, &requests).expect("runs");
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(outcome.outputs[i], nl.eval(req), "request {i}");
        }
        assert_eq!(outcome.slot(1), Slot { line: 4, offset: w });
        // Untouched lines keep resident data (here: still zero).
        assert!(!device.memory().bit(9, 0));
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn one_check_per_touched_block_line_on_either_axis() {
        // 7 co-packable requests over lines 0..7 of a 30/3 device span
        // block-lines 0..3: 3 block-line checks of 10 blocks each, on
        // whichever axis the plan selects — never 7 per-request checks.
        let (nor, _) = small_circuit();
        for axis in [Axis::Rows, Axis::Cols] {
            let mut device = PimDevice::new(30, 3).expect("device");
            let p = device.compile(&nor).expect("compiles");
            let requests: Vec<Vec<bool>> = (0..7).map(|_| vec![true, false, true]).collect();
            let outcome = device.run_packed(&p, axis, &requests).expect("runs");
            assert_eq!(outcome.input_check.checked, 30, "{axis}");
            assert_eq!(outcome.stats.blocks_checked, 30, "{axis}");
        }
        // Co-packing shrinks the checked region: several times 7 requests
        // of a narrow program still fit 7 lines, i.e. the same 3
        // block-lines — where the row-only placement would spread over 21
        // lines and check more than twice as many blocks.
        let mut device = PimDevice::new(30, 3).expect("device");
        let p = device.compile_packed(&nor).expect("compiles");
        let per_line = 30 / p.footprint();
        assert!(per_line >= 3, "footprint {}", p.footprint());
        let requests: Vec<Vec<bool>> = (0..7 * per_line)
            .map(|i| (0..3).map(|b| (i * 3) >> b & 1 != 0).collect())
            .collect();
        let plan = PlacementPlan::pack(Axis::Rows, 30, p.footprint(), 7, per_line, requests.len())
            .expect("packs");
        let outcome = device.run_plan(&p, &plan, &requests).expect("runs");
        assert_eq!(
            outcome.input_check.checked,
            30,
            "{} co-packed requests still check 3 block-lines",
            requests.len()
        );
    }

    #[test]
    fn fault_during_column_axis_batch_is_repaired() {
        let (nor, nl) = small_circuit();
        let mut device = PimDeviceBuilder::new(30, 3)
            .on_batch_loaded(|pm| pm.inject_fault(1, 5))
            .build()
            .expect("device");
        let p = device.compile(&nor).expect("compiles");
        let requests: Vec<Vec<bool>> = (0..12u32)
            .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
            .collect();
        // Column axis: input cell (1, 5) belongs to request 5 (line =
        // column 5, offset 0, program cell 1).
        let outcome = device.run_packed(&p, Axis::Cols, &requests).expect("runs");
        assert_eq!(outcome.input_check.corrected, 1, "the strike was repaired");
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(outcome.outputs[i], nl.eval(req), "request {i}");
        }
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn plan_validation_guards_geometry_and_slot_width() {
        let (nor, _) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let p = device.compile(&nor).expect("compiles");
        let req = vec![true, false, true];
        // A plan built for another line length is refused.
        let foreign = PlacementPlan::pack(Axis::Rows, 60, p.footprint(), 60, 1, 1).expect("packs");
        assert_eq!(
            device
                .run_plan(&p, &foreign, std::slice::from_ref(&req))
                .unwrap_err(),
            DeviceError::PlanGeometry { plan: 60, n: 30 }
        );
        // Slots narrower than the footprint are refused.
        let narrow =
            PlacementPlan::pack(Axis::Rows, 30, p.footprint() - 1, 30, 1, 1).expect("packs");
        assert_eq!(
            device
                .run_plan(&p, &narrow, std::slice::from_ref(&req))
                .unwrap_err(),
            DeviceError::SlotTooNarrow {
                slot_width: p.footprint() - 1,
                footprint: p.footprint()
            }
        );
        // Plan/request arity mismatches are refused.
        let plan = PlacementPlan::pack(Axis::Rows, 30, p.footprint(), 30, 1, 2).expect("packs");
        assert_eq!(
            device
                .run_plan(&p, &plan, std::slice::from_ref(&req))
                .unwrap_err(),
            DeviceError::PlacementArity {
                rows: 2,
                requests: 1
            }
        );
    }

    #[test]
    fn builder_rejects_zero_threads_and_reports_team_width() {
        assert_eq!(
            PimDeviceBuilder::new(30, 3).threads(0).build().unwrap_err(),
            DeviceError::ZeroThreads
        );
        let device = PimDeviceBuilder::new(30, 3)
            .threads(4)
            .build()
            .expect("four-wide team is legal");
        assert_eq!(device.threads(), 4);
        assert_eq!(
            PimDevice::new(30, 3).expect("default device").threads(),
            1,
            "default is the inline single-thread replay"
        );
    }

    #[test]
    fn one_check_per_touched_block_row() {
        let (nor, _) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let p = device.compile(&nor).expect("compiles");
        // 7 requests span block-rows 0, 1 and 2 (m = 3): 3 block-row checks
        // of 10 blocks each, not 7 per-request checks.
        let requests: Vec<Vec<bool>> = (0..7).map(|_| vec![true, false, true]).collect();
        let outcome = device.run_batch(&p, &requests).expect("runs");
        assert_eq!(outcome.input_check.checked, 30);
        assert_eq!(outcome.stats.blocks_checked, 30);
    }

    #[test]
    fn skip_policy_checks_nothing() {
        let (nor, _) = small_circuit();
        let mut device = PimDeviceBuilder::new(30, 3)
            .check_policy(CheckPolicy::Skip)
            .build()
            .expect("device");
        let p = device.compile(&nor).expect("compiles");
        let outcome = device
            .run_batch(&p, &[vec![true, true, true]])
            .expect("runs");
        assert_eq!(outcome.input_check, CheckReport::default());
        assert_eq!(outcome.stats.blocks_checked, 0);
    }

    #[test]
    fn paranoid_policy_enables_pre_write_checks() {
        let (nor, _) = small_circuit();
        let mut device = PimDeviceBuilder::new(30, 3)
            .check_policy(CheckPolicy::Paranoid)
            .build()
            .expect("device");
        assert!(device.memory().check_on_critical());
        let p = device.compile(&nor).expect("compiles");
        let outcome = device
            .run_batch(&p, &[vec![false, true, false]])
            .expect("runs");
        // Pre-write checks examine blocks beyond the one block-row input
        // check.
        assert!(outcome.stats.blocks_checked > outcome.input_check.checked as u64);
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn from_memory_reports_the_memorys_actual_policy() {
        let paranoid = PimDeviceBuilder::new(30, 3)
            .check_policy(CheckPolicy::Paranoid)
            .build()
            .expect("device");
        let rewrapped = PimDevice::from_memory(paranoid.into_memory());
        assert_eq!(rewrapped.check_policy(), CheckPolicy::Paranoid);

        let plain = PimDevice::new(30, 3).expect("device");
        let rewrapped = PimDevice::from_memory(plain.into_memory());
        assert_eq!(rewrapped.check_policy(), CheckPolicy::PreExecution);

        // Skip is not observable in machine state; the explicit-policy
        // constructor round-trips it (and downgrades a paranoid flag).
        let skip = PimDeviceBuilder::new(30, 3)
            .check_policy(CheckPolicy::Skip)
            .build()
            .expect("device");
        let rewrapped = PimDevice::from_memory_with_policy(skip.into_memory(), CheckPolicy::Skip);
        assert_eq!(rewrapped.check_policy(), CheckPolicy::Skip);
        assert!(!rewrapped.memory().check_on_critical());
    }

    #[test]
    fn coverage_policy_uncovers_scratch_blocks() {
        let mut device = PimDeviceBuilder::new(9, 3)
            .coverage(CoveragePolicy::Uncovered(vec![(1, 1)]))
            .build()
            .expect("device");
        assert!(!device.memory().block_covered(1, 1));
        assert!(device.memory().block_covered(0, 0));
        device.inject_fault(4, 4); // inside the scratch block
        let mut pm = device.into_memory();
        let report = pm.check_all().expect("check");
        assert_eq!(
            report.corrected, 0,
            "scratch faults are invisible by design"
        );
    }

    #[test]
    fn placement_errors_are_reported() {
        let (nor, _) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let p = device.compile(&nor).expect("compiles");
        let req = vec![true, false, true];
        assert_eq!(
            device.run_batch(&p, &[]).unwrap_err(),
            DeviceError::EmptyBatch
        );
        assert_eq!(
            device
                .run_batch_on_rows(&p, &[0, 0], &[req.clone(), req.clone()])
                .unwrap_err(),
            DeviceError::RowConflict { row: 0 }
        );
        assert_eq!(
            device
                .run_batch_on_rows(&p, &[99], std::slice::from_ref(&req))
                .unwrap_err(),
            DeviceError::RowOutOfRange { row: 99, n: 30 }
        );
        assert_eq!(
            device
                .run_batch_on_rows(&p, &[0, 1], std::slice::from_ref(&req))
                .unwrap_err(),
            DeviceError::PlacementArity {
                rows: 2,
                requests: 1
            }
        );
        assert_eq!(
            device.run_batch(&p, &[vec![true]]).unwrap_err(),
            DeviceError::InputArity {
                request: 0,
                got: 1,
                want: 3
            }
        );
        let too_many: Vec<Vec<bool>> = (0..31).map(|_| req.clone()).collect();
        assert_eq!(
            device.run_batch(&p, &too_many).unwrap_err(),
            DeviceError::BatchTooLarge {
                requests: 31,
                rows: 30
            }
        );
    }

    #[test]
    fn oversized_program_is_rejected() {
        let (nor, _) = small_circuit();
        let mut wide = PimDevice::new(30, 3).expect("device");
        let p = wide.compile(&nor).expect("compiles");
        let mut narrow = PimDevice::new(9, 3).expect("device");
        let adopted = narrow.adopt(p.program());
        assert!(matches!(
            narrow
                .run_batch(&adopted, &[vec![true, false, true]])
                .unwrap_err(),
            DeviceError::ProgramTooWide {
                row_size: 30,
                n: 9,
                ..
            }
        ));
    }

    fn other_circuit() -> (NorNetlist, Netlist) {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(4);
        let g1 = b.and(ins[0], ins[1]);
        let g2 = b.or(ins[2], ins[3]);
        let g3 = b.xor(g1, g2);
        b.output(g3);
        let nl = b.finish();
        (nl.to_nor(), nl)
    }

    fn part_plan(line_len: usize, lines: std::ops::Range<usize>, width: usize) -> PlacementPlan {
        let avoid: Vec<usize> = (0..line_len).filter(|l| !lines.contains(l)).collect();
        PlacementPlan::pack_avoiding(
            Axis::Rows,
            line_len,
            width,
            lines.len(),
            usize::MAX,
            lines.len(),
            0,
            &avoid,
        )
        .expect("packs")
    }

    #[test]
    fn multi_program_wave_matches_serial_reference() {
        let (nor_a, nl_a) = small_circuit();
        let (nor_b, nl_b) = other_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let pa = device.compile(&nor_a).expect("compiles");
        let pb = device.compile(&nor_b).expect("compiles");
        let reqs_a: Vec<Vec<bool>> = (0..6u32)
            .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
            .collect();
        let reqs_b: Vec<Vec<bool>> = (0..9u32)
            .map(|v| (0..4).map(|i| (v * 5) >> i & 1 != 0).collect())
            .collect();
        let plan_a = part_plan(30, 0..6, pa.footprint());
        let plan_b = part_plan(30, 6..15, pb.footprint());
        let multi = MultiProgramPlan::new(vec![plan_a, plan_b]).expect("disjoint");
        let outcome = device
            .run_multi(
                &multi,
                &[
                    MultiPartRequest {
                        program: &pa,
                        requests: &reqs_a,
                    },
                    MultiPartRequest {
                        program: &pb,
                        requests: &reqs_b,
                    },
                ],
            )
            .expect("runs");
        assert_eq!(outcome.requests(), 15);
        for (i, req) in reqs_a.iter().enumerate() {
            assert_eq!(outcome.parts[0][i], nl_a.eval(req), "part A request {i}");
        }
        for (i, req) in reqs_b.iter().enumerate() {
            assert_eq!(outcome.parts[1][i], nl_b.eval(req), "part B request {i}");
        }
        // The shared pre-check sweeps the union of touched block-lines
        // once: lines 0..15 of a 30/3 device are block-lines 0..5 — five
        // block-line checks of 10 blocks each, not one sweep per part.
        assert_eq!(outcome.input_check.checked, 50);
        assert_eq!(
            outcome.gate_evals,
            pa.gate_cycles() * 6 + pb.gate_cycles() * 9
        );
        assert!(device.memory().verify_consistency().is_ok());
    }

    #[test]
    fn multi_part_arity_and_geometry_are_validated() {
        let (nor, _) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let p = device.compile(&nor).expect("compiles");
        let plan = part_plan(30, 0..2, p.footprint());
        let multi = MultiProgramPlan::new(vec![plan]).expect("one part");
        assert_eq!(
            device.run_multi(&multi, &[]).unwrap_err(),
            DeviceError::MultiPartArity {
                parts: 1,
                groups: 0
            }
        );
        let reqs = vec![vec![true, false, true]];
        assert_eq!(
            device
                .run_multi(
                    &multi,
                    &[MultiPartRequest {
                        program: &p,
                        requests: &reqs,
                    }],
                )
                .unwrap_err(),
            DeviceError::PlacementArity {
                rows: 2,
                requests: 1
            }
        );
    }

    #[test]
    fn multi_wave_fault_marks_only_the_covered_part_suspect() {
        let (nor_a, _) = small_circuit();
        let (nor_b, nl_b) = other_circuit();
        // A stuck-at fault on line 1 (block-line 0): part A on lines 0..3
        // is covered, part B on lines 6..9 is not.
        let mut device = PimDeviceBuilder::new(30, 3)
            .on_batch_loaded(|pm| {
                pm.set_stuck(1, 2, true);
                pm.set_stuck(1, 4, true);
            })
            .build()
            .expect("device");
        let pa = device.compile(&nor_a).expect("compiles");
        let pb = device.compile(&nor_b).expect("compiles");
        let reqs_a: Vec<Vec<bool>> = (0..3).map(|_| vec![true, false, true]).collect();
        let reqs_b: Vec<Vec<bool>> = (0..3).map(|_| vec![true, true, false, false]).collect();
        let multi = MultiProgramPlan::new(vec![
            part_plan(30, 0..3, pa.footprint()),
            part_plan(30, 6..9, pb.footprint()),
        ])
        .expect("disjoint");
        let outcome = device
            .run_multi(
                &multi,
                &[
                    MultiPartRequest {
                        program: &pa,
                        requests: &reqs_a,
                    },
                    MultiPartRequest {
                        program: &pb,
                        requests: &reqs_b,
                    },
                ],
            )
            .expect("runs");
        let unc = outcome
            .uncorrectable_input
            .as_ref()
            .expect("two stuck cells in one block are uncorrectable");
        assert!(unc.covers_line(1), "part A's lines are suspect");
        assert!(!unc.covers_line(7), "part B's lines are clean");
        for (i, req) in reqs_b.iter().enumerate() {
            assert_eq!(outcome.parts[1][i], nl_b.eval(req), "part B request {i}");
        }
    }

    #[test]
    fn repeated_batches_reuse_rows_correctly() {
        let (nor, nl) = small_circuit();
        let mut device = PimDevice::new(30, 3).expect("device");
        let p = device.compile(&nor).expect("compiles");
        for round in 0..4u32 {
            let requests: Vec<Vec<bool>> = (0..8u32)
                .map(|v| (0..3).map(|i| (v + round) >> i & 1 != 0).collect())
                .collect();
            let outcome = device.run_batch(&p, &requests).expect("runs");
            for (i, req) in requests.iter().enumerate() {
                assert_eq!(
                    outcome.outputs[i],
                    nl.eval(req),
                    "round {round}, request {i}"
                );
            }
            assert!(
                device.memory().verify_consistency().is_ok(),
                "round {round}"
            );
        }
    }
}
