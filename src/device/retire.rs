//! Flash-style bad-line management: per-axis strike ledgers that retire
//! block-lines after recurring uncorrectable evidence.
//!
//! A [`RetiredLines`] map lives inside each [`PimDevice`](super::PimDevice)
//! and is fed by two evidence streams:
//!
//! * **pre-/post-execution checks** — an uncorrectable verdict on a touched
//!   block-line strikes that line on the axis the batch ran on;
//! * **background scrubs** — an uncorrectable block found by
//!   [`scrub_pass`](super::PimDevice::scrub_pass) strikes the block's row
//!   *and* column line, so a quarantined shard retires its bad lines from
//!   scrub evidence alone and earns its way back into the pool.
//!
//! Once a block-line accumulates `retire_after` strikes it is **retired**:
//! the packer ([`PlacementPlan::pack_avoiding`](super::placement::PlacementPlan::pack_avoiding))
//! and the cluster's `plan_wave` stop placing requests on its physical
//! lines, scrubbing stops billing checks for blocks that are retired on
//! both axes, and the shard keeps serving on whatever capacity remains.
//! Retirement is the middle rung of the escalation ladder — finer than
//! whole-shard quarantine, permanent unlike a retry.
//!
//! Granularity is the *block-line* (a band of `m` physical lines): the
//! diagonal code's check verdicts localize errors to an m×m block, not a
//! single physical line, so retiring the whole band is the smallest unit
//! the evidence supports.

use super::placement::Axis;

/// Per-axis strike counts and retirement flags for one device's
/// block-lines. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetiredLines {
    /// Block size: each block-line spans `m` physical lines.
    m: usize,
    /// Strikes required to retire a block-line; `None` disables retirement
    /// (strikes are still counted for observability).
    retire_after: Option<u32>,
    rows: AxisLedger,
    cols: AxisLedger,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct AxisLedger {
    strikes: Vec<u32>,
    retired: Vec<bool>,
    retired_count: usize,
}

impl AxisLedger {
    fn new(block_lines: usize) -> Self {
        AxisLedger {
            strikes: vec![0; block_lines],
            retired: vec![false; block_lines],
            retired_count: 0,
        }
    }
}

impl RetiredLines {
    /// Creates an all-healthy map for an `n × n` device with `m × m`
    /// blocks. `retire_after = None` counts strikes but never retires.
    pub fn new(n: usize, m: usize, retire_after: Option<u32>) -> Self {
        debug_assert!(m > 0 && n % m == 0, "geometry must tile");
        let block_lines = n / m;
        RetiredLines {
            m,
            retire_after,
            rows: AxisLedger::new(block_lines),
            cols: AxisLedger::new(block_lines),
        }
    }

    /// The configured retirement threshold, if any.
    pub fn retire_after(&self) -> Option<u32> {
        self.retire_after
    }

    /// Number of block-lines per axis.
    pub fn block_lines(&self) -> usize {
        self.rows.strikes.len()
    }

    fn ledger(&self, axis: Axis) -> &AxisLedger {
        match axis {
            Axis::Rows => &self.rows,
            Axis::Cols => &self.cols,
        }
    }

    fn ledger_mut(&mut self, axis: Axis) -> &mut AxisLedger {
        match axis {
            Axis::Rows => &mut self.rows,
            Axis::Cols => &mut self.cols,
        }
    }

    /// Records one uncorrectable-evidence strike against `block_line` on
    /// `axis`. Returns `true` when this strike crosses the threshold and
    /// retires the line (exactly once per line).
    pub fn strike(&mut self, axis: Axis, block_line: usize) -> bool {
        let after = self.retire_after;
        let ledger = self.ledger_mut(axis);
        ledger.strikes[block_line] = ledger.strikes[block_line].saturating_add(1);
        if ledger.retired[block_line] {
            return false;
        }
        if after.is_some_and(|k| ledger.strikes[block_line] >= k) {
            ledger.retired[block_line] = true;
            ledger.retired_count += 1;
            return true;
        }
        false
    }

    /// Whether `block_line` is retired on `axis`.
    pub fn is_retired(&self, axis: Axis, block_line: usize) -> bool {
        self.ledger(axis).retired[block_line]
    }

    /// Strikes recorded so far against `block_line` on `axis`.
    pub fn strikes(&self, axis: Axis, block_line: usize) -> u32 {
        self.ledger(axis).strikes[block_line]
    }

    /// Number of retired block-lines on `axis`.
    pub fn retired_count(&self, axis: Axis) -> usize {
        self.ledger(axis).retired_count
    }

    /// Retired block-lines on `axis`, ascending.
    pub fn retired_block_lines(&self, axis: Axis) -> Vec<usize> {
        self.ledger(axis)
            .retired
            .iter()
            .enumerate()
            .filter_map(|(bl, &r)| r.then_some(bl))
            .collect()
    }

    /// The physical lines the packer must avoid on `axis`: every line of
    /// every retired block-line, ascending — the `avoid` argument of
    /// [`PlacementPlan::pack_avoiding`](super::placement::PlacementPlan::pack_avoiding).
    pub fn avoid_lines(&self, axis: Axis) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.retired_count(axis) * self.m);
        for bl in self.retired_block_lines(axis) {
            out.extend(bl * self.m..(bl + 1) * self.m);
        }
        out
    }

    /// Physical lines still in service on `axis` for an `n`-line device.
    pub fn lines_in_service(&self, axis: Axis, n: usize) -> usize {
        n - self.retired_count(axis) * self.m
    }

    /// Total retired physical lines across both axes (the capacity gauge
    /// health reporting surfaces).
    pub fn retired_physical_lines(&self) -> usize {
        (self.retired_count(Axis::Rows) + self.retired_count(Axis::Cols)) * self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_accumulate_and_retire_at_the_threshold() {
        let mut map = RetiredLines::new(30, 15, Some(3));
        assert!(!map.strike(Axis::Rows, 1));
        assert!(!map.strike(Axis::Rows, 1));
        assert!(!map.is_retired(Axis::Rows, 1));
        assert!(map.strike(Axis::Rows, 1), "third strike retires");
        assert!(map.is_retired(Axis::Rows, 1));
        // Further strikes keep counting but never "re-retire".
        assert!(!map.strike(Axis::Rows, 1));
        assert_eq!(map.strikes(Axis::Rows, 1), 4);
        assert_eq!(map.retired_count(Axis::Rows), 1);
        // The other axis is independent.
        assert!(!map.is_retired(Axis::Cols, 1));
        assert_eq!(map.retired_count(Axis::Cols), 0);
    }

    #[test]
    fn avoid_lines_expand_block_lines_to_physical_bands() {
        let mut map = RetiredLines::new(30, 15, Some(1));
        assert!(map.strike(Axis::Cols, 1));
        assert_eq!(map.avoid_lines(Axis::Cols), (15..30).collect::<Vec<_>>());
        assert!(map.avoid_lines(Axis::Rows).is_empty());
        assert_eq!(map.lines_in_service(Axis::Cols, 30), 15);
        assert_eq!(map.lines_in_service(Axis::Rows, 30), 30);
        assert_eq!(map.retired_physical_lines(), 15);
    }

    #[test]
    fn disabled_threshold_counts_but_never_retires() {
        let mut map = RetiredLines::new(30, 15, None);
        for _ in 0..100 {
            assert!(!map.strike(Axis::Rows, 0));
        }
        assert_eq!(map.strikes(Axis::Rows, 0), 100);
        assert!(!map.is_retired(Axis::Rows, 0));
        assert_eq!(map.retired_physical_lines(), 0);
    }
}
