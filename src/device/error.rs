//! Error type of the device execution layer.

use pimecc_core::CoreError;
use pimecc_simpler::MapError;
use std::fmt;

/// Failure of a device-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The underlying protected memory rejected an operation.
    Core(CoreError),
    /// SIMPLER could not map the netlist onto this device's rows.
    Map(MapError),
    /// A batch must contain at least one request.
    EmptyBatch,
    /// More requests than the device has rows.
    BatchTooLarge {
        /// Requests submitted.
        requests: usize,
        /// Rows available on the device.
        rows: usize,
    },
    /// The same row was assigned to two requests of one batch.
    RowConflict {
        /// The doubly assigned row.
        row: usize,
    },
    /// A requested row does not exist on this device.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Device dimension.
        n: usize,
    },
    /// A request's input vector does not match the program arity.
    InputArity {
        /// Index of the offending request within the batch.
        request: usize,
        /// Bits supplied.
        got: usize,
        /// Bits the program expects.
        want: usize,
    },
    /// The compiled program was mapped for a wider row than this device has.
    ProgramTooWide {
        /// Row size the program was mapped for.
        row_size: usize,
        /// Cells one request actually occupies after dense remap — the
        /// post-remap footprint that has to fit the line.
        footprint: usize,
        /// Device dimension.
        n: usize,
    },
    /// `rows` and `requests` arguments of different lengths.
    PlacementArity {
        /// Rows supplied.
        rows: usize,
        /// Requests supplied.
        requests: usize,
    },
    /// A placement plan must reserve at least one cell per slot.
    ZeroSlotWidth,
    /// A slot sticks out past the end of its line.
    OffsetOutOfRange {
        /// Line the slot lives on.
        line: usize,
        /// First cell of the slot.
        offset: usize,
        /// Cells the slot reserves.
        slot_width: usize,
        /// Line length of the device.
        n: usize,
    },
    /// The plan's slots are narrower than the program's footprint.
    SlotTooNarrow {
        /// Cells each slot reserves.
        slot_width: usize,
        /// Cells the program touches.
        footprint: usize,
    },
    /// The plan was built for a different crossbar geometry.
    PlanGeometry {
        /// Line length the plan was built for.
        plan: usize,
        /// Line length of the device.
        n: usize,
    },
    /// A multi-program plan needs at least one part.
    EmptyMultiPlan,
    /// A multi-program plan's part disagrees with part 0 on axis or line
    /// length.
    MultiPlanGeometry {
        /// Index of the disagreeing part.
        part: usize,
    },
    /// Two parts of a multi-program plan occupy the same physical line.
    MultiPlanOverlap {
        /// The doubly-occupied line.
        line: usize,
    },
    /// `run_multi` was given a different number of request groups than
    /// its plan has parts.
    MultiPartArity {
        /// Parts in the plan.
        parts: usize,
        /// Request groups supplied.
        groups: usize,
    },
    /// A builder asked for a zero-sized worker team.
    ZeroThreads,
    /// A builder asked for retirement after zero strikes — every line
    /// would be dead on arrival.
    ZeroRetireAfter,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Core(e) => write!(f, "protected memory error: {e}"),
            DeviceError::Map(e) => write!(f, "mapping failed: {e}"),
            DeviceError::EmptyBatch => write!(f, "batch contains no requests"),
            DeviceError::BatchTooLarge { requests, rows } => {
                write!(f, "{requests} requests exceed the device's {rows} rows")
            }
            DeviceError::RowConflict { row } => {
                write!(f, "row {row} assigned to more than one request")
            }
            DeviceError::RowOutOfRange { row, n } => {
                write!(f, "row {row} out of range for a {n}x{n} device")
            }
            DeviceError::InputArity { request, got, want } => {
                write!(
                    f,
                    "request {request} supplies {got} input bits, program expects {want}"
                )
            }
            DeviceError::ProgramTooWide {
                row_size,
                footprint,
                n,
            } => {
                write!(
                    f,
                    "program mapped for a {row_size}-cell row (post-remap footprint \
                     {footprint} cells) exceeds the {n}-cell device; circuits bigger \
                     than one line can be served via the partitioned-compile API \
                     (PimCluster::compile_partitioned / submit_partitioned)"
                )
            }
            DeviceError::PlacementArity { rows, requests } => {
                write!(f, "{rows} rows given for {requests} requests")
            }
            DeviceError::ZeroSlotWidth => write!(f, "slot width must be at least one cell"),
            DeviceError::OffsetOutOfRange {
                line,
                offset,
                slot_width,
                n,
            } => {
                write!(
                    f,
                    "slot at offset {offset} (width {slot_width}) on line {line} \
                     exceeds the {n}-cell lines"
                )
            }
            DeviceError::SlotTooNarrow {
                slot_width,
                footprint,
            } => {
                write!(
                    f,
                    "{slot_width}-cell slots cannot hold a program touching {footprint} cells"
                )
            }
            DeviceError::PlanGeometry { plan, n } => {
                write!(
                    f,
                    "plan built for {plan}-cell lines executed on a {n}x{n} device"
                )
            }
            DeviceError::EmptyMultiPlan => {
                write!(f, "multi-program plan needs at least one part")
            }
            DeviceError::MultiPlanGeometry { part } => {
                write!(
                    f,
                    "multi-program plan part {part} disagrees with part 0 on axis or line length"
                )
            }
            DeviceError::MultiPlanOverlap { line } => {
                write!(
                    f,
                    "multi-program plan parts both occupy line {line}; parts must be line-disjoint"
                )
            }
            DeviceError::MultiPartArity { parts, groups } => {
                write!(
                    f,
                    "multi-program plan has {parts} part(s) but {groups} request group(s) \
                     were supplied"
                )
            }
            DeviceError::ZeroThreads => {
                write!(f, "worker team must have at least one thread")
            }
            DeviceError::ZeroRetireAfter => {
                write!(f, "retirement threshold must be at least one strike")
            }
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Core(e) => Some(e),
            DeviceError::Map(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for DeviceError {
    fn from(e: CoreError) -> Self {
        DeviceError::Core(e)
    }
}

impl From<MapError> for DeviceError {
    fn from(e: MapError) -> Self {
        DeviceError::Map(e)
    }
}
