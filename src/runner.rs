//! Legacy single-request execution — a thin shim over the batched
//! [`device`](crate::device) layer.
//!
//! [`ProtectedRunner`] predates [`PimDevice`] and
//! serves exactly one request per call on one row. It is kept as a
//! deprecated compatibility facade: every call now routes through the
//! device API (`adopt` + `load_request` + `execute_rows` with a batch of
//! one), so its semantics — non-destructive input loading included — are
//! the device's. New code should hold a `PimDevice` and call
//! [`run_batch`](crate::device::PimDevice::run_batch) — or, for mixed and
//! high-volume traffic, a [`PimCluster`](crate::cluster::PimCluster) whose
//! `submit`/`flush` queue packs and shards batches automatically. The
//! serial flow here pays the full program latency *per request*, where a
//! batch pays it once.

use crate::device::{DeviceError, PimDevice};
use pimecc_core::{CheckReport, CoreError, ProtectedMemory};
use pimecc_simpler::Program;

/// Outcome of one protected program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The program's primary outputs.
    pub outputs: Vec<bool>,
    /// Result of the pre-execution input check.
    pub input_check: CheckReport,
    /// Critical operations the machine performed for this run.
    pub critical_ops: u64,
}

/// Executes mapped programs one request at a time on rows of an
/// ECC-protected crossbar.
///
/// # Example
///
/// ```
/// #![allow(deprecated)]
/// use pimecc::runner::ProtectedRunner;
/// use pimecc::netlist::NetlistBuilder;
/// use pimecc::simpler::{map, MapperConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let g = b.xor(x, y);
/// b.output(g);
/// let program = map(&b.finish().to_nor(), &MapperConfig { row_size: 30 })?;
///
/// let mut runner = ProtectedRunner::new(30, 3)?;
/// let out = runner.run(&program, 0, &[true, false])?;
/// assert_eq!(out.outputs, vec![true]);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use pimecc::device::PimDevice, which batches many requests per crossbar pass"
)]
#[derive(Debug)]
pub struct ProtectedRunner {
    device: PimDevice,
}

#[allow(deprecated)]
impl ProtectedRunner {
    /// Creates a runner over a fresh `n×n` protected crossbar with `m×m`
    /// blocks.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn new(n: usize, m: usize) -> Result<Self, CoreError> {
        match PimDevice::new(n, m) {
            Ok(device) => Ok(ProtectedRunner { device }),
            Err(DeviceError::Core(e)) => Err(e),
            Err(e) => unreachable!("geometry validation yields core errors only: {e}"),
        }
    }

    /// Wraps an existing protected memory.
    pub fn from_memory(memory: ProtectedMemory) -> Self {
        ProtectedRunner {
            device: PimDevice::from_memory(memory),
        }
    }

    /// Read access to the underlying machine (stats, consistency checks).
    pub fn memory(&self) -> &ProtectedMemory {
        self.device.memory()
    }

    /// Consumes the runner, returning the machine.
    pub fn into_memory(self) -> ProtectedMemory {
        self.device.into_memory()
    }

    /// The batched device this runner fronts.
    pub fn device(&mut self) -> &mut PimDevice {
        &mut self.device
    }

    /// Injects a soft error (forwarded to the machine, for campaigns).
    pub fn inject_fault(&mut self, r: usize, c: usize) {
        self.device.inject_fault(r, c);
    }

    fn check_fit(&self, program: &Program, row: usize) -> Result<(), CoreError> {
        let n = self.device.capacity();
        if program.row_size > n || row >= n {
            return Err(CoreError::OutOfBounds {
                row,
                col: program.row_size,
                n,
            });
        }
        Ok(())
    }

    fn lower(e: DeviceError) -> CoreError {
        match e {
            DeviceError::Core(e) => e,
            other => unreachable!("placement was validated by check_fit: {other}"),
        }
    }

    /// Loads the function inputs into cells `0..num_inputs` of `row`
    /// through the write-with-ECC path. Unlike the pre-device runner, this
    /// no longer clobbers the rest of the crossbar: other rows (for
    /// example, other in-flight requests) are preserved.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if the program is wider than the
    /// crossbar or `row` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != program.num_inputs`.
    pub fn load_inputs(
        &mut self,
        program: &Program,
        row: usize,
        inputs: &[bool],
    ) -> Result<(), CoreError> {
        assert_eq!(inputs.len(), program.num_inputs, "input arity mismatch");
        self.check_fit(program, row)?;
        let compiled = self.device.adopt(program);
        self.device
            .load_request(&compiled, row, inputs)
            .map_err(Self::lower)
    }

    /// Executes a previously loaded program: pre-execution input check of
    /// the block-row, the program steps under continuous ECC maintenance,
    /// then output readback.
    ///
    /// # Errors
    ///
    /// Propagates bounds and MAGIC legality errors.
    pub fn execute(&mut self, program: &Program, row: usize) -> Result<RunOutcome, CoreError> {
        self.check_fit(program, row)?;
        let compiled = self.device.adopt(program);
        let mut outcome = self
            .device
            .execute_rows(&compiled, &[row])
            .map_err(Self::lower)?;
        Ok(RunOutcome {
            outputs: outcome.outputs.pop().expect("batch of one"),
            input_check: outcome.input_check,
            critical_ops: outcome.stats.critical_ops,
        })
    }

    /// Convenience: [`ProtectedRunner::load_inputs`] followed by
    /// [`ProtectedRunner::execute`].
    ///
    /// # Errors
    ///
    /// Propagates bounds and MAGIC legality errors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != program.num_inputs`.
    pub fn run(
        &mut self,
        program: &Program,
        row: usize,
        inputs: &[bool],
    ) -> Result<RunOutcome, CoreError> {
        assert_eq!(inputs.len(), program.num_inputs, "input arity mismatch");
        self.check_fit(program, row)?;
        // Adopt once: fingerprinting the program per call is the dominant
        // fixed cost of this serial path.
        let compiled = self.device.adopt(program);
        self.device
            .load_request(&compiled, row, inputs)
            .map_err(Self::lower)?;
        let mut outcome = self
            .device
            .execute_rows(&compiled, &[row])
            .map_err(Self::lower)?;
        Ok(RunOutcome {
            outputs: outcome.outputs.pop().expect("batch of one"),
            input_check: outcome.input_check,
            critical_ops: outcome.stats.critical_ops,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pimecc_netlist::NetlistBuilder;
    use pimecc_simpler::{map, MapperConfig};

    fn small_program() -> (Program, pimecc_netlist::Netlist) {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(3);
        let g1 = b.xor(ins[0], ins[1]);
        let g2 = b.mux(ins[2], g1, ins[0]);
        b.output(g1);
        b.output(g2);
        let nl = b.finish();
        let p = map(&nl.to_nor(), &MapperConfig { row_size: 30 }).expect("maps");
        (p, nl)
    }

    #[test]
    fn runs_exhaustively_correct() {
        let (p, nl) = small_program();
        let mut runner = ProtectedRunner::new(30, 3).expect("runner");
        for v in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
            let out = runner.run(&p, 0, &inputs).expect("runs");
            assert_eq!(out.outputs, nl.eval(&inputs), "v={v}");
            assert!(runner.memory().verify_consistency().is_ok());
        }
    }

    #[test]
    fn any_row_works() {
        let (p, nl) = small_program();
        let mut runner = ProtectedRunner::new(30, 5).expect("runner");
        let inputs = [true, false, true];
        for row in [0usize, 7, 29] {
            let out = runner.run(&p, row, &inputs).expect("runs");
            assert_eq!(out.outputs, nl.eval(&inputs), "row {row}");
        }
    }

    #[test]
    fn input_fault_is_repaired_by_the_precheck() {
        let (p, nl) = small_program();
        let inputs = [true, true, false];
        for victim in 0..3 {
            let mut runner = ProtectedRunner::new(30, 3).expect("runner");
            runner.load_inputs(&p, 0, &inputs).expect("loads");
            // A soft error strikes input cell `victim` before execution...
            runner.inject_fault(0, victim);
            let out = runner.execute(&p, 0).expect("runs");
            // ...the pre-execution check repairs it, so the result is
            // computed from the intended inputs.
            assert_eq!(out.input_check.corrected, 1, "victim {victim}");
            assert_eq!(out.outputs, nl.eval(&inputs), "victim {victim}");
        }
    }

    #[test]
    fn clean_run_reports_no_corrections() {
        let (p, nl) = small_program();
        let mut runner = ProtectedRunner::new(30, 3).expect("runner");
        let inputs = [true, true, false];
        let clean = runner.run(&p, 0, &inputs).expect("runs");
        assert_eq!(clean.input_check.corrected, 0);
        assert_eq!(clean.outputs, nl.eval(&inputs));
        assert!(clean.critical_ops >= 2);
    }

    #[test]
    fn oversized_program_is_rejected() {
        let (p, _) = small_program(); // row_size 30
        let mut runner = ProtectedRunner::new(9, 3).expect("runner");
        assert!(matches!(
            runner.run(&p, 0, &[false, false, false]),
            Err(CoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn load_no_longer_clobbers_other_rows() {
        let (p, nl) = small_program();
        let mut runner = ProtectedRunner::new(30, 3).expect("runner");
        let first = [true, false, true];
        runner.run(&p, 5, &first).expect("runs");
        let resident: Vec<bool> = (0..30).map(|c| runner.memory().bit(5, c)).collect();
        // A second request on another row leaves row 5's results in place.
        let out = runner.run(&p, 17, &[false, true, true]).expect("runs");
        assert_eq!(out.outputs, nl.eval(&[false, true, true]));
        let after: Vec<bool> = (0..30).map(|c| runner.memory().bit(5, c)).collect();
        assert_eq!(resident, after);
    }

    #[test]
    fn repeated_runs_share_one_compiled_program() {
        let (p, _) = small_program();
        let mut runner = ProtectedRunner::new(30, 3).expect("runner");
        runner.run(&p, 0, &[true, true, true]).expect("runs");
        runner.run(&p, 1, &[false, false, false]).expect("runs");
        assert_eq!(runner.device().compiled_count(), 1);
    }
}
