//! End-to-end execution of SIMPLER-mapped programs on the ECC-protected
//! memory — the full paper flow in one call.
//!
//! [`ProtectedRunner`] owns a [`ProtectedMemory`] and executes a mapped
//! [`Program`] on one of its rows:
//!
//! 1. the function inputs are loaded into the row (ECC computed on write);
//! 2. the blocks holding the row are ECC-checked — the paper's
//!    pre-execution input check, which repairs any soft error that struck
//!    the inputs since they were written;
//! 3. every program step executes with the machine's automatic check-bit
//!    maintenance (critical-operation protocol);
//! 4. outputs are read back, and the ECC is left consistent for the next
//!    function.

use pimecc_core::{BlockGeometry, CheckReport, CoreError, ProtectedMemory};
use pimecc_simpler::{Program, Step};
use pimecc_xbar::{BitGrid, LineSet};

/// Outcome of one protected program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The program's primary outputs.
    pub outputs: Vec<bool>,
    /// Result of the pre-execution input check.
    pub input_check: CheckReport,
    /// Critical operations the machine performed for this run.
    pub critical_ops: u64,
}

/// Executes mapped programs on rows of an ECC-protected crossbar.
///
/// # Example
///
/// ```
/// use pimecc::runner::ProtectedRunner;
/// use pimecc::netlist::NetlistBuilder;
/// use pimecc::simpler::{map, MapperConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let g = b.xor(x, y);
/// b.output(g);
/// let program = map(&b.finish().to_nor(), &MapperConfig { row_size: 30 })?;
///
/// let mut runner = ProtectedRunner::new(30, 3)?;
/// let out = runner.run(&program, 0, &[true, false])?;
/// assert_eq!(out.outputs, vec![true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProtectedRunner {
    memory: ProtectedMemory,
}

impl ProtectedRunner {
    /// Creates a runner over a fresh `n×n` protected crossbar with `m×m`
    /// blocks.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn new(n: usize, m: usize) -> Result<Self, CoreError> {
        Ok(ProtectedRunner { memory: ProtectedMemory::new(BlockGeometry::new(n, m)?)? })
    }

    /// Wraps an existing protected memory.
    pub fn from_memory(memory: ProtectedMemory) -> Self {
        ProtectedRunner { memory }
    }

    /// Read access to the underlying machine (stats, consistency checks).
    pub fn memory(&self) -> &ProtectedMemory {
        &self.memory
    }

    /// Consumes the runner, returning the machine.
    pub fn into_memory(self) -> ProtectedMemory {
        self.memory
    }

    /// Injects a soft error (forwarded to the machine, for campaigns).
    pub fn inject_fault(&mut self, r: usize, c: usize) {
        self.memory.inject_fault(r, c);
    }

    fn check_fit(&self, program: &Program, row: usize) -> Result<(), CoreError> {
        let n = self.memory.geometry().n();
        if program.row_size > n || row >= n {
            return Err(CoreError::OutOfBounds { row, col: program.row_size, n });
        }
        Ok(())
    }

    /// Loads the function inputs into cells `0..num_inputs` of `row`
    /// through the write-with-ECC path, zeroing the rest of the memory.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if the program is wider than the
    /// crossbar or `row` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != program.num_inputs`.
    pub fn load_inputs(
        &mut self,
        program: &Program,
        row: usize,
        inputs: &[bool],
    ) -> Result<(), CoreError> {
        assert_eq!(inputs.len(), program.num_inputs, "input arity mismatch");
        self.check_fit(program, row)?;
        let n = self.memory.geometry().n();
        let mut grid = BitGrid::new(n, n);
        for (i, &v) in inputs.iter().enumerate() {
            grid.set(row, i, v);
        }
        self.memory.load_grid(&grid);
        Ok(())
    }

    /// Executes a previously loaded program: pre-execution input check of
    /// the block-row, the program steps under continuous ECC maintenance,
    /// then output readback.
    ///
    /// # Errors
    ///
    /// Propagates bounds and MAGIC legality errors.
    pub fn execute(&mut self, program: &Program, row: usize) -> Result<RunOutcome, CoreError> {
        self.check_fit(program, row)?;
        let block_row = row / self.memory.geometry().m();
        let input_check = self.memory.check_block_row(block_row)?;

        let criticals_before = self.memory.stats().critical_ops;
        for step in &program.steps {
            match step {
                Step::Init { cells } => {
                    self.memory.exec_init_rows(cells, &LineSet::One(row))?
                }
                Step::Gate { inputs, output, .. } => {
                    self.memory.exec_nor_rows(inputs, *output, &LineSet::One(row))?
                }
            }
        }
        let outputs =
            program.output_cells.iter().map(|&c| self.memory.bit(row, c)).collect();
        Ok(RunOutcome {
            outputs,
            input_check,
            critical_ops: self.memory.stats().critical_ops - criticals_before,
        })
    }

    /// Convenience: [`ProtectedRunner::load_inputs`] followed by
    /// [`ProtectedRunner::execute`].
    ///
    /// # Errors
    ///
    /// Propagates bounds and MAGIC legality errors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != program.num_inputs`.
    pub fn run(
        &mut self,
        program: &Program,
        row: usize,
        inputs: &[bool],
    ) -> Result<RunOutcome, CoreError> {
        self.load_inputs(program, row, inputs)?;
        self.execute(program, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimecc_netlist::NetlistBuilder;
    use pimecc_simpler::{map, MapperConfig};

    fn small_program() -> (Program, pimecc_netlist::Netlist) {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(3);
        let g1 = b.xor(ins[0], ins[1]);
        let g2 = b.mux(ins[2], g1, ins[0]);
        b.output(g1);
        b.output(g2);
        let nl = b.finish();
        let p = map(&nl.to_nor(), &MapperConfig { row_size: 30 }).expect("maps");
        (p, nl)
    }

    #[test]
    fn runs_exhaustively_correct() {
        let (p, nl) = small_program();
        let mut runner = ProtectedRunner::new(30, 3).expect("runner");
        for v in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
            let out = runner.run(&p, 0, &inputs).expect("runs");
            assert_eq!(out.outputs, nl.eval(&inputs), "v={v}");
            assert!(runner.memory().verify_consistency().is_ok());
        }
    }

    #[test]
    fn any_row_works() {
        let (p, nl) = small_program();
        let mut runner = ProtectedRunner::new(30, 5).expect("runner");
        let inputs = [true, false, true];
        for row in [0usize, 7, 29] {
            let out = runner.run(&p, row, &inputs).expect("runs");
            assert_eq!(out.outputs, nl.eval(&inputs), "row {row}");
        }
    }

    #[test]
    fn input_fault_is_repaired_by_the_precheck() {
        let (p, nl) = small_program();
        let inputs = [true, true, false];
        for victim in 0..3 {
            let mut runner = ProtectedRunner::new(30, 3).expect("runner");
            runner.load_inputs(&p, 0, &inputs).expect("loads");
            // A soft error strikes input cell `victim` before execution...
            runner.inject_fault(0, victim);
            let out = runner.execute(&p, 0).expect("runs");
            // ...the pre-execution check repairs it, so the result is
            // computed from the intended inputs.
            assert_eq!(out.input_check.corrected, 1, "victim {victim}");
            assert_eq!(out.outputs, nl.eval(&inputs), "victim {victim}");
        }
    }

    #[test]
    fn clean_run_reports_no_corrections() {
        let (p, nl) = small_program();
        let mut runner = ProtectedRunner::new(30, 3).expect("runner");
        let inputs = [true, true, false];
        let clean = runner.run(&p, 0, &inputs).expect("runs");
        assert_eq!(clean.input_check.corrected, 0);
        assert_eq!(clean.outputs, nl.eval(&inputs));
        assert!(clean.critical_ops >= 2);
    }

    #[test]
    fn oversized_program_is_rejected() {
        let (p, _) = small_program(); // row_size 30
        let mut runner = ProtectedRunner::new(9, 3).expect("runner");
        assert!(matches!(
            runner.run(&p, 0, &[false, false, false]),
            Err(CoreError::OutOfBounds { .. })
        ));
    }
}
