//! The service engine: the shard pool, the pending queue and the flush
//! machinery, shared by the synchronous [`PimCluster`] wrapper (which
//! drives it on the caller's thread) and the spawned
//! [`worker`](super::worker) (which drives it on its own thread behind a
//! channel).
//!
//! [`PimCluster`]: crate::cluster::PimCluster

use super::error::ClusterError;
use super::health::HealthMonitor;
use super::outcome::ClusterOutcome;
use super::queue::{group_by_fingerprint, Pending, Ticket};
use super::scheduler::{self, AxisPolicy, PackingKnobs};
use crate::device::{CompiledProgram, PimDevice, ProgramCache};
use std::collections::HashSet;

/// The flush knobs of a spawned service — when the worker drains the
/// queue without being asked.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ServiceConfig {
    /// Pending-count threshold: the worker flushes as soon as this many
    /// requests are queued.
    pub(crate) flush_at: Option<usize>,
    /// Bound on in-flight submissions (backpressure).
    pub(crate) queue_limit: Option<usize>,
}

/// What one drain of the pending queue produced.
///
/// `outcome` holds everything that executed (even when `error` is set:
/// batches completed before the failure are not lost); `dropped` lists the
/// tickets the failed flush abandoned before dispatching them. `dropped`
/// is non-empty only when `error` is set.
pub(crate) struct FlushReport {
    pub(crate) outcome: ClusterOutcome,
    pub(crate) dropped: Vec<Ticket>,
    pub(crate) error: Option<ClusterError>,
}

/// Validates one submission against the pool's shared geometry — the
/// entry check both the sync wrapper and the service handle run before
/// accepting a request.
pub(crate) fn validate_submission(
    program: &CompiledProgram,
    inputs: &[bool],
    shard_capacity: usize,
) -> Result<(), ClusterError> {
    if program.program().row_size > shard_capacity {
        return Err(ClusterError::ProgramTooWide {
            row_size: program.program().row_size,
            n: shard_capacity,
        });
    }
    if inputs.len() != program.num_inputs() {
        return Err(ClusterError::InputArity {
            got: inputs.len(),
            want: program.num_inputs(),
        });
    }
    Ok(())
}

/// The shard pool behind every cluster front-end: devices, packing knobs,
/// the shared compile cache and the pending queue.
///
/// `ClusterCore` has no opinion about *when* to flush — that is the
/// front-end's job (the sync wrapper flushes on the caller's thread, the
/// worker on thresholds and deadlines). It owns the *how*: group pending
/// traffic by fingerprint, plan waves, dispatch them across the shards.
pub(crate) struct ClusterCore {
    pub(crate) shards: Vec<PimDevice>,
    pub(crate) batch_limit: usize,
    pub(crate) pack_limit: usize,
    pub(crate) axis_policy: AxisPolicy,
    /// Cluster-wide compile cache (netlist / packed / program key
    /// domains), shared in shape with the device layer.
    pub(crate) programs: ProgramCache,
    pub(crate) pending: Vec<Pending>,
    /// Waves dispatched over the pool's lifetime — the base of the
    /// wear-leveling rotation. Per-flush wave indices restart at zero,
    /// so without this a service flushing small batches (deadline or
    /// threshold) would pack *every* flush at origin 0 and the rotation
    /// would never level anything. Still a pure function of submission
    /// order, so determinism is preserved.
    pub(crate) waves_dispatched: usize,
    /// The health loop: per-shard error budgets (whose quarantine set
    /// shrinks the scheduler's active-shard list), scrub bookkeeping and
    /// the metrics ledgers. Owned here — the flush path is the single
    /// writer — and read by the front-ends via snapshots.
    pub(crate) health: HealthMonitor,
}

impl ClusterCore {
    /// Rows of one shard — the widest batch a single dispatch can carry.
    pub(crate) fn shard_capacity(&self) -> usize {
        self.shards[0].capacity()
    }

    /// Executes everything pending and reports what happened. Never
    /// panics on shard *errors* (they land in
    /// [`FlushReport::error`]); results of batches that completed before
    /// a failure are kept in the report's outcome, and the tickets the
    /// failure abandoned are listed so the caller can resolve them.
    pub(crate) fn flush_pending(&mut self) -> FlushReport {
        let pending = std::mem::take(&mut self.pending);
        let mut outcome = ClusterOutcome::empty(self.shards.len());
        if pending.is_empty() {
            return FlushReport {
                outcome,
                dropped: Vec::new(),
                error: None,
            };
        }
        let submitted: Vec<Ticket> = pending.iter().map(|p| p.ticket).collect();
        let groups = group_by_fingerprint(pending);
        let knobs = PackingKnobs {
            line_len: self.shard_capacity(),
            batch_limit: self.batch_limit,
            pack_limit: self.pack_limit,
            axis_policy: self.axis_policy,
            origin_base: self.waves_dispatched,
        };
        let active = self.health.active_shards();
        let ran = scheduler::run_waves(&mut self.shards, groups, knobs, &mut outcome, &active);
        // Waves that dispatched advance the wear rotation even when a
        // later wave of the same flush failed.
        self.waves_dispatched += outcome.waves;
        self.health.observe_flush(&outcome);
        match ran {
            Ok(()) => FlushReport {
                outcome,
                dropped: Vec::new(),
                error: None,
            },
            Err(error) => {
                let served: HashSet<u64> = outcome.results.iter().map(|r| r.ticket.id()).collect();
                let dropped = submitted
                    .into_iter()
                    .filter(|t| !served.contains(&t.id()))
                    .collect();
                FlushReport {
                    outcome,
                    dropped,
                    error: Some(error),
                }
            }
        }
    }
}

impl std::fmt::Debug for ClusterCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterCore")
            .field("shards", &self.shards.len())
            .field("n", &self.shard_capacity())
            .field("batch_limit", &self.batch_limit)
            .field("pack_limit", &self.pack_limit)
            .field("axis_policy", &self.axis_policy)
            .field("pending", &self.pending.len())
            .field("compiled_programs", &self.programs.len())
            .finish()
    }
}
