//! The service engine: the shard pool, the pending queue and the flush
//! machinery, shared by the synchronous [`PimCluster`] wrapper (which
//! drives it on the caller's thread) and the spawned
//! [`worker`](super::worker) (which drives it on its own thread behind a
//! channel).
//!
//! [`PimCluster`]: crate::cluster::PimCluster

use super::error::ClusterError;
use super::health::HealthMonitor;
use super::outcome::{ClusterOutcome, FailedRequest, TicketResult};
use super::queue::{group_into, group_partitioned, Group, Pending, PendingPartitioned, Ticket};
use super::scheduler::{self, AxisPolicy, PackingKnobs};
use crate::compiler::{PartitionedProgram, RouteSource};
use crate::device::{Axis, CompiledProgram, PimDevice, ProgramCache};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The flush knobs of a spawned service — when the worker drains the
/// queue without being asked.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ServiceConfig {
    /// Pending-count threshold: the worker flushes as soon as this many
    /// requests are queued.
    pub(crate) flush_at: Option<usize>,
    /// Bound on in-flight submissions (backpressure).
    pub(crate) queue_limit: Option<usize>,
}

/// What one drain of the pending queue produced.
///
/// `outcome` holds everything that executed (even when `error` is set:
/// batches completed before the failure are not lost); `dropped` lists the
/// tickets the failed flush abandoned before dispatching them. `dropped`
/// is non-empty only when `error` is set.
pub(crate) struct FlushReport {
    pub(crate) outcome: ClusterOutcome,
    pub(crate) dropped: Vec<Ticket>,
    pub(crate) error: Option<ClusterError>,
}

/// Validates one submission against the pool's shared geometry — the
/// entry check both the sync wrapper and the service handle run before
/// accepting a request.
pub(crate) fn validate_submission(
    program: &CompiledProgram,
    inputs: &[bool],
    shard_capacity: usize,
) -> Result<(), ClusterError> {
    if program.program().row_size > shard_capacity {
        return Err(ClusterError::ProgramTooWide {
            row_size: program.program().row_size,
            n: shard_capacity,
        });
    }
    if inputs.len() != program.num_inputs() {
        return Err(ClusterError::InputArity {
            got: inputs.len(),
            want: program.num_inputs(),
        });
    }
    Ok(())
}

/// Validates one *partitioned* submission against the pool's shared
/// geometry — the partitioned twin of [`validate_submission`].
pub(crate) fn validate_partitioned(
    program: &PartitionedProgram,
    inputs: &[bool],
    shard_capacity: usize,
) -> Result<(), ClusterError> {
    if program.max_row_size() > shard_capacity {
        return Err(ClusterError::ProgramTooWide {
            row_size: program.max_row_size(),
            n: shard_capacity,
        });
    }
    if inputs.len() != program.num_inputs() {
        return Err(ClusterError::InputArity {
            got: inputs.len(),
            want: program.num_inputs(),
        });
    }
    Ok(())
}

/// Reusable flush-path buffers: after the first flush warms them up, a
/// steady-state flush allocates nothing of its own — the pending queue,
/// the fingerprint groups (with their request buffers), the ticket list
/// and the grouping index all recycle last flush's capacity. (The
/// returned [`ClusterOutcome`] still allocates: it escapes to the
/// caller.)
#[derive(Debug, Default)]
pub(crate) struct FlushArena {
    /// Every ticket of the flush in submission order — consulted only on
    /// the error path to list the dropped ones.
    submitted: Vec<Ticket>,
    /// Group shells for [`group_into`]; drained (and their request
    /// buffers recycled into `request_bufs`) after each flush.
    groups: Vec<Group>,
    /// Fingerprint → group index scratch for [`group_into`].
    fp_index: HashMap<u64, usize>,
    /// Emptied per-group request buffers awaiting reuse.
    request_bufs: Vec<Vec<(Ticket, Instant, Vec<bool>)>>,
}

/// The shard pool behind every cluster front-end: devices, packing knobs,
/// the shared compile cache and the pending queue.
///
/// `ClusterCore` has no opinion about *when* to flush — that is the
/// front-end's job (the sync wrapper flushes on the caller's thread, the
/// worker on thresholds and deadlines). It owns the *how*: group pending
/// traffic by fingerprint, plan waves, dispatch them across the shards.
pub(crate) struct ClusterCore {
    pub(crate) shards: Vec<PimDevice>,
    pub(crate) batch_limit: usize,
    pub(crate) pack_limit: usize,
    pub(crate) axis_policy: AxisPolicy,
    /// Re-dispatches granted to a ticket whose batch drew an
    /// uncorrectable ECC verdict on its lines before it dead-letters.
    pub(crate) max_retries: u32,
    /// Whether the scheduler's pass 3 co-locates leftover groups of other
    /// fingerprints onto claimed shards as multi-program waves.
    pub(crate) colocate: bool,
    /// Cluster-wide compile cache (netlist / packed / program key
    /// domains), shared in shape with the device layer.
    pub(crate) programs: ProgramCache,
    pub(crate) pending: Vec<Pending>,
    /// Partitioned submissions awaiting the next flush; served *after*
    /// the ordinary queue, as dependency-ordered sub-program waves with
    /// host-routed cut signals between levels.
    pub(crate) pending_partitioned: Vec<PendingPartitioned>,
    /// Waves dispatched over the pool's lifetime — the base of the
    /// wear-leveling rotation. Per-flush wave indices restart at zero,
    /// so without this a service flushing small batches (deadline or
    /// threshold) would pack *every* flush at origin 0 and the rotation
    /// would never level anything. Still a pure function of submission
    /// order, so determinism is preserved.
    pub(crate) waves_dispatched: usize,
    /// The health loop: per-shard error budgets (whose quarantine set
    /// shrinks the scheduler's active-shard list), scrub bookkeeping and
    /// the metrics ledgers. Owned here — the flush path is the single
    /// writer — and read by the front-ends via snapshots.
    pub(crate) health: HealthMonitor,
    /// Reusable flush-path buffers (alloc-free steady state).
    pub(crate) arena: FlushArena,
}

impl ClusterCore {
    /// Line length of the pool's *tallest* shard — the widest program the
    /// pool can admit (the router sends wide programs to shards that fit
    /// them; pools may mix geometries).
    pub(crate) fn shard_capacity(&self) -> usize {
        self.shards
            .iter()
            .map(PimDevice::capacity)
            .max()
            .expect("a cluster has at least one shard")
    }

    /// The distinct shard line lengths, ascending — the compile path
    /// tries them smallest-first so a program lands in the tightest
    /// geometry it fits.
    pub(crate) fn distinct_capacities(&self) -> Vec<usize> {
        let mut caps: Vec<usize> = self.shards.iter().map(PimDevice::capacity).collect();
        caps.sort_unstable();
        caps.dedup();
        caps
    }

    /// Total lines across every shard — the pool-wide capacity figure.
    pub(crate) fn total_lines(&self) -> usize {
        self.shards.iter().map(PimDevice::capacity).sum()
    }

    /// Requests waiting for the next flush, across both queues.
    pub(crate) fn pending_total(&self) -> usize {
        self.pending.len() + self.pending_partitioned.len()
    }

    /// Executes everything pending and reports what happened. Never
    /// panics on shard *errors* (they land in
    /// [`FlushReport::error`]); results of batches that completed before
    /// a failure are kept in the report's outcome, and the tickets the
    /// failure abandoned are listed so the caller can resolve them.
    ///
    /// Ordinary submissions are served first, then partitioned ones: each
    /// partitioned group runs its sub-programs as dependency-ordered
    /// waves, routing cut signals host-side between levels, and lands one
    /// merged [`TicketResult`] per request. The final result list is
    /// re-sorted by ticket so [`ClusterOutcome::outputs_for`]'s binary
    /// search keeps working across both kinds.
    pub(crate) fn flush_pending(&mut self) -> FlushReport {
        let partitioned = std::mem::take(&mut self.pending_partitioned);
        let mut outcome = ClusterOutcome::empty(self.shards.len());
        if self.pending.is_empty() && partitioned.is_empty() {
            return FlushReport {
                outcome,
                dropped: Vec::new(),
                error: None,
            };
        }
        self.arena.submitted.clear();
        self.arena.submitted.extend(
            self.pending
                .iter()
                .map(|p| p.ticket)
                .chain(partitioned.iter().map(|p| p.ticket)),
        );
        group_into(
            &mut self.pending,
            &mut self.arena.groups,
            &mut self.arena.fp_index,
            &mut self.arena.request_bufs,
        );
        let knobs = PackingKnobs {
            batch_limit: self.batch_limit,
            pack_limit: self.pack_limit,
            axis_policy: self.axis_policy,
            origin_base: self.waves_dispatched,
            max_retries: self.max_retries,
            colocate: self.colocate,
        };
        let active = self.health.active_shards();
        let mut ran = scheduler::run_waves(
            &mut self.shards,
            &mut self.arena.groups,
            knobs,
            &mut outcome,
            &active,
        );
        // Recycle the drained group shells: the inputs moved out through
        // `Group::take`, so only the (cleared) buffer capacity survives.
        for g in self.arena.groups.drain(..) {
            let mut requests = g.requests;
            requests.clear();
            self.arena.request_bufs.push(requests);
        }
        if ran.is_ok() {
            for (program, requests) in group_partitioned(partitioned) {
                if let Err(e) = self.run_partitioned_group(program, requests, &mut outcome, &active)
                {
                    ran = Err(e);
                    break;
                }
            }
        }
        // Partitioned results land after the ordinary ones but may carry
        // earlier tickets; restore the order outputs_for binary-searches.
        outcome.results.sort_by_key(|r| r.ticket);
        outcome.failed.sort_by_key(|f| f.ticket);
        // Waves that dispatched advance the wear rotation even when a
        // later wave of the same flush failed.
        self.waves_dispatched += outcome.waves;
        for (i, shard) in self.shards.iter().enumerate() {
            self.health
                .set_retired(i, shard.retired().retired_physical_lines() as u64);
        }
        self.health.observe_flush(&outcome);
        match ran {
            Ok(()) => FlushReport {
                outcome,
                dropped: Vec::new(),
                error: None,
            },
            Err(error) => {
                // Dead-lettered tickets were *resolved* (to an explicit
                // error), not dropped — only tickets with neither a
                // result nor a failure entry were abandoned.
                let served: HashSet<u64> = outcome
                    .results
                    .iter()
                    .map(|r| r.ticket.id())
                    .chain(outcome.failed.iter().map(|f| f.ticket.id()))
                    .collect();
                let dropped = self
                    .arena
                    .submitted
                    .iter()
                    .filter(|t| !served.contains(&t.id()))
                    .copied()
                    .collect();
                FlushReport {
                    outcome,
                    dropped,
                    error: Some(error),
                }
            }
        }
    }

    /// Serves one partitioned group: every request of one
    /// [`PartitionedProgram`], executed as one wave chain.
    ///
    /// Level by level, each sub-program becomes an ordinary scheduler
    /// group whose per-request inputs are assembled host-side from the
    /// original submission (primary inputs) and the exported outputs of
    /// already-executed parts (cut signals). Within a level the parts are
    /// independent, so their groups share one `run_waves` call and pack
    /// together exactly like unrelated ordinary traffic. Sub-requests ride
    /// on synthetic tickets (`part_index * n_requests + request_index`)
    /// that never leave this function; the caller-visible outcome gets one
    /// merged [`TicketResult`] per original request, anchored at the
    /// placement of its last sub-program.
    fn run_partitioned_group(
        &mut self,
        program: Arc<PartitionedProgram>,
        requests: Vec<(Ticket, Instant, Vec<bool>)>,
        outcome: &mut ClusterOutcome,
        active: &[usize],
    ) -> Result<(), ClusterError> {
        struct Anchor {
            part: usize,
            shard: usize,
            wave: usize,
            axis: Axis,
            line: usize,
            offset: usize,
            queue_latency: Duration,
            execute_latency: Duration,
            attempt_latencies: Vec<Duration>,
        }

        let nreq = requests.len();
        // Exported outputs of every executed part, per request.
        let mut part_outputs: Vec<Vec<Vec<bool>>> =
            vec![vec![Vec::new(); nreq]; program.num_parts()];
        let mut anchors: Vec<Option<Anchor>> = (0..nreq).map(|_| None).collect();
        // Requests with a dead-lettered sub-program: the whole request
        // fails (a partial circuit has no meaning), later levels skip it,
        // and the caller sees one [`FailedRequest`] on the original
        // ticket. Holds the exhausted sub-request's attempt count.
        let mut failed_req: Vec<Option<u32>> = vec![None; nreq];
        // Worst retry chain over a request's sub-programs — the merged
        // result's attempt count.
        let mut attempts_max: Vec<u32> = vec![1; nreq];

        for level in 0..program.num_levels() {
            let wave_base = outcome.waves;
            let mut groups: Vec<Group> = program.levels()[level]
                .clone()
                .map(|pi| {
                    let part = &program.parts()[pi];
                    let requests = requests
                        .iter()
                        .enumerate()
                        .filter(|(ri, _)| failed_req[*ri].is_none())
                        .map(|(ri, (_, submitted_at, inputs))| {
                            let local: Vec<bool> = part
                                .inputs()
                                .iter()
                                .map(|&route| match route {
                                    RouteSource::Host(i) => inputs[i],
                                    RouteSource::Part { part, output } => {
                                        part_outputs[part][ri][output]
                                    }
                                })
                                .collect();
                            let synthetic = Ticket((pi * nreq + ri) as u64);
                            (synthetic, *submitted_at, local)
                        })
                        .collect();
                    Group {
                        program: part.program().clone(),
                        requests,
                        cursor: 0,
                    }
                })
                .collect();
            let knobs = PackingKnobs {
                batch_limit: self.batch_limit,
                pack_limit: self.pack_limit,
                axis_policy: self.axis_policy,
                origin_base: self.waves_dispatched + wave_base,
                max_retries: self.max_retries,
                colocate: self.colocate,
            };
            let mut scratch = ClusterOutcome::empty(self.shards.len());
            let ran =
                scheduler::run_waves(&mut self.shards, &mut groups, knobs, &mut scratch, active);
            // Harvest the cut signals (and anchor metadata) before folding
            // the scratch stats in — the synthetic tickets must never
            // reach the caller-visible result list.
            for r in std::mem::take(&mut scratch.results) {
                let pi = (r.ticket.id() as usize) / nreq;
                let ri = (r.ticket.id() as usize) % nreq;
                attempts_max[ri] = attempts_max[ri].max(r.attempts);
                if anchors[ri].as_ref().is_none_or(|a| pi >= a.part) {
                    anchors[ri] = Some(Anchor {
                        part: pi,
                        shard: r.shard,
                        wave: wave_base + r.wave,
                        axis: r.axis,
                        line: r.line,
                        offset: r.offset,
                        queue_latency: r.queue_latency,
                        execute_latency: r.execute_latency,
                        attempt_latencies: r.attempt_latencies,
                    });
                }
                part_outputs[pi][ri] = r.outputs.to_vec();
            }
            // A dead-lettered sub-request fails its whole request — the
            // synthetic failure is translated to the original ticket (and
            // must never leak into the caller-visible failed list).
            for f in std::mem::take(&mut scratch.failed) {
                let ri = (f.ticket.id() as usize) % nreq;
                let failed = failed_req[ri].get_or_insert(0);
                *failed = (*failed).max(f.attempts);
            }
            outcome.merge(scratch);
            ran?;
        }

        for (ri, (ticket, submitted_at, inputs)) in requests.iter().enumerate() {
            if let Some(attempts) = failed_req[ri] {
                outcome.failed.push(FailedRequest {
                    ticket: *ticket,
                    attempts,
                });
                continue;
            }
            let outputs: Vec<bool> = program
                .outputs()
                .iter()
                .map(|&route| match route {
                    RouteSource::Host(i) => inputs[i],
                    RouteSource::Part { part, output } => part_outputs[part][ri][output],
                })
                .collect();
            // A gate-free partition (outputs pass straight through) never
            // dispatched anything; anchor such a result at rest.
            let anchor = anchors[ri].take().unwrap_or(Anchor {
                part: 0,
                shard: 0,
                wave: 0,
                axis: self.axis_policy.axis_for(0),
                line: 0,
                offset: 0,
                queue_latency: submitted_at.elapsed(),
                execute_latency: Duration::ZERO,
                attempt_latencies: vec![Duration::ZERO],
            });
            outcome.results.push(TicketResult {
                ticket: *ticket,
                shard: anchor.shard,
                wave: anchor.wave,
                axis: anchor.axis,
                line: anchor.line,
                offset: anchor.offset,
                outputs: outputs.into(),
                attempts: attempts_max[ri],
                queue_latency: anchor.queue_latency,
                execute_latency: anchor.execute_latency,
                attempt_latencies: anchor.attempt_latencies,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for ClusterCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterCore")
            .field("shards", &self.shards.len())
            .field("n", &self.shard_capacity())
            .field("batch_limit", &self.batch_limit)
            .field("pack_limit", &self.pack_limit)
            .field("axis_policy", &self.axis_policy)
            .field("max_retries", &self.max_retries)
            .field("pending", &self.pending.len())
            .field("pending_partitioned", &self.pending_partitioned.len())
            .field("compiled_programs", &self.programs.len())
            .finish()
    }
}
