//! The caller side of a spawned cluster service: cheap, cloneable
//! [`ClusterHandle`]s and waitable [`Ticket`]s.
//!
//! [`PimClusterBuilder::spawn`](crate::cluster::PimClusterBuilder::spawn)
//! moves the shard pool into a dedicated worker thread and returns a
//! `ClusterHandle`. The handle's [`submit`](ClusterHandle::submit) only
//! allocates a ticket id and pushes the request down an MPSC channel — it
//! **never blocks on shard execution** — and the returned [`Ticket`] is a
//! future: [`Ticket::wait`] parks the caller until the worker has served
//! that request, [`Ticket::try_wait`] polls, and
//! [`ClusterHandle::drain`] collects everything outstanding in bulk.
//!
//! Results flow back through a shared *board*: every flush the worker
//! completes publishes its per-ticket results (and its aggregate
//! accounting) there, and waiters are woken. Dropping every handle — or
//! calling [`ClusterHandle::close`] — shuts the worker down gracefully:
//! it serves whatever is still queued, marks the board closed, and exits.

use super::error::ClusterError;
use super::health::HealthSnapshot;
use super::outcome::{ClusterOutcome, FailedRequest, TicketResult};
use super::queue::{self, Pending, PendingPartitioned};
use super::service::{
    validate_partitioned, validate_submission, ClusterCore, FlushReport, ServiceConfig,
};
use super::worker::{self, Command};
use crate::compiler::{self, PartitionedProgram};
use crate::device::{CompiledProgram, ProgramCache};
use pimecc_netlist::NorNetlist;
use pimecc_simpler::Program;
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// The result board shared by the worker, every handle and every ticket.
pub(crate) struct Shared {
    state: Mutex<Board>,
    /// Notified on every publish, close and poison: ticket waiters and
    /// drainers re-check.
    done: Condvar,
    /// Notified when in-flight submissions resolve: backpressured
    /// producers re-check the queue bound.
    space: Condvar,
    /// The worker's latest [`HealthSnapshot`], refreshed after every
    /// flush and scrub pass. Its own lock so metrics reads never contend
    /// with the result board.
    health: Mutex<HealthSnapshot>,
}

/// The board itself (under [`Shared::state`]).
struct Board {
    /// Completed, unclaimed results keyed by ticket id. A `BTreeMap` so a
    /// bulk drain comes out sorted by ticket.
    results: BTreeMap<u64, TicketResult>,
    /// Tickets a failed flush abandoned, with that flush's error.
    dropped: HashMap<u64, ClusterError>,
    /// Dead-lettered requests: tickets whose every dispatch attempt drew
    /// an uncorrectable ECC verdict. Resolved (to
    /// [`ClusterError::RequestFailed`]) exactly once across waits and
    /// drains, like results. A `BTreeMap` so a bulk drain comes out
    /// sorted by ticket.
    failed: BTreeMap<u64, FailedRequest>,
    /// Aggregate accounting (stats, clocks, waves, shard reports) of
    /// every flush published since the last drain; its `results` vector
    /// stays empty — per-ticket results live in the map above so waits
    /// and drains claim each exactly once.
    bank: ClusterOutcome,
    /// Submissions accepted but not yet resolved (served or dropped).
    inflight: usize,
    /// Every ticket id below this has been resolved (flushes resolve the
    /// FIFO queue in contiguous id ranges). A resolved id absent from
    /// `results`/`dropped` was already claimed — waiting on it again is
    /// an error, not a park-forever.
    resolved_below: u64,
    /// Shutdown was requested; producers must stop submitting.
    closing: bool,
    /// The worker exited; everything ever submitted has been resolved.
    closed: bool,
    /// The worker panicked; unserved submissions are lost.
    poisoned: bool,
}

impl Shared {
    fn new(shards: usize) -> Self {
        Shared {
            state: Mutex::new(Board {
                results: BTreeMap::new(),
                dropped: HashMap::new(),
                failed: BTreeMap::new(),
                bank: ClusterOutcome::empty(shards),
                inflight: 0,
                resolved_below: 0,
                closing: false,
                closed: false,
                poisoned: false,
            }),
            done: Condvar::new(),
            space: Condvar::new(),
            health: Mutex::new(HealthSnapshot::empty(shards)),
        }
    }

    /// Replaces the published health snapshot (worker-side).
    pub(crate) fn set_health(&self, snapshot: HealthSnapshot) {
        *self.health.lock().unwrap_or_else(|e| e.into_inner()) = snapshot;
    }

    /// Locks the board, riding through poisoned mutexes: the board must
    /// stay readable even after a worker panic (that is the whole point
    /// of the poison flag).
    fn lock(&self) -> MutexGuard<'_, Board> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes one flush: per-ticket results onto the board, aggregates
    /// into the bank, dropped tickets marked with the flush's error, and
    /// every waiter woken.
    pub(crate) fn publish(&self, report: FlushReport) {
        let FlushReport {
            mut outcome,
            dropped,
            error,
        } = report;
        // Dead letters resolve their tickets (to an explicit error) the
        // same way results do; they move onto the board, not into the
        // bank, so waits and drains claim each exactly once.
        let failed = std::mem::take(&mut outcome.failed);
        let resolved = outcome.results.len() + dropped.len() + failed.len();
        let resolved_below = outcome
            .results
            .iter()
            .map(|r| r.ticket.id())
            .chain(dropped.iter().map(|t| t.id()))
            .chain(failed.iter().map(|f| f.ticket.id()))
            .max()
            .map(|max| max + 1);
        let mut board = self.lock();
        if let Some(below) = resolved_below {
            board.resolved_below = board.resolved_below.max(below);
        }
        for result in outcome.results.drain(..) {
            board.results.insert(result.ticket.id(), result);
        }
        for f in failed {
            board.failed.insert(f.ticket.id(), f);
        }
        board.bank.merge(outcome);
        if let Some(error) = error {
            for ticket in dropped {
                board.dropped.insert(ticket.id(), error.clone());
            }
        }
        board.inflight = board.inflight.saturating_sub(resolved);
        drop(board);
        self.done.notify_all();
        self.space.notify_all();
    }

    /// Marks the worker's clean exit: nothing submitted remains
    /// unresolved, waiters on absent tickets may stop waiting.
    pub(crate) fn finish(&self) {
        let mut board = self.lock();
        board.closing = true;
        board.closed = true;
        drop(board);
        self.done.notify_all();
        self.space.notify_all();
    }

    /// Marks the worker's panic; all waiters and producers are released
    /// with [`ClusterError::WorkerPoisoned`].
    pub(crate) fn poison(&self) {
        let mut board = self.lock();
        board.closing = true;
        board.closed = true;
        board.poisoned = true;
        drop(board);
        self.done.notify_all();
        self.space.notify_all();
    }
}

/// The submission side: the channel sender and the ticket-id allocator,
/// held **only by handles** (never by tickets or the worker), so dropping
/// the last handle disconnects the channel and the worker winds down on
/// its own.
struct Producer {
    state: Mutex<ProducerState>,
}

struct ProducerState {
    /// `None` once the service is closed.
    tx: Option<Sender<Command>>,
    /// Next ticket id; allocation and channel send happen under one lock,
    /// so ticket ids are dense in channel order — the property the
    /// determinism guarantee ("a pure function of submission order")
    /// builds on.
    next_ticket: u64,
}

impl Producer {
    fn lock(&self) -> MutexGuard<'_, ProducerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Asks the worker for a flush, if it is still reachable.
    fn nudge_flush(&self) {
        if let Some(tx) = &self.lock().tx {
            let _ = tx.send(Command::Flush);
        }
    }
}

/// A submission receipt from a spawned cluster service — a *future* for
/// one request's [`TicketResult`].
///
/// Unlike the synchronous [`Ticket`](crate::cluster::Ticket) (a plain
/// sequence number redeemed against a flush outcome), a service ticket is
/// waitable: [`Ticket::wait`] blocks until the worker has served the
/// request, [`Ticket::try_wait`] polls without blocking. The underlying
/// sequence number ([`Ticket::id`]) is allocated in channel order and is
/// the same number that appears in [`TicketResult::ticket`].
///
/// Tickets do not keep the service alive: they hold no channel sender, so
/// outstanding tickets never prevent the worker from shutting down when
/// every [`ClusterHandle`] is gone — the worker serves the whole queue on
/// its way out, and the results stay claimable.
///
/// # Example
///
/// ```
/// use pimecc::prelude::*;
/// use pimecc::netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let ins = b.inputs(2);
/// let g = b.xor(ins[0], ins[1]);
/// b.output(g);
/// let netlist = b.finish();
///
/// let handle = PimClusterBuilder::new(2, 30, 3).spawn()?;
/// let program = handle.compile(&netlist.to_nor())?;
///
/// let ticket = handle.submit(&program, vec![true, false])?;
/// // `wait` asks the worker to flush and parks until the result lands.
/// let result = ticket.wait()?;
/// assert_eq!(result.outputs, netlist.eval(&[true, false]));
/// assert_eq!(result.ticket.id(), ticket.id());
/// handle.close()?;
/// # Ok(())
/// # }
/// ```
#[must_use = "a dropped service ticket cannot be waited on; its result is only reachable via drain()"]
pub struct Ticket {
    id: queue::Ticket,
    shared: Arc<Shared>,
    /// Weak so tickets never keep the channel (and thus the worker)
    /// alive; used to nudge a flush when a caller waits.
    producer: Weak<Producer>,
}

impl Ticket {
    /// The ticket's service-lifetime sequence number.
    pub fn id(&self) -> u64 {
        self.id.id()
    }

    /// The plain sequence-number ticket, for cross-referencing the
    /// [`ClusterOutcome`] a [`ClusterHandle::drain`] returns
    /// (e.g. [`ClusterOutcome::outputs_for`]).
    pub fn key(&self) -> queue::Ticket {
        self.id
    }

    /// Blocks until the service has served this submission and returns
    /// its result, claiming it: each ticket's result is delivered exactly
    /// once across `wait` and [`ClusterHandle::drain`].
    ///
    /// Waiting is demand-driven: the call first asks the worker to flush
    /// (so a wait never deadlocks on a service with no auto-flush
    /// configured), then parks until the result is published.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::Shard`] — the flush that should have served this
    ///   ticket failed before dispatching it;
    /// * [`ClusterError::RequestFailed`] — the request was dead-lettered:
    ///   every allowed attempt executed on lines with uncorrectable ECC
    ///   verdicts, so no verified-correct output exists (resubmitting is
    ///   safe);
    /// * [`ClusterError::WorkerPoisoned`] — the worker thread panicked;
    /// * [`ClusterError::TicketUnserved`] — this ticket's result was
    ///   already claimed (waited twice, or collected by a
    ///   [`ClusterHandle::drain`]).
    ///
    /// # Example
    ///
    /// ```
    /// use pimecc::prelude::*;
    /// use pimecc::netlist::NetlistBuilder;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = NetlistBuilder::new();
    /// let ins = b.inputs(3);
    /// let g = b.maj(ins[0], ins[1], ins[2]);
    /// b.output(g);
    /// let netlist = b.finish();
    ///
    /// let handle = PimClusterBuilder::new(1, 30, 3).spawn()?;
    /// let program = handle.compile(&netlist.to_nor())?;
    /// let tickets: Vec<_> = (0..8u32)
    ///     .map(|v| handle.submit(&program, (0..3).map(|i| v >> i & 1 != 0).collect()))
    ///     .collect::<Result<_, _>>()?;
    /// for (v, t) in tickets.into_iter().enumerate() {
    ///     let inputs: Vec<bool> = (0..3).map(|i| v as u32 >> i & 1 != 0).collect();
    ///     assert_eq!(t.wait()?.outputs, netlist.eval(&inputs));
    /// }
    /// handle.close()?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn wait(&self) -> Result<TicketResult, ClusterError> {
        // Demand-driven flush: don't leave the result hostage to a
        // deadline (or to a service configured with no auto-flush at
        // all).
        if let Some(producer) = self.producer.upgrade() {
            producer.nudge_flush();
        }
        let mut board = self.shared.lock();
        loop {
            if let Some(result) = board.results.remove(&self.id.id()) {
                return Ok(result);
            }
            if let Some(error) = board.dropped.remove(&self.id.id()) {
                return Err(error);
            }
            if let Some(f) = board.failed.remove(&self.id.id()) {
                return Err(f.error());
            }
            if self.id.id() < board.resolved_below {
                // Resolved but no longer on the board: already claimed by
                // an earlier wait or a drain.
                return Err(ClusterError::TicketUnserved {
                    ticket: self.id.id(),
                });
            }
            if board.poisoned {
                return Err(ClusterError::WorkerPoisoned);
            }
            if board.closed {
                return Err(ClusterError::TicketUnserved {
                    ticket: self.id.id(),
                });
            }
            board = self
                .shared
                .done
                .wait(board)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking [`Ticket::wait`]: `Ok(Some(result))` once served,
    /// `Ok(None)` while still in flight. Unlike `wait`, polling does
    /// *not* nudge a flush — a deadline- or threshold-configured service
    /// is expected to get there on its own.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`].
    pub fn try_wait(&self) -> Result<Option<TicketResult>, ClusterError> {
        let mut board = self.shared.lock();
        if let Some(result) = board.results.remove(&self.id.id()) {
            return Ok(Some(result));
        }
        if let Some(error) = board.dropped.remove(&self.id.id()) {
            return Err(error);
        }
        if let Some(f) = board.failed.remove(&self.id.id()) {
            return Err(f.error());
        }
        if self.id.id() < board.resolved_below {
            return Err(ClusterError::TicketUnserved {
                ticket: self.id.id(),
            });
        }
        if board.poisoned {
            return Err(ClusterError::WorkerPoisoned);
        }
        if board.closed {
            return Err(ClusterError::TicketUnserved {
                ticket: self.id.id(),
            });
        }
        Ok(None)
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id.id()).finish()
    }
}

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A cheap, cloneable front door to a spawned cluster service.
///
/// Created by [`PimClusterBuilder::spawn`], which moves the shard pool
/// into a dedicated worker thread. Any number of threads may clone the
/// handle and submit concurrently; [`ClusterHandle::submit`] allocates a
/// ticket id, pushes the request down the worker's channel and returns —
/// it never blocks on shard execution. The worker flushes on the
/// configured pending-count threshold
/// ([`auto_flush_at`](crate::cluster::PimClusterBuilder::auto_flush_at)),
/// on the configured deadline
/// ([`flush_after`](crate::cluster::PimClusterBuilder::flush_after)),
/// on an explicit [`ClusterHandle::flush`] — or when a caller waits.
///
/// Shutdown is explicit ([`ClusterHandle::close`] — drains the queue,
/// then joins the worker) or implicit (dropping every handle disconnects
/// the channel; the worker serves the stragglers and exits).
///
/// [`PimClusterBuilder::spawn`]: crate::cluster::PimClusterBuilder::spawn
/// [`PimClusterBuilder::auto_flush_at`]: crate::cluster::PimClusterBuilder::auto_flush_at
/// [`PimClusterBuilder::flush_after`]: crate::cluster::PimClusterBuilder::flush_after
///
/// # Example
///
/// ```
/// use pimecc::prelude::*;
/// use pimecc::netlist::NetlistBuilder;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let ins = b.inputs(2);
/// let g = b.xor(ins[0], ins[1]);
/// b.output(g);
/// let netlist = b.finish();
///
/// // Two 30x30 shards behind a worker that flushes 16-deep batches, or
/// // whatever is pending once the oldest request is 2 ms old.
/// let handle = PimClusterBuilder::new(2, 30, 3)
///     .auto_flush_at(16)
///     .flush_after(Duration::from_millis(2))
///     .spawn()?;
/// let program = handle.compile(&netlist.to_nor())?;
///
/// // Producers clone the handle freely; submission never blocks on
/// // execution.
/// let tickets: Vec<_> = (0..40u32)
///     .map(|v| handle.submit(&program, vec![v & 1 != 0, v & 2 != 0]))
///     .collect::<Result<_, _>>()?;
///
/// // Collect everything: close() drains the queue and stops the worker,
/// // drain() hands back the bulk outcome.
/// handle.close()?;
/// let outcome = handle.drain()?;
/// assert_eq!(outcome.requests(), 40);
/// for (v, t) in tickets.iter().enumerate() {
///     let want = netlist.eval(&[v as u32 & 1 != 0, v as u32 & 2 != 0]);
///     assert_eq!(outcome.outputs_for(t.key()), Some(want.as_slice()));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
#[must_use]
pub struct ClusterHandle {
    producer: Arc<Producer>,
    shared: Arc<Shared>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
    /// Handle-side compile cache: mapping needs only the shared geometry,
    /// so compiles never round-trip through the worker.
    programs: Arc<Mutex<ProgramCache>>,
    shards: usize,
    /// Line length of the tallest shard — the admission bound.
    shard_capacity: usize,
    /// Distinct shard line lengths, ascending — the compile path tries
    /// them smallest-first (pools may mix geometries).
    capacities: Vec<usize>,
    /// Total lines across shards.
    total_lines: usize,
    queue_limit: Option<usize>,
}

/// Moves `core` into a fresh worker thread and returns the first handle.
pub(crate) fn spawn(core: ClusterCore, cfg: ServiceConfig) -> ClusterHandle {
    let shards = core.shards.len();
    let shard_capacity = core.shard_capacity();
    let capacities = core.distinct_capacities();
    let total_lines = core.total_lines();
    let shared = Arc::new(Shared::new(shards));
    // Publish the initial health snapshot *before* the worker thread
    // exists: a `metrics()` read racing the spawn must already see the
    // configured deadline and shard states, not the board's default.
    shared.set_health(core.health.snapshot());
    let (tx, rx) = mpsc::channel();
    let worker_shared = Arc::clone(&shared);
    let worker = std::thread::Builder::new()
        .name("pimecc-cluster".into())
        .spawn(move || worker::run(core, rx, worker_shared, cfg))
        .expect("spawn cluster worker thread");
    ClusterHandle {
        producer: Arc::new(Producer {
            state: Mutex::new(ProducerState {
                tx: Some(tx),
                next_ticket: 0,
            }),
        }),
        shared,
        worker: Arc::new(Mutex::new(Some(worker))),
        programs: Arc::new(Mutex::new(ProgramCache::default())),
        shards,
        shard_capacity,
        capacities,
        total_lines,
        queue_limit: cfg.queue_limit,
    }
}

impl ClusterHandle {
    /// Number of shards behind the service.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Line length of the pool's tallest shard — the widest program the
    /// service admits. On a uniform pool this is every shard's row count.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Total rows across shards — the service's requests-per-wave
    /// ceiling (the sum of per-shard line counts on a mixed pool).
    pub fn capacity(&self) -> usize {
        self.total_lines
    }

    /// Submissions accepted but not yet resolved (a snapshot; concurrent
    /// producers and the worker move it constantly).
    pub fn in_flight(&self) -> usize {
        self.shared.lock().inflight
    }

    /// Whether the service has been closed (explicitly or because the
    /// worker exited).
    pub fn is_closed(&self) -> bool {
        self.shared.lock().closing
    }

    /// The service's latest [`HealthSnapshot`]: per-shard scrub / error /
    /// wear / quarantine ledgers, p50/p95/p99 queue and execute latency,
    /// and the effective auto-flush deadline.
    ///
    /// The worker publishes a fresh snapshot after every flush and every
    /// background scrub pass; this read never blocks on shard execution
    /// (it copies the last published snapshot). A snapshot taken right
    /// after `submit` may not yet include that submission — flush or
    /// wait first when exact counts matter.
    pub fn metrics(&self) -> HealthSnapshot {
        self.shared
            .health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Maps `netlist` onto the shards' row width with SIMPLER — once per
    /// structure, cached on the handle (clones share the cache). On a
    /// mixed pool the distinct line lengths are tried smallest-first, as
    /// [`PimCluster::compile`](crate::cluster::PimCluster::compile) does.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Map`] when the function fits no shard row.
    pub fn compile(&self, netlist: &NorNetlist) -> Result<CompiledProgram, ClusterError> {
        let mut cache = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        let mut last = None;
        for &row_size in &self.capacities {
            match cache.compile(netlist, row_size) {
                Ok(p) => return Ok(p),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("a cluster has at least one shard").into())
    }

    /// Maps `netlist` for co-packing (see
    /// [`PimCluster::compile_packed`](crate::cluster::PimCluster::compile_packed)).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Map`] when the function fits no shard row even at
    /// full width.
    pub fn compile_packed(&self, netlist: &NorNetlist) -> Result<CompiledProgram, ClusterError> {
        let mut cache = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        let mut last = None;
        for &row_size in &self.capacities {
            match cache.compile_packed(netlist, row_size) {
                Ok(p) => return Ok(p),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("a cluster has at least one shard").into())
    }

    /// Adopts an externally mapped [`Program`], cached by its
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// [`ClusterError::ProgramTooWide`] when the program was mapped for a
    /// wider row than the shards have.
    pub fn adopt(&self, program: &Program) -> Result<CompiledProgram, ClusterError> {
        if program.row_size > self.shard_capacity {
            return Err(ClusterError::ProgramTooWide {
                row_size: program.row_size,
                n: self.shard_capacity,
            });
        }
        let mut cache = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        Ok(cache.adopt(program))
    }

    /// Enqueues one request and returns its waitable [`Ticket`]. The call
    /// validates, allocates a ticket id and pushes the request down the
    /// worker's channel — it never blocks on shard execution. With a
    /// [`queue_limit`](crate::cluster::PimClusterBuilder::queue_limit)
    /// configured, a full queue *does* block until the worker catches up
    /// (backpressure); use [`ClusterHandle::try_submit`] to fail fast
    /// instead.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InputArity`] / [`ClusterError::ProgramTooWide`]
    ///   as for the synchronous
    ///   [`submit`](crate::cluster::PimCluster::submit);
    /// * [`ClusterError::Closed`] after [`ClusterHandle::close`];
    /// * [`ClusterError::WorkerPoisoned`] if the worker panicked.
    pub fn submit(
        &self,
        program: &CompiledProgram,
        inputs: Vec<bool>,
    ) -> Result<Ticket, ClusterError> {
        self.submit_inner(program, inputs, true)
    }

    /// [`ClusterHandle::submit`] that refuses to wait for queue space:
    /// with a bounded queue at its limit it returns
    /// [`ClusterError::Saturated`] instead of blocking.
    ///
    /// # Errors
    ///
    /// As [`ClusterHandle::submit`], plus [`ClusterError::Saturated`].
    pub fn try_submit(
        &self,
        program: &CompiledProgram,
        inputs: Vec<bool>,
    ) -> Result<Ticket, ClusterError> {
        self.submit_inner(program, inputs, false)
    }

    fn submit_inner(
        &self,
        program: &CompiledProgram,
        inputs: Vec<bool>,
        block: bool,
    ) -> Result<Ticket, ClusterError> {
        validate_submission(program, &inputs, self.shard_capacity)?;
        let program = program.clone();
        self.enqueue(block, move |ticket| {
            Command::Submit(Pending {
                ticket,
                submitted_at: Instant::now(),
                program,
                inputs,
            })
        })
    }

    /// Compiles a netlist too wide for one shard line into a
    /// [`PartitionedProgram`] — the service twin of
    /// [`PimCluster::compile_partitioned`](crate::cluster::PimCluster::compile_partitioned).
    /// Compilation runs on the caller's thread against the handle-side
    /// cache (clones share it); the worker is not involved.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Map`] when even single-gate partitions cannot be
    /// mapped onto the shard row.
    pub fn compile_partitioned(
        &self,
        netlist: &NorNetlist,
    ) -> Result<Arc<PartitionedProgram>, ClusterError> {
        let mut cache = self.programs.lock().unwrap_or_else(|e| e.into_inner());
        Ok(Arc::new(compiler::compile_partitioned(
            &mut cache,
            netlist,
            self.shard_capacity,
        )?))
    }

    /// Enqueues one partitioned request and returns its waitable
    /// [`Ticket`] — the partitioned twin of [`ClusterHandle::submit`].
    /// The ticket resolves only when the **final** sub-program wave of
    /// its request has landed: the worker serves the whole dependency
    /// chain within one flush and publishes a single merged result.
    ///
    /// # Errors
    ///
    /// As [`ClusterHandle::submit`].
    pub fn submit_partitioned(
        &self,
        program: &Arc<PartitionedProgram>,
        inputs: Vec<bool>,
    ) -> Result<Ticket, ClusterError> {
        self.submit_partitioned_inner(program, inputs, true)
    }

    /// [`ClusterHandle::submit_partitioned`] that refuses to wait for
    /// queue space (see [`ClusterHandle::try_submit`]).
    ///
    /// # Errors
    ///
    /// As [`ClusterHandle::submit_partitioned`], plus
    /// [`ClusterError::Saturated`].
    pub fn try_submit_partitioned(
        &self,
        program: &Arc<PartitionedProgram>,
        inputs: Vec<bool>,
    ) -> Result<Ticket, ClusterError> {
        self.submit_partitioned_inner(program, inputs, false)
    }

    fn submit_partitioned_inner(
        &self,
        program: &Arc<PartitionedProgram>,
        inputs: Vec<bool>,
        block: bool,
    ) -> Result<Ticket, ClusterError> {
        validate_partitioned(program, &inputs, self.shard_capacity)?;
        let program = Arc::clone(program);
        self.enqueue(block, move |ticket| {
            Command::SubmitPartitioned(PendingPartitioned {
                ticket,
                submitted_at: Instant::now(),
                program,
                inputs,
            })
        })
    }

    /// The shared submission path: reserve an in-flight slot, allocate
    /// the next ticket id, build the command and push it down the
    /// worker's channel.
    fn enqueue(
        &self,
        block: bool,
        make: impl FnOnce(queue::Ticket) -> Command,
    ) -> Result<Ticket, ClusterError> {
        // Phase 1: reserve an in-flight slot on the board (this is where
        // a bounded queue backpressures).
        {
            let mut board = self.shared.lock();
            loop {
                if board.poisoned {
                    return Err(ClusterError::WorkerPoisoned);
                }
                if board.closing {
                    return Err(ClusterError::Closed);
                }
                match self.queue_limit {
                    Some(limit) if board.inflight >= limit => {
                        if !block {
                            return Err(ClusterError::Saturated { limit });
                        }
                        board = self
                            .shared
                            .space
                            .wait(board)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            board.inflight += 1;
        }
        // Phase 2: allocate the id and enqueue under the producer lock —
        // ids are dense in channel order, and a concurrent close() (which
        // also takes this lock first) can never slip a Close command in
        // between.
        let mut producer = self.producer.lock();
        let closing = self.shared.lock().closing;
        let tx = match (&producer.tx, closing) {
            (Some(tx), false) => tx.clone(),
            _ => {
                drop(producer);
                self.unreserve();
                return Err(self.closed_error());
            }
        };
        let id = producer.next_ticket;
        if tx.send(make(queue::Ticket(id))).is_err() {
            // The worker is gone without a close(): it panicked.
            drop(producer);
            self.unreserve();
            return Err(self.closed_error());
        }
        producer.next_ticket += 1;
        Ok(Ticket {
            id: queue::Ticket(id),
            shared: Arc::clone(&self.shared),
            producer: Arc::downgrade(&self.producer),
        })
    }

    /// Rolls back a phase-1 reservation whose submission never reached
    /// the channel.
    fn unreserve(&self) {
        let mut board = self.shared.lock();
        board.inflight = board.inflight.saturating_sub(1);
        drop(board);
        self.shared.space.notify_all();
    }

    /// The error a dead service answers with.
    fn closed_error(&self) -> ClusterError {
        if self.shared.lock().poisoned {
            ClusterError::WorkerPoisoned
        } else {
            ClusterError::Closed
        }
    }

    /// Asks the worker to flush everything pending *now*, without waiting
    /// for a threshold or deadline. Returns as soon as the request is
    /// enqueued; redeem results via [`Ticket::wait`] or
    /// [`ClusterHandle::drain`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::Closed`] / [`ClusterError::WorkerPoisoned`] when
    /// the service is gone.
    pub fn flush(&self) -> Result<(), ClusterError> {
        let producer = self.producer.lock();
        let tx = producer.tx.clone();
        drop(producer);
        match tx {
            Some(tx) if tx.send(Command::Flush).is_ok() => Ok(()),
            _ => Err(self.closed_error()),
        }
    }

    /// Collects, in bulk, everything the service has served that no one
    /// has claimed yet: asks the worker to flush, waits until nothing is
    /// in flight, and returns the merged [`ClusterOutcome`] — per-ticket
    /// results sorted by ticket plus the aggregate accounting of every
    /// flush since the previous drain.
    ///
    /// Each ticket's result is delivered exactly once across
    /// [`Ticket::wait`], [`Ticket::try_wait`] and `drain`: after a
    /// `close()`, one final `drain()` returns precisely the tickets
    /// nobody waited on.
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerPoisoned`] if the worker panicked. Results
    /// published before the panic are not reachable through `drain` (it
    /// reports the poisoning instead); they stay claimable per ticket via
    /// [`Ticket::wait`] / [`Ticket::try_wait`], which deliver a result
    /// before reporting the poison.
    pub fn drain(&self) -> Result<ClusterOutcome, ClusterError> {
        // Nudge — a no-op if the service is already closed (then the
        // worker flushed everything on its way out).
        self.producer.nudge_flush();
        let mut board = self.shared.lock();
        while board.inflight > 0 && !board.closed {
            board = self
                .shared
                .done
                .wait(board)
                .unwrap_or_else(|e| e.into_inner());
        }
        if board.poisoned {
            return Err(ClusterError::WorkerPoisoned);
        }
        let shards = board.bank.shard_reports.len();
        let mut outcome = std::mem::replace(&mut board.bank, ClusterOutcome::empty(shards));
        outcome.results = std::mem::take(&mut board.results).into_values().collect();
        // Unclaimed dead letters ride out with the drain (BTreeMap keeps
        // them ticket-sorted), each exactly once like any result.
        outcome.failed = std::mem::take(&mut board.failed).into_values().collect();
        Ok(outcome)
    }

    /// Graceful shutdown: stops accepting submissions, lets the worker
    /// drain everything already queued, and joins it. Results remain on
    /// the board — claim them with [`Ticket::wait`] (already-served
    /// tickets), [`Ticket::try_wait`] or one final
    /// [`ClusterHandle::drain`].
    ///
    /// Idempotent across clones: the first call shuts the service down,
    /// later calls just wait for that shutdown to finish.
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerPoisoned`] if the worker panicked (now or
    /// earlier).
    pub fn close(&self) -> Result<(), ClusterError> {
        {
            let mut producer = self.producer.lock();
            let mut board = self.shared.lock();
            if !board.closing {
                board.closing = true;
                drop(board);
                // Backpressured producers must re-check and bail out.
                self.shared.space.notify_all();
                if let Some(tx) = producer.tx.take() {
                    let _ = tx.send(Command::Close);
                }
            } else {
                producer.tx = None;
            }
        }
        let worker = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        match worker {
            Some(worker) => {
                if worker.join().is_err() {
                    return Err(ClusterError::WorkerPoisoned);
                }
            }
            None => {
                // A sibling clone is (or was) joining; wait for the
                // worker to finish via the board.
                let mut board = self.shared.lock();
                while !board.closed {
                    board = self
                        .shared
                        .done
                        .wait(board)
                        .unwrap_or_else(|e| e.into_inner());
                }
                if board.poisoned {
                    return Err(ClusterError::WorkerPoisoned);
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let board = self.shared.lock();
        f.debug_struct("ClusterHandle")
            .field("shards", &self.shards)
            .field("n", &self.shard_capacity)
            .field("queue_limit", &self.queue_limit)
            .field("in_flight", &board.inflight)
            .field("unclaimed", &board.results.len())
            .field("closing", &board.closing)
            .field("closed", &board.closed)
            .field("poisoned", &board.poisoned)
            .finish()
    }
}
