//! Cluster outcomes: per-ticket results plus whole-cluster accounting.

use super::error::ClusterError;
use super::queue::Ticket;
use crate::device::Axis;
use pimecc_core::{CheckReport, MachineStats};
use std::sync::Arc;
use std::time::Duration;

/// One request's output bits, sliced out of its batch's **shared**
/// readback arena: every result of a batch points into one
/// `Arc<[bool]>`, so resolving a million tickets costs one allocation
/// per dispatched batch instead of one `Vec<bool>` per request.
///
/// Derefs to `&[bool]`, so indexing, iteration and comparisons read like
/// the old owned vector; [`OutputSlice::as_slice`] is the explicit
/// accessor.
#[derive(Debug, Clone)]
pub struct OutputSlice {
    /// The batch's whole request-major readback buffer.
    bits: Arc<[bool]>,
    /// First bit of this request's window.
    start: usize,
    /// Bits in the window (= the program's output count).
    len: usize,
}

impl OutputSlice {
    pub(crate) fn new(bits: Arc<[bool]>, start: usize, len: usize) -> Self {
        debug_assert!(start + len <= bits.len());
        OutputSlice { bits, start, len }
    }

    /// The output bits.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits[self.start..self.start + self.len]
    }
}

impl std::ops::Deref for OutputSlice {
    type Target = [bool];

    fn deref(&self) -> &[bool] {
        self.as_slice()
    }
}

impl Default for OutputSlice {
    fn default() -> Self {
        OutputSlice {
            bits: Arc::from([] as [bool; 0]),
            start: 0,
            len: 0,
        }
    }
}

impl From<Vec<bool>> for OutputSlice {
    fn from(bits: Vec<bool>) -> Self {
        let len = bits.len();
        OutputSlice {
            bits: bits.into(),
            start: 0,
            len,
        }
    }
}

impl PartialEq for OutputSlice {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OutputSlice {}

impl PartialEq<[bool]> for OutputSlice {
    fn eq(&self, other: &[bool]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[bool]> for OutputSlice {
    fn eq(&self, other: &&[bool]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<bool>> for OutputSlice {
    fn eq(&self, other: &Vec<bool>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<OutputSlice> for Vec<bool> {
    fn eq(&self, other: &OutputSlice) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Result of one submitted request, delivered inside a [`ClusterOutcome`]
/// (or, on the async service, by
/// [`Ticket::wait`](crate::cluster::handle::Ticket::wait)).
///
/// Equality compares the *model-level* identity of the result — ticket,
/// placement and outputs — and deliberately ignores the two host-side
/// latency clocks, which vary run to run: two deterministic replays of the
/// same submission order compare equal even though their wall-clock
/// timings differ.
#[derive(Debug, Clone)]
pub struct TicketResult {
    /// The submission this result answers.
    pub ticket: Ticket,
    /// Shard the request executed on.
    pub shard: usize,
    /// Dispatch wave (0-based, within the flush) the request rode.
    pub wave: usize,
    /// Axis the wave occupied on its shard.
    pub axis: Axis,
    /// Line (row under [`Axis::Rows`], column under [`Axis::Cols`]) the
    /// request executed on.
    pub line: usize,
    /// First cell of the request's slot within its line (0 unless
    /// co-packed).
    pub offset: usize,
    /// The program's primary outputs for this request — a window into the
    /// batch's shared readback arena (see [`OutputSlice`]).
    pub outputs: OutputSlice,
    /// Execution attempts this result took: `1` for the common untouched
    /// request, `1 + k` when `k` waves suppressed it over uncorrectable
    /// input verdicts before a clean wave served it.
    pub attempts: u32,
    /// Host wall-clock time the request sat in the queue, **cumulative
    /// across attempts**: original submission to the dispatch of the wave
    /// that finally served it. Excluded from equality.
    pub queue_latency: Duration,
    /// Host wall-clock execute time, **cumulative across attempts** (the
    /// sum of `attempt_latencies`) — what the caller actually waited on
    /// shards, not just the final clean batch. Excluded from equality.
    pub execute_latency: Duration,
    /// Per-attempt execute latency, oldest first (`attempts` entries).
    /// Excluded from equality.
    pub attempt_latencies: Vec<Duration>,
}

impl PartialEq for TicketResult {
    fn eq(&self, other: &Self) -> bool {
        // Latency clocks are measurements, not identity — see type docs.
        self.ticket == other.ticket
            && self.shard == other.shard
            && self.wave == other.wave
            && self.axis == other.axis
            && self.line == other.line
            && self.offset == other.offset
            && self.outputs == other.outputs
            && self.attempts == other.attempts
    }
}

impl Eq for TicketResult {}

/// A request the cluster gave up on: every allowed attempt landed on
/// lines with uncorrectable check verdicts, so no trustworthy output
/// exists. Surfaced in [`ClusterOutcome::failed`] (sync front-end) and as
/// [`ClusterError::RequestFailed`] from
/// [`Ticket::wait`](crate::cluster::handle::Ticket::wait) /
/// [`ClusterHandle::drain`](crate::cluster::handle::ClusterHandle::drain)
/// (service front-end) — the dead-letter half of the no-silently-wrong-
/// answers contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedRequest {
    /// The submission that failed.
    pub ticket: Ticket,
    /// Attempts made before giving up (`1 + max_retries`).
    pub attempts: u32,
}

impl FailedRequest {
    /// The explicit error this dead-letter resolves to.
    pub fn error(&self) -> ClusterError {
        ClusterError::RequestFailed {
            ticket: self.ticket.id(),
            attempts: self.attempts,
        }
    }
}

/// One shard's share of a flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardReport {
    /// Batches the shard executed.
    pub batches: u64,
    /// Requests the shard served.
    pub requests: u64,
    /// MEM cycles the shard was busy (its own clock; shards tick in
    /// parallel, so these do **not** sum to wall cycles).
    pub busy_mem_cycles: u64,
    /// Gate evaluations the shard performed.
    pub gate_evals: u64,
    /// Crossbar lines its batches occupied, summed over batches.
    pub lines_occupied: u64,
    /// Crossbar lines its batches had available (batches × n).
    pub line_capacity: u64,
    /// Cells its batches reserved (requests × slot width), summed over
    /// batches.
    pub cells_occupied: u64,
    /// Cells its batches had available (batches × n²).
    pub cell_capacity: u64,
    /// This shard's share of the pre-execution input checks — the
    /// per-shard attribution the cluster-wide
    /// [`ClusterOutcome::input_check`] aggregate loses, and the signal a
    /// health loop's error budget feeds on.
    pub input_check: CheckReport,
}

impl ShardReport {
    /// Fraction of the flush's wall-clock MEM cycles this shard was busy —
    /// 1.0 is a shard that never waited on the slowest member of any wave.
    pub fn utilization(&self, wall_mem_cycles: u64) -> f64 {
        if wall_mem_cycles == 0 {
            0.0
        } else {
            self.busy_mem_cycles as f64 / wall_mem_cycles as f64
        }
    }

    /// Fraction of dispatched *lines* that carried at least one request —
    /// the occupancy metric of the row-only scheduler, blind to how much
    /// of each line is used.
    pub fn line_utilization(&self) -> f64 {
        if self.line_capacity == 0 {
            0.0
        } else {
            self.lines_occupied as f64 / self.line_capacity as f64
        }
    }

    /// Fraction of dispatched *cells* reserved by placed requests — the
    /// metric that makes co-packing gains visible: a full-width program
    /// and four co-packed narrow requests occupy the same lines but very
    /// different cell counts.
    pub fn cell_utilization(&self) -> f64 {
        if self.cell_capacity == 0 {
            0.0
        } else {
            self.cells_occupied as f64 / self.cell_capacity as f64
        }
    }
}

/// Result of one [`PimCluster::flush`](crate::cluster::PimCluster::flush):
/// every ticket served since the previous flush, with the cluster-wide and
/// per-shard accounting.
///
/// Two clocks matter. `stats` sums the activity of every shard (total
/// machine work, what an energy model wants); `wall_mem_cycles` counts
/// elapsed MEM cycles — per wave, only the *slowest* shard, because shards
/// tick in parallel. Throughput figures use the wall clock.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct ClusterOutcome {
    /// One result per served ticket, sorted by ticket.
    pub results: Vec<TicketResult>,
    /// Summed machine activity of all shards.
    pub stats: MachineStats,
    /// Aggregated pre-execution input checks of every dispatched batch.
    pub input_check: CheckReport,
    /// Total gate evaluations performed across shards.
    pub gate_evals: u64,
    /// Elapsed MEM cycles: per wave the maximum over the shards that ran,
    /// summed over waves.
    pub wall_mem_cycles: u64,
    /// Dispatch waves the flush needed (0 for an empty flush).
    pub waves: usize,
    /// Per-shard share of the flush, indexed by shard.
    pub shard_reports: Vec<ShardReport>,
    /// Requests that exhausted their retry budget, sorted by ticket.
    /// These tickets have **no** entry in `results` — they resolve to an
    /// explicit error instead of an output.
    pub failed: Vec<FailedRequest>,
    /// Re-dispatches performed: suppressed suspect results that were sent
    /// back to a later wave (each retried ticket counts once per extra
    /// attempt).
    pub retries: u64,
}

impl ClusterOutcome {
    pub(crate) fn empty(shards: usize) -> Self {
        ClusterOutcome {
            results: Vec::new(),
            stats: MachineStats::default(),
            input_check: CheckReport::default(),
            gate_evals: 0,
            wall_mem_cycles: 0,
            waves: 0,
            shard_reports: vec![ShardReport::default(); shards],
            failed: Vec::new(),
            retries: 0,
        }
    }

    /// Folds `other` (a later partial flush) into this outcome — used to
    /// combine auto-flushed waves with the final explicit flush.
    pub(crate) fn merge(&mut self, other: ClusterOutcome) {
        self.results.extend(other.results);
        self.failed.extend(other.failed);
        self.failed.sort_by_key(|f| f.ticket);
        self.retries += other.retries;
        self.stats += other.stats;
        self.input_check += other.input_check;
        self.gate_evals += other.gate_evals;
        self.wall_mem_cycles += other.wall_mem_cycles;
        self.waves += other.waves;
        for (mine, theirs) in self.shard_reports.iter_mut().zip(&other.shard_reports) {
            mine.batches += theirs.batches;
            mine.requests += theirs.requests;
            mine.busy_mem_cycles += theirs.busy_mem_cycles;
            mine.gate_evals += theirs.gate_evals;
            mine.lines_occupied += theirs.lines_occupied;
            mine.line_capacity += theirs.line_capacity;
            mine.cells_occupied += theirs.cells_occupied;
            mine.cell_capacity += theirs.cell_capacity;
            mine.input_check += theirs.input_check;
        }
    }

    /// Number of requests served.
    pub fn requests(&self) -> usize {
        self.results.len()
    }

    /// The outputs of one submission, if this flush served it.
    ///
    /// `results` is sorted by ticket, so the lookup is a binary search.
    pub fn outputs_for(&self, ticket: Ticket) -> Option<&[bool]> {
        self.results
            .binary_search_by_key(&ticket, |r| r.ticket)
            .ok()
            .map(|i| self.results[i].outputs.as_slice())
    }

    /// The headline figure: aggregate gate evaluations per *elapsed* MEM
    /// cycle. Grows with both batch depth (amortization inside a shard)
    /// and shard count (waves run in parallel).
    pub fn gate_evals_per_mem_cycle(&self) -> f64 {
        if self.wall_mem_cycles == 0 {
            0.0
        } else {
            self.gate_evals as f64 / self.wall_mem_cycles as f64
        }
    }

    /// Elapsed MEM cycles per request — the cluster-amortized latency.
    pub fn mem_cycles_per_request(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.wall_mem_cycles as f64 / self.results.len() as f64
        }
    }

    /// Cluster-wide [`ShardReport::line_utilization`]: occupied lines over
    /// dispatched line capacity.
    pub fn line_utilization(&self) -> f64 {
        let occupied: u64 = self.shard_reports.iter().map(|r| r.lines_occupied).sum();
        let capacity: u64 = self.shard_reports.iter().map(|r| r.line_capacity).sum();
        if capacity == 0 {
            0.0
        } else {
            occupied as f64 / capacity as f64
        }
    }

    /// Cluster-wide [`ShardReport::cell_utilization`]: reserved cells over
    /// dispatched cell capacity — the packing-density headline.
    pub fn cell_utilization(&self) -> f64 {
        let occupied: u64 = self.shard_reports.iter().map(|r| r.cells_occupied).sum();
        let capacity: u64 = self.shard_reports.iter().map(|r| r.cell_capacity).sum();
        if capacity == 0 {
            0.0
        } else {
            occupied as f64 / capacity as f64
        }
    }

    /// Requests per occupied line, averaged over the flush — 1.0 is
    /// row-only placement; co-packing pushes it towards
    /// `line_len / footprint`.
    pub fn packing_density(&self) -> f64 {
        let requests: u64 = self.shard_reports.iter().map(|r| r.requests).sum();
        let lines: u64 = self.shard_reports.iter().map(|r| r.lines_occupied).sum();
        if lines == 0 {
            0.0
        } else {
            requests as f64 / lines as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ticket: u64) -> TicketResult {
        TicketResult {
            ticket: Ticket(ticket),
            shard: 0,
            wave: 0,
            axis: Axis::Rows,
            line: ticket as usize,
            offset: 0,
            outputs: vec![ticket % 2 == 0].into(),
            attempts: 1,
            queue_latency: Duration::ZERO,
            execute_latency: Duration::ZERO,
            attempt_latencies: vec![Duration::ZERO],
        }
    }

    #[test]
    fn equality_ignores_the_host_latency_clocks() {
        let a = result(3);
        let mut b = result(3);
        b.queue_latency = Duration::from_millis(7);
        b.execute_latency = Duration::from_micros(11);
        b.attempt_latencies = vec![Duration::from_micros(11)];
        assert_eq!(a, b, "latencies are measurements, not identity");
        let mut c = result(3);
        c.offset = 1;
        assert_ne!(a, c);
        // Attempt counts *are* identity: a retried result is a different
        // scheduling outcome than a first-try one.
        let mut d = result(3);
        d.attempts = 2;
        assert_ne!(a, d);
    }

    #[test]
    fn outputs_for_finds_tickets_by_binary_search() {
        let mut o = ClusterOutcome::empty(1);
        o.results = vec![result(1), result(4), result(9)];
        assert_eq!(o.outputs_for(Ticket(4)), Some([true].as_slice()));
        assert_eq!(o.outputs_for(Ticket(9)), Some([false].as_slice()));
        assert_eq!(o.outputs_for(Ticket(2)), None);
    }

    #[test]
    fn merge_accumulates_both_clocks_and_shard_reports() {
        let mut a = ClusterOutcome::empty(2);
        a.results = vec![result(0)];
        a.wall_mem_cycles = 100;
        a.waves = 1;
        a.gate_evals = 50;
        a.shard_reports[0].busy_mem_cycles = 100;
        a.shard_reports[0].requests = 1;
        a.shard_reports[0].lines_occupied = 1;
        a.shard_reports[0].line_capacity = 30;
        a.shard_reports[0].cells_occupied = 10;
        a.shard_reports[0].cell_capacity = 900;

        let mut b = ClusterOutcome::empty(2);
        b.results = vec![result(1)];
        b.wall_mem_cycles = 40;
        b.waves = 1;
        b.gate_evals = 30;
        b.shard_reports[1].busy_mem_cycles = 40;
        b.shard_reports[1].requests = 3;
        b.shard_reports[1].lines_occupied = 2;
        b.shard_reports[1].line_capacity = 30;
        b.shard_reports[1].cells_occupied = 30;
        b.shard_reports[1].cell_capacity = 900;

        a.failed.push(FailedRequest {
            ticket: Ticket(7),
            attempts: 3,
        });
        b.retries = 2;
        b.failed.push(FailedRequest {
            ticket: Ticket(5),
            attempts: 3,
        });

        a.merge(b);
        assert_eq!(a.requests(), 2);
        assert_eq!(a.retries, 2);
        assert_eq!(
            a.failed.iter().map(|f| f.ticket).collect::<Vec<_>>(),
            vec![Ticket(5), Ticket(7)],
            "dead-letters merge sorted by ticket"
        );
        assert_eq!(a.wall_mem_cycles, 140);
        assert_eq!(a.waves, 2);
        assert_eq!(a.gate_evals, 80);
        assert_eq!(a.shard_reports[0].requests, 1);
        assert_eq!(a.shard_reports[1].busy_mem_cycles, 40);
        assert!((a.shard_reports[1].utilization(140) - 40.0 / 140.0).abs() < 1e-12);
        assert!((a.gate_evals_per_mem_cycle() - 80.0 / 140.0).abs() < 1e-12);
        assert!((a.mem_cycles_per_request() - 70.0).abs() < 1e-12);
        // Placement accounting merges per shard and aggregates.
        assert_eq!(a.shard_reports[1].lines_occupied, 2);
        assert!((a.shard_reports[1].line_utilization() - 2.0 / 30.0).abs() < 1e-12);
        assert!((a.shard_reports[1].cell_utilization() - 30.0 / 900.0).abs() < 1e-12);
        assert!((a.line_utilization() - 3.0 / 60.0).abs() < 1e-12);
        assert!((a.cell_utilization() - 40.0 / 1800.0).abs() < 1e-12);
        assert!((a.packing_density() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilizations_of_an_empty_outcome_are_zero() {
        let o = ClusterOutcome::empty(2);
        assert_eq!(o.line_utilization(), 0.0);
        assert_eq!(o.cell_utilization(), 0.0);
        assert_eq!(o.packing_density(), 0.0);
        assert_eq!(o.shard_reports[0].line_utilization(), 0.0);
        assert_eq!(o.shard_reports[0].cell_utilization(), 0.0);
    }
}
