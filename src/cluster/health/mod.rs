//! The self-healing health loop of the cluster service: background
//! scrubbing, per-shard error budgets with quarantine, and an SLO metrics
//! snapshot.
//!
//! The paper's premise is that soft errors in memristive PIM are routine
//! operating conditions — so a production front-end cannot treat the ECC
//! machinery as a test fixture. This module closes the loop online:
//!
//! * **Background scrubbing** — the service worker runs one
//!   [`PimDevice::scrub_pass`](crate::device::PimDevice::scrub_pass) per
//!   [`scrub_period`](crate::cluster::PimClusterBuilder::scrub_period) on
//!   a round-robin shard, but only when the pending queue is idle or the
//!   next flush deadline leaves comfortable slack — scrubbing never
//!   delays a deadline flush. The default period comes from the
//!   reliability model ([`default_scrub_period`]): pick the per-bit flip
//!   probability the diagonal ECC should face between checks, invert it
//!   through [`SoftErrorRate::exposure_window_for`], and compress the
//!   resulting wall-clock window by the simulation's time acceleration.
//! * **Error budgets and quarantine** — every flush and scrub feeds the
//!   per-shard [`ShardHealth`] ledger (ECC detections and corrections
//!   from the `CheckReport`s, wear from the cells each batch reserved, a
//!   rolling error window). A shard whose windowed error count exceeds
//!   its [`error_budget`](crate::cluster::PimClusterBuilder::error_budget)
//!   is **quarantined**: the scheduler's active-shard list shrinks and
//!   traffic reroutes deterministically (see the scheduler's
//!   `run_waves`). Quarantined shards keep receiving
//!   scrub passes; after
//!   [`recovery_scrubs`](crate::cluster::PimClusterBuilder::recovery_scrubs)
//!   consecutive *clean* scrubs the shard rejoins the pool.
//! * **SLO metrics** — [`HealthSnapshot`] aggregates p50/p95/p99 queue
//!   and execute latency from the data every
//!   [`TicketResult`](crate::cluster::TicketResult) already carries, plus
//!   the per-shard counters, and is served lock-free of the worker by
//!   [`ClusterHandle::metrics`](crate::cluster::ClusterHandle::metrics).
//!   An optional
//!   [`adaptive_deadline`](crate::cluster::PimClusterBuilder::adaptive_deadline)
//!   controller scales `flush_after` with observed wave occupancy:
//!   light traffic flushes sooner (less dead air before a wave), heavy
//!   traffic relaxes back toward fuller batches.
//!
//! The drift-aware refresh analysis in
//! [`DriftModel`](pimecc_reliability::DriftModel) composes with the same
//! machinery: feed [`effective_ser`](pimecc_reliability::DriftModel::effective_ser) into
//! [`scrub_period_for`] to derive a period that tracks retention drift
//! instead of the abrupt-upset floor.
//!
//! [`SoftErrorRate::exposure_window_for`]: pimecc_reliability::SoftErrorRate::exposure_window_for

use super::outcome::ClusterOutcome;
use pimecc_core::CheckReport;
use pimecc_reliability::SoftErrorRate;
use std::collections::VecDeque;
use std::time::Duration;

/// Scheduling availability of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardState {
    /// In the scheduler's rotation.
    #[default]
    Healthy,
    /// Error budget exceeded: receives scrub passes but no traffic.
    Quarantined,
}

/// One shard's health ledger, as reported in a [`HealthSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardHealth {
    /// Scheduling state.
    pub state: ShardState,
    /// ECC code blocks checked on this shard (input checks + scrubs).
    pub checked: u64,
    /// Single-bit errors the ECC corrected.
    pub corrected: u64,
    /// Multi-bit patterns the ECC detected but could not correct.
    pub uncorrectable: u64,
    /// Background scrub passes run on this shard.
    pub scrubs: u64,
    /// Errors corrected by scrub passes (subset of `corrected`).
    pub scrub_corrected: u64,
    /// Consecutive clean scrubs since the last error — the recovery
    /// counter while quarantined.
    pub clean_scrub_streak: u32,
    /// Times the error budget quarantined this shard.
    pub quarantines: u64,
    /// Times a quarantine was lifted after clean scrubs.
    pub recoveries: u64,
    /// Crossbar cells written by dispatched batches — the wear proxy the
    /// rotation levels (see
    /// [`ShardReport::cells_occupied`](crate::cluster::ShardReport)).
    pub wear_cells: u64,
    /// Errors inside the rolling window the budget is judged on.
    pub window_errors: u64,
    /// Blocks checked inside the rolling window.
    pub window_checked: u64,
    /// Physical lines permanently retired on this shard (both axes
    /// summed) — capacity the placement planner no longer offers. See
    /// [`RetiredLines`](crate::device::RetiredLines).
    pub retired_lines: u64,
}

impl ShardHealth {
    /// Errors per checked block over the rolling window (0.0 when no
    /// blocks have been checked yet).
    pub fn error_rate(&self) -> f64 {
        if self.window_checked == 0 {
            0.0
        } else {
            self.window_errors as f64 / self.window_checked as f64
        }
    }
}

/// Percentile summary of one latency distribution, by the nearest-rank
/// method (`rank = ⌈p/100 · n⌉`, 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Samples the percentiles were computed over.
    pub samples: usize,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

impl LatencyStats {
    /// Computes the summary from raw samples (order irrelevant). Empty
    /// input yields all-zero percentiles.
    ///
    /// # Example
    ///
    /// ```
    /// use pimecc::cluster::LatencyStats;
    /// use std::time::Duration;
    ///
    /// let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
    /// let stats = LatencyStats::from_samples(&samples);
    /// assert_eq!(stats.p50, Duration::from_micros(50));
    /// assert_eq!(stats.p95, Duration::from_micros(95));
    /// assert_eq!(stats.p99, Duration::from_micros(99));
    /// ```
    pub fn from_samples(samples: &[Duration]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        LatencyStats {
            samples: sorted.len(),
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// sample such that at least `pct`% of the distribution is ≤ it.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let n = sorted.len();
    let rank = ((pct / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Point-in-time view of the service's health, returned by
/// [`ClusterHandle::metrics`](crate::cluster::ClusterHandle::metrics) (and
/// [`PimCluster::health`](crate::cluster::PimCluster::health) on the sync
/// front-end).
///
/// The worker publishes a fresh snapshot after every flush and every
/// scrub pass; reading one never blocks on shard execution.
///
/// # Example
///
/// ```
/// use pimecc::prelude::*;
/// use pimecc::netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let ins = b.inputs(2);
/// let g = b.xor(ins[0], ins[1]);
/// b.output(g);
/// let netlist = b.finish();
///
/// let handle = PimClusterBuilder::new(2, 30, 3).spawn()?;
/// let program = handle.compile(&netlist.to_nor())?;
/// for v in 0..8u32 {
///     handle.submit(&program, vec![v & 1 != 0, v & 2 != 0])?.wait()?;
/// }
/// let snap = handle.metrics();
/// assert_eq!(snap.shards.len(), 2);
/// assert_eq!(snap.quarantined(), 0);
/// assert_eq!(snap.requests, 8);
/// assert!(snap.queue_latency.samples >= 8);
/// assert!(snap.shards.iter().all(|s| s.uncorrectable == 0));
/// handle.close()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[must_use]
pub struct HealthSnapshot {
    /// Per-shard ledgers, indexed by shard.
    pub shards: Vec<ShardHealth>,
    /// Queue-latency percentiles (submission → dispatch) over the recent
    /// sample window.
    pub queue_latency: LatencyStats,
    /// Execute-latency percentiles (batch wall time on its shard) over
    /// the recent sample window.
    pub execute_latency: LatencyStats,
    /// Flushes the service has executed (empty flushes excluded).
    pub flushes: u64,
    /// Requests served over the service's lifetime.
    pub requests: u64,
    /// Background scrub passes run across all shards.
    pub scrub_waves: u64,
    /// Suppressed-and-requeued dispatch attempts over the service's
    /// lifetime: each one is a ticket whose batch drew an uncorrectable
    /// ECC verdict on its lines and was granted a fresh placement.
    pub retries: u64,
    /// Requests dead-lettered as
    /// [`ClusterError::RequestFailed`](crate::cluster::ClusterError::RequestFailed)
    /// after exhausting their retry budget — every one an explicit error
    /// in place of a silently wrong answer.
    pub dead_letters: u64,
    /// The auto-flush deadline currently in force — the configured
    /// `flush_after` scaled by the adaptive controller (`None` without a
    /// deadline).
    pub effective_flush_after: Option<Duration>,
}

impl HealthSnapshot {
    pub(crate) fn empty(shards: usize) -> Self {
        HealthSnapshot {
            shards: vec![ShardHealth::default(); shards],
            ..HealthSnapshot::default()
        }
    }

    /// Number of shards currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Quarantined)
            .count()
    }

    /// Errors corrected across all shards (input checks + scrubs).
    pub fn corrected(&self) -> u64 {
        self.shards.iter().map(|s| s.corrected).sum()
    }

    /// Uncorrectable patterns detected across all shards.
    pub fn uncorrectable(&self) -> u64 {
        self.shards.iter().map(|s| s.uncorrectable).sum()
    }
}

/// The health-policy knobs, frozen at build time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HealthConfig {
    /// Background scrub cadence; `None` disables scrubbing.
    pub(crate) scrub_period: Option<Duration>,
    /// Windowed error count above which a shard is quarantined; `None`
    /// disables quarantine.
    pub(crate) error_budget: Option<u64>,
    /// Consecutive clean scrubs that lift a quarantine.
    pub(crate) recovery_scrubs: u32,
    /// Observations (flush batches / scrubs) the rolling error window
    /// holds per shard.
    pub(crate) window: usize,
    /// Latency samples retained per distribution.
    pub(crate) latency_window: usize,
    /// Whether the deadline controller scales `flush_after` with load.
    pub(crate) adaptive_deadline: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            scrub_period: None,
            error_budget: None,
            recovery_scrubs: 3,
            window: 32,
            latency_window: 4096,
            adaptive_deadline: false,
        }
    }
}

/// One shard's mutable tracking state inside the monitor.
#[derive(Debug, Clone, Default)]
struct ShardTracker {
    health: ShardHealth,
    /// Rolling `(errors, checked)` observations, newest at the back.
    window: VecDeque<(u64, u64)>,
}

impl ShardTracker {
    /// Pushes one observation into the rolling window and returns the
    /// windowed error total.
    fn observe(&mut self, errors: u64, checked: u64, cap: usize) -> u64 {
        self.window.push_back((errors, checked));
        while self.window.len() > cap {
            self.window.pop_front();
        }
        self.health.window_errors = self.window.iter().map(|&(e, _)| e).sum();
        self.health.window_checked = self.window.iter().map(|&(_, c)| c).sum();
        self.health.window_errors
    }

    fn clear_window(&mut self) {
        self.window.clear();
        self.health.window_errors = 0;
        self.health.window_checked = 0;
    }
}

/// The live health state owned by the flush path ([`ClusterCore`]) — the
/// single writer; front-ends read via [`HealthMonitor::snapshot`].
///
/// [`ClusterCore`]: super::service::ClusterCore
#[derive(Debug)]
pub(crate) struct HealthMonitor {
    cfg: HealthConfig,
    shards: Vec<ShardTracker>,
    queue_lat: VecDeque<Duration>,
    exec_lat: VecDeque<Duration>,
    flushes: u64,
    requests: u64,
    scrub_waves: u64,
    retries: u64,
    dead_letters: u64,
    /// Round-robin cursor of the scrub scheduler.
    scrub_cursor: usize,
    /// Adaptive multiplier on the base deadline, clamped to
    /// `[0.25, 4.0]`.
    deadline_scale: f64,
    /// The configured `flush_after` the scale applies to.
    flush_after: Option<Duration>,
    /// Requests one shard line-set can carry per wave (occupancy
    /// denominator of the adaptive controller).
    line_capacity: usize,
}

impl HealthMonitor {
    pub(crate) fn new(
        shards: usize,
        line_capacity: usize,
        cfg: HealthConfig,
        flush_after: Option<Duration>,
    ) -> Self {
        HealthMonitor {
            cfg,
            shards: vec![ShardTracker::default(); shards],
            queue_lat: VecDeque::new(),
            exec_lat: VecDeque::new(),
            flushes: 0,
            requests: 0,
            scrub_waves: 0,
            retries: 0,
            dead_letters: 0,
            scrub_cursor: 0,
            deadline_scale: 1.0,
            flush_after,
            line_capacity: line_capacity.max(1),
        }
    }

    pub(crate) fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// The strictly ascending shard indices the scheduler may plan over.
    ///
    /// If *every* shard is quarantined the full pool is returned —
    /// availability beats purity: serving traffic on suspect shards (each
    /// request is still ECC-checked pre-execution) is better than
    /// serving nothing.
    pub(crate) fn active_shards(&self) -> Vec<usize> {
        let healthy: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, t)| t.health.state == ShardState::Healthy)
            .map(|(i, _)| i)
            .collect();
        if healthy.is_empty() {
            (0..self.shards.len()).collect()
        } else {
            healthy
        }
    }

    /// Folds one flush's outcome into the ledgers: per-shard check
    /// telemetry, wear, error windows (quarantining over-budget shards),
    /// latency reservoirs, and the adaptive-deadline controller.
    pub(crate) fn observe_flush(&mut self, outcome: &ClusterOutcome) {
        if outcome.results.is_empty() && outcome.waves == 0 {
            return;
        }
        let active = self.active_shards().len();
        self.flushes += 1;
        self.requests += outcome.results.len() as u64;
        self.retries += outcome.retries;
        self.dead_letters += outcome.failed.len() as u64;
        for (i, report) in outcome.shard_reports.iter().enumerate() {
            if report.batches == 0 {
                continue;
            }
            let t = &mut self.shards[i];
            t.health.checked += report.input_check.checked as u64;
            t.health.corrected += report.input_check.corrected as u64;
            t.health.uncorrectable += report.input_check.uncorrectable as u64;
            t.health.wear_cells += report.cells_occupied;
            let errors = (report.input_check.corrected + report.input_check.uncorrectable) as u64;
            if errors > 0 {
                t.health.clean_scrub_streak = 0;
            }
            let windowed = t.observe(errors, report.input_check.checked as u64, self.cfg.window);
            if t.health.state == ShardState::Healthy
                && self
                    .cfg
                    .error_budget
                    .is_some_and(|budget| windowed > budget)
            {
                t.health.state = ShardState::Quarantined;
                t.health.quarantines += 1;
                t.health.clean_scrub_streak = 0;
            }
        }
        for r in &outcome.results {
            self.queue_lat.push_back(r.queue_latency);
            self.exec_lat.push_back(r.execute_latency);
        }
        while self.queue_lat.len() > self.cfg.latency_window {
            self.queue_lat.pop_front();
        }
        while self.exec_lat.len() > self.cfg.latency_window {
            self.exec_lat.pop_front();
        }
        if self.cfg.adaptive_deadline && self.flush_after.is_some() {
            // Wave occupancy of this flush: requests served over the line
            // capacity the active pool offered per wave. Near-full waves
            // mean the deadline is cutting batches short — relax it;
            // near-empty waves mean requests are waiting on dead air —
            // tighten it.
            let capacity = (active.max(1) * self.line_capacity * outcome.waves.max(1)) as f64;
            let occupancy = outcome.results.len() as f64 / capacity;
            if occupancy >= 0.5 {
                self.deadline_scale = (self.deadline_scale * 2.0).min(4.0);
            } else if occupancy < 0.125 {
                self.deadline_scale = (self.deadline_scale / 2.0).max(0.25);
            }
        }
    }

    /// Folds one scrub pass on `shard` into the ledgers, driving the
    /// quarantine → recovery transition.
    pub(crate) fn note_scrub(&mut self, shard: usize, check: &CheckReport) {
        self.scrub_waves += 1;
        let t = &mut self.shards[shard];
        t.health.scrubs += 1;
        t.health.checked += check.checked as u64;
        t.health.corrected += check.corrected as u64;
        t.health.uncorrectable += check.uncorrectable as u64;
        t.health.scrub_corrected += check.corrected as u64;
        let errors = (check.corrected + check.uncorrectable) as u64;
        let clean = errors == 0;
        match t.health.state {
            ShardState::Healthy => {
                if clean {
                    t.health.clean_scrub_streak = t.health.clean_scrub_streak.saturating_add(1);
                } else {
                    t.health.clean_scrub_streak = 0;
                }
                let windowed = t.observe(errors, check.checked as u64, self.cfg.window);
                if self
                    .cfg
                    .error_budget
                    .is_some_and(|budget| windowed > budget)
                {
                    t.health.state = ShardState::Quarantined;
                    t.health.quarantines += 1;
                    t.health.clean_scrub_streak = 0;
                }
            }
            ShardState::Quarantined => {
                if clean {
                    t.health.clean_scrub_streak = t.health.clean_scrub_streak.saturating_add(1);
                    if t.health.clean_scrub_streak >= self.cfg.recovery_scrubs {
                        t.health.state = ShardState::Healthy;
                        t.health.recoveries += 1;
                        // A recovered shard starts with a clean budget;
                        // the stale window would re-quarantine it on its
                        // first post-recovery observation.
                        t.clear_window();
                    }
                } else {
                    t.health.clean_scrub_streak = 0;
                }
            }
        }
    }

    /// Updates one shard's retired-capacity gauge from its device-side
    /// [`RetiredLines`](crate::device::RetiredLines) ledger — called
    /// after every flush and scrub, where retirements happen.
    pub(crate) fn set_retired(&mut self, shard: usize, lines: u64) {
        self.shards[shard].health.retired_lines = lines;
    }

    /// Manually quarantines (or releases) a shard — the operator override
    /// behind [`PimCluster::set_quarantined`](crate::cluster::PimCluster::set_quarantined).
    pub(crate) fn force_quarantine(&mut self, shard: usize, quarantined: bool) {
        let t = &mut self.shards[shard];
        match (t.health.state, quarantined) {
            (ShardState::Healthy, true) => {
                t.health.state = ShardState::Quarantined;
                t.health.quarantines += 1;
                t.health.clean_scrub_streak = 0;
            }
            (ShardState::Quarantined, false) => {
                t.health.state = ShardState::Healthy;
                t.health.recoveries += 1;
                t.clear_window();
            }
            _ => {}
        }
    }

    /// The next shard in the scrub rotation — over **all** shards,
    /// quarantined ones included: scrubbing is exactly how a quarantined
    /// shard earns its way back.
    pub(crate) fn next_scrub_shard(&mut self) -> usize {
        let shard = self.scrub_cursor % self.shards.len();
        self.scrub_cursor = (self.scrub_cursor + 1) % self.shards.len();
        shard
    }

    /// The auto-flush deadline currently in force: the configured base
    /// scaled by the adaptive controller.
    pub(crate) fn effective_deadline(&self) -> Option<Duration> {
        self.flush_after.map(|base| {
            if self.cfg.adaptive_deadline {
                base.mul_f64(self.deadline_scale)
            } else {
                base
            }
        })
    }

    /// Materializes the public snapshot.
    pub(crate) fn snapshot(&self) -> HealthSnapshot {
        let queue: Vec<Duration> = self.queue_lat.iter().copied().collect();
        let exec: Vec<Duration> = self.exec_lat.iter().copied().collect();
        HealthSnapshot {
            shards: self.shards.iter().map(|t| t.health).collect(),
            queue_latency: LatencyStats::from_samples(&queue),
            execute_latency: LatencyStats::from_samples(&exec),
            flushes: self.flushes,
            requests: self.requests,
            scrub_waves: self.scrub_waves,
            retries: self.retries,
            dead_letters: self.dead_letters,
            effective_flush_after: self.effective_deadline(),
        }
    }
}

/// Wall-clock seconds of host time that correspond to one simulated hour
/// of device exposure, for scrub-period compression: the simulation
/// executes device workloads orders of magnitude faster than real
/// deployments accumulate upsets, so the model's hours-scale check
/// periods compress into milliseconds of service time. 960 simulated
/// hours per wall second turns the paper's daily check into a ~25 ms
/// service cadence.
const SIM_HOURS_PER_SECOND: f64 = 960.0;

/// The per-bit flip probability the default scrub policy tolerates
/// between checks — chosen so a flash-like SER
/// ([`SoftErrorRate::flash_like`]) yields the paper's daily check window.
const DEFAULT_TARGET_FLIP_PROBABILITY: f64 = 2.4e-11;

/// Derives a scrub period from a soft-error rate and a target per-bit
/// flip probability between checks: the model's exposure window
/// ([`SoftErrorRate::exposure_window_for`]), compressed to service time
/// by the simulation's acceleration and clamped to `[5 ms, 60 s]`.
///
/// # Example
///
/// ```
/// use pimecc::cluster::scrub_period_for;
/// use pimecc::reliability::SoftErrorRate;
///
/// // A 100× worse-than-flash part needs 100× more frequent scrubs —
/// // down to the clamp floor.
/// let flash = scrub_period_for(SoftErrorRate::flash_like(), 2.4e-11);
/// let worse = scrub_period_for(SoftErrorRate::from_fit_per_bit(1e-1), 2.4e-11);
/// assert!(worse < flash);
/// ```
pub fn scrub_period_for(ser: SoftErrorRate, target_flip_probability: f64) -> Duration {
    let hours = ser.exposure_window_for(target_flip_probability);
    let secs = (hours / SIM_HOURS_PER_SECOND).clamp(0.005, 60.0);
    // Whole milliseconds: sub-ms precision is meaningless for a scrub
    // cadence and rounding keeps the derived defaults crisp.
    Duration::from_millis((secs * 1000.0).round() as u64)
}

/// The default background scrub cadence of a spawned service: the
/// flash-like SER anchor inverted at the default flip-probability target
/// (the paper's daily check window), compressed to service time — 25 ms.
///
/// # Example
///
/// ```
/// use pimecc::cluster::default_scrub_period;
/// use std::time::Duration;
///
/// assert_eq!(default_scrub_period(), Duration::from_millis(25));
/// ```
pub fn default_scrub_period() -> Duration {
    scrub_period_for(SoftErrorRate::flash_like(), DEFAULT_TARGET_FLIP_PROBABILITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let us: Vec<Duration> = (1..=4).map(Duration::from_micros).collect();
        assert_eq!(percentile(&us, 50.0), Duration::from_micros(2));
        assert_eq!(percentile(&us, 95.0), Duration::from_micros(4));
        assert_eq!(percentile(&us, 25.0), Duration::from_micros(1));
        assert_eq!(percentile(&us, 1.0), Duration::from_micros(1));
        assert_eq!(percentile(&us, 100.0), Duration::from_micros(4));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        let one = [Duration::from_micros(7)];
        assert_eq!(percentile(&one, 50.0), Duration::from_micros(7));
        assert_eq!(percentile(&one, 99.0), Duration::from_micros(7));
    }

    #[test]
    fn latency_stats_match_a_serial_reference() {
        // Unsorted, duplicated samples; the reference is an independent
        // nearest-rank aggregation over a sorted copy.
        let samples: Vec<Duration> = [9u64, 1, 5, 5, 3, 8, 2, 7, 4, 6]
            .iter()
            .map(|&us| Duration::from_micros(us))
            .collect();
        let stats = LatencyStats::from_samples(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let reference = |pct: f64| {
            let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.max(1) - 1]
        };
        assert_eq!(stats.samples, 10);
        assert_eq!(stats.p50, reference(50.0));
        assert_eq!(stats.p95, reference(95.0));
        assert_eq!(stats.p99, reference(99.0));
    }

    #[test]
    fn error_budget_transitions_healthy_quarantined_recovered() {
        let cfg = HealthConfig {
            error_budget: Some(2),
            recovery_scrubs: 2,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(2, 30, cfg, None);
        assert_eq!(mon.active_shards(), vec![0, 1]);

        // Three errors on shard 1 bust the budget of 2.
        let dirty = CheckReport {
            checked: 100,
            corrected: 3,
            uncorrectable: 0,
        };
        mon.note_scrub(1, &dirty);
        let snap = mon.snapshot();
        assert_eq!(snap.shards[1].state, ShardState::Quarantined);
        assert_eq!(snap.shards[1].quarantines, 1);
        assert_eq!(mon.active_shards(), vec![0]);

        // One clean scrub is not enough; the second lifts the quarantine.
        let clean = CheckReport {
            checked: 100,
            corrected: 0,
            uncorrectable: 0,
        };
        mon.note_scrub(1, &clean);
        assert_eq!(mon.snapshot().shards[1].state, ShardState::Quarantined);
        mon.note_scrub(1, &clean);
        let snap = mon.snapshot();
        assert_eq!(snap.shards[1].state, ShardState::Healthy);
        assert_eq!(snap.shards[1].recoveries, 1);
        assert_eq!(mon.active_shards(), vec![0, 1]);
        // The window was cleared: the old errors cannot re-quarantine.
        assert_eq!(snap.shards[1].window_errors, 0);

        // A dirty scrub mid-quarantine resets the streak.
        mon.note_scrub(0, &dirty);
        assert_eq!(mon.snapshot().shards[0].state, ShardState::Quarantined);
        mon.note_scrub(0, &clean);
        mon.note_scrub(0, &dirty);
        assert_eq!(mon.snapshot().shards[0].clean_scrub_streak, 0);
        assert_eq!(mon.snapshot().shards[0].state, ShardState::Quarantined);
    }

    #[test]
    fn all_quarantined_falls_back_to_the_full_pool() {
        let cfg = HealthConfig {
            error_budget: Some(0),
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(2, 30, cfg, None);
        let dirty = CheckReport {
            checked: 10,
            corrected: 1,
            uncorrectable: 0,
        };
        mon.note_scrub(0, &dirty);
        mon.note_scrub(1, &dirty);
        assert_eq!(mon.snapshot().quarantined(), 2);
        assert_eq!(
            mon.active_shards(),
            vec![0, 1],
            "availability beats purity when nothing is healthy"
        );
    }

    #[test]
    fn force_quarantine_round_trips_and_is_idempotent() {
        let mut mon = HealthMonitor::new(3, 30, HealthConfig::default(), None);
        mon.force_quarantine(1, true);
        mon.force_quarantine(1, true);
        assert_eq!(mon.active_shards(), vec![0, 2]);
        assert_eq!(mon.snapshot().shards[1].quarantines, 1);
        mon.force_quarantine(1, false);
        mon.force_quarantine(1, false);
        assert_eq!(mon.active_shards(), vec![0, 1, 2]);
        assert_eq!(mon.snapshot().shards[1].recoveries, 1);
    }

    #[test]
    fn scrub_rotation_includes_quarantined_shards() {
        let mut mon = HealthMonitor::new(3, 30, HealthConfig::default(), None);
        mon.force_quarantine(1, true);
        let order: Vec<usize> = (0..6).map(|_| mon.next_scrub_shard()).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn rolling_window_forgets_old_errors() {
        let cfg = HealthConfig {
            window: 2,
            error_budget: Some(10),
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(1, 30, cfg, None);
        let dirty = CheckReport {
            checked: 10,
            corrected: 2,
            uncorrectable: 0,
        };
        let clean = CheckReport {
            checked: 10,
            corrected: 0,
            uncorrectable: 0,
        };
        mon.note_scrub(0, &dirty);
        assert_eq!(mon.snapshot().shards[0].window_errors, 2);
        mon.note_scrub(0, &clean);
        mon.note_scrub(0, &clean);
        assert_eq!(
            mon.snapshot().shards[0].window_errors,
            0,
            "the dirty observation aged out of the 2-deep window"
        );
        assert_eq!(
            mon.snapshot().shards[0].corrected,
            2,
            "lifetime count stays"
        );
        assert!(mon.snapshot().shards[0].error_rate() < 1e-12);
    }

    #[test]
    fn adaptive_deadline_tracks_occupancy() {
        use crate::cluster::outcome::TicketResult;
        use crate::device::Axis;
        let cfg = HealthConfig {
            adaptive_deadline: true,
            ..HealthConfig::default()
        };
        let base = Duration::from_millis(2);
        let mut mon = HealthMonitor::new(1, 4, cfg, Some(base));
        assert_eq!(mon.effective_deadline(), Some(base));

        let outcome_with = |requests: usize| {
            let mut o = ClusterOutcome::empty(1);
            o.waves = 1;
            o.shard_reports[0].batches = 1;
            o.results = (0..requests)
                .map(|i| TicketResult {
                    ticket: super::super::queue::Ticket(i as u64),
                    shard: 0,
                    wave: 0,
                    axis: Axis::Rows,
                    line: i,
                    offset: 0,
                    outputs: Default::default(),
                    attempts: 1,
                    queue_latency: Duration::ZERO,
                    execute_latency: Duration::ZERO,
                    attempt_latencies: vec![Duration::ZERO],
                })
                .collect();
            o
        };
        // Full wave (4/4 lines): the deadline relaxes.
        mon.observe_flush(&outcome_with(4));
        assert_eq!(mon.effective_deadline(), Some(base * 2));
        mon.observe_flush(&outcome_with(4));
        mon.observe_flush(&outcome_with(4));
        assert_eq!(
            mon.effective_deadline(),
            Some(base * 4),
            "the scale clamps at 4x"
        );
        // Nearly empty waves walk it back down to the 0.25x floor.
        for _ in 0..6 {
            mon.observe_flush(&outcome_with(0));
        }
        assert_eq!(mon.effective_deadline(), Some(base / 4));
    }

    #[test]
    fn snapshot_aggregates_flush_telemetry_per_shard() {
        let mut mon = HealthMonitor::new(2, 30, HealthConfig::default(), None);
        let mut o = ClusterOutcome::empty(2);
        o.waves = 1;
        o.shard_reports[0].batches = 1;
        o.shard_reports[0].cells_occupied = 12;
        o.shard_reports[0].input_check = CheckReport {
            checked: 100,
            corrected: 1,
            uncorrectable: 0,
        };
        // Shard 1 idle this flush: nothing must be attributed to it.
        mon.observe_flush(&o);
        let snap = mon.snapshot();
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.shards[0].checked, 100);
        assert_eq!(snap.shards[0].corrected, 1);
        assert_eq!(snap.shards[0].wear_cells, 12);
        assert_eq!(snap.shards[1].checked, 0);
        assert_eq!(snap.corrected(), 1);
        assert_eq!(snap.uncorrectable(), 0);
    }

    #[test]
    fn scrub_period_derivation_matches_the_reliability_model() {
        assert_eq!(default_scrub_period(), Duration::from_millis(25));
        // 1e3 FIT/bit: a million times worse than flash — clamped to the
        // 5 ms floor.
        assert_eq!(
            scrub_period_for(SoftErrorRate::from_fit_per_bit(1e3), 2.4e-11),
            Duration::from_millis(5)
        );
        // A zero rate clamps to the 60 s ceiling instead of infinity.
        assert_eq!(
            scrub_period_for(SoftErrorRate::from_fit_per_bit(0.0), 2.4e-11),
            Duration::from_secs(60)
        );
    }
}
