//! Error type of the cluster submission layer.

use crate::device::DeviceError;
use pimecc_simpler::MapError;
use std::fmt;

/// Failure of a cluster-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A cluster needs at least one shard.
    NoShards,
    /// The per-wave batch limit must admit at least one row.
    ZeroBatchLimit,
    /// The auto-flush threshold must admit at least one pending request.
    ZeroFlushThreshold,
    /// The per-line co-packing limit must admit at least one request.
    ZeroPackLimit,
    /// The per-shard worker team must have at least one thread.
    ZeroThreads,
    /// The auto-flush deadline must be a positive duration.
    ZeroFlushDeadline,
    /// The submission-queue bound must admit at least one in-flight
    /// request.
    ZeroQueueLimit,
    /// The background scrub period must be a positive duration.
    ZeroScrubPeriod,
    /// Recovery must require at least one clean scrub.
    ZeroRecoveryScrubs,
    /// The adaptive deadline controller scales `flush_after` — it needs
    /// one to scale.
    AdaptiveWithoutDeadline,
    /// A knob that only affects the spawned service was set on a cluster
    /// built synchronously (use [`PimClusterBuilder::spawn`] instead of
    /// `build`).
    ///
    /// [`PimClusterBuilder::spawn`]: crate::cluster::PimClusterBuilder::spawn
    ServiceOnly {
        /// Name of the offending builder knob.
        knob: &'static str,
    },
    /// The service was closed: the operation arrived after
    /// [`ClusterHandle::close`](crate::cluster::ClusterHandle::close) (or
    /// after every handle was dropped).
    Closed,
    /// A bounded service queue is full
    /// ([`queue_limit`](crate::cluster::PimClusterBuilder::queue_limit))
    /// and the caller asked not to wait
    /// ([`try_submit`](crate::cluster::ClusterHandle::try_submit)).
    Saturated {
        /// The queue bound in force.
        limit: usize,
    },
    /// The service's worker thread panicked; the pool and all unserved
    /// submissions are lost.
    WorkerPoisoned,
    /// A waited ticket will never be served: its submission was dropped
    /// (its flush failed before dispatching it) or its result was already
    /// claimed by an earlier wait or drain.
    TicketUnserved {
        /// Sequence number of the unserved ticket.
        ticket: u64,
    },
    /// A request was dead-lettered: every allowed attempt executed on
    /// lines with uncorrectable ECC verdicts, so no verified-correct
    /// output exists. The request itself is well-formed — resubmitting it
    /// is safe and, after the struck lines retire, usually succeeds.
    RequestFailed {
        /// Sequence number of the failed ticket.
        ticket: u64,
        /// Attempts made before giving up (`1 + max_retries`).
        attempts: u32,
    },
    /// The line-retirement threshold must be at least one strike
    /// (leave [`retire_after`](crate::cluster::PimClusterBuilder::retire_after)
    /// unset to disable retirement instead).
    ZeroRetireAfter,
    /// [`shard_geometries`](crate::cluster::PimClusterBuilder::shard_geometries)
    /// was given a different number of geometries than the cluster has
    /// shards.
    GeometryArity {
        /// Geometries supplied.
        geometries: usize,
        /// Shards the cluster was configured with.
        shards: usize,
    },
    /// A per-shard policy override names a shard the cluster does not have.
    ShardOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// Shards the cluster was configured with.
        shards: usize,
    },
    /// SIMPLER could not map the netlist onto the shards' rows.
    Map(MapError),
    /// A submitted program was mapped for a wider row than the shards have.
    ProgramTooWide {
        /// Row size the program was mapped for.
        row_size: usize,
        /// Shard dimension.
        n: usize,
    },
    /// A submission's input vector does not match the program arity.
    InputArity {
        /// Bits supplied.
        got: usize,
        /// Bits the program expects.
        want: usize,
    },
    /// A shard failed while building or executing a dispatched batch.
    Shard {
        /// Index of the failing shard.
        shard: usize,
        /// The device-level failure.
        source: DeviceError,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoShards => write!(f, "cluster configured with zero shards"),
            ClusterError::ZeroBatchLimit => write!(f, "batch limit must be at least one row"),
            ClusterError::ZeroFlushThreshold => {
                write!(f, "auto-flush threshold must be at least one request")
            }
            ClusterError::ZeroPackLimit => {
                write!(f, "pack limit must admit at least one request per line")
            }
            ClusterError::ZeroThreads => {
                write!(f, "worker team must have at least one thread")
            }
            ClusterError::ZeroFlushDeadline => {
                write!(f, "auto-flush deadline must be a positive duration")
            }
            ClusterError::ZeroQueueLimit => {
                write!(f, "queue limit must admit at least one in-flight request")
            }
            ClusterError::ZeroScrubPeriod => {
                write!(f, "scrub period must be a positive duration")
            }
            ClusterError::ZeroRecoveryScrubs => {
                write!(f, "recovery must require at least one clean scrub")
            }
            ClusterError::AdaptiveWithoutDeadline => {
                write!(
                    f,
                    "adaptive_deadline scales flush_after; configure a flush_after deadline"
                )
            }
            ClusterError::ServiceOnly { knob } => {
                write!(
                    f,
                    "`{knob}` only affects the spawned service; use `spawn()` instead of `build()`"
                )
            }
            ClusterError::Closed => write!(f, "the cluster service is closed"),
            ClusterError::Saturated { limit } => {
                write!(f, "service queue is full ({limit} requests in flight)")
            }
            ClusterError::WorkerPoisoned => {
                write!(f, "the cluster service's worker thread panicked")
            }
            ClusterError::TicketUnserved { ticket } => {
                write!(
                    f,
                    "ticket#{ticket} will never be served (dropped by a failed flush or already claimed)"
                )
            }
            ClusterError::RequestFailed { ticket, attempts } => {
                write!(
                    f,
                    "ticket#{ticket} failed after {attempts} attempt(s): every attempt \
                     landed on lines with uncorrectable ECC verdicts and no \
                     verified-correct output exists (safe to resubmit)"
                )
            }
            ClusterError::ZeroRetireAfter => {
                write!(f, "retirement threshold must be at least one strike")
            }
            ClusterError::GeometryArity { geometries, shards } => {
                write!(
                    f,
                    "{geometries} shard geometries supplied for a {shards}-shard cluster"
                )
            }
            ClusterError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range for a {shards}-shard cluster")
            }
            ClusterError::Map(e) => write!(f, "mapping failed: {e}"),
            ClusterError::ProgramTooWide { row_size, n } => {
                write!(
                    f,
                    "program mapped for a {row_size}-cell row exceeds the {n}-cell \
                     shards; oversized circuits can be served partitioned \
                     (compile_partitioned / submit_partitioned)"
                )
            }
            ClusterError::InputArity { got, want } => {
                write!(
                    f,
                    "submission supplies {got} input bits, program expects {want}"
                )
            }
            ClusterError::Shard { shard, source } => {
                write!(f, "shard {shard} failed: {source}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Map(e) => Some(e),
            ClusterError::Shard { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MapError> for ClusterError {
    fn from(e: MapError) -> Self {
        ClusterError::Map(e)
    }
}
