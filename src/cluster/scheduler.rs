//! The wave scheduler: turn the fingerprint groups into two-dimensional
//! [`PlacementPlan`]s — one batch per shard per wave, shards in parallel on
//! scoped threads.
//!
//! Each wave is planned in three passes:
//!
//! 1. **Spread** — walk the groups in first-submission order and carve
//!    one-request-per-line chunks of up to `batch_limit` lines, handing
//!    each chunk to the *smallest idle shard the program fits* (pools may
//!    mix geometries; wide programs route to tall shards, narrow traffic
//!    keeps the short ones busy). Parallel shards beat any amount of
//!    co-packing (they add no gate replays), so breadth comes first; a
//!    large group still spreads over several shards within one wave.
//! 2. **Densify** — if traffic remains once every shard has work, deepen
//!    the planned batches instead of queueing another wave: each job
//!    absorbs more requests of its group at additional slot offsets on
//!    the lines it already occupies (up to `line_len / footprint` per
//!    line, capped by `pack_limit`). The extra offsets replay the gate
//!    steps, which a follow-up wave would have paid anyway — but the
//!    follow-up wave's input loads and block-line ECC checks are saved.
//! 3. **Co-locate** — leftover groups of *other* fingerprints bin-pack
//!    onto the free lines of already-claimed shards, first-fit-decreasing
//!    by footprint (stable in submission order): each placed chunk
//!    becomes an extra part of that shard's [`MultiProgramPlan`] wave,
//!    sharing the wave's input-load pass and block-line ECC checks. This
//!    is what keeps long-tail traffic (twenty programs, a handful of
//!    requests each) from paying one near-empty wave per fingerprint.
//!
//! The wave's axis comes from the cluster's [`AxisPolicy`]; under
//! [`AxisPolicy::Alternate`] even waves run on columns and odd waves on
//! rows.
//!
//! Determinism: group order, chunk carving, densify order, co-location
//! order, axis choice and shard assignment are all pure functions of
//! submission order and the cluster's knobs — no map iteration order,
//! clock or thread-completion order ever reaches the plan, so identical
//! submissions yield identical placements and results.

use super::error::ClusterError;
use super::outcome::{ClusterOutcome, FailedRequest, OutputSlice, TicketResult};
use super::queue::{Group, Ticket};
use crate::device::{
    Axis, CompiledProgram, DeviceError, MultiBatchOutcome, MultiPartRequest, MultiProgramPlan,
    PimDevice, PlacementPlan,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the cluster orients its dispatch waves on the crossbars.
///
/// MAGIC and the diagonal ECC are row/column symmetric (the paper's §IV
/// "row (column)" phrasing): a batch costs the same on either axis, so the
/// choice is free — and alternating exercises both check dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AxisPolicy {
    /// Every wave row-parallel — the classic orientation.
    Rows,
    /// Every wave column-parallel.
    Cols,
    /// Even waves on columns, odd waves on rows (the default). Leading
    /// with the column axis is a host-side tune: the MEM cost model is
    /// axis-symmetric, but the word-parallel simulation engine executes
    /// column-parallel gates as whole-word row stores, so the first (and
    /// usually largest) wave of a flush lands on the fast axis.
    #[default]
    Alternate,
}

impl AxisPolicy {
    /// The axis a given wave (0-based within a flush) runs on.
    pub(crate) fn axis_for(self, wave: usize) -> Axis {
        match self {
            AxisPolicy::Rows => Axis::Rows,
            AxisPolicy::Cols => Axis::Cols,
            AxisPolicy::Alternate => {
                if wave % 2 == 0 {
                    Axis::Cols
                } else {
                    Axis::Rows
                }
            }
        }
    }
}

/// The planning knobs `plan_wave` works from — a pure value so the plan
/// stays a function of (groups, knobs, wave index). Per-shard line lengths
/// come from the shards themselves (pools may mix geometries).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PackingKnobs {
    /// Max lines one dispatched batch may occupy.
    pub(crate) batch_limit: usize,
    /// Max requests co-packed per line (1 = the PR-2 row-only scheduler).
    pub(crate) pack_limit: usize,
    /// Axis selection per wave.
    pub(crate) axis_policy: AxisPolicy,
    /// Waves the pool dispatched before this flush: the wear-leveling
    /// rotation advances across flushes, not just inside one (per-flush
    /// wave indices restart at zero).
    pub(crate) origin_base: usize,
    /// Re-dispatches granted to a ticket whose batch reported an
    /// uncorrectable pre-check verdict on its lines, before the ticket is
    /// dead-lettered as [`ClusterError::RequestFailed`]. Zero means
    /// suspect outputs are still suppressed — they just fail immediately.
    pub(crate) max_retries: u32,
    /// Whether pass 3 runs: leftover groups of other fingerprints
    /// bin-pack onto claimed shards as extra [`MultiProgramPlan`] parts.
    /// Off = the fingerprint-per-wave baseline.
    pub(crate) colocate: bool,
}

impl PackingKnobs {
    /// Requests that fit side by side in one `line_len`-cell line of
    /// `program`.
    fn per_line(&self, line_len: usize, program: &CompiledProgram) -> usize {
        (line_len / program.footprint().max(1))
            .min(self.pack_limit)
            .max(1)
    }
}

/// One co-located extra part of a wave job (pass 3): a chunk of a
/// *different* group riding the same shard's wave on its own disjoint
/// lines.
struct ExtraPart {
    /// Index into `groups`, for suppressed-ticket requeue.
    group: usize,
    program: CompiledProgram,
    tickets: Vec<(Ticket, Instant)>,
    inputs: Vec<Vec<bool>>,
    /// The part's placement, line-disjoint from the job's main plan and
    /// every earlier extra.
    plan: PlacementPlan,
}

/// One shard's work for one wave: a chunk of one group under a 2D plan,
/// plus any co-located extra parts pass 3 added.
struct WaveJob {
    shard: usize,
    /// Index into `groups`, so the densify pass can pull more requests.
    group: usize,
    program: CompiledProgram,
    /// Each dispatched ticket with its submission instant (queue-latency
    /// accounting).
    tickets: Vec<(Ticket, Instant)>,
    inputs: Vec<Vec<bool>>,
    /// Lines the spread pass reserved (slots at the wave's fill origin).
    lines: usize,
    /// Retired physical lines of the shard on the wave's axis (ascending)
    /// — the plan routes around them, and the capacity accounting
    /// excludes them from the denominator.
    avoid: Vec<usize>,
    /// Line length (= line count) of *this job's* shard — per-job because
    /// the pool may mix geometries.
    line_len: usize,
    /// Co-located parts of other groups (pass 3), in placement order.
    extras: Vec<ExtraPart>,
}

/// Per-ticket retry bookkeeping, local to one `run_waves` call: a ticket
/// appears here only while it has at least one suppressed attempt behind
/// it and has not yet been served or dead-lettered.
#[derive(Default)]
struct RetryState {
    /// Suppressed attempts so far.
    attempts: u32,
    /// Execute latency of each suppressed attempt, oldest first.
    latencies: Vec<Duration>,
}

/// Executes `groups` to completion over the `active` subset of `shards`
/// under `knobs`, folding everything into `outcome`; on success the
/// results end up sorted by ticket.
///
/// `active` is the strictly ascending list of shard indices the plan may
/// use — the health loop's quarantine reroutes traffic by shrinking it.
/// Planning is positional over `active`, so a pool with shard `q`
/// quarantined carves, packs and rotates exactly like a pool built
/// without that shard: the plans are bit-identical up to the index
/// renaming `active[k] ↔ k` (the quarantine determinism guarantee).
///
/// On a shard failure the error is returned after the failing wave's
/// *successful* batches are folded in, and the flush's undispatched
/// traffic is abandoned — shard errors are placement or legality bugs,
/// not runtime conditions (submissions are validated up front). The
/// caller keeps `outcome`, so already-served tickets survive the error.
pub(crate) fn run_waves(
    shards: &mut [PimDevice],
    groups: &mut [Group],
    knobs: PackingKnobs,
    outcome: &mut ClusterOutcome,
    active: &[usize],
) -> Result<(), ClusterError> {
    debug_assert!(
        active.windows(2).all(|w| w[0] < w[1]) && active.iter().all(|&s| s < shards.len()),
        "active shard list must be strictly ascending and in range"
    );
    // Tickets with suppressed attempts behind them, keyed by ticket id.
    // The table lives for one flush only: a requeued ticket is always
    // re-dispatched (or dead-lettered) before `run_waves` returns.
    let mut retry: HashMap<u64, RetryState> = HashMap::new();
    // Rotation applied to the active shard list: bumped after every wave
    // that suppressed at least one ticket, so a retried ticket's next
    // attempt prefers a different shard (fresh lines, independent fault
    // plane). A fault-free flush never rotates — the plans are identical
    // to a cluster that has no retry machinery at all.
    let mut spin = 0usize;
    // Waves skipped because the current axis had no serviceable lines
    // left for the remaining traffic (every fitting active shard fully
    // retired on that axis). One skip re-plans on the other axis; a
    // second consecutive skip means the cluster cannot place the
    // remaining traffic on either axis and it is dead-lettered rather
    // than looped on forever.
    let mut skipped = 0usize;
    loop {
        let wave = outcome.waves + skipped;
        let jobs = plan_wave(shards, groups, active, knobs, wave, spin);
        if jobs.is_empty() {
            if groups.iter().map(Group::remaining).sum::<usize>() == 0 {
                break;
            }
            skipped += 1;
            if skipped >= 2 {
                // No line anywhere can hold a request: fail the
                // remainder explicitly instead of spinning.
                for g in groups.iter_mut() {
                    let n = g.remaining();
                    let (tickets, _inputs) = g.take(n);
                    for (ticket, _submitted_at) in tickets {
                        let attempts = retry.remove(&ticket.id()).map_or(0, |s| s.attempts);
                        outcome.failed.push(FailedRequest { ticket, attempts });
                    }
                }
                break;
            }
            continue;
        }
        skipped = 0;
        let retries_before = outcome.retries;
        dispatch_wave(shards, groups, jobs, knobs, outcome, &mut retry, wave)?;
        if outcome.retries > retries_before {
            spin += 1;
        }
    }
    outcome.results.sort_by_key(|r| r.ticket);
    outcome.failed.sort_by_key(|f| f.ticket);
    Ok(())
}

/// Plans one wave (see the [module docs](self) for the three passes) over
/// the `active` shard indices, rotated left by `spin` so retried tickets
/// prefer a different shard, and routing around each shard's retired
/// lines on the wave's axis.
fn plan_wave(
    shards: &[PimDevice],
    groups: &mut [Group],
    active: &[usize],
    knobs: PackingKnobs,
    wave: usize,
    spin: usize,
) -> Vec<(WaveJob, PlacementPlan)> {
    let axis = knobs.axis_policy.axis_for(wave);
    let mut rotated: Vec<usize> = Vec::with_capacity(active.len());
    if !active.is_empty() {
        let cut = spin % active.len();
        rotated.extend_from_slice(&active[cut..]);
        rotated.extend_from_slice(&active[..cut]);
    }
    // Retired physical lines per rotated slot on this wave's axis. Each
    // slot is planned at most once per wave, so the list is moved into
    // its job (the empty Vec left behind is never read again).
    let mut avoids: Vec<Vec<usize>> = rotated
        .iter()
        .map(|&s| shards[s].retired().avoid_lines(axis))
        .collect();
    // Per-slot line length — the pool may mix geometries.
    let caps: Vec<usize> = rotated.iter().map(|&s| shards[s].capacity()).collect();
    let mut used = vec![false; rotated.len()];
    let mut jobs: Vec<WaveJob> = Vec::new();
    // Pass 1 — spread: one-request-per-line chunks, breadth-first over the
    // active shards. A large group spreads over *several* shards within
    // one wave; that is the sharding win for single-program traffic. Each
    // chunk routes to the *smallest* idle shard its program fits (ties go
    // to rotated position, which on a uniform pool reproduces the
    // classic next-idle-shard walk exactly): wide programs claim the tall
    // shards only when they must, keeping them free for traffic that has
    // nowhere else to go.
    'groups: for (gi, g) in groups.iter_mut().enumerate() {
        let row_size = g.program.program().row_size;
        while g.remaining() > 0 {
            let mut pick: Option<usize> = None;
            for si in 0..rotated.len() {
                // Shards whose every line on this axis has retired, and
                // shards too short for this program, serve other traffic.
                if used[si] || caps[si] < row_size || avoids[si].len() >= caps[si] {
                    continue;
                }
                if pick.is_none_or(|p| caps[si] < caps[p]) {
                    pick = Some(si);
                }
            }
            let Some(si) = pick else {
                if used.iter().all(|&u| u) {
                    break 'groups;
                }
                // Nothing idle fits *this* group; narrower groups may
                // still fit the remaining short shards.
                continue 'groups;
            };
            used[si] = true;
            let avoid = std::mem::take(&mut avoids[si]);
            let line_len = caps[si];
            let avail = line_len - avoid.len();
            let take = g.remaining().min(knobs.batch_limit).min(avail);
            let (tickets, inputs) = g.take(take);
            jobs.push(WaveJob {
                shard: rotated[si],
                group: gi,
                program: g.program.clone(),
                tickets,
                inputs,
                lines: take,
                avoid,
                line_len,
                extras: Vec::new(),
            });
        }
    }
    // Pass 2 — densify: with every shard busy (or every group drained),
    // absorb leftover traffic into extra offsets of the planned batches
    // instead of extra waves.
    for job in &mut jobs {
        let g = &mut groups[job.group];
        if g.remaining() == 0 {
            continue;
        }
        let depth = knobs.per_line(job.line_len, &job.program) - 1;
        let extra = g.remaining().min(job.lines * depth);
        if extra == 0 {
            continue;
        }
        let (tickets, inputs) = g.take(extra);
        job.tickets.extend(tickets);
        job.inputs.extend(inputs);
    }
    let mut planned: Vec<(WaveJob, PlacementPlan)> = jobs
        .into_iter()
        .map(|job| {
            // The slot-offset fill origin rotates with the pool-lifetime
            // wave index (origin_base counts earlier flushes): successive
            // waves start their offset-major fill one slot column further
            // along the line, leveling memristor wear across cells
            // instead of always writing from cell 0. The origin is a pure
            // function of the wave's position in the submission history,
            // so the plan — and the determinism guarantee — is unchanged
            // in kind.
            let plan = PlacementPlan::pack_avoiding(
                axis,
                job.line_len,
                job.program.footprint().max(1),
                job.lines,
                knobs.pack_limit,
                job.tickets.len(),
                knobs.origin_base + wave,
                &job.avoid,
            )
            .expect("planned chunks fit their packed capacity by construction");
            (job, plan)
        })
        .collect();
    // Pass 3 — co-locate: groups still undrained after spread + densify
    // belong to fingerprints that found no idle shard. Instead of
    // queueing them a near-empty wave each, bin-pack them onto the free
    // lines of the claimed shards, first-fit-decreasing by footprint
    // (stable sort, so equal footprints keep submission order): each
    // placed chunk becomes an extra part of the shard's multi-program
    // wave, line-disjoint from the main plan and every earlier extra.
    if knobs.colocate {
        let mut leftover: Vec<usize> = (0..groups.len())
            .filter(|&gi| groups[gi].remaining() > 0)
            .collect();
        leftover.sort_by_key(|&gi| std::cmp::Reverse(groups[gi].program.footprint().max(1)));
        for gi in leftover {
            for (job, plan) in planned.iter_mut() {
                let g = &mut groups[gi];
                if g.remaining() == 0 {
                    break;
                }
                if g.program.program().row_size > job.line_len {
                    continue;
                }
                // Free lines: in-service minus what the main part and
                // earlier extras hold, capped by the batch-line budget.
                let committed = plan.lines_occupied()
                    + job
                        .extras
                        .iter()
                        .map(|e| e.plan.lines_occupied())
                        .sum::<usize>();
                let in_service = job.line_len - job.avoid.len();
                let free = in_service
                    .saturating_sub(committed)
                    .min(knobs.batch_limit.saturating_sub(committed));
                if free == 0 {
                    continue;
                }
                let per_line = knobs.per_line(job.line_len, &g.program);
                let take = g.remaining().min(free * per_line);
                let mut avoid = job.avoid.clone();
                avoid.extend(plan.lines());
                for e in &job.extras {
                    avoid.extend(e.plan.lines());
                }
                avoid.sort_unstable();
                avoid.dedup();
                let extra_plan = PlacementPlan::pack_avoiding(
                    axis,
                    job.line_len,
                    g.program.footprint().max(1),
                    free,
                    knobs.pack_limit,
                    take,
                    knobs.origin_base + wave,
                    &avoid,
                )
                .expect("co-located chunks fit the free lines by construction");
                let (tickets, inputs) = g.take(take);
                job.extras.push(ExtraPart {
                    group: gi,
                    program: g.program.clone(),
                    tickets,
                    inputs,
                    plan: extra_plan,
                });
            }
        }
    }
    // `dispatch_wave` pairs jobs with disjoint `&mut` shards in one
    // ascending scan; the retry rotation can hand out shards in rotated
    // order, so restore ascending order here.
    planned.sort_by_key(|(job, _)| job.shard);
    planned
}

/// Runs one wave job on its shard: the plain single-program plan when the
/// job has no extras (every pre-PR-10 flush), the multi-program wave when
/// pass 3 co-located other groups onto the shard. Both shapes return the
/// per-part [`MultiBatchOutcome`] so the fold below has one code path.
fn run_job(
    device: &mut PimDevice,
    job: &WaveJob,
    plan: &PlacementPlan,
) -> Result<MultiBatchOutcome, DeviceError> {
    if job.extras.is_empty() {
        let batch = device.run_plan(&job.program, plan, &job.inputs)?;
        return Ok(MultiBatchOutcome {
            parts: vec![batch.outputs],
            input_check: batch.input_check,
            stats: batch.stats,
            gate_evals: batch.gate_evals,
            uncorrectable_input: batch.uncorrectable_input,
        });
    }
    let parts: Vec<PlacementPlan> = std::iter::once(plan.clone())
        .chain(job.extras.iter().map(|e| e.plan.clone()))
        .collect();
    let multi = MultiProgramPlan::new(parts)?;
    let requests: Vec<MultiPartRequest<'_>> = std::iter::once(MultiPartRequest {
        program: &job.program,
        requests: &job.inputs,
    })
    .chain(job.extras.iter().map(|e| MultiPartRequest {
        program: &e.program,
        requests: &e.inputs,
    }))
    .collect();
    device.run_multi(&multi, &requests)
}

/// Runs one planned wave, each busy shard on its own scoped thread, and
/// folds the batch outcomes into `outcome`. The wave's wall-clock
/// contribution is the *maximum* busy time over its shards — they tick in
/// parallel. Successful batches are folded in even when a sibling shard
/// fails; only the first error is reported.
///
/// Tickets whose lines drew an uncorrectable ECC verdict never yield a
/// [`TicketResult`] here: their outputs are suppressed and they re-enter
/// their group (`retry` carries their attempt history) or dead-letter
/// into [`ClusterOutcome::failed`] once `knobs.max_retries` is spent.
/// Co-located parts share their wave's verdict — a suspect block-line
/// suppresses whichever parts' slots sit on it, each requeueing into its
/// *own* group.
#[allow(clippy::too_many_arguments)]
fn dispatch_wave(
    shards: &mut [PimDevice],
    groups: &mut [Group],
    jobs: Vec<(WaveJob, PlacementPlan)>,
    knobs: PackingKnobs,
    outcome: &mut ClusterOutcome,
    retry: &mut HashMap<u64, RetryState>,
    wave: usize,
) -> Result<(), ClusterError> {
    let dispatched_at = Instant::now();
    type Ran = (
        WaveJob,
        PlacementPlan,
        Duration,
        Result<MultiBatchOutcome, DeviceError>,
    );
    // A wave with a single busy shard runs inline: spawning (and joining)
    // a scoped thread for one job costs more than the job's glue on small
    // flushes, and the simulated wall-clock accounting below is identical
    // either way.
    let ran: Vec<Ran> = if jobs.len() == 1 {
        let (job, plan) = jobs.into_iter().next().expect("one job");
        let device = &mut shards[job.shard];
        let started = Instant::now();
        let result = run_job(device, &job, &plan);
        vec![(job, plan, started.elapsed(), result)]
    } else {
        // `plan_wave` assigns strictly increasing shard indices, so one
        // pass over the shards pairs each job with a disjoint
        // `&mut PimDevice`.
        let mut jobs = jobs.into_iter().peekable();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, device) in shards.iter_mut().enumerate() {
                if jobs.peek().map(|(j, _)| j.shard) == Some(i) {
                    let (job, plan) = jobs.next().expect("peeked");
                    handles.push(s.spawn(move || {
                        let started = Instant::now();
                        let result = run_job(device, &job, &plan);
                        (job, plan, started.elapsed(), result)
                    }));
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        })
    };

    let mut wave_wall = 0;
    let mut first_error = None;
    for (job, plan, execute_latency, result) in ran {
        let WaveJob {
            shard,
            group,
            tickets,
            inputs,
            avoid,
            line_len,
            extras,
            ..
        } = job;
        let batch = match result {
            Ok(batch) => batch,
            Err(source) => {
                first_error.get_or_insert(ClusterError::Shard { shard, source });
                continue;
            }
        };
        wave_wall = wave_wall.max(batch.stats.mem_cycles);
        outcome.stats += batch.stats;
        outcome.input_check += batch.input_check;
        outcome.gate_evals += batch.gate_evals;
        let report = &mut outcome.shard_reports[shard];
        report.input_check += batch.input_check;
        report.batches += 1;
        report.busy_mem_cycles += batch.stats.mem_cycles;
        report.gate_evals += batch.gate_evals;
        // Capacity counts only in-service lines: retired lines leave the
        // denominator, so utilization reflects what the shard can still
        // hold rather than what it shipped with. One wave dispatches the
        // shard once no matter how many parts ride it — co-location
        // *raises* utilization against the same denominator.
        let in_service = line_len - avoid.len();
        report.line_capacity += in_service as u64;
        report.cell_capacity += (in_service * line_len) as u64;
        let unc = batch.uncorrectable_input;
        // The main part first, then the extras, in the same order their
        // plans were assembled — parallel to `batch.parts`.
        type WavePart = (usize, Vec<(Ticket, Instant)>, Vec<Vec<bool>>, PlacementPlan);
        let parts: Vec<WavePart> = std::iter::once((group, tickets, inputs, plan))
            .chain(
                extras
                    .into_iter()
                    .map(|e| (e.group, e.tickets, e.inputs, e.plan)),
            )
            .collect();
        for ((part_group, tickets, mut inputs, part_plan), arena) in
            parts.into_iter().zip(batch.parts)
        {
            report.requests += tickets.len() as u64;
            report.lines_occupied += part_plan.lines_occupied() as u64;
            report.cells_occupied += part_plan.cells_occupied() as u64;
            let width = arena.width();
            // One `Arc` per part per batch: every ticket's result slices
            // into it instead of owning a fresh Vec.
            let bits: Arc<[bool]> = arena.into_bits().into();
            for (i, ((ticket, submitted_at), slot)) in tickets
                .into_iter()
                .zip(part_plan.slots().iter().copied())
                .enumerate()
            {
                if unc.as_ref().is_some_and(|u| u.covers_line(slot.line)) {
                    // An uncorrectable verdict covers this ticket's lines:
                    // the outputs cannot be vouched for, so they are
                    // suppressed — never resolved. The ticket re-enters
                    // its group for the next wave, or dead-letters
                    // explicitly once its attempt budget is spent.
                    let state = retry.entry(ticket.id()).or_default();
                    state.attempts += 1;
                    state.latencies.push(execute_latency);
                    if state.attempts > knobs.max_retries {
                        let state = retry.remove(&ticket.id()).expect("just updated");
                        outcome.failed.push(FailedRequest {
                            ticket,
                            attempts: state.attempts,
                        });
                    } else {
                        outcome.retries += 1;
                        groups[part_group].requests.push((
                            ticket,
                            submitted_at,
                            std::mem::take(&mut inputs[i]),
                        ));
                    }
                    continue;
                }
                let (attempts, mut attempt_latencies) = match retry.remove(&ticket.id()) {
                    Some(state) => (state.attempts + 1, state.latencies),
                    None => (1, Vec::new()),
                };
                attempt_latencies.push(execute_latency);
                let execute_total = attempt_latencies.iter().sum();
                outcome.results.push(TicketResult {
                    ticket,
                    shard,
                    wave,
                    axis: part_plan.axis(),
                    line: slot.line,
                    offset: slot.offset,
                    outputs: OutputSlice::new(Arc::clone(&bits), i * width, width),
                    attempts,
                    queue_latency: dispatched_at.saturating_duration_since(submitted_at),
                    execute_latency: execute_total,
                    attempt_latencies,
                });
            }
        }
    }
    outcome.wall_mem_cycles += wave_wall;
    outcome.waves += 1;
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}
