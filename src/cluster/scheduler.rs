//! The wave scheduler: carve full-width row batches out of the
//! fingerprint groups and dispatch one batch per shard per wave, shards in
//! parallel on scoped threads.
//!
//! Determinism: group order, chunk carving and shard assignment are all
//! pure functions of submission order and the cluster's knobs — no map
//! iteration order, clock or thread-completion order ever reaches the
//! plan, so identical submissions yield identical placements and results.

use super::error::ClusterError;
use super::outcome::{ClusterOutcome, TicketResult};
use super::queue::{Group, Ticket};
use crate::device::{BatchOutcome, CompiledProgram, DeviceError, PimDevice};

/// One shard's work for one wave: a chunk of one group.
struct WaveJob {
    shard: usize,
    program: CompiledProgram,
    tickets: Vec<Ticket>,
    inputs: Vec<Vec<bool>>,
}

/// Executes `groups` to completion over `shards`, at most `batch_limit`
/// rows per dispatched batch, folding everything into `outcome`; on
/// success the results end up sorted by ticket.
///
/// On a shard failure the error is returned after the failing wave's
/// *successful* batches are folded in, and the flush's undispatched
/// traffic is abandoned — shard errors are placement or legality bugs,
/// not runtime conditions (submissions are validated up front). The
/// caller keeps `outcome`, so already-served tickets survive the error.
pub(crate) fn run_waves(
    shards: &mut [PimDevice],
    mut groups: Vec<Group>,
    batch_limit: usize,
    outcome: &mut ClusterOutcome,
) -> Result<(), ClusterError> {
    loop {
        let jobs = plan_wave(&mut groups, shards.len(), batch_limit);
        if jobs.is_empty() {
            break;
        }
        dispatch_wave(shards, jobs, outcome)?;
    }
    outcome.results.sort_by_key(|r| r.ticket);
    Ok(())
}

/// Plans one wave: walk the groups in first-submission order, carve chunks
/// of up to `batch_limit` requests, and hand each chunk to the next idle
/// shard until every shard has work or every group is drained. A large
/// group spreads over *several* shards within one wave — that is the
/// sharding win for single-program traffic.
fn plan_wave(groups: &mut [Group], shards: usize, batch_limit: usize) -> Vec<WaveJob> {
    let mut jobs = Vec::new();
    let mut shard = 0;
    'groups: for g in groups.iter_mut() {
        while g.remaining() > 0 {
            if shard == shards {
                break 'groups;
            }
            let take = g.remaining().min(batch_limit);
            let chunk = &mut g.requests[g.cursor..g.cursor + take];
            jobs.push(WaveJob {
                shard,
                program: g.program.clone(),
                tickets: chunk.iter().map(|(t, _)| *t).collect(),
                // The cursor never revisits a request, so the inputs move
                // out instead of cloning.
                inputs: chunk.iter_mut().map(|(_, i)| std::mem::take(i)).collect(),
            });
            g.cursor += take;
            shard += 1;
        }
    }
    jobs
}

/// Runs one planned wave, each busy shard on its own scoped thread, and
/// folds the batch outcomes into `outcome`. The wave's wall-clock
/// contribution is the *maximum* busy time over its shards — they tick in
/// parallel. Successful batches are folded in even when a sibling shard
/// fails; only the first error is reported.
fn dispatch_wave(
    shards: &mut [PimDevice],
    jobs: Vec<WaveJob>,
    outcome: &mut ClusterOutcome,
) -> Result<(), ClusterError> {
    let wave = outcome.waves;
    // `plan_wave` assigns strictly increasing shard indices, so one pass
    // over the shards pairs each job with a disjoint `&mut PimDevice`.
    let mut jobs = jobs.into_iter().peekable();
    let ran: Vec<(WaveJob, Result<BatchOutcome, DeviceError>)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, device) in shards.iter_mut().enumerate() {
            if jobs.peek().map(|j| j.shard) == Some(i) {
                let job = jobs.next().expect("peeked");
                handles.push(s.spawn(move || {
                    let result = device.run_batch(&job.program, &job.inputs);
                    (job, result)
                }));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });

    let mut wave_wall = 0;
    let mut first_error = None;
    for (job, result) in ran {
        let batch = match result {
            Ok(batch) => batch,
            Err(source) => {
                first_error.get_or_insert(ClusterError::Shard {
                    shard: job.shard,
                    source,
                });
                continue;
            }
        };
        wave_wall = wave_wall.max(batch.stats.mem_cycles);
        outcome.stats += batch.stats;
        outcome.input_check += batch.input_check;
        outcome.gate_evals += batch.gate_evals;
        let report = &mut outcome.shard_reports[job.shard];
        report.batches += 1;
        report.requests += job.tickets.len() as u64;
        report.busy_mem_cycles += batch.stats.mem_cycles;
        report.gate_evals += batch.gate_evals;
        for (ticket, outputs) in job.tickets.into_iter().zip(batch.outputs) {
            outcome.results.push(TicketResult {
                ticket,
                shard: job.shard,
                wave,
                outputs,
            });
        }
    }
    outcome.wall_mem_cycles += wave_wall;
    outcome.waves += 1;
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}
