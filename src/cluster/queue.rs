//! The submission queue: tickets, pending requests, and the
//! pack-by-fingerprint grouping the scheduler consumes.

use crate::compiler::PartitionedProgram;
use crate::device::CompiledProgram;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Receipt for one submitted request, redeemed against the
/// [`ClusterOutcome`](crate::cluster::ClusterOutcome) of the flush that
/// served it.
///
/// Tickets are issued in submission order and are unique for the lifetime
/// of the cluster, so they double as a deterministic tie-breaker wherever
/// the scheduler needs a stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[must_use = "a dropped ticket cannot be redeemed against its flush's outcome"]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// The ticket's cluster-lifetime sequence number.
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket#{}", self.0)
    }
}

/// The consecutive tickets issued by one
/// [`PimCluster::submit_batch`](crate::cluster::PimCluster::submit_batch) —
/// ticket ids are cluster-lifetime sequential, so a batch is fully
/// described by its first id and length, no per-ticket allocation needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[must_use = "dropped tickets cannot be redeemed against their flush's outcome"]
pub struct TicketRange {
    pub(crate) start: u64,
    pub(crate) len: u64,
}

impl TicketRange {
    /// Number of tickets in the range.
    #[allow(clippy::len_without_is_empty)] // is_empty is defined right below
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the submission accepted no requests.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th ticket of the batch, if in range.
    pub fn get(&self, i: usize) -> Option<Ticket> {
        ((i as u64) < self.len).then(|| Ticket(self.start + i as u64))
    }

    /// Iterates the batch's tickets in submission order.
    pub fn iter(&self) -> impl Iterator<Item = Ticket> + use<> {
        (self.start..self.start + self.len).map(Ticket)
    }
}

impl IntoIterator for TicketRange {
    type Item = Ticket;
    type IntoIter = std::iter::Map<std::ops::Range<u64>, fn(u64) -> Ticket>;

    fn into_iter(self) -> Self::IntoIter {
        (self.start..self.start + self.len).map(Ticket)
    }
}

/// One accepted, not-yet-executed request. The submission instant rides
/// along so the flush that serves it can report the request's queue
/// latency ([`TicketResult::queue_latency`](crate::cluster::TicketResult)).
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub(crate) ticket: Ticket,
    pub(crate) submitted_at: Instant,
    pub(crate) program: CompiledProgram,
    pub(crate) inputs: Vec<bool>,
}

/// One accepted, not-yet-executed *partitioned* request: the same shape
/// as [`Pending`], but against a [`PartitionedProgram`] — served as a
/// chain of dependency waves rather than a single batch.
#[derive(Debug, Clone)]
pub(crate) struct PendingPartitioned {
    pub(crate) ticket: Ticket,
    pub(crate) submitted_at: Instant,
    pub(crate) program: Arc<PartitionedProgram>,
    pub(crate) inputs: Vec<bool>,
}

/// All pending requests of one program, in submission order — the unit the
/// scheduler carves row batches from.
#[derive(Debug)]
pub(crate) struct Group {
    pub(crate) program: CompiledProgram,
    pub(crate) requests: Vec<(Ticket, Instant, Vec<bool>)>,
    /// Next request index the scheduler has not yet dispatched.
    pub(crate) cursor: usize,
}

impl Group {
    pub(crate) fn remaining(&self) -> usize {
        self.requests.len() - self.cursor
    }

    /// Hands the scheduler the next `n` undispatched requests, advancing
    /// the cursor. The cursor never revisits a request, so the inputs move
    /// out instead of cloning.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.remaining()` — the scheduler sizes its chunks
    /// from `remaining`.
    pub(crate) fn take(&mut self, n: usize) -> (Vec<(Ticket, Instant)>, Vec<Vec<bool>>) {
        let chunk = &mut self.requests[self.cursor..self.cursor + n];
        let tickets = chunk.iter().map(|&(t, at, _)| (t, at)).collect();
        let inputs = chunk
            .iter_mut()
            .map(|(_, _, i)| std::mem::take(i))
            .collect();
        self.cursor += n;
        (tickets, inputs)
    }
}

/// Drains `pending` into per-fingerprint groups, filling the caller's
/// reusable buffers instead of allocating fresh ones per flush.
///
/// `groups` must arrive empty; `index` is cleared here; `spare` donates
/// emptied request buffers (popped for new groups, so a steady-state flush
/// reuses last flush's capacity). `pending` keeps its own capacity for the
/// next submission burst.
///
/// Group order is the order each program *first* appeared in the queue and
/// requests keep submission order inside their group — both properties the
/// scheduler's determinism guarantee rests on (a `HashMap` iteration order
/// never reaches the dispatch plan).
pub(crate) fn group_into(
    pending: &mut Vec<Pending>,
    groups: &mut Vec<Group>,
    index: &mut HashMap<u64, usize>,
    spare: &mut Vec<Vec<(Ticket, Instant, Vec<bool>)>>,
) {
    debug_assert!(groups.is_empty(), "group arena must be drained per flush");
    index.clear();
    // Batched submissions queue long same-program runs; remembering the
    // last fingerprint skips the hash for every request after a run's
    // first.
    let mut last: Option<(u64, usize)> = None;
    for p in pending.drain(..) {
        let key = p.program.fingerprint();
        let at = match last {
            Some((k, at)) if k == key => at,
            _ => {
                let at = *index.entry(key).or_insert_with(|| {
                    groups.push(Group {
                        program: p.program.clone(),
                        requests: spare.pop().unwrap_or_default(),
                        cursor: 0,
                    });
                    groups.len() - 1
                });
                last = Some((key, at));
                at
            }
        };
        groups[at]
            .requests
            .push((p.ticket, p.submitted_at, p.inputs));
    }
}

/// One-shot [`group_into`] over fresh buffers.
#[cfg(test)]
pub(crate) fn group_by_fingerprint(mut pending: Vec<Pending>) -> Vec<Group> {
    let mut groups = Vec::new();
    group_into(
        &mut pending,
        &mut groups,
        &mut HashMap::new(),
        &mut Vec::new(),
    );
    groups
}

/// One partitioned group: the shared program and its requests in
/// submission order.
pub(crate) type PartitionedGroup = (Arc<PartitionedProgram>, Vec<(Ticket, Instant, Vec<bool>)>);

/// Drains partitioned submissions into per-fingerprint groups with the
/// same ordering guarantees as [`group_by_fingerprint`]: groups in
/// first-appearance order, requests in submission order.
pub(crate) fn group_partitioned(pending: Vec<PendingPartitioned>) -> Vec<PartitionedGroup> {
    let mut groups: Vec<PartitionedGroup> = Vec::new();
    let mut index: HashMap<u64, usize> = HashMap::new();
    for p in pending {
        let key = p.program.fingerprint();
        let at = *index.entry(key).or_insert_with(|| {
            groups.push((Arc::clone(&p.program), Vec::new()));
            groups.len() - 1
        });
        groups[at].1.push((p.ticket, p.submitted_at, p.inputs));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PimDevice;
    use pimecc_netlist::NetlistBuilder;

    fn program(bits: usize, tag: bool) -> CompiledProgram {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(bits);
        let mut g = b.nor(ins[0], ins[bits - 1]);
        if tag {
            g = b.nor(g, ins[0]);
        }
        b.output(g);
        let mut device = PimDevice::new(30, 3).expect("device");
        device.compile(&b.finish().to_nor()).expect("compiles")
    }

    #[test]
    fn groups_keep_first_appearance_order_and_submission_order() {
        let a = program(2, false);
        let b = program(3, true);
        let now = Instant::now();
        let pending = vec![
            Pending {
                ticket: Ticket(0),
                submitted_at: now,
                program: b.clone(),
                inputs: vec![true, false, true],
            },
            Pending {
                ticket: Ticket(1),
                submitted_at: now,
                program: a.clone(),
                inputs: vec![true, false],
            },
            Pending {
                ticket: Ticket(2),
                submitted_at: now,
                program: b.clone(),
                inputs: vec![false, false, true],
            },
        ];
        let groups = group_by_fingerprint(pending);
        assert_eq!(groups.len(), 2);
        assert_eq!(
            groups[0].program.fingerprint(),
            b.fingerprint(),
            "first-seen program leads"
        );
        assert_eq!(groups[0].requests.len(), 2);
        assert_eq!(groups[0].requests[0].0, Ticket(0));
        assert_eq!(groups[0].requests[1].0, Ticket(2));
        assert_eq!(groups[1].requests.len(), 1);
        assert_eq!(groups[1].requests[0].0, Ticket(1));
        assert_eq!(groups[1].requests[0].2, vec![true, false]);
        assert_eq!(groups[0].remaining(), 2);
    }
}
