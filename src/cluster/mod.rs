//! Sharded, queue-fed execution over a pool of [`PimDevice`] crossbars —
//! synchronously on the caller's thread, or as a spawned **service**
//! behind a channel-fed worker.
//!
//! One crossbar amortizes ECC and program latency *inside* a batch
//! ([`PimDevice::run_batch`]); this layer amortizes *across* crossbars.
//! The distributed-RRAM follow-up literature (Vo et al.) makes the same
//! observation at datacenter scale: integrated-ECC tiles only reach their
//! aggregate throughput when a front-end scheduler keeps every
//! independently checked tile busy. A [`PimCluster`] is that front-end:
//!
//! ```text
//!  submit(program, inputs) → Ticket                flush() → ClusterOutcome
//!        │                                                       ▲
//!        ▼                                                       │
//!  ┌──────────────┐ group by ┌───────────────────┐  wave  ┌──────┴──────┐
//!  │ pending queue│─────────►│ fingerprint groups│───────►│  scheduler  │
//!  │ (mixed       │ program  │ [i2f: t0 t2 t5…]  │ chunks │ shard 0 ──┐ │
//!  │  traffic)    │ identity │ [add: t1 t3 t4…]  │ ≤ rows │ shard 1 ──┼─┼─► per-shard
//!  └──────────────┘          └───────────────────┘        │ shard …   │ │   run_batch,
//!                                                         └───────────┘ │   in parallel
//!                                                          std::thread::scope
//! ```
//!
//! 1. [`PimCluster::submit`] enqueues one request against a compiled
//!    program handle and returns a [`Ticket`] immediately — nothing
//!    executes yet, so mixed-program traffic accumulates;
//! 2. [`PimCluster::flush`] packs the queue **by program fingerprint**
//!    (only same-program requests can share a crossbar pass — MAGIC
//!    executes one step sequence for all selected lines), plans each wave
//!    in two dimensions (a
//!    [`PlacementPlan`](crate::device::PlacementPlan) per batch: at most
//!    [`batch_limit`](PimClusterBuilder::batch_limit) lines, up to
//!    [`pack_limit`](PimClusterBuilder::pack_limit) narrow requests
//!    co-packed per line, axis per [`AxisPolicy`], the slot-offset fill
//!    origin rotating per wave to level memristor wear), and dispatches
//!    the batches wave by wave, one batch per shard per wave, shards
//!    running in parallel via [`std::thread::scope`];
//! 3. the [`ClusterOutcome`] returns every ticket's outputs, placement
//!    (shard, wave, axis, line, offset) and host-side latencies
//!    (queue + execute) plus two clocks: summed
//!    [`MachineStats`](pimecc_core::MachineStats) (total machine work) and
//!    wall MEM cycles (slowest shard per wave), from which per-shard
//!    [utilization](ShardReport::utilization) — time, [line occupancy
//!    ](ShardReport::line_utilization) and [cell occupancy
//!    ](ShardReport::cell_utilization) — and the aggregate
//!    gate-evals/MEM-cycle throughput follow.
//!
//! Compiled handles are [`Arc`]-shared
//! ([`CompiledProgram`]), so one [`PimCluster::compile`] serves every
//! shard without re-mapping or deep-copying the program.
//!
//! # Running as a service
//!
//! The synchronous flow above couples batching to the caller: traffic
//! only accumulates while the caller refrains from flushing, and
//! `flush()` blocks until every wave has executed. For production-style
//! traffic, [`PimClusterBuilder::spawn`] splits submission from
//! execution: the shard pool moves into a dedicated worker thread fed by
//! an MPSC channel, callers hold cheap, cloneable
//! [`ClusterHandle`]s whose [`submit`](ClusterHandle::submit) never
//! blocks on execution, and tickets become waitable futures
//! ([`handle::Ticket::wait`] / [`try_wait`](handle::Ticket::try_wait)).
//! The worker auto-flushes on **either** a pending-count threshold
//! ([`auto_flush_at`](PimClusterBuilder::auto_flush_at)) **or** a
//! max-latency deadline ([`flush_after`](PimClusterBuilder::flush_after))
//! — whichever trips first — so batches form without any caller calling
//! `flush()`. Backpressure
//! ([`queue_limit`](PimClusterBuilder::queue_limit)) and graceful
//! shutdown ([`ClusterHandle::close`] drains, a panicked worker surfaces
//! as [`ClusterError::WorkerPoisoned`]) make the lifecycle explicit. See
//! the [`handle`] module for the caller-side API.
//!
//! Both front-ends drive the same engine, so scheduling stays a pure
//! function of submission order either way: the worker serializes
//! concurrent producers through its channel (ticket ids are allocated in
//! channel order), and a service fed a given order places it exactly as
//! the synchronous cluster would.
//!
//! # Example
//!
//! ```
//! use pimecc::prelude::*;
//! use pimecc::netlist::NetlistBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new();
//! let ins = b.inputs(2);
//! let g = b.xor(ins[0], ins[1]);
//! b.output(g);
//! let netlist = b.finish();
//!
//! // Four 30x30 shards behind one queue.
//! let mut cluster = PimClusterBuilder::new(4, 30, 3).build()?;
//! let program = cluster.compile(&netlist.to_nor())?;
//!
//! let tickets: Vec<Ticket> = (0..100u32)
//!     .map(|v| cluster.submit(&program, vec![v & 1 != 0, v & 2 != 0]))
//!     .collect::<Result<_, _>>()?;
//! let outcome = cluster.flush()?;
//!
//! assert_eq!(outcome.requests(), 100);
//! for (v, t) in tickets.iter().enumerate() {
//!     let want = netlist.eval(&[v as u32 & 1 != 0, v as u32 & 2 != 0]);
//!     assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()));
//! }
//! // 100 requests fit one wave: the scheduler carves greedy full-width
//! // chunks of 30 + 30 + 30 + 10 rows across the four shards.
//! assert_eq!(outcome.waves, 1);
//! # Ok(())
//! # }
//! ```

mod error;
pub mod handle;
pub mod health;
mod outcome;
mod queue;
mod scheduler;
mod service;
mod worker;

pub use error::ClusterError;
pub use handle::ClusterHandle;
pub use health::{
    default_scrub_period, scrub_period_for, HealthSnapshot, LatencyStats, ShardHealth, ShardState,
};
pub use outcome::{ClusterOutcome, FailedRequest, OutputSlice, ShardReport, TicketResult};
pub use queue::{Ticket, TicketRange};
pub use scheduler::AxisPolicy;

use crate::compiler::{self, PartitionedProgram};
use crate::device::{
    BatchFaultHook, CheckPolicy, CompiledProgram, CoveragePolicy, PimDevice, PimDeviceBuilder,
    ProgramCache, ScrubReport, SimEngine,
};
use health::{HealthConfig, HealthMonitor};
use pimecc_core::ProtectedMemory;
use pimecc_netlist::NorNetlist;
use pimecc_simpler::Program;
use queue::{Pending, PendingPartitioned};
use service::{ClusterCore, FlushArena, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configures and builds a [`PimCluster`] — or spawns it as a service
/// ([`PimClusterBuilder::spawn`]).
///
/// By default every shard shares one geometry (`n×n` crossbar, `m×m` ECC
/// blocks);
/// [`shard_geometries`](PimClusterBuilder::shard_geometries) builds a
/// **mixed pool** instead — per-shard crossbar sizes, with the scheduler
/// routing each program to the smallest idle shard it fits. Checking and
/// coverage policies default cluster-wide and can be overridden per
/// shard.
///
/// ```
/// use pimecc::prelude::*;
///
/// # fn main() -> Result<(), ClusterError> {
/// let cluster = PimClusterBuilder::new(2, 30, 3)
///     .check_policy(CheckPolicy::Paranoid)
///     .batch_limit(16)
///     .build()?;
/// assert_eq!(cluster.shards(), 2);
/// assert_eq!(cluster.capacity(), 60);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub struct PimClusterBuilder {
    shards: usize,
    n: usize,
    m: usize,
    check_policy: CheckPolicy,
    coverage: CoveragePolicy,
    check_overrides: Vec<(usize, CheckPolicy)>,
    coverage_overrides: Vec<(usize, CoveragePolicy)>,
    fault_hooks: Vec<(usize, BatchFaultHook)>,
    batch_limit: Option<usize>,
    pack_limit: Option<usize>,
    axis_policy: AxisPolicy,
    auto_flush_at: Option<usize>,
    flush_after: Option<Duration>,
    queue_limit: Option<usize>,
    scrub_period: Option<Duration>,
    error_budget: Option<u64>,
    recovery_scrubs: Option<u32>,
    adaptive_deadline: bool,
    engine: SimEngine,
    threads: usize,
    max_retries: Option<u32>,
    retire_after: Option<u32>,
    geometries: Option<Vec<(usize, usize)>>,
    colocate: bool,
}

impl std::fmt::Debug for PimClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimClusterBuilder")
            .field("shards", &self.shards)
            .field("n", &self.n)
            .field("m", &self.m)
            .field("check_policy", &self.check_policy)
            .field("coverage", &self.coverage)
            .field("check_overrides", &self.check_overrides)
            .field("coverage_overrides", &self.coverage_overrides)
            .field("fault_hooks", &self.fault_hooks.len())
            .field("batch_limit", &self.batch_limit)
            .field("pack_limit", &self.pack_limit)
            .field("axis_policy", &self.axis_policy)
            .field("auto_flush_at", &self.auto_flush_at)
            .field("flush_after", &self.flush_after)
            .field("queue_limit", &self.queue_limit)
            .field("scrub_period", &self.scrub_period)
            .field("error_budget", &self.error_budget)
            .field("recovery_scrubs", &self.recovery_scrubs)
            .field("adaptive_deadline", &self.adaptive_deadline)
            .field("engine", &self.engine)
            .field("threads", &self.threads)
            .field("max_retries", &self.max_retries)
            .field("retire_after", &self.retire_after)
            .field("geometries", &self.geometries)
            .field("colocate", &self.colocate)
            .finish()
    }
}

impl PimClusterBuilder {
    /// Starts a builder for `shards` shards of `n×n` crossbars with `m×m`
    /// ECC blocks each.
    pub fn new(shards: usize, n: usize, m: usize) -> Self {
        PimClusterBuilder {
            shards,
            n,
            m,
            check_policy: CheckPolicy::default(),
            coverage: CoveragePolicy::default(),
            check_overrides: Vec::new(),
            coverage_overrides: Vec::new(),
            fault_hooks: Vec::new(),
            batch_limit: None,
            pack_limit: None,
            axis_policy: AxisPolicy::default(),
            auto_flush_at: None,
            flush_after: None,
            queue_limit: None,
            scrub_period: None,
            error_budget: None,
            recovery_scrubs: None,
            adaptive_deadline: false,
            engine: SimEngine::default(),
            threads: 1,
            max_retries: None,
            retire_after: None,
            geometries: None,
            colocate: true,
        }
    }

    /// Gives each shard its own `(n, m)` geometry — a **mixed pool**,
    /// replacing the builder's uniform `n×n`/`m×m` (which the constructor
    /// arguments still set as the default). The list must name one
    /// geometry per shard; order is shard order.
    ///
    /// Programs compile for the *smallest* shard line they fit
    /// ([`PimCluster::compile`] tries the distinct line lengths ascending)
    /// and the scheduler routes each batch to the smallest idle shard
    /// that can hold it — wide programs claim the tall shards only when
    /// nothing smaller fits, keeping them free for traffic that has
    /// nowhere else to go. Capacity accounting, wear rotation, quarantine
    /// and retired-line avoidance are all per-shard already.
    ///
    /// ```
    /// use pimecc::prelude::*;
    ///
    /// # fn main() -> Result<(), ClusterError> {
    /// let cluster = PimClusterBuilder::new(3, 30, 3)
    ///     .shard_geometries(vec![(30, 3), (30, 3), (60, 3)])
    ///     .build()?;
    /// assert_eq!(cluster.shard_capacity(), 60, "widest admissible program");
    /// assert_eq!(cluster.capacity(), 120, "sum over the mixed pool");
    /// # Ok(())
    /// # }
    /// ```
    pub fn shard_geometries(mut self, geometries: Vec<(usize, usize)>) -> Self {
        self.geometries = Some(geometries);
        self
    }

    /// Enables or disables the scheduler's co-location pass (default:
    /// enabled). When enabled, leftover fingerprint groups that found no
    /// idle shard bin-pack onto the free lines of already-claimed shards
    /// as extra parts of a multi-program wave
    /// ([`MultiProgramPlan`](crate::device::MultiProgramPlan)), sharing
    /// the wave's input-load pass and block-line ECC checks. `false`
    /// restores the fingerprint-per-wave scheduler — useful as a baseline
    /// and for the serial-reference comparisons in the test suite.
    pub fn colocate(mut self, enabled: bool) -> Self {
        self.colocate = enabled;
        self
    }

    /// Selects the host simulation engine of every shard (default:
    /// [`SimEngine::WordParallel`]). The scalar reference is bit-identical
    /// but slower; throughput benchmarks select it per run to measure the
    /// word-parallel speedup on the same traffic.
    pub fn engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Number of host worker threads **each shard** fans a fused
    /// row-parallel replay across (default `1`: run inline), on top of the
    /// one-thread-per-busy-shard wave parallelism. Results, statistics and
    /// check-bits are bit-identical for every thread count — see
    /// [`PimDeviceBuilder::threads`]. `0` is rejected at build time with
    /// [`ClusterError::ZeroThreads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the ECC checking policy of every shard (default:
    /// [`CheckPolicy::PreExecution`]).
    pub fn check_policy(mut self, policy: CheckPolicy) -> Self {
        self.check_policy = policy;
        self
    }

    /// Selects the block coverage policy of every shard (default:
    /// [`CoveragePolicy::Full`]).
    pub fn coverage(mut self, coverage: CoveragePolicy) -> Self {
        self.coverage = coverage;
        self
    }

    /// Overrides the checking policy of one shard — e.g. one
    /// [`CheckPolicy::Paranoid`] canary shard in an otherwise default
    /// pool.
    pub fn shard_check_policy(mut self, shard: usize, policy: CheckPolicy) -> Self {
        self.check_overrides.push((shard, policy));
        self
    }

    /// Overrides the coverage policy of one shard — e.g. a pool where one
    /// shard sacrifices scratch-block protection for capacity.
    pub fn shard_coverage(mut self, shard: usize, coverage: CoveragePolicy) -> Self {
        self.coverage_overrides.push((shard, coverage));
        self
    }

    /// Caps the *lines* (rows or columns, per the wave's axis) one
    /// dispatched batch may occupy (packing knob; default: the full shard
    /// capacity `n`). Lower values trade throughput for latency jitter —
    /// more, smaller batches.
    pub fn batch_limit(mut self, lines: usize) -> Self {
        self.batch_limit = Some(lines);
        self
    }

    /// Caps how many requests the scheduler co-packs side by side in one
    /// line (second packing knob; default: unlimited, i.e. bounded only by
    /// `n / footprint`). `pack_limit(1)` restores the row-only scheduler
    /// of PR 2 — one request per line, overflow into extra waves.
    pub fn pack_limit(mut self, per_line: usize) -> Self {
        self.pack_limit = Some(per_line);
        self
    }

    /// Selects which crossbar axis dispatch waves occupy (default:
    /// [`AxisPolicy::Alternate`] — even waves on columns, odd on rows;
    /// the cost model is axis-symmetric, and the word-parallel engine
    /// simulates column-parallel waves fastest).
    pub fn axis_policy(mut self, policy: AxisPolicy) -> Self {
        self.axis_policy = policy;
        self
    }

    /// Auto-flush threshold (flush knob): once this many requests are
    /// pending, the queue drains without an explicit
    /// [`PimCluster::flush`].
    ///
    /// On a synchronous cluster ([`PimClusterBuilder::build`]) the drain
    /// happens inside [`PimCluster::submit`] and the results are banked
    /// for the next explicit flush. On a spawned service
    /// ([`PimClusterBuilder::spawn`]) the worker flushes in the
    /// background and results become waitable immediately. Unset by
    /// default.
    pub fn auto_flush_at(mut self, pending: usize) -> Self {
        self.auto_flush_at = Some(pending);
        self
    }

    /// Max-latency deadline (service-only flush knob): the spawned
    /// worker flushes once the oldest pending request has waited this
    /// long, so small batches never stall behind an unreached
    /// [`auto_flush_at`](PimClusterBuilder::auto_flush_at) threshold.
    /// Both knobs may be set together — whichever trips first flushes.
    ///
    /// Service-only: [`PimClusterBuilder::build`] rejects it (a
    /// synchronous cluster has no thread to act on a deadline).
    pub fn flush_after(mut self, deadline: Duration) -> Self {
        self.flush_after = Some(deadline);
        self
    }

    /// Bounds the service's submission queue (service-only backpressure
    /// knob): with more than this many submissions in flight,
    /// [`ClusterHandle::submit`] blocks until the worker catches up and
    /// [`ClusterHandle::try_submit`] returns
    /// [`ClusterError::Saturated`]. Unbounded by default.
    ///
    /// Service-only: [`PimClusterBuilder::build`] rejects it (a
    /// synchronous cluster executes on the submitting thread, so its
    /// queue never outruns the caller).
    pub fn queue_limit(mut self, in_flight: usize) -> Self {
        self.queue_limit = Some(in_flight);
        self
    }

    /// Background scrub cadence (service-only health knob): the worker
    /// runs one [`PimDevice::scrub_pass`](crate::device::PimDevice::scrub_pass)
    /// per period on a round-robin shard, whenever the queue is idle or
    /// the flush deadline leaves slack — scrubbing never delays a
    /// deadline flush. Quarantined shards stay in the rotation: clean
    /// scrubs are how they recover.
    ///
    /// Defaults to [`default_scrub_period`] (25 ms, the reliability
    /// model's daily check window compressed to simulation time) on
    /// spawned services. Derive a rate-specific period with
    /// [`scrub_period_for`].
    ///
    /// Service-only: [`PimClusterBuilder::build`] rejects it (a
    /// synchronous cluster has no thread to scrub from; use
    /// [`PimCluster::scrub_shard`] for explicit scrubs).
    ///
    /// # Example
    ///
    /// ```
    /// use pimecc::prelude::*;
    /// use std::time::Duration;
    ///
    /// # fn main() -> Result<(), ClusterError> {
    /// let handle = PimClusterBuilder::new(2, 30, 3)
    ///     .scrub_period(Duration::from_millis(5))
    ///     .spawn()?;
    /// handle.close()?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn scrub_period(mut self, period: Duration) -> Self {
        self.scrub_period = Some(period);
        self
    }

    /// Error budget (health knob, both front-ends): a shard whose rolling
    /// error window (corrected + uncorrectable, over the last 32
    /// observations) *exceeds* this count is **quarantined** — removed
    /// from the scheduler's active list, its traffic rerouted to the
    /// healthy shards — until
    /// [`recovery_scrubs`](PimClusterBuilder::recovery_scrubs)
    /// consecutive clean scrubs restore it. Unset by default (no
    /// quarantine).
    ///
    /// Rerouting is deterministic: a pool with a quarantined shard plans
    /// exactly like a pool built without it (see
    /// [the health module](health)).
    ///
    /// # Example
    ///
    /// ```
    /// use pimecc::prelude::*;
    ///
    /// # fn main() -> Result<(), ClusterError> {
    /// let cluster = PimClusterBuilder::new(3, 30, 3)
    ///     .error_budget(4)
    ///     .recovery_scrubs(2)
    ///     .build()?;
    /// assert_eq!(cluster.health().quarantined(), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn error_budget(mut self, errors: u64) -> Self {
        self.error_budget = Some(errors);
        self
    }

    /// Consecutive clean scrub passes that lift a quarantine (default: 3).
    pub fn recovery_scrubs(mut self, scrubs: u32) -> Self {
        self.recovery_scrubs = Some(scrubs);
        self
    }

    /// Re-dispatches granted to a request whose batch drew an
    /// uncorrectable ECC verdict on its lines (robustness knob, both
    /// front-ends; default: 2). A suspect ticket's outputs are **always**
    /// suppressed — this knob only sets how many fresh placements (next
    /// wave, preferring a different shard) are tried before the ticket
    /// dead-letters as [`ClusterError::RequestFailed`]. `max_retries(0)`
    /// dead-letters on the first uncorrectable verdict; no setting ever
    /// resolves a suspect output.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = Some(retries);
        self
    }

    /// Line-retirement threshold (robustness knob, both front-ends):
    /// a block-line accused of uncorrectable errors by `strikes` distinct
    /// scrubs or batch checks is retired — removed from every future
    /// placement on both axes, its capacity deducted from the shard's
    /// utilization denominator. Unset by default (lines never retire);
    /// `0` is rejected at build time with
    /// [`ClusterError::ZeroRetireAfter`]. See
    /// [`RetiredLines`](crate::device::RetiredLines) for the evidence
    /// streams and [the health module](health) for how retirement
    /// composes with whole-shard quarantine.
    pub fn retire_after(mut self, strikes: u32) -> Self {
        self.retire_after = Some(strikes);
        self
    }

    /// Enables the adaptive `flush_after` controller (service-only SLO
    /// knob): the worker scales the configured
    /// [`flush_after`](PimClusterBuilder::flush_after) deadline with
    /// observed wave occupancy — near-empty waves tighten it (down to
    /// 0.25×: light traffic should not sit out the full deadline),
    /// near-full waves relax it (up to 4×: heavy traffic benefits from
    /// fuller batches). The deadline currently in force is reported as
    /// [`HealthSnapshot::effective_flush_after`].
    ///
    /// Requires `flush_after`; [`PimClusterBuilder::spawn`] rejects the
    /// combination without one
    /// ([`ClusterError::AdaptiveWithoutDeadline`]), and
    /// [`PimClusterBuilder::build`] rejects it outright
    /// ([`ClusterError::ServiceOnly`]).
    ///
    /// # Example
    ///
    /// ```
    /// use pimecc::prelude::*;
    /// use std::time::Duration;
    ///
    /// # fn main() -> Result<(), ClusterError> {
    /// let handle = PimClusterBuilder::new(2, 30, 3)
    ///     .flush_after(Duration::from_millis(2))
    ///     .adaptive_deadline(true)
    ///     .spawn()?;
    /// assert_eq!(
    ///     handle.metrics().effective_flush_after,
    ///     Some(Duration::from_millis(2)),
    /// );
    /// handle.close()?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn adaptive_deadline(mut self, enabled: bool) -> Self {
        self.adaptive_deadline = enabled;
        self
    }

    /// Installs a fault hook on one shard (fault-injection knob for
    /// examples and tests): the hook runs against the shard's protected
    /// memory after every batch load, before the pre-execution check —
    /// the cluster-level twin of
    /// [`PimDeviceBuilder::on_batch_loaded`](crate::device::PimDeviceBuilder::on_batch_loaded).
    /// One hook per shard; a later call for the same shard replaces the
    /// earlier one.
    pub fn shard_fault_hook(
        mut self,
        shard: usize,
        hook: impl FnMut(&mut ProtectedMemory) + Send + 'static,
    ) -> Self {
        self.fault_hooks.push((shard, Box::new(hook)));
        self
    }

    /// Validates the knobs shared by both front-ends and constructs the
    /// shard pool.
    fn build_core(self) -> Result<(ClusterCore, ServiceConfig), ClusterError> {
        if self.shards == 0 {
            return Err(ClusterError::NoShards);
        }
        if self.batch_limit == Some(0) {
            return Err(ClusterError::ZeroBatchLimit);
        }
        if self.pack_limit == Some(0) {
            return Err(ClusterError::ZeroPackLimit);
        }
        if self.threads == 0 {
            return Err(ClusterError::ZeroThreads);
        }
        if self.auto_flush_at == Some(0) {
            return Err(ClusterError::ZeroFlushThreshold);
        }
        if self.flush_after == Some(Duration::ZERO) {
            return Err(ClusterError::ZeroFlushDeadline);
        }
        if self.queue_limit == Some(0) {
            return Err(ClusterError::ZeroQueueLimit);
        }
        if self.scrub_period == Some(Duration::ZERO) {
            return Err(ClusterError::ZeroScrubPeriod);
        }
        if self.recovery_scrubs == Some(0) {
            return Err(ClusterError::ZeroRecoveryScrubs);
        }
        if self.adaptive_deadline && self.flush_after.is_none() {
            return Err(ClusterError::AdaptiveWithoutDeadline);
        }
        if self.retire_after == Some(0) {
            return Err(ClusterError::ZeroRetireAfter);
        }
        if let Some(shard) = self
            .check_overrides
            .iter()
            .map(|&(shard, _)| shard)
            .chain(self.coverage_overrides.iter().map(|&(shard, _)| shard))
            .chain(self.fault_hooks.iter().map(|&(shard, _)| shard))
            .find(|&shard| shard >= self.shards)
        {
            return Err(ClusterError::ShardOutOfRange {
                shard,
                shards: self.shards,
            });
        }
        let geometries = match self.geometries {
            Some(g) => {
                if g.len() != self.shards {
                    return Err(ClusterError::GeometryArity {
                        geometries: g.len(),
                        shards: self.shards,
                    });
                }
                g
            }
            None => vec![(self.n, self.m); self.shards],
        };
        let n_max = geometries
            .iter()
            .map(|&(n, _)| n)
            .max()
            .expect("at least one shard");
        let mut hooks: Vec<Option<BatchFaultHook>> = (0..self.shards).map(|_| None).collect();
        for (shard, hook) in self.fault_hooks {
            hooks[shard] = Some(hook);
        }
        let mut shards = Vec::with_capacity(self.shards);
        for (i, hook) in hooks.into_iter().enumerate() {
            let policy = self
                .check_overrides
                .iter()
                .rev()
                .find(|(shard, _)| *shard == i)
                .map_or(self.check_policy, |&(_, p)| p);
            let coverage = self
                .coverage_overrides
                .iter()
                .rev()
                .find(|(shard, _)| *shard == i)
                .map_or_else(|| self.coverage.clone(), |(_, c)| c.clone());
            let (n, m) = geometries[i];
            let mut builder = PimDeviceBuilder::new(n, m)
                .check_policy(policy)
                .coverage(coverage)
                .engine(self.engine)
                .threads(self.threads);
            if let Some(strikes) = self.retire_after {
                builder = builder.retire_after(strikes);
            }
            if let Some(hook) = hook {
                builder = builder.on_batch_loaded(hook);
            }
            let device = builder
                .build()
                .map_err(|source| ClusterError::Shard { shard: i, source })?;
            shards.push(device);
        }
        let batch_limit = self.batch_limit.unwrap_or(n_max).min(n_max);
        let health = HealthMonitor::new(
            self.shards,
            batch_limit,
            HealthConfig {
                scrub_period: self.scrub_period,
                error_budget: self.error_budget,
                recovery_scrubs: self.recovery_scrubs.unwrap_or(3),
                adaptive_deadline: self.adaptive_deadline,
                ..HealthConfig::default()
            },
            self.flush_after,
        );
        let core = ClusterCore {
            shards,
            batch_limit,
            pack_limit: self.pack_limit.unwrap_or(usize::MAX),
            axis_policy: self.axis_policy,
            max_retries: self.max_retries.unwrap_or(2),
            colocate: self.colocate,
            programs: ProgramCache::default(),
            pending: Vec::new(),
            pending_partitioned: Vec::new(),
            waves_dispatched: 0,
            health,
            arena: FlushArena::default(),
        };
        let config = ServiceConfig {
            flush_at: self.auto_flush_at,
            queue_limit: self.queue_limit,
        };
        Ok((core, config))
    }

    /// Builds the cluster for synchronous use on the caller's thread.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoShards`] / [`ClusterError::ZeroBatchLimit`] /
    /// [`ClusterError::ZeroPackLimit`] /
    /// [`ClusterError::ZeroFlushThreshold`] /
    /// [`ClusterError::ShardOutOfRange`] on bad knobs,
    /// [`ClusterError::ServiceOnly`] when a service-only knob
    /// ([`flush_after`](PimClusterBuilder::flush_after),
    /// [`queue_limit`](PimClusterBuilder::queue_limit),
    /// [`scrub_period`](PimClusterBuilder::scrub_period),
    /// [`adaptive_deadline`](PimClusterBuilder::adaptive_deadline)) is
    /// set, and [`ClusterError::Shard`] when a shard's geometry or
    /// coverage map is rejected.
    pub fn build(self) -> Result<PimCluster, ClusterError> {
        if self.flush_after.is_some() {
            return Err(ClusterError::ServiceOnly {
                knob: "flush_after",
            });
        }
        if self.queue_limit.is_some() {
            return Err(ClusterError::ServiceOnly {
                knob: "queue_limit",
            });
        }
        if self.scrub_period.is_some() {
            return Err(ClusterError::ServiceOnly {
                knob: "scrub_period",
            });
        }
        if self.adaptive_deadline {
            return Err(ClusterError::ServiceOnly {
                knob: "adaptive_deadline",
            });
        }
        let (core, config) = self.build_core()?;
        Ok(PimCluster {
            core,
            auto_flush_at: config.flush_at,
            next_ticket: 0,
            banked: None,
            deferred_error: None,
        })
    }

    /// Builds the shard pool and **moves it into a dedicated worker
    /// thread**, returning a cloneable [`ClusterHandle`]. Submissions
    /// flow to the worker over an MPSC channel and never block on shard
    /// execution; the worker flushes on the configured
    /// [`auto_flush_at`](PimClusterBuilder::auto_flush_at) threshold
    /// and/or [`flush_after`](PimClusterBuilder::flush_after) deadline,
    /// on [`ClusterHandle::flush`], or when a ticket is waited on.
    ///
    /// A spawned service scrubs in the background by default: an unset
    /// [`scrub_period`](PimClusterBuilder::scrub_period) defaults to
    /// [`default_scrub_period`] (the reliability model's daily check
    /// window compressed to simulation time).
    ///
    /// # Errors
    ///
    /// As [`PimClusterBuilder::build`], plus
    /// [`ClusterError::ZeroFlushDeadline`] /
    /// [`ClusterError::ZeroQueueLimit`] /
    /// [`ClusterError::ZeroScrubPeriod`] /
    /// [`ClusterError::AdaptiveWithoutDeadline`] on degenerate service
    /// knobs (service-only knobs are of course accepted here).
    pub fn spawn(mut self) -> Result<ClusterHandle, ClusterError> {
        if self.scrub_period.is_none() {
            self.scrub_period = Some(default_scrub_period());
        }
        let (core, config) = self.build_core()?;
        Ok(handle::spawn(core, config))
    }
}

/// A pool of [`PimDevice`] shards behind one submission queue, driven
/// synchronously on the caller's thread.
///
/// This is the thin blocking wrapper over the cluster service engine: it
/// owns the same [`ClusterCore`](self) the spawned worker would, and
/// `submit`/`flush` drive it inline. For the asynchronous front-end —
/// non-blocking submission, waitable tickets, background deadline
/// flushing — see [`PimClusterBuilder::spawn`] and [`ClusterHandle`].
///
/// See the [module documentation](self) for the execution model and an
/// end-to-end example.
pub struct PimCluster {
    core: ClusterCore,
    auto_flush_at: Option<usize>,
    next_ticket: u64,
    /// Results of auto-flushed waves, awaiting the next explicit flush.
    banked: Option<ClusterOutcome>,
    /// First error of a failed auto-flush, surfaced by the next explicit
    /// flush (submissions themselves never fail for scheduler reasons).
    deferred_error: Option<ClusterError>,
}

impl PimCluster {
    /// Shorthand for [`PimClusterBuilder::new`]`(shards, n, m).build()`.
    ///
    /// # Errors
    ///
    /// See [`PimClusterBuilder::build`].
    pub fn new(shards: usize, n: usize, m: usize) -> Result<Self, ClusterError> {
        PimClusterBuilder::new(shards, n, m).build()
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Line length of the pool's tallest shard — the widest program the
    /// cluster admits. On a uniform pool this is every shard's row count.
    pub fn shard_capacity(&self) -> usize {
        self.core.shard_capacity()
    }

    /// Total rows across shards — the cluster's requests-per-wave ceiling.
    /// On a mixed pool ([`PimClusterBuilder::shard_geometries`]) this is
    /// the sum of the per-shard line counts.
    pub fn capacity(&self) -> usize {
        self.core.total_lines()
    }

    /// The line limit in force (lines per dispatched batch).
    pub fn batch_limit(&self) -> usize {
        self.core.batch_limit
    }

    /// The co-packing limit in force (requests per line;
    /// `usize::MAX` = bounded only by footprint).
    pub fn pack_limit(&self) -> usize {
        self.core.pack_limit
    }

    /// The axis policy in force.
    pub fn axis_policy(&self) -> AxisPolicy {
        self.core.axis_policy
    }

    /// Requests accepted but not yet executed (ordinary and partitioned).
    pub fn pending(&self) -> usize {
        self.core.pending_total()
    }

    /// Read access to one shard (stats, consistency checks).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &PimDevice {
        &self.core.shards[shard]
    }

    /// The pool's current [`HealthSnapshot`]: per-shard scrub / error /
    /// wear / quarantine ledgers and the latency percentiles of every
    /// flush so far. The synchronous twin of
    /// [`ClusterHandle::metrics`].
    pub fn health(&self) -> HealthSnapshot {
        self.core.health.snapshot()
    }

    /// Runs one explicit scrub pass on `shard` — check every covered
    /// block (correcting single-bit upsets) and re-encode its diagonal
    /// check bits — and folds the result into the health ledgers,
    /// driving the same quarantine / recovery transitions a service's
    /// background scrubs would. The synchronous front-end has no worker
    /// thread, so scrub cadence is the caller's to choose.
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardOutOfRange`] for a bad index;
    /// [`ClusterError::Shard`] when the device rejects the pass.
    pub fn scrub_shard(&mut self, shard: usize) -> Result<ScrubReport, ClusterError> {
        if shard >= self.core.shards.len() {
            return Err(ClusterError::ShardOutOfRange {
                shard,
                shards: self.core.shards.len(),
            });
        }
        let report = self.core.shards[shard]
            .scrub_pass()
            .map_err(|source| ClusterError::Shard { shard, source })?;
        self.core.health.note_scrub(shard, &report.check);
        let retired = self.core.shards[shard].retired().retired_physical_lines();
        self.core.health.set_retired(shard, retired as u64);
        Ok(report)
    }

    /// Manually quarantines (`true`) or restores (`false`) a shard,
    /// overriding the error-budget policy — the operator's drain switch.
    /// Quarantined shards receive no traffic (the scheduler reroutes
    /// deterministically) but still count toward [`PimCluster::shards`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardOutOfRange`] for a bad index.
    pub fn set_quarantined(&mut self, shard: usize, quarantined: bool) -> Result<(), ClusterError> {
        if shard >= self.core.shards.len() {
            return Err(ClusterError::ShardOutOfRange {
                shard,
                shards: self.core.shards.len(),
            });
        }
        self.core.health.force_quarantine(shard, quarantined);
        Ok(())
    }

    /// Number of distinct programs held in the cluster's compile cache.
    pub fn compiled_count(&self) -> usize {
        self.core.programs.len()
    }

    /// Empties the compile cache; outstanding handles stay valid (they own
    /// their program) and are re-inserted if compiled or adopted again.
    pub fn clear_compiled(&mut self) {
        self.core.programs.clear();
    }

    /// Maps `netlist` onto the shards' row width with SIMPLER — **once**:
    /// the handle is cached by structural fingerprint and shared by every
    /// shard the scheduler dispatches it to. On a mixed pool
    /// ([`PimClusterBuilder::shard_geometries`]) the distinct line
    /// lengths are tried smallest-first, so the program lands in the
    /// tightest geometry it fits and stays routable to the most shards.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Map`] when the function fits no shard row.
    pub fn compile(&mut self, netlist: &NorNetlist) -> Result<CompiledProgram, ClusterError> {
        let mut last = None;
        for row_size in self.core.distinct_capacities() {
            match self.core.programs.compile(netlist, row_size) {
                Ok(p) => return Ok(p),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("a cluster has at least one shard").into())
    }

    /// Maps `netlist` for *co-packing* — once, shared by every shard:
    /// [`map_dense`](pimecc_simpler::map_dense) squeezes the function into the narrowest slot that
    /// stays within 3/2 of the full-width cycle count, so the scheduler
    /// places several requests side by side in each line
    /// (`footprint() * k <= n`) when traffic outgrows the line count.
    /// Cached separately from [`PimCluster::compile`]; both mappings of
    /// one netlist can ride the queue together (they form distinct
    /// fingerprint groups).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Map`] when the function fits no shard row even at
    /// full width.
    pub fn compile_packed(
        &mut self,
        netlist: &NorNetlist,
    ) -> Result<CompiledProgram, ClusterError> {
        let mut last = None;
        for row_size in self.core.distinct_capacities() {
            match self.core.programs.compile_packed(netlist, row_size) {
                Ok(p) => return Ok(p),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("a cluster has at least one shard").into())
    }

    /// Compiles a netlist **too wide for one shard line** by partitioning
    /// it into a DAG of line-sized sub-programs (each mapped with the
    /// dense packer and cached like any other program) connected by a
    /// host-routed cut-signal table. Submit the result with
    /// [`PimCluster::submit_partitioned`]; it executes as a chain of
    /// dependency-ordered waves within one flush.
    ///
    /// Netlists that *do* fit a line come back as a single-part program —
    /// the partitioned path is a strict superset of
    /// [`PimCluster::compile_packed`] in what it accepts.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Map`] when even single-gate partitions cannot be
    /// mapped onto the shard row (geometry too small for any program).
    pub fn compile_partitioned(
        &mut self,
        netlist: &NorNetlist,
    ) -> Result<Arc<PartitionedProgram>, ClusterError> {
        let row_size = self.core.shard_capacity();
        Ok(Arc::new(compiler::compile_partitioned(
            &mut self.core.programs,
            netlist,
            row_size,
        )?))
    }

    /// Enqueues one request against a [`PartitionedProgram`] and returns
    /// its [`Ticket`] — the partitioned twin of [`PimCluster::submit`].
    /// The next flush serves it as dependency-ordered sub-program waves
    /// (cut signals routed host-side between levels) and lands **one**
    /// merged [`TicketResult`] carrying the program's final outputs;
    /// partitioned and ordinary traffic share the queue, the flush and
    /// the outcome.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InputArity`] on an input-width mismatch;
    /// * [`ClusterError::ProgramTooWide`] if the program was compiled for
    ///   a wider shard line.
    pub fn submit_partitioned(
        &mut self,
        program: &Arc<PartitionedProgram>,
        inputs: Vec<bool>,
    ) -> Result<Ticket, ClusterError> {
        service::validate_partitioned(program, &inputs, self.core.shard_capacity())?;
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.core.pending_partitioned.push(PendingPartitioned {
            ticket,
            submitted_at: Instant::now(),
            program: Arc::clone(program),
            inputs,
        });
        if let Some(at) = self.auto_flush_at {
            if self.core.pending_total() >= at {
                match self.run_pending() {
                    Ok(flushed) => match &mut self.banked {
                        Some(bank) => bank.merge(flushed),
                        None => self.banked = Some(flushed),
                    },
                    Err(e) => {
                        self.deferred_error.get_or_insert(e);
                    }
                }
            }
        }
        Ok(ticket)
    }

    /// Adopts an externally mapped [`Program`] (e.g. parsed from a
    /// listing), caching it by its [`Program::fingerprint`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::ProgramTooWide`] when the program was mapped for a
    /// wider row than the shards have.
    pub fn adopt(&mut self, program: &Program) -> Result<CompiledProgram, ClusterError> {
        if program.row_size > self.core.shard_capacity() {
            return Err(ClusterError::ProgramTooWide {
                row_size: program.row_size,
                n: self.core.shard_capacity(),
            });
        }
        Ok(self.core.programs.adopt(program))
    }

    /// Enqueues one request and returns its [`Ticket`]. Nothing executes
    /// until a flush — unless an
    /// [`auto_flush_at`](PimClusterBuilder::auto_flush_at) threshold is
    /// configured and reached, in which case the queue drains into the
    /// internal bank before this call returns.
    ///
    /// An auto-flush that fails never fails the submission: the ticket is
    /// still returned (the caller must be able to redeem whatever the
    /// partial flush banked), and the error is *deferred* to the next
    /// explicit [`PimCluster::flush`].
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InputArity`] on an input-width mismatch;
    /// * [`ClusterError::ProgramTooWide`] if the handle was compiled for a
    ///   wider device.
    pub fn submit(
        &mut self,
        program: &CompiledProgram,
        inputs: Vec<bool>,
    ) -> Result<Ticket, ClusterError> {
        service::validate_submission(program, &inputs, self.core.shard_capacity())?;
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.core.pending.push(Pending {
            ticket,
            submitted_at: Instant::now(),
            program: program.clone(),
            inputs,
        });
        if let Some(at) = self.auto_flush_at {
            if self.core.pending_total() >= at {
                match self.run_pending() {
                    Ok(flushed) => match &mut self.banked {
                        Some(bank) => bank.merge(flushed),
                        None => self.banked = Some(flushed),
                    },
                    // run_pending already banked the completed batches;
                    // surface the first failure at the next flush, after
                    // the ticket reaches the caller.
                    Err(e) => {
                        self.deferred_error.get_or_insert(e);
                    }
                }
            }
        }
        Ok(ticket)
    }

    /// Enqueues a whole batch of requests for one program and returns
    /// their [`TicketRange`] — the multi-lane form of
    /// [`PimCluster::submit`], amortizing the per-request bookkeeping (one
    /// submission timestamp and one auto-flush probe for the batch, not
    /// one per request). Tickets are issued in iteration order.
    ///
    /// All accepted requests share one `submitted_at` instant for queue
    /// latency accounting; an auto-flush threshold is only evaluated after
    /// the whole batch is queued.
    ///
    /// # Errors
    ///
    /// As [`PimCluster::submit`]. Validation is per request: on a failure,
    /// requests accepted *before* the offending one stay queued (their
    /// tickets start at the id the pre-call
    /// [`PimCluster::next_ticket_id`] reported).
    pub fn submit_batch(
        &mut self,
        program: &CompiledProgram,
        inputs: impl IntoIterator<Item = Vec<bool>>,
    ) -> Result<TicketRange, ClusterError> {
        let start = self.next_ticket;
        let submitted_at = Instant::now();
        for req in inputs {
            service::validate_submission(program, &req, self.core.shard_capacity())?;
            let ticket = Ticket(self.next_ticket);
            self.next_ticket += 1;
            self.core.pending.push(Pending {
                ticket,
                submitted_at,
                program: program.clone(),
                inputs: req,
            });
        }
        let range = TicketRange {
            start,
            len: self.next_ticket - start,
        };
        if let Some(at) = self.auto_flush_at {
            if self.core.pending_total() >= at {
                match self.run_pending() {
                    Ok(flushed) => match &mut self.banked {
                        Some(bank) => bank.merge(flushed),
                        None => self.banked = Some(flushed),
                    },
                    Err(e) => {
                        self.deferred_error.get_or_insert(e);
                    }
                }
            }
        }
        Ok(range)
    }

    /// The id the next accepted submission's [`Ticket`] will carry —
    /// lets a caller bound a [`PimCluster::submit_batch`] before making it.
    pub fn next_ticket_id(&self) -> u64 {
        self.next_ticket
    }

    /// Drains the queue — pack by fingerprint, dispatch in waves across
    /// the shards — and returns everything served since the last flush,
    /// auto-flushed waves included, sorted by ticket.
    ///
    /// An empty flush (nothing pending, nothing banked) returns an empty
    /// outcome with zero waves.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Shard`] when a shard rejects its batch (shard
    /// errors indicate bugs, not runtime conditions — submissions are
    /// validated on entry), or the deferred error of a failed auto-flush.
    /// Results of batches completed before the failure are *not* lost:
    /// they are banked and returned by the next successful flush.
    /// Requests the scheduler had not yet dispatched are dropped.
    pub fn flush(&mut self) -> Result<ClusterOutcome, ClusterError> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        let fresh = self.run_pending()?;
        Ok(match self.banked.take() {
            Some(mut bank) => {
                bank.merge(fresh);
                // `merge` appends; restore the sorted order `outputs_for`
                // binary-searches on.
                bank.results.sort_by_key(|r| r.ticket);
                bank
            }
            // Already sorted by the scheduler.
            None => fresh,
        })
    }

    /// Convenience: submit every `(program, inputs)` pair, flush, and
    /// return the issued tickets (in request order) with the outcome.
    ///
    /// # Errors
    ///
    /// As [`PimCluster::submit`] and [`PimCluster::flush`].
    pub fn run_all(
        &mut self,
        requests: impl IntoIterator<Item = (CompiledProgram, Vec<bool>)>,
    ) -> Result<(Vec<Ticket>, ClusterOutcome), ClusterError> {
        let tickets = requests
            .into_iter()
            .map(|(program, inputs)| self.submit(&program, inputs))
            .collect::<Result<Vec<_>, _>>()?;
        let outcome = self.flush()?;
        Ok((tickets, outcome))
    }

    /// Executes everything pending. On a shard error the partial outcome
    /// (completed batches) is banked so served tickets survive; see
    /// [`PimCluster::flush`].
    fn run_pending(&mut self) -> Result<ClusterOutcome, ClusterError> {
        let report = self.core.flush_pending();
        match report.error {
            None => Ok(report.outcome),
            Some(e) => {
                match &mut self.banked {
                    Some(bank) => bank.merge(report.outcome),
                    None => self.banked = Some(report.outcome),
                }
                Err(e)
            }
        }
    }
}

impl std::fmt::Debug for PimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimCluster")
            .field("shards", &self.core.shards.len())
            .field("n", &self.core.shard_capacity())
            .field("batch_limit", &self.core.batch_limit)
            .field("pack_limit", &self.core.pack_limit)
            .field("axis_policy", &self.core.axis_policy)
            .field("auto_flush_at", &self.auto_flush_at)
            .field("pending", &self.core.pending.len())
            .field("pending_partitioned", &self.core.pending_partitioned.len())
            .field("compiled_programs", &self.core.programs.len())
            .field("banked", &self.banked.is_some())
            .field("deferred_error", &self.deferred_error.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimecc_netlist::{Netlist, NetlistBuilder};

    fn xor_circuit() -> (NorNetlist, Netlist) {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(2);
        let g = b.xor(ins[0], ins[1]);
        b.output(g);
        let nl = b.finish();
        (nl.to_nor(), nl)
    }

    fn mux_circuit() -> (NorNetlist, Netlist) {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(3);
        let g1 = b.xor(ins[0], ins[1]);
        let g2 = b.mux(ins[2], g1, ins[0]);
        b.output(g1);
        b.output(g2);
        let nl = b.finish();
        (nl.to_nor(), nl)
    }

    #[test]
    fn builder_rejects_bad_knobs() {
        assert_eq!(
            PimClusterBuilder::new(0, 30, 3).build().unwrap_err(),
            ClusterError::NoShards
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .batch_limit(0)
                .build()
                .unwrap_err(),
            ClusterError::ZeroBatchLimit
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .auto_flush_at(0)
                .build()
                .unwrap_err(),
            ClusterError::ZeroFlushThreshold
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .threads(0)
                .build()
                .unwrap_err(),
            ClusterError::ZeroThreads
        );
        assert_eq!(
            PimClusterBuilder::new(2, 30, 3)
                .shard_check_policy(2, CheckPolicy::Skip)
                .build()
                .unwrap_err(),
            ClusterError::ShardOutOfRange {
                shard: 2,
                shards: 2
            }
        );
        assert!(matches!(
            PimClusterBuilder::new(1, 10, 3).build().unwrap_err(),
            ClusterError::Shard { shard: 0, .. }
        ));
        assert_eq!(
            PimClusterBuilder::new(3, 30, 3)
                .shard_geometries(vec![(30, 3), (60, 3)])
                .build()
                .unwrap_err(),
            ClusterError::GeometryArity {
                geometries: 2,
                shards: 3
            }
        );
    }

    #[test]
    fn service_only_knobs_are_rejected_by_build_and_validated_by_spawn() {
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .flush_after(Duration::from_millis(1))
                .build()
                .unwrap_err(),
            ClusterError::ServiceOnly {
                knob: "flush_after"
            }
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .queue_limit(8)
                .build()
                .unwrap_err(),
            ClusterError::ServiceOnly {
                knob: "queue_limit"
            }
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .flush_after(Duration::ZERO)
                .spawn()
                .unwrap_err(),
            ClusterError::ZeroFlushDeadline
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .queue_limit(0)
                .spawn()
                .unwrap_err(),
            ClusterError::ZeroQueueLimit
        );
        assert_eq!(
            PimClusterBuilder::new(0, 30, 3).spawn().unwrap_err(),
            ClusterError::NoShards
        );
    }

    #[test]
    fn health_knobs_are_validated_on_both_front_ends() {
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .scrub_period(Duration::from_millis(5))
                .build()
                .unwrap_err(),
            ClusterError::ServiceOnly {
                knob: "scrub_period"
            }
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .flush_after(Duration::from_millis(1))
                .adaptive_deadline(true)
                .build()
                .unwrap_err(),
            ClusterError::ServiceOnly {
                knob: "flush_after"
            },
            "flush_after is rejected first; adaptive alone is too"
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .adaptive_deadline(true)
                .build()
                .unwrap_err(),
            ClusterError::ServiceOnly {
                knob: "adaptive_deadline"
            }
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .scrub_period(Duration::ZERO)
                .spawn()
                .unwrap_err(),
            ClusterError::ZeroScrubPeriod
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .recovery_scrubs(0)
                .spawn()
                .unwrap_err(),
            ClusterError::ZeroRecoveryScrubs
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .recovery_scrubs(0)
                .build()
                .unwrap_err(),
            ClusterError::ZeroRecoveryScrubs,
            "recovery_scrubs works on both front-ends, so both validate it"
        );
        assert_eq!(
            PimClusterBuilder::new(1, 30, 3)
                .adaptive_deadline(true)
                .spawn()
                .unwrap_err(),
            ClusterError::AdaptiveWithoutDeadline
        );
        assert_eq!(
            PimClusterBuilder::new(2, 30, 3)
                .shard_fault_hook(7, |_| {})
                .spawn()
                .unwrap_err(),
            ClusterError::ShardOutOfRange {
                shard: 7,
                shards: 2
            }
        );
        // error_budget + recovery_scrubs are accepted by the sync build.
        let cluster = PimClusterBuilder::new(2, 30, 3)
            .error_budget(4)
            .recovery_scrubs(2)
            .build()
            .expect("health budgets work synchronously");
        assert_eq!(cluster.health().quarantined(), 0);
    }

    #[test]
    fn per_shard_policy_overrides_apply() {
        let cluster = PimClusterBuilder::new(3, 30, 3)
            .check_policy(CheckPolicy::Skip)
            .shard_check_policy(1, CheckPolicy::Paranoid)
            .shard_coverage(2, CoveragePolicy::Uncovered(vec![(0, 0)]))
            .build()
            .expect("cluster");
        assert_eq!(cluster.shard(0).check_policy(), CheckPolicy::Skip);
        assert_eq!(cluster.shard(1).check_policy(), CheckPolicy::Paranoid);
        assert_eq!(cluster.shard(2).check_policy(), CheckPolicy::Skip);
        assert!(cluster.shard(0).memory().block_covered(0, 0));
        assert!(!cluster.shard(2).memory().block_covered(0, 0));
        assert_eq!(
            PimClusterBuilder::new(2, 30, 3)
                .shard_coverage(5, CoveragePolicy::Full)
                .build()
                .unwrap_err(),
            ClusterError::ShardOutOfRange {
                shard: 5,
                shards: 2
            }
        );
    }

    #[test]
    fn submit_validates_before_enqueueing() {
        let (nor, _) = xor_circuit();
        let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
        let p = cluster.compile(&nor).expect("compiles");
        assert_eq!(
            cluster.submit(&p, vec![true]).unwrap_err(),
            ClusterError::InputArity { got: 1, want: 2 }
        );
        assert_eq!(cluster.pending(), 0, "rejected submissions do not queue");

        // A handle compiled for a wider device is refused.
        let mut wide = PimDevice::new(60, 3).expect("device");
        let too_wide = wide.compile(&nor).expect("compiles");
        assert_eq!(
            cluster.submit(&too_wide, vec![true, false]).unwrap_err(),
            ClusterError::ProgramTooWide {
                row_size: 60,
                n: 30
            }
        );
        let wide_program = too_wide.program().clone();
        assert_eq!(
            cluster.adopt(&wide_program).unwrap_err(),
            ClusterError::ProgramTooWide {
                row_size: 60,
                n: 30
            }
        );
    }

    #[test]
    fn compile_cache_is_shared_across_the_pool() {
        let (nor, _) = xor_circuit();
        let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
        let a = cluster.compile(&nor).expect("compiles");
        let b = cluster.compile(&nor).expect("compiles");
        assert_eq!(a.id(), b.id(), "one mapping serves the whole pool");
        assert_eq!(cluster.compiled_count(), 1);
        let adopted = cluster.adopt(a.program()).expect("fits");
        let again = cluster.adopt(a.program()).expect("fits");
        assert_eq!(adopted.id(), again.id());
        assert_eq!(
            cluster.compiled_count(),
            2,
            "program fingerprints are a separate domain"
        );
        cluster.clear_compiled();
        assert_eq!(cluster.compiled_count(), 0);
        let t = cluster
            .submit(&adopted, vec![true, false])
            .expect("cleared cache does not invalidate handles");
        let outcome = cluster.flush().expect("flushes");
        assert!(outcome.outputs_for(t).is_some());
    }

    #[test]
    fn empty_flush_returns_an_empty_outcome() {
        let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
        let outcome = cluster.flush().expect("flushes");
        assert_eq!(outcome.requests(), 0);
        assert_eq!(outcome.waves, 0);
        assert_eq!(outcome.wall_mem_cycles, 0);
        assert_eq!(outcome.shard_reports.len(), 2);
    }

    #[test]
    fn mixed_traffic_packs_by_fingerprint_and_answers_every_ticket() {
        let (xor_nor, xor_nl) = xor_circuit();
        let (mux_nor, mux_nl) = mux_circuit();
        let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
        let xor = cluster.compile(&xor_nor).expect("compiles");
        let mux = cluster.compile(&mux_nor).expect("compiles");

        let mut expect = Vec::new();
        for v in 0..20u32 {
            if v % 2 == 0 {
                let inputs = vec![v & 2 != 0, v & 4 != 0];
                let t = cluster.submit(&xor, inputs.clone()).expect("submits");
                expect.push((t, xor_nl.eval(&inputs)));
            } else {
                let inputs = vec![v & 2 != 0, v & 4 != 0, v & 8 != 0];
                let t = cluster.submit(&mux, inputs.clone()).expect("submits");
                expect.push((t, mux_nl.eval(&inputs)));
            }
        }
        assert_eq!(cluster.pending(), 20);
        let outcome = cluster.flush().expect("flushes");
        assert_eq!(cluster.pending(), 0);
        assert_eq!(outcome.requests(), 20);
        // Two programs, two shards, 10 requests each — one wave.
        assert_eq!(outcome.waves, 1);
        for (t, want) in &expect {
            assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()), "{t}");
        }
        // Both shards carried work and their reports add up.
        for (i, report) in outcome.shard_reports.iter().enumerate() {
            assert_eq!(report.requests, 10, "shard {i}");
            assert_eq!(report.batches, 1, "shard {i}");
            assert!(report.utilization(outcome.wall_mem_cycles) > 0.0);
            assert!(cluster.shard(i).memory().verify_consistency().is_ok());
        }
        let busy: u64 = outcome
            .shard_reports
            .iter()
            .map(|r| r.busy_mem_cycles)
            .sum();
        assert_eq!(outcome.stats.mem_cycles, busy);
        assert!(outcome.wall_mem_cycles < busy, "shards ran in parallel");
    }

    #[test]
    fn batch_limit_splits_groups_into_more_waves() {
        // pack_limit(1) restores the PR-2 row-only scheduler: overflow
        // becomes extra waves instead of extra offsets.
        let (nor, _) = xor_circuit();
        let mut cluster = PimClusterBuilder::new(1, 30, 3)
            .batch_limit(4)
            .pack_limit(1)
            .build()
            .expect("cluster");
        let p = cluster.compile(&nor).expect("compiles");
        for v in 0..10u32 {
            let _ = cluster
                .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                .expect("submits");
        }
        let outcome = cluster.flush().expect("flushes");
        assert_eq!(outcome.requests(), 10);
        assert_eq!(outcome.waves, 3, "10 requests in chunks of 4");
        assert_eq!(outcome.shard_reports[0].batches, 3);
        assert_eq!(outcome.shard_reports[0].lines_occupied, 10);
        assert!((outcome.packing_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_packing_absorbs_overflow_into_offsets_instead_of_waves() {
        // The same 10-request overflow with co-packing left on: once the
        // single shard's 4 lines are claimed, the densify pass deepens the
        // batch (the xor program is a few cells wide, so several requests
        // share each line) and the flush needs one wave.
        let (nor, nl) = xor_circuit();
        let mut cluster = PimClusterBuilder::new(1, 30, 3)
            .batch_limit(4)
            .build()
            .expect("cluster");
        let p = cluster.compile(&nor).expect("compiles");
        let mut tickets = Vec::new();
        for v in 0..10u32 {
            tickets.push(
                cluster
                    .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                    .expect("submits"),
            );
        }
        let outcome = cluster.flush().expect("flushes");
        assert_eq!(outcome.requests(), 10);
        assert_eq!(outcome.waves, 1, "densify absorbs the overflow");
        assert_eq!(outcome.shard_reports[0].lines_occupied, 4);
        assert!(
            outcome.packing_density() > 2.0,
            "10 requests on 4 lines: {}",
            outcome.packing_density()
        );
        for (v, t) in tickets.iter().enumerate() {
            let v = v as u32;
            let want = nl.eval(&[v & 1 != 0, v & 2 != 0]);
            assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()), "{t}");
        }
        // Placement metadata surfaces per ticket: every slot within the 4
        // claimed lines, co-packed slots at non-zero offsets.
        assert!(outcome.results.iter().all(|r| r.line < 4));
        assert!(outcome.results.iter().any(|r| r.offset > 0));
    }

    #[test]
    fn wave_fill_origin_rotates_for_wear_leveling() {
        // pack_limit(1): every wave is one slot per line, so the slot
        // offset *is* the wave's fill origin. Waves 1.. must not start
        // from cell 0 again (the xor program is narrow, so its line has
        // several slot columns to rotate over), and two identical runs
        // must rotate identically.
        let (nor, nl) = xor_circuit();
        let run = || {
            let mut cluster = PimClusterBuilder::new(1, 30, 3)
                .batch_limit(4)
                .pack_limit(1)
                .build()
                .expect("cluster");
            let p = cluster.compile_packed(&nor).expect("compiles");
            let tickets: Vec<Ticket> = (0..12u32)
                .map(|v| {
                    cluster
                        .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                        .expect("submits")
                })
                .collect();
            (tickets, cluster.flush().expect("flushes"))
        };
        let (tickets, outcome) = run();
        assert_eq!(outcome.waves, 3);
        for r in &outcome.results {
            if r.wave == 0 {
                assert_eq!(r.offset, 0, "wave 0 fills from cell 0 as before");
            } else {
                assert!(
                    r.offset > 0,
                    "wave {} must not fill from cell 0 (ticket {})",
                    r.wave,
                    r.ticket
                );
            }
        }
        // Distinct waves use distinct origins while the rotation ring
        // lasts.
        let origin_of = |wave: usize| {
            outcome
                .results
                .iter()
                .find(|r| r.wave == wave)
                .map(|r| r.offset)
                .expect("wave has results")
        };
        assert_ne!(origin_of(0), origin_of(1));
        assert_ne!(origin_of(1), origin_of(2));
        // Results stay correct and deterministic under rotation.
        for (v, t) in tickets.iter().enumerate() {
            let v = v as u32;
            let want = nl.eval(&[v & 1 != 0, v & 2 != 0]);
            assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()), "{t}");
        }
        let (_, again) = run();
        assert_eq!(outcome, again, "rotation is a pure function of the wave");
    }

    #[test]
    fn wear_rotation_advances_across_flushes_not_just_inside_one() {
        // The regime the rotation was built for: many small flushes (as a
        // deadline- or threshold-flushing service produces). Per-flush
        // wave indices restart at zero, so the origin must be seeded by
        // the pool-lifetime wave count or every flush would pack at
        // origin 0 again.
        let (nor, nl) = xor_circuit();
        let mut cluster = PimClusterBuilder::new(1, 30, 3)
            .pack_limit(1)
            .build()
            .expect("cluster");
        let p = cluster.compile_packed(&nor).expect("compiles");
        let mut offsets = Vec::new();
        for round in 0..3u32 {
            let t = cluster
                .submit(&p, vec![round & 1 != 0, round & 2 != 0])
                .expect("submits");
            let outcome = cluster.flush().expect("flushes");
            let r = outcome.results.first().expect("served");
            assert_eq!(r.wave, 0, "each flush is a single wave");
            assert_eq!(
                outcome.outputs_for(t),
                Some(nl.eval(&[round & 1 != 0, round & 2 != 0]).as_slice())
            );
            offsets.push(r.offset);
        }
        assert_eq!(offsets[0], 0, "the pool's first wave fills from cell 0");
        assert!(
            offsets[1] > 0 && offsets[2] > 0,
            "later flushes must not fill from cell 0 again: {offsets:?}"
        );
        assert_ne!(offsets[1], offsets[2], "the origin keeps advancing");
    }

    #[test]
    fn auto_flush_banks_results_until_the_explicit_flush() {
        let (nor, nl) = xor_circuit();
        let mut cluster = PimClusterBuilder::new(2, 30, 3)
            .auto_flush_at(4)
            .build()
            .expect("cluster");
        let p = cluster.compile(&nor).expect("compiles");
        let mut tickets = Vec::new();
        for v in 0..6u32 {
            tickets.push(
                cluster
                    .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                    .expect("submits"),
            );
            assert!(cluster.pending() < 4, "threshold drains the queue");
        }
        assert_eq!(cluster.pending(), 2, "two stragglers await the flush");
        let outcome = cluster.flush().expect("flushes");
        assert_eq!(outcome.requests(), 6, "banked and fresh results merge");
        assert!(outcome.waves >= 2);
        for (v, t) in tickets.iter().enumerate() {
            let v = v as u32;
            let want = nl.eval(&[v & 1 != 0, v & 2 != 0]);
            assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()));
        }
        // Results arrive sorted by ticket even across the merge.
        for pair in outcome.results.windows(2) {
            assert!(pair[0].ticket < pair[1].ticket);
        }
        // The bank is spent: the next flush is empty.
        assert_eq!(cluster.flush().expect("flushes").requests(), 0);
    }

    #[test]
    fn run_all_round_trips_requests_in_order() {
        let (nor, nl) = xor_circuit();
        let mut cluster = PimCluster::new(3, 30, 3).expect("cluster");
        let p = cluster.compile(&nor).expect("compiles");
        let requests: Vec<(CompiledProgram, Vec<bool>)> = (0..9u32)
            .map(|v| (p.clone(), vec![v & 1 != 0, v & 2 != 0]))
            .collect();
        let inputs: Vec<Vec<bool>> = requests.iter().map(|(_, i)| i.clone()).collect();
        let (tickets, outcome) = cluster.run_all(requests).expect("runs");
        assert_eq!(tickets.len(), 9);
        for (t, inputs) in tickets.iter().zip(&inputs) {
            assert_eq!(outcome.outputs_for(*t), Some(nl.eval(inputs).as_slice()));
        }
    }

    #[test]
    fn a_too_narrow_shard_is_routed_around_not_crashed_into() {
        // Shard 1 is sabotaged (swapped for a crossbar too narrow for the
        // compiled programs). The geometry-aware scheduler reads each
        // shard's real capacity at flush time, so the 30-wide programs
        // never route there: both groups land on shard 0 — the foreign
        // fingerprint via pass-3 co-location — and the flush succeeds.
        let (xor_nor, xor_nl) = xor_circuit();
        let (mux_nor, mux_nl) = mux_circuit();
        let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
        let p = cluster.compile(&xor_nor).expect("compiles");
        let q = cluster.compile(&mux_nor).expect("compiles");
        cluster.core.shards[1] = PimDevice::new(9, 3).expect("device");
        let t0 = cluster.submit(&p, vec![true, false]).expect("submits");
        let t1 = cluster
            .submit(&q, vec![true, true, false])
            .expect("submits");
        let outcome = cluster.flush().expect("the narrow shard is avoided");
        assert_eq!(
            outcome.outputs_for(t0),
            Some(xor_nl.eval(&[true, false]).as_slice())
        );
        assert_eq!(
            outcome.outputs_for(t1),
            Some(mux_nl.eval(&[true, true, false]).as_slice())
        );
        assert!(
            outcome.results.iter().all(|r| r.shard == 0),
            "nothing was dispatched to the 9-cell shard"
        );
        assert_eq!(outcome.waves, 1, "co-location keeps it to one wave");
    }

    #[test]
    fn auto_flush_routes_around_a_too_narrow_shard_and_banks_the_results() {
        // Shard 1 is sabotaged as in the explicit-flush test, but here the
        // wave runs *inside* submit (auto_flush_at). The submission yields
        // its ticket, the wave avoids the 9-cell shard entirely, and both
        // banked results are redeemable at the next explicit flush.
        let (xor_nor, xor_nl) = xor_circuit();
        let (mux_nor, mux_nl) = mux_circuit();
        let mut cluster = PimClusterBuilder::new(2, 30, 3)
            .auto_flush_at(2)
            .build()
            .expect("cluster");
        let p = cluster.compile(&xor_nor).expect("compiles");
        let q = cluster.compile(&mux_nor).expect("compiles");
        cluster.core.shards[1] = PimDevice::new(9, 3).expect("device");
        let t0 = cluster.submit(&p, vec![true, false]).expect("submits");
        let t1 = cluster
            .submit(&q, vec![true, true, false])
            .expect("the auto-flush must not swallow the ticket");
        assert_eq!(cluster.pending(), 0, "the auto-flush did run");
        let banked = cluster.flush().expect("the narrow shard is avoided");
        assert_eq!(
            banked.outputs_for(t0),
            Some(xor_nl.eval(&[true, false]).as_slice()),
            "the auto-flushed batch is redeemable with the returned ticket"
        );
        assert_eq!(
            banked.outputs_for(t1),
            Some(mux_nl.eval(&[true, true, false]).as_slice()),
            "the co-located foreign fingerprint survived too"
        );
        assert!(banked.results.iter().all(|r| r.shard == 0));
    }

    #[test]
    fn a_fault_struck_shard_still_answers_correctly() {
        // The pool inherits the device's ECC flow: a soft error on one
        // shard between load and check is repaired before execution.
        let (nor, nl) = xor_circuit();
        let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
        cluster.core.shards[1] = PimDeviceBuilder::new(30, 3)
            .on_batch_loaded(|pm| pm.inject_fault(0, 0))
            .build()
            .expect("device");
        let p = cluster.compile(&nor).expect("compiles");
        // Two groups force both shards into the wave: the mux group lands
        // on shard 1.
        let (mux_nor, mux_nl) = mux_circuit();
        let q = cluster.compile(&mux_nor).expect("compiles");
        let t0 = cluster.submit(&p, vec![true, false]).expect("submits");
        let t1 = cluster
            .submit(&q, vec![true, true, false])
            .expect("submits");
        let outcome = cluster.flush().expect("flushes");
        assert_eq!(
            outcome.outputs_for(t0),
            Some(nl.eval(&[true, false]).as_slice())
        );
        assert_eq!(
            outcome.outputs_for(t1),
            Some(mux_nl.eval(&[true, true, false]).as_slice())
        );
        assert_eq!(outcome.input_check.corrected, 1, "the strike was repaired");
    }

    #[test]
    fn spawned_service_serves_waited_and_drained_tickets() {
        let (nor, nl) = xor_circuit();
        let handle = PimClusterBuilder::new(2, 30, 3)
            .auto_flush_at(4)
            .spawn()
            .expect("spawns");
        let p = handle.compile(&nor).expect("compiles");
        let tickets: Vec<handle::Ticket> = (0..10u32)
            .map(|v| {
                handle
                    .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                    .expect("submits")
            })
            .collect();
        // Wait on the first half individually...
        for (v, t) in tickets.iter().take(5).enumerate() {
            let v = v as u32;
            let result = t.wait().expect("served");
            assert_eq!(result.outputs, nl.eval(&[v & 1 != 0, v & 2 != 0]));
            assert_eq!(result.ticket.id(), t.id());
        }
        // ...and drain the rest in bulk after closing.
        handle.close().expect("closes");
        let outcome = handle.drain().expect("drains");
        assert_eq!(outcome.requests(), 5, "only unclaimed tickets remain");
        for (v, t) in tickets.iter().enumerate().skip(5) {
            let v = v as u32;
            assert_eq!(
                outcome.outputs_for(t.key()),
                Some(nl.eval(&[v & 1 != 0, v & 2 != 0]).as_slice()),
                "{t}"
            );
        }
        // Exactly once: a waited ticket is gone, a second drain is empty.
        assert!(matches!(
            tickets[0].wait().unwrap_err(),
            ClusterError::TicketUnserved { ticket: 0 }
        ));
        assert_eq!(handle.drain().expect("drains").requests(), 0);
        // The service is closed for business.
        assert!(handle.is_closed());
        assert_eq!(
            handle.submit(&p, vec![true, false]).unwrap_err(),
            ClusterError::Closed
        );
        assert_eq!(handle.flush().unwrap_err(), ClusterError::Closed);
    }

    #[test]
    fn dropping_every_handle_winds_the_worker_down_gracefully() {
        let (nor, nl) = xor_circuit();
        let handle = PimClusterBuilder::new(1, 30, 3).spawn().expect("spawns");
        let p = handle.compile(&nor).expect("compiles");
        let t = handle.submit(&p, vec![true, true]).expect("submits");
        drop(handle);
        // The worker flushes the queue on its way out; the outstanding
        // ticket stays claimable.
        let result = t.wait().expect("served by the final flush");
        assert_eq!(result.outputs, nl.eval(&[true, true]));
    }

    #[test]
    fn a_panicking_worker_poisons_waiters_and_producers() {
        // A shard whose fault hook panics kills the dispatch thread and,
        // with it, the worker. Every blocked or future caller must get
        // `WorkerPoisoned` instead of hanging.
        let (nor, _) = xor_circuit();
        let device = PimDeviceBuilder::new(30, 3)
            .on_batch_loaded(|_| panic!("injected worker panic"))
            .build()
            .expect("device");
        let core = ClusterCore {
            shards: vec![device],
            batch_limit: 30,
            pack_limit: usize::MAX,
            axis_policy: AxisPolicy::default(),
            max_retries: 2,
            colocate: true,
            programs: ProgramCache::default(),
            pending: Vec::new(),
            pending_partitioned: Vec::new(),
            waves_dispatched: 0,
            health: HealthMonitor::new(1, 30, HealthConfig::default(), None),
            arena: FlushArena::default(),
        };
        let handle = handle::spawn(core, ServiceConfig::default());
        let p = handle.compile(&nor).expect("compiles");
        let t = handle.submit(&p, vec![true, false]).expect("submits");
        assert_eq!(t.wait().unwrap_err(), ClusterError::WorkerPoisoned);
        assert_eq!(
            handle.submit(&p, vec![true, false]).unwrap_err(),
            ClusterError::WorkerPoisoned
        );
        assert_eq!(handle.drain().unwrap_err(), ClusterError::WorkerPoisoned);
        assert_eq!(handle.close().unwrap_err(), ClusterError::WorkerPoisoned);
    }

    #[test]
    fn the_service_routes_around_a_too_narrow_shard() {
        // The async analogue of the sync routing tests: shard 1 is too
        // narrow for the compiled programs, so the worker's waves never
        // dispatch there — both tickets resolve from shard 0 and the
        // worker stays healthy.
        let (xor_nor, xor_nl) = xor_circuit();
        let (mux_nor, mux_nl) = mux_circuit();
        let core = ClusterCore {
            shards: vec![
                PimDevice::new(30, 3).expect("device"),
                PimDevice::new(9, 3).expect("device"),
            ],
            batch_limit: 30,
            pack_limit: usize::MAX,
            axis_policy: AxisPolicy::default(),
            max_retries: 2,
            colocate: true,
            programs: ProgramCache::default(),
            pending: Vec::new(),
            pending_partitioned: Vec::new(),
            waves_dispatched: 0,
            health: HealthMonitor::new(2, 30, HealthConfig::default(), None),
            arena: FlushArena::default(),
        };
        let handle = handle::spawn(core, ServiceConfig::default());
        // Compile on a full-width device and adopt, so both programs are
        // mapped at row 30 — too wide for the 9-cell shard — rather than
        // smallest-fit remapped to fit it.
        let mut donor = PimDevice::new(30, 3).expect("device");
        let p = donor.compile(&xor_nor).expect("compiles");
        let p = handle.adopt(p.program()).expect("fits the wide shard");
        let q = donor.compile(&mux_nor).expect("compiles");
        let q = handle.adopt(q.program()).expect("fits the wide shard");
        let t0 = handle.submit(&p, vec![true, false]).expect("submits");
        let t1 = handle.submit(&q, vec![true, true, false]).expect("submits");
        let r0 = t0.wait().expect("shard 0 served it");
        assert_eq!(r0.outputs, xor_nl.eval(&[true, false]));
        assert_eq!(r0.shard, 0);
        let r1 = t1.wait().expect("the narrow shard is avoided");
        assert_eq!(r1.outputs, mux_nl.eval(&[true, true, false]));
        assert_eq!(r1.shard, 0, "co-located onto the healthy shard");
        handle
            .close()
            .expect("worker never touched the narrow shard");
    }

    #[test]
    fn mixed_geometry_pool_routes_wide_programs_to_tall_shards() {
        let (nor, nl) = xor_circuit();
        let mut cluster = PimClusterBuilder::new(3, 30, 3)
            .shard_geometries(vec![(30, 3), (30, 3), (60, 3)])
            .build()
            .expect("cluster");
        assert_eq!(cluster.shard_capacity(), 60);
        assert_eq!(cluster.capacity(), 120, "sum over the mixed pool");

        // A handle mapped for the 60-cell shard is admissible now and must
        // route only to shard 2; narrow traffic keeps the 30-cell shards.
        let mut tall = PimDevice::new(60, 3).expect("device");
        let wide = tall.compile(&nor).expect("compiles");
        let wide = cluster.adopt(wide.program()).expect("fits the tall shard");
        let narrow = cluster.compile(&nor).expect("compiles");
        assert_eq!(
            narrow.program().row_size,
            30,
            "compile targets the smallest fitting geometry"
        );

        let mut expect = Vec::new();
        for v in 0..12u32 {
            let inputs = vec![v & 1 != 0, v & 2 != 0];
            let p = if v % 2 == 0 { &wide } else { &narrow };
            let t = cluster.submit(p, inputs.clone()).expect("submits");
            expect.push((t, v % 2 == 0, nl.eval(&inputs)));
        }
        let outcome = cluster.flush().expect("flushes");
        assert_eq!(outcome.requests(), 12);
        for (t, is_wide, want) in &expect {
            assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()), "{t}");
            let r = outcome
                .results
                .iter()
                .find(|r| r.ticket == *t)
                .expect("served");
            if *is_wide {
                assert_eq!(r.shard, 2, "wide programs only fit the tall shard");
            } else {
                assert!(r.shard < 2, "narrow traffic keeps the short shards");
            }
        }
        for shard in 0..3 {
            assert!(cluster.shard(shard).memory().verify_consistency().is_ok());
        }
    }

    #[test]
    fn colocation_merges_foreign_fingerprints_into_one_wave() {
        let (xor_nor, xor_nl) = xor_circuit();
        let (mux_nor, mux_nl) = mux_circuit();
        let run = |colocate: bool| {
            let mut cluster = PimClusterBuilder::new(1, 30, 3)
                .colocate(colocate)
                .build()
                .expect("cluster");
            let xor = cluster.compile(&xor_nor).expect("compiles");
            let mux = cluster.compile(&mux_nor).expect("compiles");
            let mut expect = Vec::new();
            for v in 0..8u32 {
                if v % 2 == 0 {
                    let inputs = vec![v & 2 != 0, v & 4 != 0];
                    let t = cluster.submit(&xor, inputs.clone()).expect("submits");
                    expect.push((t, xor_nl.eval(&inputs)));
                } else {
                    let inputs = vec![v & 2 != 0, v & 4 != 0, v & 8 != 0];
                    let t = cluster.submit(&mux, inputs.clone()).expect("submits");
                    expect.push((t, mux_nl.eval(&inputs)));
                }
            }
            let outcome = cluster.flush().expect("flushes");
            for (t, want) in &expect {
                assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()), "{t}");
            }
            outcome
        };
        let colocated = run(true);
        let baseline = run(false);
        assert_eq!(
            colocated.waves, 1,
            "one shard, two fingerprints: pass 3 shares the wave"
        );
        assert_eq!(baseline.waves, 2, "without pass 3 each fingerprint waits");
        assert_eq!(colocated.shard_reports[0].batches, 1);
        assert!(
            colocated.results.iter().all(|r| r.wave == 0),
            "both programs rode wave 0"
        );
        // Sharing the wave shares its block-line pre-checks: the two
        // programs meet inside one block-line at the seam, so the merged
        // wave checks strictly fewer blocks than the two-wave baseline.
        assert!(colocated.input_check.checked < baseline.input_check.checked);
    }
}
