//! The service's worker thread: owns the shard pool, drains the command
//! channel, auto-flushes on **either** a pending-count threshold or a
//! max-latency deadline — whichever trips first — and runs the health
//! loop's background scrub waves in the gaps.
//!
//! The worker is the only thread that ever touches the
//! [`ClusterCore`](super::service::ClusterCore) once
//! [`PimClusterBuilder::spawn`](crate::cluster::PimClusterBuilder::spawn)
//! moves the pool here, so scheduling stays exactly as deterministic as
//! the synchronous cluster: the dispatch plan is a pure function of the
//! order commands arrive on the channel. Concurrent producers race for
//! *queue positions* (ticket ids are allocated in channel order), but
//! once the order is fixed, so is every placement.
//!
//! # Scrubbing never delays a deadline flush
//!
//! A scrub pass runs only when the pending queue is empty, or when the
//! armed deadline leaves at least twice the (exponentially averaged)
//! wall cost of recent scrub passes as slack. A worker that cannot fit a
//! scrub before the deadline skips the slot and re-arms the scrub timer
//! — traffic wins, scrubbing rides the idle gaps. Background scrubs use
//! [`PimDevice::scrub_pass`](crate::device::PimDevice::scrub_pass),
//! whose stats are billed to the device's lifetime clock but not to any
//! flush outcome (batch stats are deltas), so scrubbing is invisible to
//! the determinism guarantee on results.

use super::handle::Shared;
use super::service::{ClusterCore, ServiceConfig};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a [`ClusterHandle`](super::handle::ClusterHandle) sends down the
/// channel.
pub(crate) enum Command {
    /// One validated request; the ticket id was allocated by the sender.
    Submit(super::queue::Pending),
    /// One validated partitioned request (see
    /// [`ClusterHandle::submit_partitioned`](super::handle::ClusterHandle::submit_partitioned));
    /// rides the same queue positions and flush triggers as `Submit`.
    SubmitPartitioned(super::queue::PendingPartitioned),
    /// Flush everything pending now.
    Flush,
    /// Flush everything pending, then stop (graceful shutdown).
    Close,
}

/// The worker loop. Runs until a [`Command::Close`] arrives or every
/// sender is gone, flushes whatever is still pending on the way out, and
/// marks the board closed so waiters never hang. A panic anywhere in the
/// loop (a shard thread dying, a placement invariant breaking) poisons
/// the board instead: every current and future waiter gets
/// [`ClusterError::WorkerPoisoned`](super::ClusterError::WorkerPoisoned).
pub(crate) fn run(
    mut core: ClusterCore,
    rx: Receiver<Command>,
    shared: Arc<Shared>,
    cfg: ServiceConfig,
) {
    let _guard = PoisonGuard(&shared);
    shared.set_health(core.health.snapshot());
    // When the oldest pending request must be served (the *effective*
    // `flush_after` — the configured base scaled by the adaptive
    // controller — counted from its submission instant); `None` while
    // the queue is empty or no deadline is configured.
    let mut deadline: Option<Instant> = None;
    // When the next background scrub pass is due; `None` when scrubbing
    // is disabled.
    let scrub_period = core.health.config().scrub_period;
    let mut next_scrub = scrub_period.map(|period| Instant::now() + period);
    // Exponentially averaged wall cost of one scrub pass — the slack a
    // scrub must find under an armed deadline before it may run.
    let mut scrub_cost = Duration::ZERO;
    loop {
        // An expired deadline flushes — but first the channel backlog is
        // absorbed non-blockingly. A worker running behind its deadline
        // would otherwise dequeue one aged request at a time, each with
        // an already-expired deadline, and degenerate into
        // one-request-per-flush: the exact anti-batching behavior the
        // service exists to avoid.
        if deadline.is_some_and(|at| at <= Instant::now()) {
            let stop = absorb_backlog(&mut core, &rx, &shared, cfg, &mut deadline);
            flush(&mut core, &shared, &mut deadline);
            if stop {
                break;
            }
            continue;
        }
        // A due scrub slot runs one pass on the round-robin shard — but
        // only if it cannot collide with the deadline flush (see module
        // docs). A skipped slot still re-arms: the scheduler degrades to
        // "scrub when idle" under sustained pressure.
        if let (Some(period), Some(due)) = (scrub_period, next_scrub) {
            if due <= Instant::now() {
                let slack_ok = core.pending_total() == 0
                    || deadline.is_some_and(|at| {
                        at.saturating_duration_since(Instant::now()) > scrub_cost * 2
                    });
                if slack_ok {
                    let started = Instant::now();
                    scrub_one(&mut core);
                    let took = started.elapsed();
                    scrub_cost = (scrub_cost * 3 + took) / 4;
                    shared.set_health(core.health.snapshot());
                }
                next_scrub = Some(Instant::now() + period);
                continue;
            }
        }
        // Sleep until the next actionable instant: a command, the flush
        // deadline, or the scrub timer — whichever is earliest.
        let wake = match (deadline, next_scrub) {
            (Some(d), Some(s)) => Some(d.min(s)),
            (Some(d), None) => Some(d),
            (None, Some(s)) => Some(s),
            (None, None) => None,
        };
        let cmd = match wake {
            Some(at) => {
                match rx.recv_timeout(at.saturating_duration_since(Instant::now())) {
                    Ok(cmd) => cmd,
                    // Handled by the due-deadline / due-scrub branches.
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
        };
        match cmd {
            Command::Submit(p) => {
                if core.pending_total() == 0 {
                    deadline = core
                        .health
                        .effective_deadline()
                        .map(|after| p.submitted_at + after);
                }
                core.pending.push(p);
                if cfg.flush_at.is_some_and(|at| core.pending_total() >= at) {
                    flush(&mut core, &shared, &mut deadline);
                }
            }
            Command::SubmitPartitioned(p) => {
                if core.pending_total() == 0 {
                    deadline = core
                        .health
                        .effective_deadline()
                        .map(|after| p.submitted_at + after);
                }
                core.pending_partitioned.push(p);
                if cfg.flush_at.is_some_and(|at| core.pending_total() >= at) {
                    flush(&mut core, &shared, &mut deadline);
                }
            }
            Command::Flush => flush(&mut core, &shared, &mut deadline),
            Command::Close => break,
        }
    }
    // Graceful exit — Close or every handle dropped: serve the stragglers,
    // then let waiters and drainers through.
    flush(&mut core, &shared, &mut deadline);
    shared.set_health(core.health.snapshot());
    shared.finish();
}

/// One background scrub pass on the rotation's next shard, folded into
/// the health ledgers. The rotation covers quarantined shards too — clean
/// scrubs are how they earn their way back into the pool.
fn scrub_one(core: &mut ClusterCore) {
    let shard = core.health.next_scrub_shard();
    if let Ok(report) = core.shards[shard].scrub_pass() {
        core.health.note_scrub(shard, &report.check);
        let retired = core.shards[shard].retired().retired_physical_lines();
        core.health.set_retired(shard, retired as u64);
    }
}

/// Non-blockingly moves the channel backlog into the pending queue so an
/// imminent deadline flush carries the whole backlog in one batch. The
/// threshold still applies mid-absorb (so `flush_at` keeps bounding batch
/// size); queued `Flush` commands are satisfied by the flush that follows.
/// Returns `true` when the worker should stop (a `Close` was queued or
/// every sender is gone).
fn absorb_backlog(
    core: &mut ClusterCore,
    rx: &Receiver<Command>,
    shared: &Shared,
    cfg: ServiceConfig,
    deadline: &mut Option<Instant>,
) -> bool {
    loop {
        match rx.try_recv() {
            Ok(Command::Submit(p)) => {
                core.pending.push(p);
                if cfg.flush_at.is_some_and(|at| core.pending_total() >= at) {
                    flush(core, shared, deadline);
                }
            }
            Ok(Command::SubmitPartitioned(p)) => {
                core.pending_partitioned.push(p);
                if cfg.flush_at.is_some_and(|at| core.pending_total() >= at) {
                    flush(core, shared, deadline);
                }
            }
            Ok(Command::Flush) => {}
            Ok(Command::Close) => return true,
            // Disconnected: the final flush runs next either way, and the
            // following recv() observes the hangup and stops the loop.
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return false,
        }
    }
}

/// One queue drain: execute, publish to the board, refresh the health
/// snapshot, re-arm the deadline.
fn flush(core: &mut ClusterCore, shared: &Shared, deadline: &mut Option<Instant>) {
    *deadline = None;
    if core.pending_total() == 0 {
        return;
    }
    let report = core.flush_pending();
    // Health before results: a waiter woken by the publish must already
    // see this flush reflected in `metrics()`.
    shared.set_health(core.health.snapshot());
    shared.publish(report);
}

/// Poisons the board if the worker unwinds, so no waiter blocks forever
/// on a dead thread.
struct PoisonGuard<'a>(&'a Shared);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}
