//! The service's worker thread: owns the shard pool, drains the command
//! channel, and auto-flushes on **either** a pending-count threshold or a
//! max-latency deadline — whichever trips first.
//!
//! The worker is the only thread that ever touches the
//! [`ClusterCore`](super::service::ClusterCore) once
//! [`PimClusterBuilder::spawn`](crate::cluster::PimClusterBuilder::spawn)
//! moves the pool here, so scheduling stays exactly as deterministic as
//! the synchronous cluster: the dispatch plan is a pure function of the
//! order commands arrive on the channel. Concurrent producers race for
//! *queue positions* (ticket ids are allocated in channel order), but
//! once the order is fixed, so is every placement.

use super::handle::Shared;
use super::service::{ClusterCore, ServiceConfig};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::Instant;

/// What a [`ClusterHandle`](super::handle::ClusterHandle) sends down the
/// channel.
pub(crate) enum Command {
    /// One validated request; the ticket id was allocated by the sender.
    Submit(super::queue::Pending),
    /// Flush everything pending now.
    Flush,
    /// Flush everything pending, then stop (graceful shutdown).
    Close,
}

/// The worker loop. Runs until a [`Command::Close`] arrives or every
/// sender is gone, flushes whatever is still pending on the way out, and
/// marks the board closed so waiters never hang. A panic anywhere in the
/// loop (a shard thread dying, a placement invariant breaking) poisons
/// the board instead: every current and future waiter gets
/// [`ClusterError::WorkerPoisoned`](super::ClusterError::WorkerPoisoned).
pub(crate) fn run(
    mut core: ClusterCore,
    rx: Receiver<Command>,
    shared: Arc<Shared>,
    cfg: ServiceConfig,
) {
    let _guard = PoisonGuard(&shared);
    // When the oldest pending request must be served (`flush_after`
    // counted from its submission instant); `None` while the queue is
    // empty or no deadline is configured.
    let mut deadline: Option<Instant> = None;
    loop {
        // An expired deadline flushes — but first the channel backlog is
        // absorbed non-blockingly. A worker running behind its deadline
        // would otherwise dequeue one aged request at a time, each with
        // an already-expired deadline, and degenerate into
        // one-request-per-flush: the exact anti-batching behavior the
        // service exists to avoid.
        if deadline.is_some_and(|at| at <= Instant::now()) {
            let stop = absorb_backlog(&mut core, &rx, &shared, cfg, &mut deadline);
            flush(&mut core, &shared, &mut deadline);
            if stop {
                break;
            }
            continue;
        }
        let cmd = match deadline {
            Some(at) => {
                match rx.recv_timeout(at.saturating_duration_since(Instant::now())) {
                    Ok(cmd) => cmd,
                    // Handled by the expired-deadline branch above.
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
        };
        match cmd {
            Command::Submit(p) => {
                if core.pending.is_empty() {
                    deadline = cfg.flush_after.map(|after| p.submitted_at + after);
                }
                core.pending.push(p);
                if cfg.flush_at.is_some_and(|at| core.pending.len() >= at) {
                    flush(&mut core, &shared, &mut deadline);
                }
            }
            Command::Flush => flush(&mut core, &shared, &mut deadline),
            Command::Close => break,
        }
    }
    // Graceful exit — Close or every handle dropped: serve the stragglers,
    // then let waiters and drainers through.
    flush(&mut core, &shared, &mut deadline);
    shared.finish();
}

/// Non-blockingly moves the channel backlog into the pending queue so an
/// imminent deadline flush carries the whole backlog in one batch. The
/// threshold still applies mid-absorb (so `flush_at` keeps bounding batch
/// size); queued `Flush` commands are satisfied by the flush that follows.
/// Returns `true` when the worker should stop (a `Close` was queued or
/// every sender is gone).
fn absorb_backlog(
    core: &mut ClusterCore,
    rx: &Receiver<Command>,
    shared: &Shared,
    cfg: ServiceConfig,
    deadline: &mut Option<Instant>,
) -> bool {
    loop {
        match rx.try_recv() {
            Ok(Command::Submit(p)) => {
                core.pending.push(p);
                if cfg.flush_at.is_some_and(|at| core.pending.len() >= at) {
                    flush(core, shared, deadline);
                }
            }
            Ok(Command::Flush) => {}
            Ok(Command::Close) => return true,
            // Disconnected: the final flush runs next either way, and the
            // following recv() observes the hangup and stops the loop.
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return false,
        }
    }
}

/// One queue drain: execute, publish to the board, re-arm the deadline.
fn flush(core: &mut ClusterCore, shared: &Shared, deadline: &mut Option<Instant>) {
    *deadline = None;
    if core.pending.is_empty() {
        return;
    }
    shared.publish(core.flush_pending());
}

/// Poisons the board if the worker unwinds, so no waiter blocks forever
/// on a dead thread.
struct PoisonGuard<'a>(&'a Shared);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}
