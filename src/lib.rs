//! `pimecc` — a reproduction of *"Efficient Error-Correcting-Code Mechanism
//! for High-Throughput Memristive Processing-in-Memory"* (Leitersdorf,
//! Perach, Ronen, Kvatinsky — DAC 2021).
//!
//! The paper maintains ECC check-bits along the *wrap-around diagonals* of
//! m×m blocks of a MAGIC crossbar array, so that row-parallel and
//! column-parallel stateful-logic operations each touch at most one data
//! bit per check-bit — enabling continuous, Θ(1), in-memory ECC updates
//! through barrel shifters and pipelined XOR3 processing crossbars.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`xbar`] — memristive crossbar + MAGIC stateful-logic simulator;
//! * [`netlist`] — gate IR, NOR lowering, EPFL-style benchmark generators;
//! * [`simpler`] — the SIMPLER single-row mapper + ECC schedule extension;
//! * [`core`] — the diagonal ECC codec, CMEM architecture, protected
//!   memory machine and area model;
//! * [`reliability`] — SER model, Figure 6 MTTF closed forms, Monte-Carlo.
//!
//! # Quickstart
//!
//! ```
//! use pimecc::core::{BlockGeometry, ProtectedMemory};
//! use pimecc::xbar::LineSet;
//!
//! # fn main() -> Result<(), pimecc::core::CoreError> {
//! let mut pm = ProtectedMemory::new(BlockGeometry::new(30, 15)?)?;
//! pm.exec_init_rows(&[4], &LineSet::All)?;
//! pm.exec_nor_rows(&[0, 1], 4, &LineSet::All)?;
//! pm.inject_fault(3, 4);
//! assert_eq!(pm.check_all()?.corrected, 1);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub mod runner;

pub use pimecc_core as core;
pub use pimecc_netlist as netlist;
pub use pimecc_reliability as reliability;
pub use pimecc_simpler as simpler;
pub use pimecc_xbar as xbar;
pub use runner::{ProtectedRunner, RunOutcome};
