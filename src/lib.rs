//! `pimecc` — a reproduction of *"Efficient Error-Correcting-Code Mechanism
//! for High-Throughput Memristive Processing-in-Memory"* (Leitersdorf,
//! Perach, Ronen, Kvatinsky — DAC 2021).
//!
//! The paper maintains ECC check-bits along the *wrap-around diagonals* of
//! m×m blocks of a MAGIC crossbar array, so that row-parallel and
//! column-parallel stateful-logic operations each touch at most one data
//! bit per check-bit — enabling continuous, Θ(1), in-memory ECC updates
//! through barrel shifters and pipelined XOR3 processing crossbars.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`cluster`] — the scaling front-end: [`PimCluster`] queues mixed
//!   traffic behind `submit`/`flush`, packs it by program fingerprint and
//!   dispatches two-dimensionally planned batches (rows *or* columns,
//!   narrow programs co-packed several per line) across a pool of shards
//!   in parallel. [`PimClusterBuilder::spawn`](cluster::PimClusterBuilder::spawn)
//!   runs the same pool as a **service**: a channel-fed worker thread
//!   auto-flushes on a pending threshold or a max-latency deadline, and
//!   cloneable [`ClusterHandle`](cluster::ClusterHandle)s submit without
//!   blocking, holding waitable tickets
//!   ([`cluster::handle::Ticket::wait`]);
//! * [`device`] — the batch-first execution layer: [`PimDevice`] compiles
//!   functions once (SIMPLER; [`PimDevice::compile_packed`] maps them
//!   narrow for co-packing) and executes
//!   [`device::placement::PlacementPlan`]s — up to `n × (n / footprint)`
//!   requests per crossbar pass, with the paper's pre-execution checks
//!   amortized per touched block-line on either axis;
//! * [`xbar`] — memristive crossbar + MAGIC stateful-logic simulator;
//! * [`netlist`] — gate IR, NOR lowering, EPFL-style benchmark generators;
//! * [`simpler`] — the SIMPLER single-row mapper + ECC schedule extension;
//! * [`core`] — the diagonal ECC codec, CMEM architecture, protected
//!   memory machine and area model;
//! * [`reliability`] — SER model, Figure 6 MTTF closed forms, Monte-Carlo.
//!
//! Everything a typical caller needs sits in [`prelude`].
//!
//! # Quickstart
//!
//! Build a cluster, compile a function once, submit requests as they
//! arrive, flush — the queue packs same-program traffic into full-width
//! row batches and runs the shards in parallel:
//!
//! ```
//! use pimecc::prelude::*;
//! use pimecc::netlist::NetlistBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A full adder: three inputs, sum and carry out.
//! let mut b = NetlistBuilder::new();
//! let ins = b.inputs(3);
//! let s1 = b.xor(ins[0], ins[1]);
//! let sum = b.xor(s1, ins[2]);
//! let carry = b.maj(ins[0], ins[1], ins[2]);
//! b.output(sum);
//! b.output(carry);
//! let netlist = b.finish();
//!
//! // Two shards of 30x30 crossbars with 3x3 ECC blocks; SIMPLER maps the
//! // function once and the handle is shared by both shards.
//! let mut cluster = PimClusterBuilder::new(2, 30, 3).build()?;
//! let program = cluster.compile(&netlist.to_nor())?;
//!
//! // Submission returns a ticket immediately; nothing executes yet.
//! let tickets: Vec<Ticket> = (0..8u32)
//!     .map(|v| cluster.submit(&program, (0..3).map(|i| v >> i & 1 != 0).collect()))
//!     .collect::<Result<_, _>>()?;
//!
//! // One flush serves the whole queue: each program step executes once
//! // per dispatched batch, row-parallel, ECC maintained throughout.
//! let outcome = cluster.flush()?;
//! for (v, ticket) in tickets.iter().enumerate() {
//!     let inputs: Vec<bool> = (0..3).map(|i| v as u32 >> i & 1 != 0).collect();
//!     assert_eq!(outcome.outputs_for(*ticket), Some(netlist.eval(&inputs).as_slice()));
//! }
//! // Aggregate throughput beats one gate evaluation per MEM cycle, where
//! // a serial flow is pinned below one.
//! assert!(outcome.gate_evals_per_mem_cycle() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! A single crossbar without the queue is [`PimDevice::run_batch`]
//! (see the [`device`] module docs). See `examples/cluster_throughput.rs`
//! for the shard-count sweep, `examples/batch_throughput.rs` for the
//! cycle-amortization curve, and `crates/bench` for the binaries that
//! regenerate every table and figure of the paper.

pub mod cluster;
pub mod compiler;
pub mod device;

pub use cluster::{ClusterError, ClusterOutcome, PimCluster, PimClusterBuilder, Ticket};
pub use compiler::{PartitionedProgram, RouteSource, SubProgram};
pub use device::{BatchOutcome, CompiledProgram, PimDevice, PimDeviceBuilder};
pub use pimecc_core as core;
pub use pimecc_netlist as netlist;
pub use pimecc_reliability as reliability;
pub use pimecc_simpler as simpler;
pub use pimecc_xbar as xbar;

/// One-import surface for downstream code: the cluster submission API,
/// the single-device batch API, and the policy/error types both share.
///
/// ```
/// use pimecc::prelude::*;
///
/// # fn main() -> Result<(), ClusterError> {
/// let cluster = PimClusterBuilder::new(2, 30, 3)
///     .check_policy(CheckPolicy::PreExecution)
///     .build()?;
/// assert_eq!(cluster.capacity(), 60);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use crate::cluster::{
        AxisPolicy, ClusterError, ClusterHandle, ClusterOutcome, FailedRequest, HealthSnapshot,
        LatencyStats, OutputSlice, PimCluster, PimClusterBuilder, ShardHealth, ShardReport,
        ShardState, Ticket, TicketResult,
    };
    pub use crate::compiler::{PartitionedProgram, RouteSource, SubProgram};
    pub use crate::device::{
        Axis, BatchOutcome, CheckPolicy, CompiledProgram, CoveragePolicy, DeviceError,
        MultiProgramPlan, OutputArena, PimDevice, PimDeviceBuilder, PlacementPlan, RetiredLines,
        ScrubReport, SimEngine, Slot, UncorrectableInput,
    };
}
