//! `pimecc` — a reproduction of *"Efficient Error-Correcting-Code Mechanism
//! for High-Throughput Memristive Processing-in-Memory"* (Leitersdorf,
//! Perach, Ronen, Kvatinsky — DAC 2021).
//!
//! The paper maintains ECC check-bits along the *wrap-around diagonals* of
//! m×m blocks of a MAGIC crossbar array, so that row-parallel and
//! column-parallel stateful-logic operations each touch at most one data
//! bit per check-bit — enabling continuous, Θ(1), in-memory ECC updates
//! through barrel shifters and pipelined XOR3 processing crossbars.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`device`] — the batch-first execution layer: [`PimDevice`] compiles
//!   functions once (SIMPLER) and serves up to `n` requests per crossbar
//!   pass, with the paper's pre-execution checks amortized per block-row;
//! * [`xbar`] — memristive crossbar + MAGIC stateful-logic simulator;
//! * [`netlist`] — gate IR, NOR lowering, EPFL-style benchmark generators;
//! * [`simpler`] — the SIMPLER single-row mapper + ECC schedule extension;
//! * [`core`] — the diagonal ECC codec, CMEM architecture, protected
//!   memory machine and area model;
//! * [`reliability`] — SER model, Figure 6 MTTF closed forms, Monte-Carlo;
//! * [`runner`] — the deprecated single-request facade over [`device`].
//!
//! # Quickstart
//!
//! Build a device, compile a function, serve a whole batch in one pass —
//! and survive a soft error along the way:
//!
//! ```
//! use pimecc::device::PimDevice;
//! use pimecc::netlist::NetlistBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A full adder: three inputs, sum and carry out.
//! let mut b = NetlistBuilder::new();
//! let ins = b.inputs(3);
//! let s1 = b.xor(ins[0], ins[1]);
//! let sum = b.xor(s1, ins[2]);
//! let carry = b.maj(ins[0], ins[1], ins[2]);
//! b.output(sum);
//! b.output(carry);
//! let netlist = b.finish();
//!
//! // A 30x30 crossbar with 3x3 ECC blocks; SIMPLER maps the function once.
//! let mut device = PimDevice::new(30, 3)?;
//! let program = device.compile(&netlist.to_nor())?;
//!
//! // All eight input combinations execute simultaneously on eight rows:
//! // each program step runs once for the whole batch.
//! let batch: Vec<Vec<bool>> = (0..8u32)
//!     .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
//!     .collect();
//! let outcome = device.run_batch(&program, &batch)?;
//! for (req, out) in batch.iter().zip(&outcome.outputs) {
//!     assert_eq!(out, &netlist.eval(req));
//! }
//! // Throughput scales with the batch: more than one gate evaluation per
//! // MEM cycle, where a serial flow is pinned below one.
//! assert!(outcome.gate_evals_per_mem_cycle() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/batch_throughput.rs` for the cycle-amortization curve,
//! `examples/` for more scenarios and `crates/bench` for the binaries that
//! regenerate every table and figure of the paper.

pub mod device;
pub mod runner;

pub use device::{BatchOutcome, CompiledProgram, PimDevice, PimDeviceBuilder};
pub use pimecc_core as core;
pub use pimecc_netlist as netlist;
pub use pimecc_reliability as reliability;
pub use pimecc_simpler as simpler;
pub use pimecc_xbar as xbar;
#[allow(deprecated)]
pub use runner::ProtectedRunner;
pub use runner::RunOutcome;
