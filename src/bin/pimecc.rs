//! `pimecc` — command-line front end for the SIMPLER/ECC flow.
//!
//! ```text
//! pimecc map <circuit.(blif|aag)> [--row N]        map to a crossbar row, print the listing
//! pimecc schedule <circuit.(blif|aag)> [--pcs K] [--m M] [--no-check]
//!                                                  ECC latency report for the mapped circuit
//! pimecc convert <circuit.(blif|aag)> <blif|aag>   convert between formats (stdout)
//! pimecc bench <name>                              generate a built-in benchmark as BLIF (stdout)
//! pimecc area [n m k]                              device-count table (paper Table II)
//! ```
//!
//! Exit code 0 on success, 1 on bad usage, 2 on processing errors.

use pimecc::core::AreaModel;
use pimecc::netlist::aiger::{parse_aag, write_aag};
use pimecc::netlist::blif::{parse_blif, write_blif};
use pimecc::netlist::generators::Benchmark;
use pimecc::netlist::Netlist;
use pimecc::simpler::{
    map_auto, min_processing_crossbars, schedule_with_ecc, write_listing, EccConfig,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pimecc map <circuit.(blif|aag)> [--row N]\n  pimecc schedule <circuit.(blif|aag)> [--pcs K] [--m M] [--no-check]\n  pimecc convert <circuit.(blif|aag)> <blif|aag>\n  pimecc bench <name>\n  pimecc area [n m k]"
    );
    ExitCode::from(1)
}

fn load_circuit(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".aag") {
        parse_aag(&text).map_err(|e| format!("parsing {path}: {e}"))
    } else {
        parse_blif(&text).map_err(|e| format!("parsing {path}: {e}"))
    }
}

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("map: missing circuit path")?;
    let netlist = load_circuit(path)?;
    let nor = netlist.to_nor();
    let base_row = flag_value(args, "--row").unwrap_or(1020);
    let (program, row) = map_auto(&nor, base_row).map_err(|e| format!("mapping failed: {e}"))?;
    eprintln!(
        "mapped {} gates into a {}-cell row: {} cycles ({} gate + {} init), peak live {}",
        nor.num_gates(),
        row,
        program.cycles(),
        program.gate_cycles(),
        program.init_cycles(),
        program.peak_live
    );
    print!("{}", write_listing(&program));
    Ok(())
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("schedule: missing circuit path")?;
    let netlist = load_circuit(path)?;
    let nor = netlist.to_nor();
    let (program, row) =
        map_auto(&nor, flag_value(args, "--row").unwrap_or(1020)).map_err(|e| e.to_string())?;
    let cfg = EccConfig {
        num_pcs: flag_value(args, "--pcs").unwrap_or(3),
        m: flag_value(args, "--m").unwrap_or(15),
        check_inputs: !args.iter().any(|a| a == "--no-check"),
        ..EccConfig::default()
    };
    let report = schedule_with_ecc(&program, &cfg);
    let pcs = min_processing_crossbars(&program, &cfg, 16);
    println!("circuit:        {path}");
    println!("row size:       {row}");
    println!("baseline:       {} cycles", report.baseline_cycles);
    println!(
        "with ECC:       {} cycles (k = {})",
        report.total_cycles, cfg.num_pcs
    );
    println!("overhead:       {:.2}%", report.overhead_pct());
    println!("critical ops:   {}", report.critical_ops);
    println!("MEM stalls:     {}", report.mem_stall_cycles);
    println!("transfers:      {}", report.transfer_cycles);
    println!("min PCs (knee): {pcs}");
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("convert: missing circuit path")?;
    let target = args
        .get(1)
        .map(String::as_str)
        .ok_or("convert: missing target format")?;
    let netlist = load_circuit(path)?;
    match target {
        "blif" => print!("{}", write_blif(&netlist, "converted")),
        "aag" => print!("{}", write_aag(&netlist)),
        other => return Err(format!("unknown target format '{other}' (use blif or aag)")),
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("bench: missing benchmark name")?;
    let bench = Benchmark::ALL
        .iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            format!(
                "unknown benchmark '{name}'; available: {}",
                names.join(", ")
            )
        })?;
    let circuit = bench.build();
    print!("{}", write_blif(&circuit.netlist, bench.name()));
    Ok(())
}

fn cmd_area(args: &[String]) -> Result<(), String> {
    let nums: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let model = match nums.as_slice() {
        [n, m, k] => AreaModel::new(*n, *m, *k).map_err(|e| e.to_string())?,
        [] => AreaModel::paper().map_err(|e| e.to_string())?,
        _ => return Err("area takes zero or three arguments (n m k)".into()),
    };
    print!("{model}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "map" => cmd_map(rest),
        "schedule" => cmd_schedule(rest),
        "convert" => cmd_convert(rest),
        "bench" => cmd_bench(rest),
        "area" => cmd_area(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
