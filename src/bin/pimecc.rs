//! `pimecc` — command-line front end for the SIMPLER/ECC flow.
//!
//! ```text
//! pimecc map <circuit.(blif|aag)> [--row N]        map to a crossbar row, print the listing
//! pimecc schedule <circuit.(blif|aag)> [--pcs K] [--m M] [--no-check]
//!                                                  ECC latency report for the mapped circuit
//! pimecc convert <circuit.(blif|aag)> <blif|aag>   convert between formats (stdout)
//! pimecc bench <name>                              generate a built-in benchmark as BLIF (stdout)
//! pimecc area [n m k]                              device-count table (paper Table II)
//! pimecc health [--shards S] [--requests R] [--seed X] [--stuck K]
//!               [--retire-after K] [--max-retries R]
//!                                                  fault-escalation demo + health report
//! pimecc topology [--geometries NxM,NxM,...] [--shards S] [--n N] [--m M]
//!                 [--quarantine I] [--stuck K] [--seed X]
//!                                                  per-shard geometry/capacity/health table
//! ```
//!
//! Exit code 0 on success, 1 on bad usage, 2 on processing errors. The
//! `health` command additionally exits 2 if any resolved ticket's outputs
//! differ from the fault-free reference — the escalation ladder's
//! no-silently-wrong-answers invariant, checked end to end.

use pimecc::core::AreaModel;
use pimecc::core::{CampaignConfig, FaultCampaign};
use pimecc::netlist::aiger::{parse_aag, write_aag};
use pimecc::netlist::blif::{parse_blif, write_blif};
use pimecc::netlist::generators::Benchmark;
use pimecc::netlist::{Netlist, NetlistBuilder};
use pimecc::prelude::*;
use pimecc::simpler::{
    map_auto, min_processing_crossbars, schedule_with_ecc, write_listing, EccConfig,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pimecc map <circuit.(blif|aag)> [--row N]\n  pimecc schedule <circuit.(blif|aag)> [--pcs K] [--m M] [--no-check]\n  pimecc convert <circuit.(blif|aag)> <blif|aag>\n  pimecc bench <name>\n  pimecc area [n m k]\n  pimecc health [--shards S] [--requests R] [--seed X] [--stuck K] [--retire-after K] [--max-retries R]\n  pimecc topology [--geometries NxM,NxM,...] [--shards S] [--n N] [--m M] [--quarantine I] [--stuck K] [--seed X]"
    );
    ExitCode::from(1)
}

fn load_circuit(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".aag") {
        parse_aag(&text).map_err(|e| format!("parsing {path}: {e}"))
    } else {
        parse_blif(&text).map_err(|e| format!("parsing {path}: {e}"))
    }
}

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("map: missing circuit path")?;
    let netlist = load_circuit(path)?;
    let nor = netlist.to_nor();
    let base_row = flag_value(args, "--row").unwrap_or(1020);
    let (program, row) = map_auto(&nor, base_row).map_err(|e| format!("mapping failed: {e}"))?;
    eprintln!(
        "mapped {} gates into a {}-cell row: {} cycles ({} gate + {} init), peak live {}",
        nor.num_gates(),
        row,
        program.cycles(),
        program.gate_cycles(),
        program.init_cycles(),
        program.peak_live
    );
    print!("{}", write_listing(&program));
    Ok(())
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("schedule: missing circuit path")?;
    let netlist = load_circuit(path)?;
    let nor = netlist.to_nor();
    let (program, row) =
        map_auto(&nor, flag_value(args, "--row").unwrap_or(1020)).map_err(|e| e.to_string())?;
    let cfg = EccConfig {
        num_pcs: flag_value(args, "--pcs").unwrap_or(3),
        m: flag_value(args, "--m").unwrap_or(15),
        check_inputs: !args.iter().any(|a| a == "--no-check"),
        ..EccConfig::default()
    };
    let report = schedule_with_ecc(&program, &cfg);
    let pcs = min_processing_crossbars(&program, &cfg, 16);
    println!("circuit:        {path}");
    println!("row size:       {row}");
    println!("baseline:       {} cycles", report.baseline_cycles);
    println!(
        "with ECC:       {} cycles (k = {})",
        report.total_cycles, cfg.num_pcs
    );
    println!("overhead:       {:.2}%", report.overhead_pct());
    println!("critical ops:   {}", report.critical_ops);
    println!("MEM stalls:     {}", report.mem_stall_cycles);
    println!("transfers:      {}", report.transfer_cycles);
    println!("min PCs (knee): {pcs}");
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("convert: missing circuit path")?;
    let target = args
        .get(1)
        .map(String::as_str)
        .ok_or("convert: missing target format")?;
    let netlist = load_circuit(path)?;
    match target {
        "blif" => print!("{}", write_blif(&netlist, "converted")),
        "aag" => print!("{}", write_aag(&netlist)),
        other => return Err(format!("unknown target format '{other}' (use blif or aag)")),
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("bench: missing benchmark name")?;
    let bench = Benchmark::ALL
        .iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            format!(
                "unknown benchmark '{name}'; available: {}",
                names.join(", ")
            )
        })?;
    let circuit = bench.build();
    print!("{}", write_blif(&circuit.netlist, bench.name()));
    Ok(())
}

fn cmd_area(args: &[String]) -> Result<(), String> {
    let nums: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let model = match nums.as_slice() {
        [n, m, k] => AreaModel::new(*n, *m, *k).map_err(|e| e.to_string())?,
        [] => AreaModel::paper().map_err(|e| e.to_string())?,
        _ => return Err("area takes zero or three arguments (n m k)".into()),
    };
    print!("{model}");
    Ok(())
}

/// Runs the fault-domain escalation ladder end to end on a live cluster —
/// a seeded stuck-at storm hammers shard 0 while full-adder traffic flows
/// through every shard — then prints the health ledger: per-shard ECC and
/// retirement counters, cluster retry/dead-letter totals, and the latency
/// percentiles (cumulative across retry attempts).
///
/// Every resolved ticket is compared bit-for-bit against the fault-free
/// reference; a single mismatch fails the command. Dead-lettered tickets
/// are *supposed* to appear under sustained faults — they are the explicit
/// alternative to a wrong answer.
fn cmd_health(args: &[String]) -> Result<(), String> {
    let shards = flag_value(args, "--shards").unwrap_or(4);
    let requests = flag_value(args, "--requests").unwrap_or(256);
    let seed = flag_value(args, "--seed").unwrap_or(0xDAC2021) as u64;
    let max_stuck = flag_value(args, "--stuck").unwrap_or(24);
    let retire_after = flag_value(args, "--retire-after").unwrap_or(2) as u32;
    let max_retries = flag_value(args, "--max-retries").unwrap_or(2) as u32;

    // The workload: a full adder, verified against `Netlist::eval`.
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(3);
    let s1 = b.xor(ins[0], ins[1]);
    let sum = b.xor(s1, ins[2]);
    let carry = b.maj(ins[0], ins[1], ins[2]);
    b.output(sum);
    b.output(carry);
    let netlist = b.finish();

    // The storm: every batch loaded on shard 0 takes one seeded strike —
    // transient flips the scrubber absorbs, plus up to `max_stuck`
    // permanent stuck-at cells that drive retirement.
    let mut campaign = FaultCampaign::new(
        seed,
        CampaignConfig {
            transient_rate: 0.25,
            burst_rate: 0.0,
            burst_len: 0,
            stuck_rate: 0.6,
            max_stuck,
        },
    );
    let mut cluster = PimClusterBuilder::new(shards, 30, 3)
        .retire_after(retire_after)
        .max_retries(max_retries)
        .shard_fault_hook(0, move |pm| campaign.strike(pm))
        .build()
        .map_err(|e| e.to_string())?;
    let program = cluster
        .compile(&netlist.to_nor())
        .map_err(|e| e.to_string())?;

    let (mut resolved, mut wrong, mut failed, mut retries) = (0usize, 0usize, 0usize, 0u64);
    let mut pending: Vec<(Ticket, usize)> = Vec::new();
    for v in 0..requests {
        let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
        pending.push((
            cluster
                .submit(&program, inputs)
                .map_err(|e| e.to_string())?,
            v,
        ));
        // Flush in small waves so the storm strikes many batches and the
        // escalation ladder (scrub -> retry -> retire) has rounds to act.
        if pending.len() == 32 || v + 1 == requests {
            let outcome = cluster.flush().map_err(|e| e.to_string())?;
            retries += outcome.retries;
            failed += outcome.failed.len();
            for (ticket, v) in pending.drain(..) {
                let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
                if let Some(outputs) = outcome.outputs_for(ticket) {
                    resolved += 1;
                    if outputs != netlist.eval(&inputs).as_slice() {
                        wrong += 1;
                    }
                }
            }
        }
    }

    let snap = cluster.health();
    println!(
        "traffic:        {requests} submitted, {resolved} resolved, {failed} dead-lettered, {retries} retries"
    );
    println!("wrong outputs:  {wrong}");
    println!(
        "cluster:        {} flushes, {} scrub waves, retries {} / dead letters {}",
        snap.flushes, snap.scrub_waves, snap.retries, snap.dead_letters
    );
    println!("shard  state        checked  corrected  uncorrect  scrubs  retired-lines");
    for (i, s) in snap.shards.iter().enumerate() {
        println!(
            "{i:>5}  {:<11}  {:>7}  {:>9}  {:>9}  {:>6}  {:>13}",
            format!("{:?}", s.state).to_lowercase(),
            s.checked,
            s.corrected,
            s.uncorrectable,
            s.scrubs,
            s.retired_lines
        );
    }
    let q = snap.queue_latency;
    let x = snap.execute_latency;
    println!(
        "latency:        queue p50 {:?} p99 {:?} | execute p50 {:?} p99 {:?} (cumulative over attempts)",
        q.p50, q.p99, x.p50, x.p99
    );
    if wrong > 0 {
        return Err(format!(
            "{wrong} resolved ticket(s) differ from the fault-free reference"
        ));
    }
    Ok(())
}

/// Prints the pool topology: per-shard geometry, line capacity, retired
/// lines and quarantine state, plus the distinct capacity tiers programs
/// compile against. `--geometries 120x3,240x3,...` builds a mixed pool;
/// `--quarantine I` takes a shard out of rotation; `--stuck K` runs a
/// seeded stuck-at storm against shard 0 first, so the retired-line and
/// state columns show a degraded pool rather than a factory-fresh one.
fn cmd_topology(args: &[String]) -> Result<(), String> {
    let geometries: Vec<(usize, usize)> = match args
        .iter()
        .position(|a| a == "--geometries")
        .and_then(|i| args.get(i + 1))
    {
        Some(spec) => spec
            .split(',')
            .map(|g| {
                let (n, m) = g
                    .split_once('x')
                    .ok_or_else(|| format!("bad geometry '{g}' (want NxM, e.g. 120x3)"))?;
                Ok((
                    n.parse().map_err(|_| format!("bad geometry '{g}'"))?,
                    m.parse().map_err(|_| format!("bad geometry '{g}'"))?,
                ))
            })
            .collect::<Result<_, String>>()?,
        None => {
            let shards = flag_value(args, "--shards").unwrap_or(4);
            let n = flag_value(args, "--n").unwrap_or(30);
            let m = flag_value(args, "--m").unwrap_or(3);
            vec![(n, m); shards]
        }
    };
    let (n0, m0) = *geometries.first().ok_or("topology: empty pool")?;
    let mut builder = PimClusterBuilder::new(geometries.len(), n0, m0)
        .shard_geometries(geometries.clone())
        .retire_after(2);
    let stuck = flag_value(args, "--stuck").unwrap_or(0);
    if stuck > 0 {
        let seed = flag_value(args, "--seed").unwrap_or(0xDAC2021) as u64;
        let mut campaign = FaultCampaign::new(
            seed,
            CampaignConfig {
                transient_rate: 0.1,
                burst_rate: 0.0,
                burst_len: 0,
                stuck_rate: 0.6,
                max_stuck: stuck,
            },
        );
        builder = builder.shard_fault_hook(0, move |pm| campaign.strike(pm));
    }
    let mut cluster = builder.build().map_err(|e| e.to_string())?;
    if let Some(q) = flag_value(args, "--quarantine") {
        cluster
            .set_quarantined(q, true)
            .map_err(|e| e.to_string())?;
    }
    if stuck > 0 {
        // Drive enough traffic through the storm for the escalation
        // ladder to retire the struck lines it finds.
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(2);
        let g = b.xor(ins[0], ins[1]);
        b.output(g);
        let nor = b.finish().to_nor();
        let p = cluster.compile(&nor).map_err(|e| e.to_string())?;
        for round in 0..16u32 {
            for v in 0..32u32 {
                let x = v + round;
                let _ = cluster
                    .submit(&p, vec![x & 1 != 0, x & 2 != 0])
                    .map_err(|e| e.to_string())?;
            }
            let _ = cluster.flush().map_err(|e| e.to_string())?;
        }
    }

    let snap = cluster.health();
    let total: usize = (0..geometries.len())
        .map(|i| cluster.shard(i).capacity())
        .sum();
    let mut tiers: Vec<usize> = geometries.iter().map(|&(n, _)| n).collect();
    tiers.sort_unstable();
    tiers.dedup();
    println!(
        "pool: {} shard(s), {} lines total, compile tiers {:?}",
        geometries.len(),
        total,
        tiers
    );
    println!("shard  geometry  capacity  in-service  retired-lines  state");
    for (i, s) in snap.shards.iter().enumerate() {
        let device = cluster.shard(i);
        let g = device.geometry();
        let n = device.capacity();
        let in_service = device
            .retired()
            .lines_in_service(Axis::Rows, n)
            .min(device.retired().lines_in_service(Axis::Cols, n));
        println!(
            "{i:>5}  {:>5}x{:<2}  {:>8}  {:>10}  {:>13}  {}",
            g.n(),
            g.m(),
            device.capacity(),
            in_service,
            s.retired_lines,
            format!("{:?}", s.state).to_lowercase()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "map" => cmd_map(rest),
        "schedule" => cmd_schedule(rest),
        "convert" => cmd_convert(rest),
        "bench" => cmd_bench(rest),
        "area" => cmd_area(rest),
        "health" => cmd_health(rest),
        "topology" => cmd_topology(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
