//! Partition-and-route compiler: serve circuits bigger than one line.
//!
//! Every program the device layer executes must fit one crossbar line
//! after dense remap. Real netlists — the 16-bit multiplier, wide ALUs —
//! don't, so [`PimDevice::compile`](crate::device::PimDevice::compile)
//! hard-errors with
//! [`DeviceError::ProgramTooWide`](crate::device::DeviceError::ProgramTooWide).
//! This module is the escape hatch: it cuts the oversized NOR DAG into
//! line-sized parts (`pimecc_netlist::partition`), compiles each part
//! through the existing SIMPLER `map_dense` path, and records a routing
//! table saying which cut signals must be read back after one part's wave
//! and re-loaded as inputs to its dependents. The cluster layer executes
//! the resulting [`PartitionedProgram`] as dependency-ordered waves with
//! host-side routing between them — ECC pre-checks run on every wave,
//! exactly as for ordinary programs.
//!
//! Compile through
//! [`PimCluster::compile_partitioned`](crate::cluster::PimCluster::compile_partitioned)
//! or
//! [`ClusterHandle::compile_partitioned`](crate::cluster::ClusterHandle::compile_partitioned);
//! submit with the matching `submit_partitioned`. Results come back
//! through the ordinary [`Ticket`](crate::cluster::Ticket) /
//! [`ClusterOutcome`](crate::cluster::ClusterOutcome) machinery, one
//! merged result per request.
//!
//! # Example
//!
//! ```
//! use pimecc::prelude::*;
//! use pimecc::netlist::generators;
//!
//! # fn main() -> Result<(), ClusterError> {
//! // A 6x6-bit multiplier: too many gates for one 30-cell line.
//! let nor = generators::mul(6).to_nor();
//! let mut cluster = PimClusterBuilder::new(2, 30, 3).build()?;
//! let program = cluster.compile_partitioned(&nor)?;
//! assert!(program.num_parts() > 1);
//!
//! // 63 * 63 = 3969, delivered like any other submission.
//! let ticket = cluster.submit_partitioned(&program, vec![true; 12])?;
//! let outcome = cluster.flush()?;
//! let out = outcome.outputs_for(ticket).unwrap();
//! let got: u32 = out.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
//! assert_eq!(got, 3969);
//! # Ok(())
//! # }
//! ```

use std::hash::{Hash, Hasher};
use std::ops::Range;

use pimecc_netlist::dot::write_partition_dot;
use pimecc_netlist::partition::{partition_nor, NetlistPartition};
use pimecc_netlist::{NorNetlist, NorSource};
use pimecc_simpler::MapError;

use crate::device::{netlist_fingerprint, CompiledProgram, ProgramCache};

/// Salt separating partitioned-program fingerprints from the plain and
/// packed netlist-fingerprint domains.
const PARTITION_KEY_SALT: u64 = 0x50AB_5EC7_0A27_711E;

/// Where one value consumed (or produced) by a partitioned program comes
/// from: the host's original input vector, or an output slot of an earlier
/// part — a cut signal the scheduler reads back and re-loads between
/// waves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteSource {
    /// Bit `.0` of the request's original input vector.
    Host(usize),
    /// Output `output` of sub-program `part` (an index into
    /// [`PartitionedProgram::parts`]).
    Part {
        /// Producing part index; always from a strictly lower level.
        part: usize,
        /// Output position within the producing part's readback.
        output: usize,
    },
}

/// One line-sized slice of a [`PartitionedProgram`]: a SIMPLER-compiled
/// sub-program plus the routes feeding its inputs.
#[derive(Debug, Clone)]
pub struct SubProgram {
    program: CompiledProgram,
    level: usize,
    inputs: Vec<RouteSource>,
}

impl SubProgram {
    /// The compiled sub-program (dense-remapped, fits one line).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Dependency level: the wave index (within the request) this part
    /// runs in; all routed inputs come from strictly lower levels.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Where each of the sub-program's inputs comes from, in input order.
    pub fn inputs(&self) -> &[RouteSource] {
        &self.inputs
    }
}

/// An oversized NOR netlist compiled as a DAG of line-sized sub-programs
/// with a host-side routing table — the partition-and-route analogue of
/// [`CompiledProgram`].
///
/// Produced by
/// [`PimCluster::compile_partitioned`](crate::cluster::PimCluster::compile_partitioned)
/// /
/// [`ClusterHandle::compile_partitioned`](crate::cluster::ClusterHandle::compile_partitioned)
/// and shared behind an [`Arc`](std::sync::Arc); submit requests against
/// it with the
/// matching `submit_partitioned`. The scheduler executes the parts level
/// by level, reading cut signals back after each wave and re-loading them
/// into the dependent parts' input cells.
#[derive(Debug)]
pub struct PartitionedProgram {
    partition: NetlistPartition,
    parts: Vec<SubProgram>,
    outputs: Vec<RouteSource>,
    num_inputs: usize,
    max_row_size: usize,
    fingerprint: u64,
    gate_budget: usize,
}

impl PartitionedProgram {
    /// The sub-programs, sorted by level.
    pub fn parts(&self) -> &[SubProgram] {
        &self.parts
    }

    /// Part-index range of each dependency level; levels execute in
    /// order, one wave per level per flush.
    pub fn levels(&self) -> &[Range<usize>] {
        self.partition.levels()
    }

    /// Number of sub-programs.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Number of dependency levels — the sequential waves one request
    /// needs.
    pub fn num_levels(&self) -> usize {
        self.partition.num_levels()
    }

    /// Number of primary inputs each request must supply.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs each request receives.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Where each primary output comes from, in output order.
    pub fn outputs(&self) -> &[RouteSource] {
        &self.outputs
    }

    /// Total cut signals routed host-side per request (each is one
    /// readback bit plus one re-loaded input bit).
    pub fn cut_signals(&self) -> usize {
        self.partition.cut_size()
    }

    /// The widest row any sub-program occupies — must fit the executing
    /// cluster's shard rows.
    pub fn max_row_size(&self) -> usize {
        self.max_row_size
    }

    /// The gate budget per part the compiler settled on.
    pub fn gate_budget(&self) -> usize {
        self.gate_budget
    }

    /// Structural identity: one value per (netlist, row width) pair, in a
    /// domain separate from plain and packed program fingerprints. The
    /// flush scheduler groups same-fingerprint requests into shared
    /// waves.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The underlying netlist partition (part DAG, cut routing, reference
    /// [`eval`](NetlistPartition::eval)).
    pub fn partition(&self) -> &NetlistPartition {
        &self.partition
    }

    /// Renders the part DAG as a Graphviz digraph (see
    /// [`write_partition_dot`]).
    pub fn to_dot(&self, name: &str) -> String {
        write_partition_dot(&self.partition, name)
    }
}

/// Maps `source` (in the partition's global coordinates) to a route.
fn route_of(partition: &NetlistPartition, source: NorSource) -> RouteSource {
    match source {
        NorSource::Input(i) => RouteSource::Host(i),
        NorSource::Gate(g) => {
            let part = partition.part_of(g);
            let output = partition.parts()[part]
                .exports()
                .binary_search(&g)
                .expect("producer exports every cut gate");
            RouteSource::Part { part, output }
        }
    }
}

/// Partitions `netlist` and compiles every part for a `row_size`-cell
/// row, shrinking the per-part gate budget until each part's dense remap
/// fits.
///
/// # Errors
///
/// The last [`MapError`] when even single-gate parts cannot be mapped
/// (e.g. a row too narrow for a part's input count).
pub(crate) fn compile_partitioned(
    cache: &mut ProgramCache,
    netlist: &NorNetlist,
    row_size: usize,
) -> Result<PartitionedProgram, MapError> {
    let mut budget = row_size.max(1);
    loop {
        let partition = partition_nor(netlist, budget).expect("positive budget always partitions");
        match compile_parts(cache, &partition, row_size) {
            Ok(parts) => {
                let outputs = partition
                    .outputs()
                    .iter()
                    .map(|&s| route_of(&partition, s))
                    .collect();
                let max_row_size = parts
                    .iter()
                    .map(|p: &SubProgram| p.program.program().row_size)
                    .max()
                    .unwrap_or(0);
                let mut h = std::collections::hash_map::DefaultHasher::new();
                netlist_fingerprint(netlist).hash(&mut h);
                row_size.hash(&mut h);
                h.write_u64(PARTITION_KEY_SALT);
                return Ok(PartitionedProgram {
                    num_inputs: partition.num_inputs(),
                    outputs,
                    parts,
                    max_row_size,
                    fingerprint: h.finish(),
                    gate_budget: budget,
                    partition,
                });
            }
            Err(e) if budget > 1 => {
                // A part overflowed its line: re-cut with a smaller
                // budget (successful part compiles stay cached).
                budget = (budget * 3 / 4).max(1);
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

fn compile_parts(
    cache: &mut ProgramCache,
    partition: &NetlistPartition,
    row_size: usize,
) -> Result<Vec<SubProgram>, MapError> {
    partition
        .parts()
        .iter()
        .map(|sub| {
            let program = cache.compile_packed(sub.netlist(), row_size)?;
            let inputs = sub
                .inputs()
                .iter()
                .map(|&s| route_of(partition, s))
                .collect();
            Ok(SubProgram {
                program,
                level: sub.level(),
                inputs,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimecc_netlist::generators;

    fn compile(netlist: &NorNetlist, row_size: usize) -> PartitionedProgram {
        let mut cache = ProgramCache::default();
        compile_partitioned(&mut cache, netlist, row_size).unwrap()
    }

    #[test]
    fn every_part_fits_the_line() {
        let nor = generators::mul(8).to_nor();
        let p = compile(&nor, 30);
        assert!(p.num_parts() > 1);
        assert!(p.max_row_size() <= 30);
        for part in p.parts() {
            assert!(part.program().program().row_size <= 30);
        }
    }

    #[test]
    fn routes_are_consistent_with_levels() {
        let nor = generators::mul(6).to_nor();
        let p = compile(&nor, 30);
        for (pi, part) in p.parts().iter().enumerate() {
            assert_eq!(part.inputs().len(), part.program().num_inputs());
            for route in part.inputs() {
                if let RouteSource::Part { part: src, output } = *route {
                    assert!(src < pi, "routes flow forward");
                    assert!(p.parts()[src].level() < part.level());
                    assert!(output < p.parts()[src].program().num_outputs());
                }
            }
        }
        for route in p.outputs() {
            if let RouteSource::Part { part: src, output } = *route {
                assert!(output < p.parts()[src].program().num_outputs());
            }
        }
    }

    #[test]
    fn fingerprint_depends_on_netlist_and_row_size() {
        let a = generators::mul(6).to_nor();
        let b = generators::mul(7).to_nor();
        let mut cache = ProgramCache::default();
        let pa = compile_partitioned(&mut cache, &a, 30).unwrap();
        let pa2 = compile_partitioned(&mut cache, &a, 30).unwrap();
        let pa_wide = compile_partitioned(&mut cache, &a, 40).unwrap();
        let pb = compile_partitioned(&mut cache, &b, 30).unwrap();
        assert_eq!(pa.fingerprint(), pa2.fingerprint());
        assert_ne!(pa.fingerprint(), pa_wide.fingerprint());
        assert_ne!(pa.fingerprint(), pb.fingerprint());
    }

    #[test]
    fn single_part_when_everything_fits() {
        let mut b = pimecc_netlist::NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.nor(x, y);
        b.output(g);
        let nor = b.finish().to_nor();
        let p = compile(&nor, 30);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.num_levels(), 1);
        assert_eq!(p.cut_signals(), 0);
    }

    #[test]
    fn dot_export_names_the_graph() {
        let nor = generators::mul(6).to_nor();
        let p = compile(&nor, 30);
        let text = p.to_dot("mul6");
        assert!(text.starts_with("digraph mul6 {"));
        assert!(text.contains("doublecircle"));
    }
}
