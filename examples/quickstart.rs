//! Quickstart: build a protected memory, compute with MAGIC, survive a
//! soft error.
//!
//! Run with: `cargo run --example quickstart`

use pimecc::core::{BlockGeometry, ProtectedMemory};
use pimecc::xbar::{BitGrid, LineSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small crossbar: 45x45 memristors in 15x15 ECC blocks (the paper
    // uses n = 1020; everything here scales).
    let geom = BlockGeometry::new(45, 15)?;
    let mut pm = ProtectedMemory::new(geom)?;
    println!(
        "protected memory: {}x{} MEM, {} blocks, m = {}",
        geom.n(),
        geom.n(),
        geom.block_count(),
        geom.m()
    );

    // Load data: columns 0 and 1 hold operand bits for every row. The
    // load path computes all check-bits, like ECC-on-write in a DRAM.
    let mut data = BitGrid::new(geom.n(), geom.n());
    for r in 0..geom.n() {
        data.set(r, 0, r % 3 == 0);
        data.set(r, 1, r % 5 == 0);
    }
    pm.load_grid(&data);
    println!("loaded operands; ECC consistent = {}", pm.verify_consistency().is_ok());

    // Compute NOR(col0, col1) -> col2 across ALL rows in two cycles; the
    // machine updates the diagonal check-bits automatically.
    pm.exec_init_rows(&[2], &LineSet::All)?;
    pm.exec_nor_rows(&[0, 1], 2, &LineSet::All)?;
    println!(
        "after row-parallel NOR: {} critical ops, {} XOR3 programs, consistent = {}",
        pm.stats().critical_ops,
        pm.stats().pc_xor3_ops,
        pm.verify_consistency().is_ok()
    );

    // A soft error strikes the result column...
    let victim = (7, 2);
    let good = pm.bit(victim.0, victim.1);
    pm.inject_fault(victim.0, victim.1);
    println!(
        "injected soft error at {victim:?}: {} -> {}",
        good,
        pm.bit(victim.0, victim.1)
    );

    // ...and the periodic check finds and repairs it.
    let report = pm.check_all()?;
    println!(
        "periodic check: {} blocks checked, {} corrected, {} uncorrectable, value restored = {}",
        report.checked,
        report.corrected,
        report.uncorrectable,
        pm.bit(victim.0, victim.1) == good
    );
    Ok(())
}
