//! Quickstart: build a device, compile a function once, serve a batch of
//! requests in one crossbar pass, survive a soft error.
//!
//! Run with: `cargo run --example quickstart`

use pimecc::device::{PimDevice, PimDeviceBuilder};
use pimecc::netlist::NetlistBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A full adder: sum and carry of three input bits.
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(3);
    let s1 = b.xor(ins[0], ins[1]);
    let sum = b.xor(s1, ins[2]);
    let carry = b.maj(ins[0], ins[1], ins[2]);
    b.output(sum);
    b.output(carry);
    let netlist = b.finish();

    // A small device: 45x45 memristors in 15x15 ECC blocks (the paper uses
    // n = 1020; everything here scales).
    let mut device = PimDevice::new(45, 15)?;
    println!(
        "device: {n}x{n} MEM, {} blocks, m = {}",
        device.geometry().block_count(),
        device.geometry().m(),
        n = device.capacity(),
    );

    // SIMPLER maps the function once; the result is cached on the device.
    let program = device.compile(&netlist.to_nor())?;
    println!(
        "compiled: {} steps, {} gate cycles, footprint {} cells",
        program.cycles(),
        program.gate_cycles(),
        program.footprint()
    );

    // All eight input combinations ride one batch: each program step
    // executes once, row-parallel, and the diagonal ECC tracks every write.
    let batch: Vec<Vec<bool>> = (0..8u32)
        .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
        .collect();
    let outcome = device.run_batch(&program, &batch)?;
    for (req, out) in batch.iter().zip(&outcome.outputs) {
        assert_eq!(out, &netlist.eval(req));
    }
    println!(
        "batch of {}: {} MEM cycles ({:.1} per request), {:.2} gate-evals/cycle, consistent = {}",
        outcome.requests(),
        outcome.stats.mem_cycles,
        outcome.mem_cycles_per_request(),
        outcome.gate_evals_per_mem_cycle(),
        device.memory().verify_consistency().is_ok(),
    );

    // Soft errors between load and execution are repaired by the paper's
    // pre-execution check — here injected through the device's fault hook.
    let mut faulty = PimDeviceBuilder::new(45, 15)
        .on_batch_loaded(|pm| {
            pm.inject_fault(3, 1);
        })
        .build()?;
    let program = faulty.compile(&netlist.to_nor())?;
    let outcome = faulty.run_batch(&program, &batch)?;
    println!(
        "with an injected fault: {} corrected by the input check, outputs still exact = {}",
        outcome.input_check.corrected,
        batch
            .iter()
            .zip(&outcome.outputs)
            .all(|(req, out)| out == &netlist.eval(req)),
    );
    Ok(())
}
