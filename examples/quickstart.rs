//! Quickstart: compile a function once, submit mixed requests to a
//! sharded cluster, flush one wave, survive a soft error.
//!
//! Run with: `cargo run --example quickstart`

use pimecc::netlist::NetlistBuilder;
use pimecc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A full adder: sum and carry of three input bits.
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(3);
    let s1 = b.xor(ins[0], ins[1]);
    let sum = b.xor(s1, ins[2]);
    let carry = b.maj(ins[0], ins[1], ins[2]);
    b.output(sum);
    b.output(carry);
    let netlist = b.finish();

    // Two shards of 45x45 memristors in 15x15 ECC blocks (the paper uses
    // n = 1020; everything here scales). SIMPLER maps the function once;
    // the handle is shared by every shard.
    let mut cluster = PimClusterBuilder::new(2, 45, 15).build()?;
    println!(
        "cluster: {} shards of {n}x{n} MEM, {} blocks each, m = {}",
        cluster.shards(),
        cluster.shard(0).geometry().block_count(),
        cluster.shard(0).geometry().m(),
        n = cluster.shard_capacity(),
    );
    let program = cluster.compile(&netlist.to_nor())?;
    println!(
        "compiled: {} steps, {} gate cycles, footprint {} cells",
        program.cycles(),
        program.gate_cycles(),
        program.footprint()
    );

    // Submission is queue-fed: tickets come back immediately, nothing
    // executes until the flush packs the queue into row batches.
    let tickets: Vec<Ticket> = (0..8u32)
        .map(|v| cluster.submit(&program, (0..3).map(|i| v >> i & 1 != 0).collect()))
        .collect::<Result<_, _>>()?;
    let outcome = cluster.flush()?;
    for (v, ticket) in tickets.iter().enumerate() {
        let inputs: Vec<bool> = (0..3).map(|i| v as u32 >> i & 1 != 0).collect();
        assert_eq!(
            outcome.outputs_for(*ticket),
            Some(netlist.eval(&inputs).as_slice())
        );
    }
    println!(
        "flush of {}: {} wave(s), {} wall MEM cycles ({:.1} per request), {:.2} gate-evals/cycle",
        outcome.requests(),
        outcome.waves,
        outcome.wall_mem_cycles,
        outcome.mem_cycles_per_request(),
        outcome.gate_evals_per_mem_cycle(),
    );

    // A single crossbar without the queue is the device API underneath.
    let mut device = PimDevice::new(45, 15)?;
    let compiled = device.adopt_compiled(&program);
    let batch: Vec<Vec<bool>> = (0..8u32)
        .map(|v| (0..3).map(|i| v >> i & 1 != 0).collect())
        .collect();
    let one_pass = device.run_batch(&compiled, &batch)?;
    println!(
        "one device, one pass: {} MEM cycles, consistent = {}",
        one_pass.stats.mem_cycles,
        device.memory().verify_consistency().is_ok(),
    );

    // Soft errors between load and execution are repaired by the paper's
    // pre-execution check — here injected through the device's fault hook.
    let mut faulty = PimDeviceBuilder::new(45, 15)
        .on_batch_loaded(|pm| {
            pm.inject_fault(3, 1);
        })
        .build()?;
    let program = faulty.compile(&netlist.to_nor())?;
    let outcome = faulty.run_batch(&program, &batch)?;
    println!(
        "with an injected fault: {} corrected by the input check, outputs still exact = {}",
        outcome.input_check.corrected,
        batch
            .iter()
            .zip(&outcome.outputs)
            .all(|(req, out)| out == netlist.eval(req)),
    );
    Ok(())
}
