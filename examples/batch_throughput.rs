//! Batch throughput: the ~k× cycle amortization of `PimDevice::run_batch`
//! over a serial one-request-at-a-time flow.
//!
//! Run with: `cargo run --release --example batch_throughput`

use pimecc::netlist::generators::Benchmark;
use pimecc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = Benchmark::Int2float.build();
    let nor = circuit.netlist.to_nor();
    let n = 255;
    let m = 5;

    let mut device = PimDevice::new(n, m)?;
    let program = device.compile(&nor)?;
    println!(
        "{}: {} inputs -> {} outputs, {} steps ({} gate cycles, {} critical) on a {n}x{n}/{m} device\n",
        circuit.name,
        program.num_inputs(),
        program.num_outputs(),
        program.cycles(),
        program.gate_cycles(),
        program.critical_count(),
    );

    // Deterministic request stream: the 11-bit integers 0, 37, 74, ...
    let request = |i: usize| -> Vec<bool> {
        let x = (i * 37) as u32 & 0x7FF;
        (0..11).map(|b| x >> b & 1 != 0).collect()
    };

    println!(
        "{:>6} {:>12} {:>14} {:>18} {:>10}",
        "batch", "MEM cycles", "cycles/request", "gate-evals/cycle", "speedup"
    );
    let mut single_cycles = None;
    for k in [1usize, 8, 64, n] {
        let requests: Vec<Vec<bool>> = (0..k).map(request).collect();
        let mut device = PimDevice::new(n, m)?;
        let program = device.compile(&nor)?;
        let outcome = device.run_batch(&program, &requests)?;
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(outcome.outputs[i], (circuit.reference)(req), "request {i}");
        }
        let single = *single_cycles.get_or_insert(outcome.stats.mem_cycles);
        println!(
            "{k:>6} {:>12} {:>14.1} {:>18.2} {:>9.1}x",
            outcome.stats.mem_cycles,
            outcome.mem_cycles_per_request(),
            outcome.gate_evals_per_mem_cycle(),
            single as f64 * k as f64 / outcome.stats.mem_cycles as f64,
        );
    }

    // The serial baseline: the same 64 requests as 64 batches of one —
    // every pass pays the full program latency.
    let mut device = PimDevice::new(n, m)?;
    let program = device.compile(&nor)?;
    let before = device.stats().mem_cycles;
    for i in 0..64 {
        let out = device.run_batch(&program, std::slice::from_ref(&request(i)))?;
        assert_eq!(out.outputs[0], (circuit.reference)(&request(i)));
    }
    let serial = device.stats().mem_cycles - before;
    println!(
        "\nserial flow, 64 batches of one: {serial} MEM cycles ({:.1} per request)",
        serial as f64 / 64.0
    );
    Ok(())
}
