//! SIMD workload: map a 128-bit adder onto one crossbar row with SIMPLER,
//! then exploit MAGIC row-parallelism to execute it across *many rows at
//! once* — the high-throughput mode whose ECC the paper targets — and
//! compare the latency with and without the ECC mechanism.
//!
//! Run with: `cargo run --release --example simd_adder`

use pimecc::netlist::generators::{from_bits, to_bits, Benchmark};
use pimecc::simpler::{map_auto, schedule_with_ecc, EccConfig, Step};
use pimecc::xbar::{Crossbar, LineSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate and map the adder.
    let circuit = Benchmark::Adder.build();
    let nor = circuit.netlist.to_nor();
    let (program, row_size) = map_auto(&nor, 1020)?;
    println!(
        "adder: {} NOR gates mapped into a {}-cell row, {} cycles ({} gate + {} init), peak live {}",
        nor.num_gates(),
        row_size,
        program.cycles(),
        program.gate_cycles(),
        program.init_cycles(),
        program.peak_live
    );

    // 2. Execute the SAME program across 64 crossbar rows simultaneously —
    //    every step is issued once with LineSet::All, so the cycle count
    //    is identical to the single-row case: 64 additions for the price
    //    of one.
    let lanes = 64usize;
    let mut xb = Crossbar::new(lanes, row_size);
    let mut expected = Vec::new();
    for lane in 0..lanes {
        let x = 0x0123_4567_89AB_CDEF_u128.wrapping_mul(lane as u128 + 1);
        let y = 0xFEDC_BA98_7654_3210_u128.wrapping_add(lane as u128);
        expected.push(x.wrapping_add(y));
        let mut bits = to_bits(x, 128);
        bits.extend(to_bits(y, 128));
        for (c, &bit) in bits.iter().enumerate() {
            xb.write_bit(lane, c, bit);
        }
    }
    for step in &program.steps {
        match step {
            Step::Init { cells } => xb.exec_init_rows(cells, &LineSet::All)?,
            Step::Gate { inputs, output, .. } => {
                xb.exec_nor_rows(inputs, *output, &LineSet::All)?
            }
        }
    }
    let mut correct = 0;
    for lane in 0..lanes {
        let sum_bits: Vec<bool> = program.output_cells[..128]
            .iter()
            .map(|&c| xb.bit(lane, c))
            .collect();
        if from_bits(&sum_bits) == expected[lane] {
            correct += 1;
        }
    }
    println!(
        "SIMD execution: {lanes} 128-bit additions in {} cycles ({} correct), {:.1} cycles/add",
        xb.stats().cycles,
        correct,
        xb.stats().cycles as f64 / lanes as f64
    );

    // 3. The price of reliability: the same program scheduled with the
    //    paper's ECC mechanism.
    let report = schedule_with_ecc(&program, &EccConfig::default());
    println!(
        "with diagonal ECC: {} -> {} cycles (+{:.1}%), {} critical ops, {} MEM stalls",
        report.baseline_cycles,
        report.total_cycles,
        report.overhead_pct(),
        report.critical_ops,
        report.mem_stall_cycles
    );
    Ok(())
}
