//! Host-side throughput of the async cluster service versus the
//! synchronous flush loop, on the PR-3 mixed workload (1020 adder8 + 510
//! int2float on one 255×255/5 shard, 2D-packed).
//!
//! The synchronous baseline models a latency-conscious caller: it flushes
//! every `FLUSH_EVERY` submissions, so no request waits behind the whole
//! stream — and the caller's thread blocks through every one of those
//! flushes. The service runs the same traffic through
//! `PimClusterBuilder::spawn()`: submission never blocks on execution,
//! and the worker batches in the background under a max-latency deadline
//! (`flush_after`) — while it executes one flush, the next submissions
//! pile up into a bigger, better-amortized batch. Same model work, same
//! outputs, fewer and larger waves, and the producer overlaps with
//! execution.
//!
//! Both modes verify every output against the software reference and
//! against each other (ticket ids are dense submission order in both).
//! The run fails if the service is slower than the sync loop (the ≥1×
//! CI floor on hosts with ≥2 hardware threads, where the producer can
//! overlap the worker; single-core hosts only owe near-parity, since
//! producer and worker serialize there). The committed reference run
//! records the full figure.
//!
//! Run with: `cargo run --release --example async_throughput`
//!
//! Writes the comparison to `BENCH_async.json`.

use pimecc::netlist::generators::{ripple_adder, Benchmark};
use pimecc::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const N: usize = 255;
const M: usize = 5;
const ADDER_REQUESTS: usize = 4 * N; // 1020
const I2F_REQUESTS: usize = 2 * N; // 510
const REQUESTS: usize = ADDER_REQUESTS + I2F_REQUESTS;

/// The sync caller's latency budget, expressed as a flush interval.
const FLUSH_EVERY: usize = 64;
/// The service's max-latency deadline.
const FLUSH_AFTER: Duration = Duration::from_micros(500);

/// Timed repetitions per mode; the fastest run is recorded.
const TIMED_REPS: usize = 3;

fn i2f_request(i: usize) -> Vec<bool> {
    let x = (i * 37) as u32 & 0x7FF;
    (0..11).map(|b| x >> b & 1 != 0).collect()
}

fn add_request(i: usize) -> Vec<bool> {
    let x = (i * 73) as u32 & 0xFFFF;
    (0..16).map(|b| x >> b & 1 != 0).collect()
}

/// The interleaved submission stream: `(is_i2f, request index)` per
/// submission, identical for both modes.
fn stream() -> Vec<(bool, usize)> {
    let mut order = Vec::with_capacity(REQUESTS);
    for i in 0..ADDER_REQUESTS.max(I2F_REQUESTS) {
        if i < ADDER_REQUESTS {
            order.push((false, i));
        }
        if i < I2F_REQUESTS {
            order.push((true, i));
        }
    }
    order
}

struct RunReport {
    label: String,
    seconds: f64,
    requests_per_sec: f64,
    flushes: usize,
    waves: usize,
    /// Outputs by submission index (= ticket id in both modes).
    outputs: HashMap<u64, Vec<bool>>,
    mean_queue_latency_us: f64,
    mean_execute_latency_us: f64,
}

fn print_report(r: &RunReport) {
    println!(
        "{:>14}: {:>9.1} req/s  ({:.3} s, {} flushes, {} waves, \
         mean queue {:.0} us, mean execute {:.0} us)",
        r.label,
        r.requests_per_sec,
        r.seconds,
        r.flushes,
        r.waves,
        r.mean_queue_latency_us,
        r.mean_execute_latency_us,
    );
}

fn latency_means(results: &[TicketResult]) -> (f64, f64) {
    let n = results.len().max(1) as f64;
    let queue: f64 = results
        .iter()
        .map(|r| r.queue_latency.as_secs_f64() * 1e6)
        .sum();
    let execute: f64 = results
        .iter()
        .map(|r| r.execute_latency.as_secs_f64() * 1e6)
        .sum();
    (queue / n, execute / n)
}

/// The synchronous flush loop: submit, and block on a flush every
/// `FLUSH_EVERY` submissions.
fn run_sync() -> Result<RunReport, Box<dyn std::error::Error>> {
    let i2f_nor = Benchmark::Int2float.build().netlist.to_nor();
    let adder_nor = ripple_adder(8).to_nor();
    let order = stream();

    let mut best: Option<RunReport> = None;
    for _ in 0..TIMED_REPS {
        let mut cluster = PimClusterBuilder::new(1, N, M).build()?;
        let pi = cluster.compile_packed(&i2f_nor)?;
        let pa = cluster.compile_packed(&adder_nor)?;
        let started = Instant::now();
        let mut outputs: HashMap<u64, Vec<bool>> = HashMap::with_capacity(REQUESTS);
        let mut results: Vec<TicketResult> = Vec::with_capacity(REQUESTS);
        let mut flushes = 0;
        let mut waves = 0;
        let mut since_flush = 0;
        for &(is_i2f, i) in &order {
            let program = if is_i2f { &pi } else { &pa };
            let inputs = if is_i2f {
                i2f_request(i)
            } else {
                add_request(i)
            };
            let _ticket = cluster.submit(program, inputs)?;
            since_flush += 1;
            if since_flush == FLUSH_EVERY {
                let outcome = cluster.flush()?;
                flushes += 1;
                waves += outcome.waves;
                for r in outcome.results {
                    outputs.insert(r.ticket.id(), r.outputs.to_vec());
                    results.push(r);
                }
                since_flush = 0;
            }
        }
        let outcome = cluster.flush()?;
        flushes += 1;
        waves += outcome.waves;
        for r in outcome.results {
            outputs.insert(r.ticket.id(), r.outputs.to_vec());
            results.push(r);
        }
        let seconds = started.elapsed().as_secs_f64();
        let (queue_us, execute_us) = latency_means(&results);
        let report = RunReport {
            label: "sync loop".into(),
            seconds,
            requests_per_sec: REQUESTS as f64 / seconds,
            flushes,
            waves,
            outputs,
            mean_queue_latency_us: queue_us,
            mean_execute_latency_us: execute_us,
        };
        if best.as_ref().is_none_or(|b| report.seconds < b.seconds) {
            best = Some(report);
        }
    }
    Ok(best.expect("at least one rep"))
}

/// The spawned service under deadline flushing: submission never blocks
/// on execution, the worker batches in the background.
fn run_service() -> Result<RunReport, Box<dyn std::error::Error>> {
    let i2f_nor = Benchmark::Int2float.build().netlist.to_nor();
    let adder_nor = ripple_adder(8).to_nor();
    let order = stream();

    let mut best: Option<RunReport> = None;
    for _ in 0..TIMED_REPS {
        let handle = PimClusterBuilder::new(1, N, M)
            .flush_after(FLUSH_AFTER)
            .spawn()?;
        let pi = handle.compile_packed(&i2f_nor)?;
        let pa = handle.compile_packed(&adder_nor)?;
        let started = Instant::now();
        for &(is_i2f, i) in &order {
            let program = if is_i2f { &pi } else { &pa };
            let inputs = if is_i2f {
                i2f_request(i)
            } else {
                add_request(i)
            };
            let _ticket = handle.submit(program, inputs)?;
        }
        // Collect everything; drain() waits for the worker to finish.
        let outcome = handle.drain()?;
        let seconds = started.elapsed().as_secs_f64();
        handle.close()?;
        assert_eq!(outcome.requests(), REQUESTS, "every ticket served");
        let (queue_us, execute_us) = latency_means(&outcome.results);
        let report = RunReport {
            label: "service".into(),
            seconds,
            requests_per_sec: REQUESTS as f64 / seconds,
            flushes: 0, // the worker decides; waves tell the batching story
            waves: outcome.waves,
            outputs: outcome
                .results
                .into_iter()
                .map(|r| (r.ticket.id(), r.outputs.to_vec()))
                .collect(),
            mean_queue_latency_us: queue_us,
            mean_execute_latency_us: execute_us,
        };
        if best.as_ref().is_none_or(|b| report.seconds < b.seconds) {
            best = Some(report);
        }
    }
    Ok(best.expect("at least one rep"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "async throughput: {ADDER_REQUESTS} x adder8 + {I2F_REQUESTS} x int2float, \
         one {N}x{N}/{M} shard\n\
         sync loop flushes every {FLUSH_EVERY} submissions; \
         the service flushes on a {FLUSH_AFTER:?} deadline\n"
    );
    let sync = run_sync()?;
    print_report(&sync);
    let service = run_service()?;
    print_report(&service);

    // Correctness: both modes verified against the references, and
    // against each other (ticket ids are dense submission order in both).
    let i2f = Benchmark::Int2float.build();
    let adder = ripple_adder(8);
    for (ticket, &(is_i2f, i)) in stream().iter().enumerate() {
        let want = if is_i2f {
            (i2f.reference)(&i2f_request(i))
        } else {
            adder.eval(&add_request(i))
        };
        let ticket = ticket as u64;
        let s = sync.outputs.get(&ticket).expect("sync served");
        let a = service.outputs.get(&ticket).expect("service served");
        assert_eq!(s, &want, "sync ticket#{ticket}");
        assert_eq!(a, &want, "service ticket#{ticket}");
    }

    let speedup = sync.seconds / service.seconds;
    println!("\nservice speedup over the sync flush loop: {speedup:.2}x");
    // The service's win is overlap: the producer keeps submitting while
    // the worker executes in the background. That premise needs a second
    // hardware thread — on a single-core host producer and worker
    // serialize, so the per-request channel hop is pure overhead and the
    // wave savings are all that's left. The strict ≥1× floor applies
    // where the design premise holds; single-core hosts only owe rough
    // parity (the 0.70 floor absorbs the box's run-to-run timing noise
    // while still catching a real regression).
    let host_width = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = if host_width >= 2 { 1.0 } else { 0.70 };
    assert!(
        speedup >= floor,
        "the service must not be slower than the sync flush loop \
         (floor {floor}x on a {host_width}-thread host), got {speedup:.2}x"
    );
    assert!(
        service.waves <= sync.waves,
        "background batching must not need more waves ({} vs {})",
        service.waves,
        sync.waves
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"async_throughput\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}, \"shards\": 1}},\n",
            "  \"traffic\": {{\"adder8\": {}, \"int2float\": {}}},\n",
            "  \"sync_flush_every\": {},\n",
            "  \"service_flush_after_us\": {},\n",
            "  \"speedup_wall_clock\": {:.3},\n",
            "  \"runs\": [\n",
            "    {{\"config\": \"sync loop\", \"seconds\": {:.4}, \"requests_per_sec\": {:.1}, ",
            "\"flushes\": {}, \"waves\": {}, \"mean_queue_latency_us\": {:.1}, ",
            "\"mean_execute_latency_us\": {:.1}}},\n",
            "    {{\"config\": \"service\", \"seconds\": {:.4}, \"requests_per_sec\": {:.1}, ",
            "\"waves\": {}, \"mean_queue_latency_us\": {:.1}, ",
            "\"mean_execute_latency_us\": {:.1}}}\n",
            "  ]\n}}\n"
        ),
        N,
        M,
        ADDER_REQUESTS,
        I2F_REQUESTS,
        FLUSH_EVERY,
        FLUSH_AFTER.as_micros(),
        speedup,
        sync.seconds,
        sync.requests_per_sec,
        sync.flushes,
        sync.waves,
        sync.mean_queue_latency_us,
        sync.mean_execute_latency_us,
        service.seconds,
        service.requests_per_sec,
        service.waves,
        service.mean_queue_latency_us,
        service.mean_execute_latency_us,
    );
    std::fs::write("BENCH_async.json", &json)?;
    println!("wrote BENCH_async.json");
    Ok(())
}
