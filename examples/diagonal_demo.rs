//! Pedagogical demo of the paper's Figure 2: prints the leading/counter
//! diagonal structure of a block, the shift pattern the barrel shifters
//! implement, and walks one soft error through detection and unique
//! localization.
//!
//! Run with: `cargo run --example diagonal_demo`

use pimecc::core::{BlockGeometry, DiagonalCode, ErrorLocation};
use pimecc::xbar::BitGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 5;
    let geom = BlockGeometry::new(m, m)?;

    println!("Fig. 2(b)-style view of one {m}x{m} block (m odd!)\n");
    println!("leading diagonal index (r + c) mod {m}:");
    for r in 0..m {
        let row: Vec<String> = (0..m).map(|c| geom.leading(r, c).to_string()).collect();
        println!("    {}", row.join(" "));
    }
    println!("\ncounter diagonal index (r - c) mod {m}:");
    for r in 0..m {
        let row: Vec<String> = (0..m).map(|c| geom.counter(r, c).to_string()).collect();
        println!("    {}", row.join(" "));
    }

    println!("\nFig. 2(c)-style shift pattern: writing column 2 across all rows");
    println!("touches, per row, the leading diagonal (r + 2) mod {m} — every");
    println!("diagonal exactly once, which is why the update is O(1):");
    let col = 2;
    for r in 0..m {
        let (lead, counter) = geom.diagonals(r, col);
        println!("    row {r}: leading {lead}, counter {counter}");
    }

    // Now the error-correction walk-through.
    let code = DiagonalCode::new(geom);
    let mut block = BitGrid::new(m, m);
    for r in 0..m {
        for c in 0..m {
            block.set(r, c, (r * 3 + c * 5) % 7 < 3);
        }
    }
    let (lead, counter) = code.encode(&block);
    println!(
        "\ncheck-bits  leading: {:?}",
        lead.iter().map(|&b| b as u8).collect::<Vec<_>>()
    );
    println!(
        "check-bits  counter: {:?}",
        counter.iter().map(|&b| b as u8).collect::<Vec<_>>()
    );

    let victim = (3, 1);
    block.flip(victim.0, victim.1);
    println!("\nsoft error injected at {victim:?}");
    let syn = code.syndrome(&block, &lead, &counter);
    println!(
        "syndrome: leading diagonals {:?}, counter diagonals {:?}",
        syn.leading, syn.counter
    );
    match syn.decode(&geom) {
        ErrorLocation::Data {
            local_row,
            local_col,
        } => {
            println!(
                "decoded: data bit ({local_row}, {local_col}) — unique intersection of the two \
                 flagged diagonals (2 is invertible mod {m})"
            );
            assert_eq!((local_row, local_col), victim);
        }
        other => println!("decoded: {other:?}"),
    }

    let mut l = lead.clone();
    let mut k = counter.clone();
    let loc = code.correct(&mut block, &mut l, &mut k);
    println!(
        "after correction: {loc:?}; syndrome now zero = {}",
        code.syndrome(&block, &l, &k).is_zero()
    );
    Ok(())
}
