//! Long-tail traffic: 22 distinct zoo programs under a Zipf request
//! distribution on a heterogeneous pool — the workload that cratered
//! utilization when every wave carried a single fingerprint.
//!
//! Four configurations serve the *same* request stream:
//!
//! * `colocated` — the full scheduler: spread, densify, then pass-3
//!   co-location of foreign fingerprints onto claimed shards via
//!   `MultiProgramPlan` (merged input load, shared block-line checks).
//! * `fingerprint/wave` — `colocate(false)`: the pre-PR-10 scheduler,
//!   one fingerprint group per shard per wave.
//! * `row-only` — additionally `pack_limit(1)` + row axis: the PR-2
//!   floor, one request per row.
//! * `mixed 2-program` — the same pool serving the classic two-program
//!   mixed workload (adder8 + int2float) at the same request count: the
//!   utilization yardstick the long tail is held against.
//!
//! Asserts every output bit-exact against the host references, the
//! co-located outputs bit-identical to the fingerprint-per-wave serial
//! reference, >= 2x fewer waves than that baseline (>= 1.5x vs
//! row-only), and cell utilization >= 0.8x the two-program figure.
//!
//! Run with: `cargo run --release --example longtail_throughput`
//!
//! Writes the comparison to `BENCH_longtail.json`.

use pimecc::netlist::generators::{zoo, Benchmark, Circuit};
use pimecc::netlist::NorNetlist;
use pimecc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Two short shards and two taller ones: narrow programs spread over the
/// whole pool, wide ones pin to the tall shards.
const GEOMETRIES: [(usize, usize); 4] = [(120, 3), (120, 3), (240, 3), (480, 3)];
const REQUESTS: usize = 1500;
const ZIPF_S: f64 = 1.1;

/// Integer-weight Zipf CDF over `n` ranks: weight of rank k is
/// proportional to 1/(k+1)^s.
fn zipf_cdf(n: usize, s: f64) -> Vec<u64> {
    let mut acc = 0u64;
    (0..n)
        .map(|k| {
            acc += (1e9 / ((k + 1) as f64).powf(s)) as u64;
            acc
        })
        .collect()
}

/// The fixed request stream: (program rank, input bits), Zipf-ranked in
/// zoo order, seeded — every configuration serves exactly this.
fn request_stream(circuits: &[Circuit]) -> Vec<(usize, Vec<bool>)> {
    let cdf = zipf_cdf(circuits.len(), ZIPF_S);
    let total = *cdf.last().expect("non-empty zoo");
    let mut rng = StdRng::seed_from_u64(0x10_46_7A_11);
    (0..REQUESTS)
        .map(|_| {
            let x = rng.gen_range(0..total);
            let rank = cdf.partition_point(|&c| c <= x);
            let width = circuits[rank].netlist.num_inputs();
            let inputs: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
            (rank, inputs)
        })
        .collect()
}

struct RunReport {
    label: &'static str,
    waves: usize,
    wall: u64,
    requests_per_sec: f64,
    cell_utilization: f64,
    packing_density: f64,
    outputs: Vec<Vec<bool>>,
}

fn builder() -> PimClusterBuilder {
    PimClusterBuilder::new(GEOMETRIES.len(), GEOMETRIES[0].0, GEOMETRIES[0].1)
        .shard_geometries(GEOMETRIES.to_vec())
}

fn run_longtail(
    label: &'static str,
    circuits: &[Circuit],
    nors: &[NorNetlist],
    stream: &[(usize, Vec<bool>)],
    configure: impl FnOnce(PimClusterBuilder) -> PimClusterBuilder,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut cluster = configure(builder()).build()?;
    let programs: Vec<CompiledProgram> = nors
        .iter()
        .map(|nor| cluster.compile_packed(nor))
        .collect::<Result<_, _>>()?;

    let started = Instant::now();
    let tickets: Vec<Ticket> = stream
        .iter()
        .map(|(rank, inputs)| cluster.submit(&programs[*rank], inputs.clone()))
        .collect::<Result<_, _>>()?;
    let outcome = cluster.flush()?;
    let elapsed = started.elapsed();

    assert!(outcome.failed.is_empty(), "{label}: no request may fail");
    let mut outputs = Vec::with_capacity(stream.len());
    for ((rank, inputs), ticket) in stream.iter().zip(&tickets) {
        let got = outcome.outputs_for(*ticket).expect("served");
        let want = (circuits[*rank].reference)(inputs);
        assert_eq!(got, want.as_slice(), "{label}: {}", circuits[*rank].name);
        outputs.push(got.to_vec());
    }

    let requests_per_sec = stream.len() as f64 / elapsed.as_secs_f64();
    println!(
        "{label:>16}: waves {:>3}  wall {:>7} MEM cycles  cell util {:>5.3}  \
         density {:>5.2}/line  {:>9.0} req/s",
        outcome.waves,
        outcome.wall_mem_cycles,
        outcome.cell_utilization(),
        outcome.packing_density(),
        requests_per_sec,
    );
    Ok(RunReport {
        label,
        waves: outcome.waves,
        wall: outcome.wall_mem_cycles,
        requests_per_sec,
        cell_utilization: outcome.cell_utilization(),
        packing_density: outcome.packing_density(),
        outputs,
    })
}

/// The two-program mixed yardstick on the same pool and request count.
fn run_mixed_reference() -> Result<RunReport, Box<dyn std::error::Error>> {
    let i2f = Benchmark::Int2float.build();
    let i2f_nor = i2f.netlist.to_nor();
    let adder_nl = pimecc::netlist::generators::ripple_adder(8);
    let adder_nor = adder_nl.to_nor();

    let mut cluster = builder().build()?;
    let pa = cluster.compile_packed(&adder_nor)?;
    let pi = cluster.compile_packed(&i2f_nor)?;
    let mut rng = StdRng::seed_from_u64(0x2A11);
    let started = Instant::now();
    let mut tickets = Vec::new();
    for i in 0..REQUESTS {
        if i % 3 == 2 {
            let inputs: Vec<bool> = (0..11).map(|_| rng.gen()).collect();
            tickets.push((cluster.submit(&pi, inputs.clone())?, true, inputs));
        } else {
            let inputs: Vec<bool> = (0..16).map(|_| rng.gen()).collect();
            tickets.push((cluster.submit(&pa, inputs.clone())?, false, inputs));
        }
    }
    let outcome = cluster.flush()?;
    let elapsed = started.elapsed();
    for (ticket, is_i2f, inputs) in &tickets {
        let got = outcome.outputs_for(*ticket).expect("served");
        let want = if *is_i2f {
            (i2f.reference)(inputs)
        } else {
            adder_nl.eval(inputs)
        };
        assert_eq!(got, want.as_slice(), "mixed reference: {ticket}");
    }
    let requests_per_sec = REQUESTS as f64 / elapsed.as_secs_f64();
    println!(
        "{:>16}: waves {:>3}  wall {:>7} MEM cycles  cell util {:>5.3}  \
         density {:>5.2}/line  {:>9.0} req/s",
        "mixed 2-program",
        outcome.waves,
        outcome.wall_mem_cycles,
        outcome.cell_utilization(),
        outcome.packing_density(),
        requests_per_sec,
    );
    Ok(RunReport {
        label: "mixed 2-program",
        waves: outcome.waves,
        wall: outcome.wall_mem_cycles,
        requests_per_sec,
        cell_utilization: outcome.cell_utilization(),
        packing_density: outcome.packing_density(),
        outputs: Vec::new(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuits = zoo();
    let nors: Vec<NorNetlist> = circuits.iter().map(|c| c.netlist.to_nor()).collect();
    let stream = request_stream(&circuits);
    println!(
        "long tail: {REQUESTS} Zipf(s={ZIPF_S}) requests over {} programs, pool {:?}\n",
        circuits.len(),
        GEOMETRIES,
    );

    let colocated = run_longtail("colocated", &circuits, &nors, &stream, |b| b)?;
    let serial = run_longtail("fingerprint/wave", &circuits, &nors, &stream, |b| {
        b.colocate(false)
    })?;
    let rowonly = run_longtail("row-only", &circuits, &nors, &stream, |b| {
        b.colocate(false)
            .pack_limit(1)
            .axis_policy(AxisPolicy::Rows)
    })?;
    let mixed = run_mixed_reference()?;

    assert_eq!(
        colocated.outputs, serial.outputs,
        "co-location must be bit-identical to the serial reference"
    );
    assert!(
        colocated.waves * 2 <= serial.waves,
        "co-location must merge >= 2x the fingerprint-per-wave waves: {} vs {}",
        colocated.waves,
        serial.waves
    );
    assert!(
        colocated.waves * 3 <= rowonly.waves * 2,
        "co-location must run >= 1.5x fewer waves than row-only: {} vs {}",
        colocated.waves,
        rowonly.waves
    );
    let utilization_ratio = colocated.cell_utilization / mixed.cell_utilization;
    assert!(
        utilization_ratio >= 0.8,
        "long-tail cell utilization must hold >= 0.8x the 2-program mixed \
         figure: {:.3} vs {:.3} ({utilization_ratio:.2}x)",
        colocated.cell_utilization,
        mixed.cell_utilization
    );
    println!(
        "\nco-location: {:.1}x fewer waves than fingerprint-per-wave, \
         {utilization_ratio:.2}x the 2-program mixed utilization",
        serial.waves as f64 / colocated.waves as f64,
    );

    let json_run = |r: &RunReport| {
        format!(
            concat!(
                "    {{\"config\": \"{}\", \"waves\": {}, \"wall_mem_cycles\": {}, ",
                "\"cell_utilization\": {:.4}, \"packing_density\": {:.3}, ",
                "\"requests_per_sec\": {:.0}}}"
            ),
            r.label, r.waves, r.wall, r.cell_utilization, r.packing_density, r.requests_per_sec,
        )
    };
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"longtail_throughput\",\n",
            "  \"programs\": {},\n  \"requests\": {},\n  \"zipf_s\": {},\n",
            "  \"geometries\": [{}],\n",
            "  \"waves_vs_fingerprint_per_wave\": {:.2},\n",
            "  \"cell_utilization_vs_mixed\": {:.3},\n",
            "  \"outputs_match_serial_reference\": true,\n",
            "  \"runs\": [\n{},\n{},\n{},\n{}\n  ]\n}}\n"
        ),
        circuits.len(),
        REQUESTS,
        ZIPF_S,
        GEOMETRIES
            .iter()
            .map(|(n, m)| format!("[{n}, {m}]"))
            .collect::<Vec<_>>()
            .join(", "),
        serial.waves as f64 / colocated.waves as f64,
        utilization_ratio,
        json_run(&colocated),
        json_run(&serial),
        json_run(&rowonly),
        json_run(&mixed),
    );
    std::fs::write("BENCH_longtail.json", &json)?;
    println!("wrote BENCH_longtail.json");
    Ok(())
}
