//! Two-dimensional packing: the same mixed traffic scheduled row-only
//! (PR-2 style, one request per row) versus with the 2D placement engine
//! (narrow `compile_packed` mappings co-packed at several offsets per
//! line, waves alternating between the row and column axes).
//!
//! The traffic is 1020 8-bit-adder and 510 int2float requests against one
//! 255×255 shard. Row-only, that is 6 full waves (4 + 2). The 2D planner
//! fits the same work into 2 waves: every line carries 4 adder8 requests
//! (footprint ~30 cells) or 2 int2float requests (footprint ~41), so 3 of
//! every 4 adder waves' input loads and block-line ECC checks vanish —
//! gate cycles replay per offset either way, which is why the win shows up
//! in wall cycles but not in gate-evaluation counts.
//!
//! Run with: `cargo run --release --example cluster_packing`
//!
//! Writes the comparison to `BENCH_packing.json`.

use pimecc::netlist::generators::{ripple_adder, Benchmark};
use pimecc::prelude::*;
use std::collections::HashMap;

const N: usize = 255;
const M: usize = 5;
const ADDER_REQUESTS: usize = 4 * N; // four offset columns when co-packed
const I2F_REQUESTS: usize = 2 * N;

fn i2f_request(i: usize) -> Vec<bool> {
    let x = (i * 37) as u32 & 0x7FF;
    (0..11).map(|b| x >> b & 1 != 0).collect()
}

fn add_request(i: usize) -> Vec<bool> {
    let x = (i * 73) as u32 & 0xFFFF;
    (0..16).map(|b| x >> b & 1 != 0).collect()
}

struct RunReport {
    label: &'static str,
    waves: usize,
    wall: u64,
    cycles_per_request: f64,
    cell_utilization: f64,
    line_utilization: f64,
    packing_density: f64,
    adder_max_per_line: usize,
    axes: Vec<String>,
}

fn run(
    label: &'static str,
    narrow_mappings: bool,
    two_dimensional: bool,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let i2f = Benchmark::Int2float.build();
    let i2f_nor = i2f.netlist.to_nor();
    let adder = ripple_adder(8); // 16 inputs, 9 outputs
    let adder_nor = adder.to_nor();

    let mut builder = PimClusterBuilder::new(1, N, M);
    if !two_dimensional {
        builder = builder.pack_limit(1).axis_policy(AxisPolicy::Rows);
    }
    let mut cluster = builder.build()?;
    let (pi, pa) = if narrow_mappings {
        (
            cluster.compile_packed(&i2f_nor)?,
            cluster.compile_packed(&adder_nor)?,
        )
    } else {
        (cluster.compile(&i2f_nor)?, cluster.compile(&adder_nor)?)
    };

    // Interleaved arrival, as at a shared service queue.
    let mut tickets = Vec::new();
    for i in 0..ADDER_REQUESTS.max(I2F_REQUESTS) {
        if i < ADDER_REQUESTS {
            tickets.push((cluster.submit(&pa, add_request(i))?, false, i));
        }
        if i < I2F_REQUESTS {
            tickets.push((cluster.submit(&pi, i2f_request(i))?, true, i));
        }
    }
    let outcome = cluster.flush()?;

    // Every output against the software reference.
    let mut adder_tickets = Vec::new();
    for &(ticket, is_i2f, i) in &tickets {
        let got = outcome.outputs_for(ticket).expect("served");
        let want = if is_i2f {
            (i2f.reference)(&i2f_request(i))
        } else {
            adder.eval(&add_request(i))
        };
        assert_eq!(got, want.as_slice(), "{ticket}");
        if !is_i2f {
            adder_tickets.push(ticket);
        }
    }

    // Peak adder8 co-packing density: requests sharing one line of one
    // dispatched batch.
    let mut per_line: HashMap<(usize, usize, usize), usize> = HashMap::new();
    let mut axes: Vec<String> = Vec::new();
    for r in &outcome.results {
        if r.wave >= axes.len() {
            axes.resize(r.wave + 1, String::new());
        }
        axes[r.wave] = r.axis.to_string();
        if adder_tickets.binary_search(&r.ticket).is_ok() {
            *per_line.entry((r.wave, r.shard, r.line)).or_default() += 1;
        }
    }
    let adder_max_per_line = per_line.values().copied().max().unwrap_or(0);

    println!(
        "{label:>9}: waves {:>2} ({})  wall {:>6} MEM cycles  {:>6.2} cycles/request  \
         cell util {:>5.3}  density {:>4.2}/line  adder8 max {}/line",
        outcome.waves,
        axes.join(","),
        outcome.wall_mem_cycles,
        outcome.mem_cycles_per_request(),
        outcome.cell_utilization(),
        outcome.packing_density(),
        adder_max_per_line,
    );
    Ok(RunReport {
        label,
        waves: outcome.waves,
        wall: outcome.wall_mem_cycles,
        cycles_per_request: outcome.mem_cycles_per_request(),
        cell_utilization: outcome.cell_utilization(),
        line_utilization: outcome.line_utilization(),
        packing_density: outcome.packing_density(),
        adder_max_per_line,
        axes,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "mixed traffic: {ADDER_REQUESTS} x adder8 + {I2F_REQUESTS} x int2float, \
         one {N}x{N}/{M} shard\n"
    );
    // PR-2 baseline: full-width mappings, one request per row. The second
    // config swaps in the narrow `compile_packed` mappings but keeps the
    // row-only scheduler, isolating what the 2D *planner* adds on top.
    let pr2 = run("PR-2", false, false)?;
    let narrow = run("narrow/1D", true, false)?;
    let packed = run("2D packed", true, true)?;

    let speedup = pr2.wall as f64 / packed.wall as f64;
    println!(
        "\n2D placement vs PR-2 row-only: {speedup:.2}x fewer wall MEM cycles \
         ({} -> {} waves)",
        pr2.waves, packed.waves
    );

    assert!(
        packed.adder_max_per_line >= 4,
        "the 2D planner must co-pack >= 4 adder8 requests per line: {}",
        packed.adder_max_per_line
    );
    assert!(
        packed.cell_utilization > narrow.cell_utilization,
        "cell utilization must improve over row-only placement of the same \
         programs: {:.3} vs {:.3}",
        packed.cell_utilization,
        narrow.cell_utilization
    );
    assert!(
        packed.wall < pr2.wall && packed.wall < narrow.wall,
        "wall MEM cycles must improve: {} vs {} / {}",
        packed.wall,
        pr2.wall,
        narrow.wall
    );

    let json_run = |r: &RunReport| {
        format!(
            concat!(
                "    {{\"config\": \"{}\", \"waves\": {}, \"wave_axes\": [{}], ",
                "\"wall_mem_cycles\": {}, \"mem_cycles_per_request\": {:.3}, ",
                "\"cell_utilization\": {:.4}, \"line_utilization\": {:.4}, ",
                "\"packing_density\": {:.3}, \"adder8_max_per_line\": {}}}"
            ),
            r.label,
            r.waves,
            r.axes
                .iter()
                .map(|a| format!("\"{a}\""))
                .collect::<Vec<_>>()
                .join(", "),
            r.wall,
            r.cycles_per_request,
            r.cell_utilization,
            r.line_utilization,
            r.packing_density,
            r.adder_max_per_line,
        )
    };
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"cluster_packing\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}, \"shards\": 1}},\n",
            "  \"traffic\": {{\"adder8\": {}, \"int2float\": {}}},\n",
            "  \"speedup_wall_cycles\": {:.3},\n",
            "  \"runs\": [\n{},\n{},\n{}\n  ]\n}}\n"
        ),
        N,
        M,
        ADDER_REQUESTS,
        I2F_REQUESTS,
        speedup,
        json_run(&pr2),
        json_run(&narrow),
        json_run(&packed),
    );
    std::fs::write("BENCH_packing.json", &json)?;
    println!("wrote BENCH_packing.json");
    Ok(())
}
