//! Throughput of the partition-and-route compiler on its flagship
//! workload: `mul16`, a circuit too wide for one crossbar line at the
//! default geometry, served as a DAG of line-sized sub-programs with
//! host-routed cut signals between dependency waves.
//!
//! Two front-ends run the same deterministic request stream: the
//! synchronous cluster (one flush for the whole batch) and the spawned
//! service (producer thread submits, worker executes the wave chains in
//! the background). Every output is verified against the `u128` software
//! product, and both modes must agree ticket for ticket.
//!
//! Run with: `cargo run --release --example partitioned_throughput`
//!
//! Writes the record to `BENCH_partition.json`.

use pimecc::netlist::generators::{mul16, to_bits};
use pimecc::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

const SHARDS: usize = 4;
const N: usize = 30;
const M: usize = 3;
const REQUESTS: usize = 128;

/// Timed repetitions per mode; the fastest run is recorded.
const TIMED_REPS: usize = 3;

/// Deterministic 16-bit operand pairs.
fn operands(i: usize) -> (u64, u64) {
    (
        (i as u64).wrapping_mul(37) & 0xFFFF,
        (i as u64).wrapping_mul(73).wrapping_add(11) & 0xFFFF,
    )
}

fn request(i: usize) -> Vec<bool> {
    let (x, y) = operands(i);
    let mut v = to_bits(u128::from(x), 16);
    v.extend(to_bits(u128::from(y), 16));
    v
}

fn expected(i: usize) -> Vec<bool> {
    let (x, y) = operands(i);
    to_bits(u128::from(x) * u128::from(y), 32)
}

struct RunReport {
    label: String,
    seconds: f64,
    requests_per_sec: f64,
    waves: usize,
    outputs: HashMap<u64, Vec<bool>>,
}

fn print_report(r: &RunReport, waves_per_request: f64) {
    println!(
        "{:>12}: {:>8.1} req/s  ({:.3} s, {} waves, {:.2} waves/request)",
        r.label, r.requests_per_sec, r.seconds, r.waves, waves_per_request,
    );
}

fn run_sync(nor: &pimecc::netlist::NorNetlist) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut best: Option<RunReport> = None;
    for _ in 0..TIMED_REPS {
        let mut cluster = PimClusterBuilder::new(SHARDS, N, M).build()?;
        let program = cluster.compile_partitioned(nor)?;
        let started = Instant::now();
        for i in 0..REQUESTS {
            let _ticket = cluster.submit_partitioned(&program, request(i))?;
        }
        let outcome = cluster.flush()?;
        let seconds = started.elapsed().as_secs_f64();
        assert_eq!(outcome.requests(), REQUESTS);
        let report = RunReport {
            label: "sync".into(),
            seconds,
            requests_per_sec: REQUESTS as f64 / seconds,
            waves: outcome.waves,
            outputs: outcome
                .results
                .into_iter()
                .map(|r| (r.ticket.id(), r.outputs.to_vec()))
                .collect(),
        };
        if best.as_ref().is_none_or(|b| report.seconds < b.seconds) {
            best = Some(report);
        }
    }
    Ok(best.expect("at least one rep"))
}

fn run_service(nor: &pimecc::netlist::NorNetlist) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut best: Option<RunReport> = None;
    for _ in 0..TIMED_REPS {
        let handle = PimClusterBuilder::new(SHARDS, N, M).spawn()?;
        let program = handle.compile_partitioned(nor)?;
        let started = Instant::now();
        for i in 0..REQUESTS {
            let _ticket = handle.submit_partitioned(&program, request(i))?;
        }
        let outcome = handle.drain()?;
        let seconds = started.elapsed().as_secs_f64();
        handle.close()?;
        assert_eq!(outcome.requests(), REQUESTS, "every ticket served");
        let report = RunReport {
            label: "service".into(),
            seconds,
            requests_per_sec: REQUESTS as f64 / seconds,
            waves: outcome.waves,
            outputs: outcome
                .results
                .into_iter()
                .map(|r| (r.ticket.id(), r.outputs.to_vec()))
                .collect(),
        };
        if best.as_ref().is_none_or(|b| report.seconds < b.seconds) {
            best = Some(report);
        }
    }
    Ok(best.expect("at least one rep"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = mul16();
    let nor = circuit.netlist.to_nor();

    // The headline fact this benchmark exists for: the single-line
    // compilers cannot serve this circuit at this geometry at all.
    let mut probe = PimClusterBuilder::new(SHARDS, N, M).build()?;
    assert!(
        probe.compile_packed(&nor).is_err(),
        "mul16 must exceed one {N}-cell line for this benchmark to mean anything"
    );
    let program = probe.compile_partitioned(&nor)?;
    println!(
        "partitioned throughput: {REQUESTS} x mul16 on {SHARDS} x {N}x{N}/{M} shards\n\
         partition: {} parts over {} levels, {} cut signals, widest sub-program {} cells\n",
        program.num_parts(),
        program.num_levels(),
        program.cut_signals(),
        program.max_row_size(),
    );

    let sync = run_sync(&nor)?;
    print_report(&sync, sync.waves as f64 / REQUESTS as f64);
    let service = run_service(&nor)?;
    print_report(&service, service.waves as f64 / REQUESTS as f64);

    // Correctness: both modes against the u128 product, and each other.
    for t in 0..REQUESTS as u64 {
        let want = expected(t as usize);
        let s = sync.outputs.get(&t).expect("sync served");
        let a = service.outputs.get(&t).expect("service served");
        assert_eq!(s, &want, "sync ticket#{t}");
        assert_eq!(a, &want, "service ticket#{t}");
    }
    println!("\nall {REQUESTS} products verified against the u128 reference in both modes");

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"partitioned_throughput\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}, \"shards\": {}}},\n",
            "  \"workload\": {{\"circuit\": \"mul16\", \"requests\": {}}},\n",
            "  \"partition\": {{\"parts\": {}, \"levels\": {}, \"cut_signals\": {}, ",
            "\"max_row_size\": {}}},\n",
            "  \"runs\": [\n",
            "    {{\"config\": \"sync\", \"seconds\": {:.4}, \"requests_per_sec\": {:.1}, ",
            "\"waves\": {}, \"waves_per_request\": {:.2}}},\n",
            "    {{\"config\": \"service\", \"seconds\": {:.4}, \"requests_per_sec\": {:.1}, ",
            "\"waves\": {}, \"waves_per_request\": {:.2}}}\n",
            "  ]\n}}\n"
        ),
        N,
        M,
        SHARDS,
        REQUESTS,
        program.num_parts(),
        program.num_levels(),
        program.cut_signals(),
        program.max_row_size(),
        sync.seconds,
        sync.requests_per_sec,
        sync.waves,
        sync.waves as f64 / REQUESTS as f64,
        service.seconds,
        service.requests_per_sec,
        service.waves,
        service.waves as f64 / REQUESTS as f64,
    );
    std::fs::write("BENCH_partition.json", &json)?;
    println!("wrote BENCH_partition.json");
    Ok(())
}
