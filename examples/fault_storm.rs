//! Fault-injection campaign: bombard a protected memory with increasing
//! soft-error rates and measure how often the periodic check restores the
//! data perfectly — an executable, single-crossbar miniature of the
//! paper's Figure 6 experiment.
//!
//! Run with: `cargo run --release --example fault_storm`

use pimecc::core::{BlockGeometry, ProtectedMemory};
use pimecc::reliability::{ReliabilityModel, SoftErrorRate};
use pimecc::xbar::{BitGrid, FaultInjector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = BlockGeometry::new(150, 15)?; // 100 blocks of 15x15
    let windows = 200;
    let mut rng = StdRng::seed_from_u64(2021);

    println!(
        "fault storm on a {0}x{0} crossbar, {1} blocks, {2} windows per rate\n",
        geom.n(),
        geom.block_count(),
        windows
    );
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>12} {:>14}",
        "p(bit)", "faults/win", "survived", "corrected", "uncorrectable", "analytic P(ok)"
    );

    for p in [1e-5, 1e-4, 5e-4, 2e-3, 1e-2] {
        let injector = FaultInjector::new(p);
        let mut survived = 0u32;
        let mut total_faults = 0usize;
        let mut corrected = 0usize;
        let mut uncorrectable = 0usize;
        for _ in 0..windows {
            let mut pm = ProtectedMemory::new(geom)?;
            let n = geom.n();
            let mut data = BitGrid::new(n, n);
            for r in 0..n {
                for c in 0..n {
                    data.set(r, c, rng.gen());
                }
            }
            pm.load_grid(&data);
            // One exposure window: Bernoulli faults everywhere.
            let positions = injector.sample_flip_positions(n * n, &mut rng);
            total_faults += positions.len();
            for &i in &positions {
                pm.inject_fault(i / n, i % n);
            }
            // Periodic check at window end.
            let report = pm.check_all()?;
            corrected += report.corrected;
            uncorrectable += report.uncorrectable;
            let ok = (0..n).all(|r| (0..n).all(|c| pm.bit(r, c) == data.get(r, c)));
            if ok {
                survived += 1;
            }
        }
        // Closed-form survival of this crossbar in one window.
        let model = ReliabilityModel::new(geom, (geom.n() * geom.n()) as u64, 24.0, false);
        // Convert our direct p into the SER producing that p over 24 h.
        let lambda = -(1.0 - p).ln() * 1e9 / 24.0;
        let analytic_ok =
            1.0 - model.proposed_failure_probability(SoftErrorRate::from_fit_per_bit(lambda));
        println!(
            "{:>10.0e} {:>12.2} {:>9}/{} {:>12} {:>12} {:>14.4}",
            p,
            total_faults as f64 / windows as f64,
            survived,
            windows,
            corrected,
            uncorrectable,
            analytic_ok
        );
    }
    println!("\nexpected shape: survival tracks the analytic column and collapses once");
    println!("blocks start taking two hits per window (the SEC limit).");
    Ok(())
}
