//! Fault-storm campaign against the **async cluster service**: a 4-shard
//! pool serves adder8 traffic while one shard is bombarded with injected
//! soft errors on every batch load. The health loop must notice (error
//! budget exceeded → quarantine), reroute traffic to the surviving
//! shards, keep every output bit-correct, and — once the storm passes —
//! scrub the shard clean and restore it to the pool.
//!
//! Four phases:
//!
//! 1. **fault-free** — baseline throughput with the storm off;
//! 2. **storm** — the fault hook flips bits in three distinct ECC blocks
//!    of shard 1 on every batch load; the shard must be quarantined at
//!    least once and the pool must hold ≥ 0.7× the baseline throughput;
//! 3. **recovery** — storm off; background scrubs earn the shard back
//!    (consecutive clean scrubs lift the quarantine);
//! 4. **post** — the restored pool serves one more round, all shards
//!    healthy, nothing uncorrectable anywhere in the run.
//!
//! Run with: `cargo run --release --example fault_storm`
//!
//! Writes the campaign record to `BENCH_fault.json`.

use pimecc::netlist::generators::ripple_adder;
use pimecc::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const N: usize = 90;
const M: usize = 3;
/// Requests per measured phase.
const REQUESTS: usize = 12_000;
/// The shard the storm hammers.
const STORM_SHARD: usize = 1;

const FLUSH_AFTER: Duration = Duration::from_micros(500);
const FLUSH_AT: usize = 512;
const SCRUB_PERIOD: Duration = Duration::from_millis(1);
const ERROR_BUDGET: u64 = 8;
const RECOVERY_SCRUBS: u32 = 2;

fn add_request(i: usize) -> Vec<bool> {
    let x = (i * 73) as u32 & 0xFFFF;
    (0..16).map(|b| x >> b & 1 != 0).collect()
}

struct PhaseReport {
    label: &'static str,
    seconds: f64,
    requests_per_sec: f64,
    waves: usize,
}

/// Submits `REQUESTS` adder8 requests, drains them, verifies every
/// output against the software reference and returns the wall timing.
fn run_phase(
    handle: &ClusterHandle,
    program: &CompiledProgram,
    adder: &pimecc::netlist::Netlist,
    label: &'static str,
) -> Result<PhaseReport, Box<dyn std::error::Error>> {
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        tickets.push(handle.submit(program, add_request(i))?);
    }
    let outcome = handle.drain()?;
    let seconds = started.elapsed().as_secs_f64();
    assert_eq!(outcome.requests(), REQUESTS, "{label}: every ticket served");
    for (i, t) in tickets.iter().enumerate() {
        let got = outcome.outputs_for(t.key()).expect("served");
        assert_eq!(got, adder.eval(&add_request(i)), "{label}: ticket #{i}");
    }
    Ok(PhaseReport {
        label,
        seconds,
        requests_per_sec: REQUESTS as f64 / seconds,
        waves: outcome.waves,
    })
}

fn print_phase(r: &PhaseReport, snap: &HealthSnapshot) {
    println!(
        "{:>10}: {:>9.0} req/s  ({:.3} s, {} waves, {} quarantined, \
         corrected {}, scrub waves {})",
        r.label,
        r.requests_per_sec,
        r.seconds,
        r.waves,
        snap.quarantined(),
        snap.corrected(),
        snap.scrub_waves,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adder = ripple_adder(8);
    let nor = adder.to_nor();

    let storm = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&storm);
    let handle = PimClusterBuilder::new(SHARDS, N, M)
        .flush_after(FLUSH_AFTER)
        .auto_flush_at(FLUSH_AT)
        .scrub_period(SCRUB_PERIOD)
        .error_budget(ERROR_BUDGET)
        .recovery_scrubs(RECOVERY_SCRUBS)
        // Three flips in three distinct ECC blocks per batch load: every
        // one is single-error-correctable (outputs stay exact), but the
        // error budget drains fast.
        .shard_fault_hook(STORM_SHARD, move |pm| {
            if flag.load(Ordering::Relaxed) {
                pm.inject_fault(0, 0);
                pm.inject_fault(N / 3, N / 3);
                pm.inject_fault(2 * N / 3, 2 * N / 3);
            }
        })
        .spawn()?;
    let program = handle.compile_packed(&nor)?;

    println!(
        "fault storm on a {SHARDS}-shard {N}x{N}/{M} service, \
         {REQUESTS} adder8 requests per phase\n\
         storm: 3 injected flips per batch load on shard {STORM_SHARD}, \
         error budget {ERROR_BUDGET}, {RECOVERY_SCRUBS} clean scrubs to recover\n"
    );

    // Phase 1: fault-free baseline.
    let fault_free = run_phase(&handle, &program, &adder, "fault-free")?;
    print_phase(&fault_free, &handle.metrics());

    // Phase 2: the storm. The hook fires on every batch load of the
    // storm shard until the health loop quarantines it away.
    storm.store(true, Ordering::Relaxed);
    let stormed = run_phase(&handle, &program, &adder, "storm")?;
    storm.store(false, Ordering::Relaxed);
    let mid = handle.metrics();
    print_phase(&stormed, &mid);
    assert!(
        mid.shards[STORM_SHARD].quarantines >= 1,
        "the storm must trip the error budget at least once"
    );

    // Phase 3: recovery. The worker is idle, so the scrub rotation runs
    // freely; consecutive clean scrubs lift the quarantine.
    let deadline = Instant::now() + Duration::from_secs(30);
    let healed = loop {
        let snap = handle.metrics();
        if snap.quarantined() == 0 && snap.shards[STORM_SHARD].recoveries >= 1 {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "shard {STORM_SHARD} never recovered: {:?}",
            snap.shards[STORM_SHARD]
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    println!(
        "{:>10}: shard {} healthy again after {} scrubs \
         ({} quarantine/recovery cycles)",
        "recovery",
        STORM_SHARD,
        healed.shards[STORM_SHARD].scrubs,
        healed.shards[STORM_SHARD].recoveries,
    );

    // Phase 4: the restored pool serves one more round.
    let post = run_phase(&handle, &program, &adder, "post")?;
    let fin = handle.metrics();
    print_phase(&post, &fin);
    handle.close()?;

    assert_eq!(fin.quarantined(), 0, "the pool ends fully healthy");
    assert_eq!(
        fin.uncorrectable(),
        0,
        "every injected flip was single-error"
    );
    assert!(
        fin.shards[STORM_SHARD].recoveries >= 1,
        "≥ 1 recovery cycle"
    );
    let ratio = stormed.requests_per_sec / fault_free.requests_per_sec;
    println!(
        "\nstorm throughput: {ratio:.2}x fault-free \
         (floor 0.70x — one quarantined shard of {SHARDS} leaves {:.2}x \
         of the pool)",
        (SHARDS - 1) as f64 / SHARDS as f64
    );
    assert!(
        ratio >= 0.7,
        "storm throughput must hold >= 0.7x fault-free, got {ratio:.2}x"
    );

    let sh = &fin.shards[STORM_SHARD];
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"fault_storm\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}, \"shards\": {}}},\n",
            "  \"requests_per_phase\": {},\n",
            "  \"storm_shard\": {},\n",
            "  \"error_budget\": {},\n",
            "  \"recovery_scrubs\": {},\n",
            "  \"scrub_period_us\": {},\n",
            "  \"fault_free_rps\": {:.1},\n",
            "  \"storm_rps\": {:.1},\n",
            "  \"post_rps\": {:.1},\n",
            "  \"storm_over_fault_free\": {:.3},\n",
            "  \"quarantines\": {},\n",
            "  \"recoveries\": {},\n",
            "  \"scrub_waves\": {},\n",
            "  \"corrected\": {},\n",
            "  \"uncorrectable\": {},\n",
            "  \"queue_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}},\n",
            "  \"execute_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}\n",
            "}}\n"
        ),
        N,
        M,
        SHARDS,
        REQUESTS,
        STORM_SHARD,
        ERROR_BUDGET,
        RECOVERY_SCRUBS,
        SCRUB_PERIOD.as_micros(),
        fault_free.requests_per_sec,
        stormed.requests_per_sec,
        post.requests_per_sec,
        ratio,
        sh.quarantines,
        sh.recoveries,
        fin.scrub_waves,
        fin.corrected(),
        fin.uncorrectable(),
        fin.queue_latency.p50.as_secs_f64() * 1e6,
        fin.queue_latency.p95.as_secs_f64() * 1e6,
        fin.queue_latency.p99.as_secs_f64() * 1e6,
        fin.execute_latency.p50.as_secs_f64() * 1e6,
        fin.execute_latency.p95.as_secs_f64() * 1e6,
        fin.execute_latency.p99.as_secs_f64() * 1e6,
    );
    std::fs::write("BENCH_fault.json", &json)?;
    println!("wrote BENCH_fault.json");
    Ok(())
}
