//! Fault-storm campaign against the **async cluster service**: a 4-shard
//! pool serves adder8 traffic while shards are bombarded with injected
//! faults on every batch load. The health loop must notice, contain the
//! damage (quarantine for transient storms, line retirement for permanent
//! ones), keep every *resolved* output bit-correct, and surface anything
//! it cannot verify as an explicit dead letter — never as garbage.
//!
//! Five phases:
//!
//! 1. **fault-free** — baseline throughput with the storm off;
//! 2. **storm** — the fault hook flips bits in three distinct ECC blocks
//!    of shard 1 on every batch load; the shard must be quarantined at
//!    least once and the pool must hold ≥ 0.7× the baseline throughput;
//! 3. **recovery** — storm off; background scrubs earn the shard back
//!    (consecutive clean scrubs lift the quarantine);
//! 4. **post** — the restored pool serves one more round, all shards
//!    healthy, nothing uncorrectable anywhere in the run so far;
//! 5. **stuck-at** — permanent stuck-at cells are wedged into four ECC
//!    blocks of shard 2: recurring uncorrectable evidence must *retire*
//!    the struck block-lines (capacity shrinks and the health ledger
//!    shows it), suspect tickets are retried onto healthy lines, the
//!    pool holds ≥ 0.6× the baseline throughput, and not one ticket
//!    resolves with outputs that differ from the software reference —
//!    the escalation ladder's no-silently-wrong-answers contract.
//!
//! Run with: `cargo run --release --example fault_storm`
//!
//! Writes the campaign record to `BENCH_fault.json`; CI asserts the
//! recorded `silently_wrong_outputs` is zero.

use pimecc::netlist::generators::ripple_adder;
use pimecc::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const N: usize = 90;
const M: usize = 3;
/// Requests per measured phase.
const REQUESTS: usize = 12_000;
/// The shard the transient storm hammers.
const STORM_SHARD: usize = 1;
/// The shard the stuck-at phase wedges.
const STUCK_SHARD: usize = 2;

const FLUSH_AFTER: Duration = Duration::from_micros(500);
const FLUSH_AT: usize = 512;
const SCRUB_PERIOD: Duration = Duration::from_millis(1);
const ERROR_BUDGET: u64 = 8;
const RECOVERY_SCRUBS: u32 = 2;
/// Uncorrectable verdicts that retire a block-line.
const RETIRE_AFTER: u32 = 2;
/// Re-dispatch budget for suppressed tickets.
const MAX_RETRIES: u32 = 2;

/// Cells wedged in phase 5: two per ECC block across four blocks of
/// shard 2, so mismatching data produces uncorrectable (double-error)
/// verdicts that drive the retirement ledger.
const STUCK_CELLS: [(usize, usize); 8] = [
    (0, 0),
    (1, 1),
    (4, 3),
    (5, 4),
    (30, 30),
    (31, 31),
    (60, 60),
    (61, 61),
];

fn add_request(i: usize) -> Vec<bool> {
    let x = (i * 73) as u32 & 0xFFFF;
    (0..16).map(|b| x >> b & 1 != 0).collect()
}

struct PhaseReport {
    label: &'static str,
    seconds: f64,
    requests_per_sec: f64,
    waves: usize,
    resolved: usize,
    dead_letters: usize,
}

/// Submits `REQUESTS` adder8 requests, drains them, and verifies the
/// no-silently-wrong-answers contract: every resolved ticket bit-exact
/// against the software reference, every unresolved ticket present in the
/// outcome's dead-letter list — nothing vanishes, nothing lies.
fn run_phase(
    handle: &ClusterHandle,
    program: &CompiledProgram,
    adder: &pimecc::netlist::Netlist,
    label: &'static str,
) -> Result<PhaseReport, Box<dyn std::error::Error>> {
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        tickets.push(handle.submit(program, add_request(i))?);
    }
    let outcome = handle.drain()?;
    let seconds = started.elapsed().as_secs_f64();
    let failed: HashSet<u64> = outcome.failed.iter().map(|f| f.ticket.id()).collect();
    let mut resolved = 0;
    for (i, t) in tickets.iter().enumerate() {
        match outcome.outputs_for(t.key()) {
            Some(got) => {
                resolved += 1;
                assert_eq!(
                    got,
                    adder.eval(&add_request(i)),
                    "{label}: ticket #{i} resolved with corrupt outputs"
                );
            }
            None => assert!(
                failed.contains(&t.id()),
                "{label}: ticket #{i} vanished without an explicit error"
            ),
        }
    }
    assert_eq!(
        resolved + failed.len(),
        REQUESTS,
        "{label}: every ticket accounted for exactly once"
    );
    Ok(PhaseReport {
        label,
        seconds,
        requests_per_sec: resolved as f64 / seconds,
        waves: outcome.waves,
        resolved,
        dead_letters: failed.len(),
    })
}

fn print_phase(r: &PhaseReport, snap: &HealthSnapshot) {
    println!(
        "{:>10}: {:>9.0} req/s  ({:.3} s, {} waves, {} quarantined, \
         corrected {}, scrub waves {}, retries {}, dead letters {})",
        r.label,
        r.requests_per_sec,
        r.seconds,
        r.waves,
        snap.quarantined(),
        snap.corrected(),
        snap.scrub_waves,
        snap.retries,
        snap.dead_letters,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adder = ripple_adder(8);
    let nor = adder.to_nor();

    let storm = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&storm);
    let wedge = Arc::new(AtomicBool::new(false));
    let wedge_flag = Arc::clone(&wedge);
    let handle = PimClusterBuilder::new(SHARDS, N, M)
        .flush_after(FLUSH_AFTER)
        .auto_flush_at(FLUSH_AT)
        .scrub_period(SCRUB_PERIOD)
        .error_budget(ERROR_BUDGET)
        .recovery_scrubs(RECOVERY_SCRUBS)
        .retire_after(RETIRE_AFTER)
        .max_retries(MAX_RETRIES)
        // Three flips in three distinct ECC blocks per batch load: every
        // one is single-error-correctable (outputs stay exact), but the
        // error budget drains fast.
        .shard_fault_hook(STORM_SHARD, move |pm| {
            if flag.load(Ordering::Relaxed) {
                pm.inject_fault(0, 0);
                pm.inject_fault(N / 3, N / 3);
                pm.inject_fault(2 * N / 3, 2 * N / 3);
            }
        })
        // Permanent damage: once armed, these cells stay wedged at 1 for
        // the rest of the run (`set_stuck` is idempotent) — the evidence
        // that drives line retirement.
        .shard_fault_hook(STUCK_SHARD, move |pm| {
            if wedge_flag.load(Ordering::Relaxed) {
                for &(r, c) in &STUCK_CELLS {
                    pm.set_stuck(r, c, true);
                }
            }
        })
        .spawn()?;
    let program = handle.compile_packed(&nor)?;

    println!(
        "fault storm on a {SHARDS}-shard {N}x{N}/{M} service, \
         {REQUESTS} adder8 requests per phase\n\
         storm: 3 injected flips per batch load on shard {STORM_SHARD}, \
         error budget {ERROR_BUDGET}, {RECOVERY_SCRUBS} clean scrubs to recover\n\
         stuck-at: {} wedged cells on shard {STUCK_SHARD}, retire after \
         {RETIRE_AFTER} strikes, {MAX_RETRIES} retries per ticket\n",
        STUCK_CELLS.len()
    );

    // Phase 1: fault-free baseline.
    let fault_free = run_phase(&handle, &program, &adder, "fault-free")?;
    print_phase(&fault_free, &handle.metrics());
    assert_eq!(fault_free.dead_letters, 0, "fault-free serves everything");

    // Phase 2: the storm. The hook fires on every batch load of the
    // storm shard until the health loop quarantines it away.
    storm.store(true, Ordering::Relaxed);
    let stormed = run_phase(&handle, &program, &adder, "storm")?;
    storm.store(false, Ordering::Relaxed);
    let mid = handle.metrics();
    print_phase(&stormed, &mid);
    assert!(
        mid.shards[STORM_SHARD].quarantines >= 1,
        "the storm must trip the error budget at least once"
    );
    assert_eq!(
        stormed.dead_letters, 0,
        "correctable flips never dead-letter"
    );

    // Phase 3: recovery. The worker is idle, so the scrub rotation runs
    // freely; consecutive clean scrubs lift the quarantine.
    let deadline = Instant::now() + Duration::from_secs(30);
    let healed = loop {
        let snap = handle.metrics();
        if snap.quarantined() == 0 && snap.shards[STORM_SHARD].recoveries >= 1 {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "shard {STORM_SHARD} never recovered: {:?}",
            snap.shards[STORM_SHARD]
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    println!(
        "{:>10}: shard {} healthy again after {} scrubs \
         ({} quarantine/recovery cycles)",
        "recovery",
        STORM_SHARD,
        healed.shards[STORM_SHARD].scrubs,
        healed.shards[STORM_SHARD].recoveries,
    );

    // Phase 4: the restored pool serves one more round.
    let post = run_phase(&handle, &program, &adder, "post")?;
    let fin = handle.metrics();
    print_phase(&post, &fin);
    assert_eq!(fin.quarantined(), 0, "the pool ends phase 4 fully healthy");
    assert_eq!(
        fin.uncorrectable(),
        0,
        "every injected flip so far was single-error"
    );
    assert!(
        fin.shards[STORM_SHARD].recoveries >= 1,
        "≥ 1 recovery cycle"
    );
    let storm_ratio = stormed.requests_per_sec / fault_free.requests_per_sec;
    println!(
        "\nstorm throughput: {storm_ratio:.2}x fault-free \
         (floor 0.70x — one quarantined shard of {SHARDS} leaves {:.2}x \
         of the pool)",
        (SHARDS - 1) as f64 / SHARDS as f64
    );
    assert!(
        storm_ratio >= 0.7,
        "storm throughput must hold >= 0.7x fault-free, got {storm_ratio:.2}x"
    );

    // Phase 5: permanent damage. The wedged cells produce recurring
    // uncorrectable verdicts; the device retires the struck block-lines,
    // the scheduler packs around them and re-dispatches the suppressed
    // tickets, and the run stays bit-exact throughout.
    wedge.store(true, Ordering::Relaxed);
    let stuck = run_phase(&handle, &program, &adder, "stuck-at")?;
    let end = handle.metrics();
    print_phase(&stuck, &end);
    handle.close()?;

    let retired = end.shards[STUCK_SHARD].retired_lines;
    assert!(
        retired >= M as u64,
        "recurring stuck-at evidence must retire at least one block-line \
         ({M} physical lines), ledger shows {retired}"
    );
    assert!(
        end.retries >= 1,
        "suspect tickets must be re-dispatched, not resolved"
    );
    for (i, shard) in end.shards.iter().enumerate() {
        if i != STUCK_SHARD {
            assert_eq!(
                shard.retired_lines, 0,
                "retirement stays confined to the wedged shard"
            );
        }
    }
    let stuck_ratio = stuck.requests_per_sec / fault_free.requests_per_sec;
    println!(
        "stuck-at throughput: {stuck_ratio:.2}x fault-free (floor 0.60x), \
         shard {STUCK_SHARD} retired {retired} physical lines, \
         {} retries, {} dead letters, 0 silently-wrong outputs",
        end.retries, end.dead_letters,
    );
    assert!(
        stuck_ratio >= 0.6,
        "stuck-at throughput must hold >= 0.6x fault-free, got {stuck_ratio:.2}x"
    );

    let sh = &fin.shards[STORM_SHARD];
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"fault_storm\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}, \"shards\": {}}},\n",
            "  \"requests_per_phase\": {},\n",
            "  \"storm_shard\": {},\n",
            "  \"stuck_shard\": {},\n",
            "  \"error_budget\": {},\n",
            "  \"recovery_scrubs\": {},\n",
            "  \"retire_after\": {},\n",
            "  \"max_retries\": {},\n",
            "  \"scrub_period_us\": {},\n",
            "  \"fault_free_rps\": {:.1},\n",
            "  \"storm_rps\": {:.1},\n",
            "  \"post_rps\": {:.1},\n",
            "  \"stuck_rps\": {:.1},\n",
            "  \"storm_over_fault_free\": {:.3},\n",
            "  \"stuck_over_fault_free\": {:.3},\n",
            "  \"quarantines\": {},\n",
            "  \"recoveries\": {},\n",
            "  \"scrub_waves\": {},\n",
            "  \"corrected\": {},\n",
            "  \"uncorrectable\": {},\n",
            "  \"retired_lines\": {},\n",
            "  \"retries\": {},\n",
            "  \"dead_letters\": {},\n",
            "  \"stuck_resolved\": {},\n",
            "  \"silently_wrong_outputs\": 0,\n",
            "  \"queue_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}},\n",
            "  \"execute_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}\n",
            "}}\n"
        ),
        N,
        M,
        SHARDS,
        REQUESTS,
        STORM_SHARD,
        STUCK_SHARD,
        ERROR_BUDGET,
        RECOVERY_SCRUBS,
        RETIRE_AFTER,
        MAX_RETRIES,
        SCRUB_PERIOD.as_micros(),
        fault_free.requests_per_sec,
        stormed.requests_per_sec,
        post.requests_per_sec,
        stuck.requests_per_sec,
        storm_ratio,
        stuck_ratio,
        sh.quarantines,
        sh.recoveries,
        end.scrub_waves,
        end.corrected(),
        end.uncorrectable(),
        retired,
        end.retries,
        end.dead_letters,
        stuck.resolved,
        end.queue_latency.p50.as_secs_f64() * 1e6,
        end.queue_latency.p95.as_secs_f64() * 1e6,
        end.queue_latency.p99.as_secs_f64() * 1e6,
        end.execute_latency.p50.as_secs_f64() * 1e6,
        end.execute_latency.p95.as_secs_f64() * 1e6,
        end.execute_latency.p99.as_secs_f64() * 1e6,
    );
    std::fs::write("BENCH_fault.json", &json)?;
    println!("wrote BENCH_fault.json");
    Ok(())
}
