//! Host-side wall-clock throughput of the simulator itself: the PR-3 mixed
//! cluster workload (1020 adder8 + 510 int2float on one 255×255/5 shard,
//! 2D-packed) served twice — once by the retained scalar-reference engine,
//! once by the word-parallel engine — plus a large-geometry run at the
//! paper's n=1020, m=15 configuration that only the word-parallel engine
//! makes practical.
//!
//! The cost *model* is engine-independent: both runs must produce
//! bit-identical outputs, placements, `MachineStats` and input-check
//! reports. Only requests/second differs, and that ratio is the recorded
//! speedup. The run fails if word-parallel is not at least 2× the scalar
//! reference (the CI floor; the committed reference run records the full
//! figure).
//!
//! Run with: `cargo run --release --example host_throughput`
//!
//! Writes the comparison to `BENCH_host.json`.

use pimecc::netlist::generators::{ripple_adder, Benchmark};
use pimecc::prelude::*;
use std::time::Instant;

const N: usize = 255;
const M: usize = 5;
const ADDER_REQUESTS: usize = 4 * N; // 1020 — four offset columns when co-packed
const I2F_REQUESTS: usize = 2 * N; // 510

/// The paper's Figure-6 geometry: only reachable in reasonable wall time
/// with the word-parallel engine.
const BIG_N: usize = 1020;
const BIG_M: usize = 15;

fn i2f_request(i: usize) -> Vec<bool> {
    let x = (i * 37) as u32 & 0x7FF;
    (0..11).map(|b| x >> b & 1 != 0).collect()
}

fn add_request(i: usize) -> Vec<bool> {
    let x = (i * 73) as u32 & 0xFFFF;
    (0..16).map(|b| x >> b & 1 != 0).collect()
}

struct RunReport {
    label: String,
    seconds: f64,
    requests: usize,
    requests_per_sec: f64,
    waves: usize,
    wall_mem_cycles: u64,
    outcome: ClusterOutcome,
}

/// Timed repetitions per configuration; the fastest run is recorded, the
/// usual defense against scheduler noise on shared CI machines.
const TIMED_REPS: usize = 3;

/// The tickets of one repetition with their program kind and request index.
type TicketLog = Vec<(Ticket, bool, usize)>;

fn run_workload(
    label: String,
    engine: SimEngine,
    n: usize,
    m: usize,
    adders: usize,
    i2fs: usize,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let i2f = Benchmark::Int2float.build();
    let i2f_nor = i2f.netlist.to_nor();
    let adder = ripple_adder(8); // 16 inputs, 9 outputs
    let adder_nor = adder.to_nor();

    let mut seconds = f64::INFINITY;
    let mut best: Option<(TicketLog, ClusterOutcome)> = None;
    for _ in 0..TIMED_REPS {
        // A fresh cluster per repetition: ticket ids and machine state are
        // then identical across repetitions and engines. Mapping is
        // engine-independent and stays outside the timed window, isolating
        // simulation cost.
        let mut cluster = PimClusterBuilder::new(1, n, m).engine(engine).build()?;
        let pi = cluster.compile_packed(&i2f_nor)?;
        let pa = cluster.compile_packed(&adder_nor)?;
        let started = Instant::now();
        let mut tickets = Vec::new();
        for i in 0..adders.max(i2fs) {
            if i < adders {
                tickets.push((cluster.submit(&pa, add_request(i))?, false, i));
            }
            if i < i2fs {
                tickets.push((cluster.submit(&pi, i2f_request(i))?, true, i));
            }
        }
        let outcome = cluster.flush()?;
        let elapsed = started.elapsed().as_secs_f64();
        if let Some((_, prev)) = &best {
            // Repetitions must be deterministic replays of each other.
            assert_eq!(prev.stats, outcome.stats, "{label}: rep diverged");
        }
        if elapsed < seconds || best.is_none() {
            seconds = elapsed;
            best = Some((tickets, outcome));
        }
    }
    let (tickets, outcome) = best.expect("at least one rep");

    // Every output against the software reference.
    for &(ticket, is_i2f, i) in &tickets {
        let got = outcome.outputs_for(ticket).expect("served");
        let want = if is_i2f {
            (i2f.reference)(&i2f_request(i))
        } else {
            adder.eval(&add_request(i))
        };
        assert_eq!(got, want.as_slice(), "{label}: {ticket}");
    }

    let requests = adders + i2fs;
    let report = RunReport {
        requests_per_sec: requests as f64 / seconds,
        waves: outcome.waves,
        wall_mem_cycles: outcome.wall_mem_cycles,
        label,
        seconds,
        requests,
        outcome,
    };
    println!(
        "{:>22}: {:>8.1} req/s  ({:.3} s for {} requests, {} waves, {} wall MEM cycles)",
        report.label,
        report.requests_per_sec,
        report.seconds,
        report.requests,
        report.waves,
        report.wall_mem_cycles,
    );
    Ok(report)
}

fn json_run(r: &RunReport) -> String {
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"seconds\": {:.4}, \"requests\": {}, ",
            "\"requests_per_sec\": {:.1}, \"waves\": {}, \"wall_mem_cycles\": {}}}"
        ),
        r.label, r.seconds, r.requests, r.requests_per_sec, r.waves, r.wall_mem_cycles,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "host throughput: {ADDER_REQUESTS} x adder8 + {I2F_REQUESTS} x int2float, \
         one {N}x{N}/{M} shard, scalar reference vs word-parallel\n"
    );
    let scalar = run_workload(
        "scalar reference".into(),
        SimEngine::ScalarReference,
        N,
        M,
        ADDER_REQUESTS,
        I2F_REQUESTS,
    )?;
    let word = run_workload(
        "word-parallel".into(),
        SimEngine::WordParallel,
        N,
        M,
        ADDER_REQUESTS,
        I2F_REQUESTS,
    )?;

    // The engines must be indistinguishable in everything but wall time:
    // same outputs and placements per ticket, same machine accounting,
    // same model clocks.
    assert_eq!(
        scalar.outcome.results, word.outcome.results,
        "per-ticket outputs/placements diverged between engines"
    );
    assert_eq!(
        scalar.outcome.stats, word.outcome.stats,
        "MachineStats diverged between engines"
    );
    assert_eq!(
        scalar.outcome.input_check, word.outcome.input_check,
        "input-check reports diverged between engines"
    );
    assert_eq!(scalar.outcome.wall_mem_cycles, word.outcome.wall_mem_cycles);
    assert_eq!(scalar.outcome.waves, word.outcome.waves);

    let speedup = scalar.seconds / word.seconds;
    println!("\nword-parallel speedup: {speedup:.2}x (bit-identical outcome)");
    assert!(
        speedup >= 2.0,
        "word-parallel engine must be >= 2x the scalar reference, got {speedup:.2}x"
    );

    // Large-geometry capability proof: the paper's n=1020, m=15 crossbar
    // serving a full co-packed mixed wave, word-parallel only.
    println!();
    let big = run_workload(
        format!("word-parallel {BIG_N}/{BIG_M}"),
        SimEngine::WordParallel,
        BIG_N,
        BIG_M,
        BIG_N,     // one adder8 per line of the big crossbar
        BIG_N / 2, // plus half a line-set of int2float
    )?;

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"host_throughput\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}, \"shards\": 1}},\n",
            "  \"traffic\": {{\"adder8\": {}, \"int2float\": {}}},\n",
            "  \"speedup_wall_clock\": {:.3},\n",
            "  \"large_geometry\": {{\"n\": {}, \"m\": {}, \"adder8\": {}, \"int2float\": {}}},\n",
            "  \"runs\": [\n{},\n{},\n{}\n  ]\n}}\n"
        ),
        N,
        M,
        ADDER_REQUESTS,
        I2F_REQUESTS,
        speedup,
        BIG_N,
        BIG_M,
        BIG_N,
        BIG_N / 2,
        json_run(&scalar),
        json_run(&word),
        json_run(&big),
    );
    std::fs::write("BENCH_host.json", &json)?;
    println!("\nwrote BENCH_host.json");
    Ok(())
}
