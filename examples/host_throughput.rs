//! Host-side wall-clock throughput of the simulator itself: the PR-3 mixed
//! cluster workload (1020 adder8 + 510 int2float on one 255×255/5 shard,
//! 2D-packed) swept across the two host knobs that exist after the
//! intra-shard parallelism work — the kernel lane config ([`SimEngine`]:
//! scalar cell-at-a-time vs 64-bit-word × 4-row-lane kernels) and the
//! row-team width ([`PimClusterBuilder::threads`]: 1/2/4/8) — plus a
//! large-geometry run at the paper's n=1020, m=15 configuration that only
//! the word-parallel engine makes practical.
//!
//! The cost *model* is engine- and thread-independent: every sweep point
//! must produce bit-identical outputs, placements, `MachineStats` and
//! input-check reports. Only requests/second differs; the sweep records
//! the whole scaling curve and the run fails if the best word-parallel
//! point is not at least 2× the scalar reference (the CI floor; the
//! committed reference run records the full figures).
//!
//! The steady-state points are measured on a *warm* cluster over batched
//! submissions ([`PimCluster::submit_batch`]), so the recorded figure is
//! the service throughput after arenas have warmed up — the regime the
//! zero-allocation work targets — not a cold-start number.
//!
//! Run with: `cargo run --release --example host_throughput`
//!
//! Writes the scaling curve to `BENCH_host.json`.

use pimecc::netlist::generators::{ripple_adder, Benchmark};
use pimecc::prelude::*;
use std::time::Instant;

const N: usize = 255;
const M: usize = 5;
const ADDER_REQUESTS: usize = 4 * N; // 1020 — four offset columns when co-packed
const I2F_REQUESTS: usize = 2 * N; // 510

/// The paper's Figure-6 geometry: only reachable in reasonable wall time
/// with the word-parallel engine.
const BIG_N: usize = 1020;
const BIG_M: usize = 15;

/// Row-team widths swept per lane config.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per steady-state sweep point; the fastest run is the
/// recorded figure (the usual defense against scheduler noise on shared
/// CI machines) and the median rides along as the honesty check.
const TIMED_REPS: usize = 24;

/// Warm flushes before timing starts: arenas, plan caches and scratch
/// buffers all reach steady state.
const WARMUP_REPS: usize = 3;

fn i2f_request(i: usize) -> Vec<bool> {
    let x = (i * 37) as u32 & 0x7FF;
    (0..11).map(|b| x >> b & 1 != 0).collect()
}

fn add_request(i: usize) -> Vec<bool> {
    let x = (i * 73) as u32 & 0xFFFF;
    (0..16).map(|b| x >> b & 1 != 0).collect()
}

fn lane_label(engine: SimEngine) -> &'static str {
    match engine {
        SimEngine::WordParallel => "word64x4",
        SimEngine::ScalarReference => "scalar",
    }
}

/// One measured sweep point.
struct SweepPoint {
    engine: SimEngine,
    threads: usize,
    best_req_per_sec: f64,
    median_req_per_sec: f64,
    /// First-flush outcome, for the cross-config bit-identity assertions.
    outcome: ClusterOutcome,
}

/// Runs the mixed workload on a fresh cluster with the given knobs:
/// one untimed first flush (captured for identity checks), warm-up
/// flushes, then `TIMED_REPS` timed submit_batch+flush cycles.
fn run_point(
    engine: SimEngine,
    threads: usize,
    adder_nor: &pimecc::netlist::NorNetlist,
    i2f_nor: &pimecc::netlist::NorNetlist,
    add_reqs: &[Vec<bool>],
    i2f_reqs: &[Vec<bool>],
) -> Result<SweepPoint, Box<dyn std::error::Error>> {
    let mut cluster = PimClusterBuilder::new(1, N, M)
        .engine(engine)
        .threads(threads)
        .build()?;
    let pa = cluster.compile_packed(adder_nor)?;
    let pi = cluster.compile_packed(i2f_nor)?;

    let run_once = |cluster: &mut PimCluster| -> Result<ClusterOutcome, ClusterError> {
        let _ = cluster.submit_batch(&pa, add_reqs.iter().cloned())?;
        let _ = cluster.submit_batch(&pi, i2f_reqs.iter().cloned())?;
        cluster.flush()
    };

    // First flush on the fresh cluster: ticket ids 0.. are identical across
    // sweep points, so this outcome is directly comparable between configs.
    let outcome = run_once(&mut cluster)?;
    for _ in 1..WARMUP_REPS {
        let warm = run_once(&mut cluster)?;
        assert_eq!(warm.stats, outcome.stats, "warm-up rep diverged");
    }

    let requests = add_reqs.len() + i2f_reqs.len();
    let mut seconds: Vec<f64> = Vec::with_capacity(TIMED_REPS);
    for _ in 0..TIMED_REPS {
        let started = Instant::now();
        let timed = run_once(&mut cluster)?;
        seconds.push(started.elapsed().as_secs_f64());
        // Every repetition must be a deterministic replay of the first.
        assert_eq!(timed.stats, outcome.stats, "timed rep diverged");
        std::hint::black_box(&timed);
    }
    seconds.sort_by(f64::total_cmp);
    let best = seconds[0];
    let median = seconds[seconds.len() / 2];
    let point = SweepPoint {
        engine,
        threads,
        best_req_per_sec: requests as f64 / best,
        median_req_per_sec: requests as f64 / median,
        outcome,
    };
    println!(
        "{:>9} x{} threads: best {:>9.0} req/s  median {:>9.0} req/s  ({} reqs/flush, {} waves)",
        lane_label(engine),
        threads,
        point.best_req_per_sec,
        point.median_req_per_sec,
        requests,
        point.outcome.waves,
    );
    Ok(point)
}

fn json_point(p: &SweepPoint) -> String {
    format!(
        concat!(
            "    {{\"lanes\": \"{}\", \"threads\": {}, ",
            "\"best_req_per_sec\": {:.0}, \"median_req_per_sec\": {:.0}}}"
        ),
        lane_label(p.engine),
        p.threads,
        p.best_req_per_sec,
        p.median_req_per_sec,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "host throughput: {ADDER_REQUESTS} x adder8 + {I2F_REQUESTS} x int2float, \
         one {N}x{N}/{M} shard, lane config x row-team width sweep\n"
    );
    let i2f = Benchmark::Int2float.build();
    let i2f_nor = i2f.netlist.to_nor();
    let adder = ripple_adder(8); // 16 inputs, 9 outputs
    let adder_nor = adder.to_nor();
    let add_reqs: Vec<Vec<bool>> = (0..ADDER_REQUESTS).map(add_request).collect();
    let i2f_reqs: Vec<Vec<bool>> = (0..I2F_REQUESTS).map(i2f_request).collect();

    let mut sweep: Vec<SweepPoint> = Vec::new();
    for engine in [SimEngine::ScalarReference, SimEngine::WordParallel] {
        for threads in THREAD_SWEEP {
            sweep.push(run_point(
                engine, threads, &adder_nor, &i2f_nor, &add_reqs, &i2f_reqs,
            )?);
        }
    }

    // Every sweep point must be indistinguishable from the scalar
    // single-thread reference in everything but wall time: same outputs
    // and placements per ticket, same machine accounting, same model
    // clocks, same input-check verdicts.
    let reference = &sweep[0].outcome;
    for point in &sweep[1..] {
        let label = format!("{} x{}", lane_label(point.engine), point.threads);
        assert_eq!(
            reference.results, point.outcome.results,
            "{label}: per-ticket outputs/placements diverged from the scalar reference"
        );
        assert_eq!(
            reference.stats, point.outcome.stats,
            "{label}: MachineStats diverged from the scalar reference"
        );
        assert_eq!(
            reference.input_check, point.outcome.input_check,
            "{label}: input-check reports diverged from the scalar reference"
        );
        assert_eq!(reference.wall_mem_cycles, point.outcome.wall_mem_cycles);
        assert_eq!(reference.waves, point.outcome.waves);
    }

    // And the reference itself against the software model.
    for result in &reference.results {
        let i = result.ticket.id() as usize;
        let want = if i < ADDER_REQUESTS {
            adder.eval(&add_request(i))
        } else {
            (i2f.reference)(&i2f_request(i - ADDER_REQUESTS))
        };
        assert_eq!(result.outputs, want, "reference output mismatch at {i}");
    }
    println!(
        "\nall {} sweep points bit-identical to the scalar reference",
        sweep.len()
    );

    let scalar_best = sweep
        .iter()
        .filter(|p| p.engine == SimEngine::ScalarReference)
        .map(|p| p.best_req_per_sec)
        .fold(0.0, f64::max);
    let headline = sweep
        .iter()
        .filter(|p| p.engine == SimEngine::WordParallel)
        .max_by(|a, b| a.best_req_per_sec.total_cmp(&b.best_req_per_sec))
        .expect("word-parallel points exist");
    let speedup = headline.best_req_per_sec / scalar_best;
    println!(
        "best mixed-workload point: {:.0} req/s ({} x{} threads), {speedup:.2}x the scalar reference",
        headline.best_req_per_sec,
        lane_label(headline.engine),
        headline.threads,
    );
    assert!(
        speedup >= 2.0,
        "word-parallel engine must be >= 2x the scalar reference, got {speedup:.2}x"
    );

    // Absolute floor: the parallel engine must beat 2x the PR-4
    // single-thread word-parallel baseline (773k req/s on the reference
    // CI host). Gated on the host width: a machine reporting a single
    // hardware thread only owes the relative floor above — its absolute
    // figure still lands in BENCH_host.json for the record.
    const PR4_BASELINE_REQ_PER_SEC: f64 = 773_000.0;
    let host_width = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_width >= 2 {
        assert!(
            headline.best_req_per_sec >= 2.0 * PR4_BASELINE_REQ_PER_SEC,
            "parallel engine must be >= 2x the PR-4 single-thread baseline \
             ({PR4_BASELINE_REQ_PER_SEC:.0} req/s) on a {host_width}-wide host, got {:.0}",
            headline.best_req_per_sec,
        );
    }

    // Large-geometry capability proof: the paper's n=1020, m=15 crossbar
    // serving a full co-packed mixed wave, word-parallel only.
    println!();
    let big_adders: Vec<Vec<bool>> = (0..BIG_N).map(add_request).collect();
    let big_i2fs: Vec<Vec<bool>> = (0..BIG_N / 2).map(i2f_request).collect();
    let mut big_cluster = PimClusterBuilder::new(1, BIG_N, BIG_M)
        .engine(SimEngine::WordParallel)
        .build()?;
    let big_pa = big_cluster.compile_packed(&adder_nor)?;
    let big_pi = big_cluster.compile_packed(&i2f_nor)?;
    let started = Instant::now();
    let _ = big_cluster.submit_batch(&big_pa, big_adders.iter().cloned())?;
    let _ = big_cluster.submit_batch(&big_pi, big_i2fs.iter().cloned())?;
    let big_outcome = big_cluster.flush()?;
    let big_seconds = started.elapsed().as_secs_f64();
    let big_requests = big_adders.len() + big_i2fs.len();
    let big_rps = big_requests as f64 / big_seconds;
    println!(
        "word-parallel {BIG_N}/{BIG_M}: {big_rps:.0} req/s ({big_seconds:.3} s for \
         {big_requests} requests, {} waves, {} wall MEM cycles)",
        big_outcome.waves, big_outcome.wall_mem_cycles,
    );

    let sweep_json: Vec<String> = sweep.iter().map(json_point).collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"host_throughput\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}, \"shards\": 1}},\n",
            "  \"traffic\": {{\"adder8\": {}, \"int2float\": {}}},\n",
            "  \"mixed_best_req_per_sec\": {:.0},\n",
            "  \"mixed_best_config\": {{\"lanes\": \"{}\", \"threads\": {}}},\n",
            "  \"speedup_wall_clock\": {:.3},\n",
            "  \"sweep\": [\n{}\n  ],\n",
            "  \"large_geometry\": {{\"n\": {}, \"m\": {}, \"adder8\": {}, \"int2float\": {}, ",
            "\"req_per_sec\": {:.0}, \"waves\": {}, \"wall_mem_cycles\": {}}}\n}}\n"
        ),
        N,
        M,
        ADDER_REQUESTS,
        I2F_REQUESTS,
        headline.best_req_per_sec,
        lane_label(headline.engine),
        headline.threads,
        speedup,
        sweep_json.join(",\n"),
        BIG_N,
        BIG_M,
        big_adders.len(),
        big_i2fs.len(),
        big_rps,
        big_outcome.waves,
        big_outcome.wall_mem_cycles,
    );
    std::fs::write("BENCH_host.json", &json)?;
    println!("\nwrote BENCH_host.json");
    Ok(())
}
