//! Map every EPFL-style benchmark circuit with SIMPLER, validate the
//! mapped program against the circuit's reference model on a real MAGIC
//! crossbar simulation, and print the Table I latency summary.
//!
//! Run with: `cargo run --release --example benchmark_mapping`

use pimecc::netlist::generators::Benchmark;
use pimecc::simpler::{map_auto, min_processing_crossbars, schedule_with_ecc, EccConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    println!(
        "{:<10} {:>7} {:>7} {:>6} {:>9} {:>9} {:>8} {:>4} {:>6}",
        "bench", "gates", "row", "peak", "baseline", "proposed", "ovh(%)", "PC", "valid"
    );
    let mut logsum = 0.0;
    for b in Benchmark::ALL {
        let circuit = b.build();
        let nor = circuit.netlist.to_nor();
        let (program, row) = map_auto(&nor, 1020)?;

        // Validate: run the mapped program on the crossbar simulator and
        // compare with the circuit's software reference model.
        let mut valid = true;
        for _ in 0..3 {
            let inputs: Vec<bool> = (0..nor.num_inputs()).map(|_| rng.gen()).collect();
            if program.execute(&inputs)? != (circuit.reference)(&inputs) {
                valid = false;
            }
        }

        let report = schedule_with_ecc(&program, &EccConfig::default());
        let pcs = min_processing_crossbars(&program, &EccConfig::default(), 16);
        logsum += (report.total_cycles as f64 / report.baseline_cycles as f64).ln();
        println!(
            "{:<10} {:>7} {:>7} {:>6} {:>9} {:>9} {:>8.2} {:>4} {:>6}",
            b.name(),
            nor.num_gates(),
            row,
            program.peak_live,
            report.baseline_cycles,
            report.total_cycles,
            report.overhead_pct(),
            pcs,
            valid
        );
    }
    println!(
        "\ngeomean overhead {:.2}% (paper: 26.23%)",
        ((logsum / 11.0f64).exp() - 1.0) * 100.0
    );
    Ok(())
}
