//! Cluster throughput: sweep the shard count under mixed-program traffic
//! and watch aggregate gate-evals/MEM-cycle scale.
//!
//! The traffic is 510 int2float and 510 8-bit-adder requests, interleaved
//! as they would arrive at a service queue. Same-program requests can
//! share a crossbar pass (MAGIC executes one step sequence for all rows),
//! so the cluster packs by program fingerprint and spreads the resulting
//! row batches over its shards; more shards ⇒ more batches per wave ⇒
//! fewer elapsed MEM cycles for the same work.
//!
//! Run with: `cargo run --release --example cluster_throughput`
//!
//! Writes the sweep to `BENCH_cluster.json`.

use pimecc::netlist::generators::{ripple_adder, Benchmark};
use pimecc::prelude::*;

const N: usize = 255;
const M: usize = 5;
const PER_PROGRAM: usize = 2 * N; // two full batches of each program

fn i2f_request(i: usize) -> Vec<bool> {
    let x = (i * 37) as u32 & 0x7FF;
    (0..11).map(|b| x >> b & 1 != 0).collect()
}

fn add_request(i: usize) -> Vec<bool> {
    let x = (i * 73) as u32 & 0xFFFF;
    (0..16).map(|b| x >> b & 1 != 0).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let i2f = Benchmark::Int2float.build();
    let i2f_nor = i2f.netlist.to_nor();
    let adder = ripple_adder(8); // 16 inputs, 9 outputs
    let adder_nor = adder.to_nor();
    println!(
        "mixed traffic: {PER_PROGRAM} x {} + {PER_PROGRAM} x adder8, {N}x{N}/{M} shards\n",
        i2f.name
    );

    println!(
        "{:>6} {:>6} {:>16} {:>14} {:>18} {:>9}",
        "shards", "waves", "wall MEM cycles", "cycles/request", "gate-evals/cycle", "speedup"
    );

    let mut sweep = Vec::new();
    let mut one_shard_wall = None;
    let mut one_shard_throughput = 0.0;
    for shards in [1usize, 2, 4] {
        let mut cluster = PimClusterBuilder::new(shards, N, M).build()?;
        let pi = cluster.compile(&i2f_nor)?;
        let pa = cluster.compile(&adder_nor)?;

        // Interleaved arrival, as at a shared service queue.
        let mut tickets = Vec::new();
        for i in 0..PER_PROGRAM {
            tickets.push((cluster.submit(&pi, i2f_request(i))?, true, i));
            tickets.push((cluster.submit(&pa, add_request(i))?, false, i));
        }
        let outcome = cluster.flush()?;
        for &(ticket, is_i2f, i) in &tickets {
            let got = outcome.outputs_for(ticket).expect("served");
            let want = if is_i2f {
                (i2f.reference)(&i2f_request(i))
            } else {
                adder.eval(&add_request(i))
            };
            assert_eq!(got, want.as_slice(), "{ticket}");
        }

        let wall = outcome.wall_mem_cycles;
        let single = *one_shard_wall.get_or_insert(wall);
        if shards == 1 {
            one_shard_throughput = outcome.gate_evals_per_mem_cycle();
        }
        let speedup = single as f64 / wall as f64;
        println!(
            "{shards:>6} {:>6} {:>16} {:>14.2} {:>18.2} {:>8.1}x",
            outcome.waves,
            wall,
            outcome.mem_cycles_per_request(),
            outcome.gate_evals_per_mem_cycle(),
            speedup,
        );
        let utilization: Vec<String> = outcome
            .shard_reports
            .iter()
            .map(|r| format!("{:.3}", r.utilization(wall)))
            .collect();
        sweep.push(format!(
            concat!(
                "    {{\"shards\": {}, \"waves\": {}, \"wall_mem_cycles\": {}, ",
                "\"mem_cycles_per_request\": {:.3}, \"gate_evals_per_mem_cycle\": {:.3}, ",
                "\"speedup_vs_1_shard\": {:.3}, \"shard_utilization\": [{}]}}"
            ),
            shards,
            outcome.waves,
            wall,
            outcome.mem_cycles_per_request(),
            outcome.gate_evals_per_mem_cycle(),
            speedup,
            utilization.join(", "),
        ));

        if shards == 4 {
            let ratio = outcome.gate_evals_per_mem_cycle() / one_shard_throughput;
            println!(
                "\n4 shards vs 1: {ratio:.2}x aggregate gate-evals/MEM-cycle on mixed traffic"
            );
            assert!(
                ratio >= 2.0,
                "4 shards must at least double aggregate throughput: {ratio:.2}x"
            );
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"cluster_throughput\",\n",
            "  \"geometry\": {{\"n\": {}, \"m\": {}}},\n",
            "  \"traffic\": {{\"int2float\": {}, \"adder8\": {}}},\n",
            "  \"sweep\": [\n{}\n  ]\n}}\n"
        ),
        N,
        M,
        PER_PROGRAM,
        PER_PROGRAM,
        sweep.join(",\n"),
    );
    std::fs::write("BENCH_cluster.json", &json)?;
    println!("\nwrote BENCH_cluster.json");
    Ok(())
}
