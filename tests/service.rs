//! Integration tests for the async cluster service: non-blocking
//! submission through cloned [`ClusterHandle`]s, waitable tickets,
//! deadline- and threshold-driven auto-flush, bulk drains, backpressure
//! and the shutdown lifecycle.

use pimecc::cluster::handle;
use pimecc::netlist::{Netlist, NetlistBuilder};
use pimecc::prelude::*;
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn xor_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(2);
    let g = b.xor(ins[0], ins[1]);
    b.output(g);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

fn mux_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(3);
    let g1 = b.xor(ins[0], ins[1]);
    let g2 = b.mux(ins[2], g1, ins[0]);
    b.output(g1);
    b.output(g2);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

#[test]
fn a_deadline_configured_service_flushes_without_any_explicit_flush() {
    // Acceptance bar: nothing but submissions and (passive) polling — no
    // flush(), no wait()-driven nudge — and the results still arrive,
    // because the worker's max-latency deadline fires.
    let (nor, nl) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3)
        .flush_after(Duration::from_millis(5))
        .spawn()
        .expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    let tickets: Vec<handle::Ticket> = (0..6u32)
        .map(|v| {
            handle
                .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                .expect("submits")
        })
        .collect();
    // Poll with try_wait only — it never asks for a flush.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut served = vec![None; tickets.len()];
    while served.iter().any(Option::is_none) {
        assert!(
            Instant::now() < deadline,
            "deadline flush never fired: {served:?}"
        );
        for (slot, t) in served.iter_mut().zip(&tickets) {
            if slot.is_none() {
                *slot = t.try_wait().expect("no failures expected");
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for (v, result) in served.iter().enumerate() {
        let v = v as u32;
        let result = result.as_ref().expect("served");
        assert_eq!(result.outputs, nl.eval(&[v & 1 != 0, v & 2 != 0]));
    }
    handle.close().expect("closes");
}

#[test]
fn concurrent_producers_are_bit_identical_to_a_serial_reference_run() {
    // N threads hammer cloned handles with mixed-program traffic. Every
    // (ticket id, program, inputs) triple is collected; afterwards the
    // same stream — ordered by ticket id, i.e. by the service's channel
    // order — is replayed through a synchronous cluster of the same
    // shape. Outputs must agree bit for bit, ticket by ticket.
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 40;
    let (xor_nor, _) = xor_circuit();
    let (mux_nor, _) = mux_circuit();

    let handle = PimClusterBuilder::new(2, 30, 3)
        .auto_flush_at(16)
        .spawn()
        .expect("spawns");
    let xor = handle.compile(&xor_nor).expect("compiles");
    let mux = handle.compile(&mux_nor).expect("compiles");

    let submitted: Vec<(u64, bool, Vec<bool>, OutputSlice)> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for producer in 0..PRODUCERS {
            let handle = handle.clone();
            let xor = xor.clone();
            let mux = mux.clone();
            joins.push(s.spawn(move || {
                let mut log = Vec::new();
                for i in 0..PER_PRODUCER {
                    let v = (producer * 31 + i * 7) as u32;
                    let wide = (producer + i) % 3 == 0;
                    let (program, inputs) = if wide {
                        (&mux, vec![v & 1 != 0, v & 2 != 0, v & 4 != 0])
                    } else {
                        (&xor, vec![v & 1 != 0, v & 2 != 0])
                    };
                    let ticket = handle.submit(program, inputs.clone()).expect("submits");
                    // Waiting from inside the producers exercises result
                    // delivery under contention for half the traffic...
                    if i % 2 == 0 {
                        let result = ticket.wait().expect("served");
                        log.push((ticket.id(), wide, inputs, result.outputs));
                    } else {
                        log.push((ticket.id(), wide, inputs, OutputSlice::default()));
                    }
                }
                log
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("producer thread"))
            .collect()
    });
    // ...and the other half is collected in bulk.
    handle.close().expect("closes");
    let outcome = handle.drain().expect("drains");
    assert_eq!(
        outcome.requests(),
        PRODUCERS * PER_PRODUCER - submitted.iter().filter(|e| !e.3.is_empty()).count(),
        "drain returns exactly the unclaimed tickets"
    );

    // Serial reference: one synchronous cluster, same geometry, fed the
    // identical stream in ticket order.
    let mut stream: Vec<(u64, bool, Vec<bool>, OutputSlice)> = submitted;
    stream.sort_by_key(|&(id, _, _, _)| id);
    assert_eq!(stream.len(), PRODUCERS * PER_PRODUCER);
    for (expect_id, (id, _, _, _)) in stream.iter().enumerate() {
        assert_eq!(*id, expect_id as u64, "ticket ids are dense channel order");
    }
    let mut sync = PimCluster::new(2, 30, 3).expect("cluster");
    let xor_sync = sync.compile(&xor_nor).expect("compiles");
    let mux_sync = sync.compile(&mux_nor).expect("compiles");
    let sync_tickets: Vec<Ticket> = stream
        .iter()
        .map(|(_, wide, inputs, _)| {
            let program = if *wide { &mux_sync } else { &xor_sync };
            sync.submit(program, inputs.clone()).expect("submits")
        })
        .collect();
    let reference = sync.flush().expect("flushes");

    for ((id, _, _, waited), sync_ticket) in stream.iter().zip(&sync_tickets) {
        assert_eq!(sync_ticket.id(), *id, "reference replays in ticket order");
        let want = reference.outputs_for(*sync_ticket).expect("served");
        // Drained results are keyed by the service ticket id, which equals
        // the sync ticket id here (both are dense submission order).
        let got = if waited.is_empty() {
            outcome.outputs_for(*sync_ticket).expect("drained")
        } else {
            waited.as_slice()
        };
        assert_eq!(got, want, "ticket {id}");
    }
}

#[test]
fn drain_after_close_returns_every_ticket_exactly_once() {
    let (nor, nl) = xor_circuit();
    let handle = PimClusterBuilder::new(2, 30, 3).spawn().expect("spawns");
    let p = handle.compile(&nor).expect("compiles");

    // Submissions arrive from several clones.
    let tickets: Vec<handle::Ticket> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for producer in 0..3usize {
            let handle = handle.clone();
            let p = p.clone();
            joins.push(s.spawn(move || {
                (0..20u32)
                    .map(|i| {
                        let v = producer as u32 * 20 + i;
                        handle
                            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                            .expect("submits")
                    })
                    .collect::<Vec<_>>()
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("producer"))
            .collect()
    });
    assert_eq!(tickets.len(), 60);

    handle.close().expect("closes");
    let outcome = handle.drain().expect("drains");
    assert_eq!(outcome.requests(), 60, "every ticket, exactly once");
    // Sorted by ticket, no duplicates, every id present.
    let ids: Vec<u64> = outcome.results.iter().map(|r| r.ticket.id()).collect();
    assert_eq!(ids, (0..60).collect::<Vec<u64>>());
    // Latency clocks are populated by the service path.
    assert!(outcome
        .results
        .iter()
        .all(|r| r.execute_latency > Duration::ZERO));
    // The drained outputs are the right outputs: `tickets` holds each
    // producer's receipts in order, so entry k was submitted with the
    // inputs derived from v = k.
    for (k, t) in tickets.iter().enumerate() {
        let v = k as u32;
        let r = outcome
            .results
            .iter()
            .find(|r| r.ticket.id() == t.id())
            .expect("present");
        assert_eq!(r.outputs, nl.eval(&[v & 1 != 0, v & 2 != 0]), "{t}");
    }
    // A second drain is empty, waits on drained tickets fail closed.
    assert_eq!(handle.drain().expect("drains").requests(), 0);
    assert!(matches!(
        tickets[0].wait(),
        Err(ClusterError::TicketUnserved { .. })
    ));
}

#[test]
fn bounded_queues_backpressure_without_deadlock_and_try_submit_fails_fast() {
    let (nor, nl) = xor_circuit();
    // A tiny bound forces constant producer/worker handoff; with the
    // threshold at the same size the worker drains continuously, so every
    // submission eventually passes the gate.
    let handle = PimClusterBuilder::new(1, 30, 3)
        .queue_limit(2)
        .auto_flush_at(2)
        .spawn()
        .expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    let tickets: Vec<handle::Ticket> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for producer in 0..2usize {
            let handle = handle.clone();
            let p = p.clone();
            joins.push(s.spawn(move || {
                (0..25u32)
                    .map(|i| {
                        let v = producer as u32 * 25 + i;
                        handle
                            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                            .expect("backpressured submit still lands")
                    })
                    .collect::<Vec<_>>()
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("producer"))
            .collect()
    });
    for t in &tickets {
        let r = t.wait().expect("served");
        assert_eq!(r.outputs.len(), nl.eval(&[false, false]).len());
    }
    handle.close().expect("closes");

    // try_submit against a saturated queue fails fast instead of waiting.
    let stalled = PimClusterBuilder::new(1, 30, 3)
        .queue_limit(1)
        .spawn()
        .expect("spawns");
    let q = stalled.compile(&nor).expect("compiles");
    let _held = stalled
        .try_submit(&q, vec![true, false])
        .expect("first fits");
    assert_eq!(
        stalled.try_submit(&q, vec![true, true]).unwrap_err(),
        ClusterError::Saturated { limit: 1 }
    );
    stalled.close().expect("closes");
    assert_eq!(
        stalled.try_submit(&q, vec![true, true]).unwrap_err(),
        ClusterError::Closed
    );
}

#[test]
fn a_backlogged_deadline_service_still_forms_batches() {
    // Regression: a worker running behind its deadline used to dequeue
    // one aged request at a time — each with an already-expired deadline
    // — and degenerate into one wave per request. The expired-deadline
    // path must absorb the channel backlog before flushing.
    const REQUESTS: usize = 600;
    let (nor, nl) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3)
        .flush_after(Duration::from_micros(50))
        .spawn()
        .expect("spawns");
    let p = handle.compile_packed(&nor).expect("compiles");
    let tickets: Vec<handle::Ticket> = (0..REQUESTS as u32)
        .map(|v| {
            handle
                .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                .expect("submits")
        })
        .collect();
    handle.close().expect("closes");
    let outcome = handle.drain().expect("drains");
    assert_eq!(outcome.requests(), REQUESTS);
    assert!(
        outcome.waves <= REQUESTS / 10,
        "a backlogged deadline worker must batch, not serve one wave per \
         request: {} waves for {REQUESTS} requests",
        outcome.waves
    );
    for (v, t) in tickets.iter().enumerate() {
        let v = v as u32;
        assert_eq!(
            outcome.outputs_for(t.key()),
            Some(nl.eval(&[v & 1 != 0, v & 2 != 0]).as_slice()),
            "{t}"
        );
    }
}

#[test]
fn waiting_on_a_drained_ticket_errors_while_the_service_is_still_open() {
    // Regression: wait()/try_wait() on a result a mid-service drain()
    // already claimed used to park forever (the board only failed absent
    // tickets after close). Resolved-but-absent must error immediately.
    let (nor, _) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3).spawn().expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    let early = handle.submit(&p, vec![true, false]).expect("submits");
    let claimed = handle.drain().expect("drains");
    assert_eq!(claimed.requests(), 1);
    assert!(!handle.is_closed(), "the service is still open");
    assert_eq!(
        early.wait().unwrap_err(),
        ClusterError::TicketUnserved { ticket: 0 }
    );
    assert_eq!(
        early.try_wait().unwrap_err(),
        ClusterError::TicketUnserved { ticket: 0 }
    );
    // The service keeps serving fresh traffic afterwards.
    let late = handle.submit(&p, vec![false, true]).expect("submits");
    assert!(late.wait().is_ok());
    handle.close().expect("closes");
}

#[test]
fn explicit_flush_and_in_flight_tracking() {
    let (nor, _) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3).spawn().expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    for v in 0..4u32 {
        let _t = handle
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    // Without any auto-flush knob, an explicit flush() is the only thing
    // that drains — drain() would nudge one itself, so watch in_flight.
    handle.flush().expect("flushes");
    let deadline = Instant::now() + Duration::from_secs(20);
    while handle.in_flight() > 0 {
        assert!(Instant::now() < deadline, "flush() never drained the queue");
        std::thread::sleep(Duration::from_millis(1));
    }
    let outcome = handle.drain().expect("drains");
    assert_eq!(outcome.requests(), 4);
    assert!(outcome.waves >= 1);
    handle.close().expect("closes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The service is the synchronous cluster behind a channel: fed the
    // same submission order with the same threshold, the worker must
    // produce bit-identical results *and placements* — scheduling stays a
    // pure function of submission order even though a thread boundary and
    // a channel now sit in the middle.
    #[test]
    fn service_threshold_flush_places_exactly_like_sync_auto_flush(
        choices in proptest::collection::vec((any::<bool>(), 0u32..256), 1..50),
        threshold in 1usize..12,
    ) {
        let (xor_nor, _) = xor_circuit();
        let (mux_nor, _) = mux_circuit();

        // Synchronous reference: auto_flush_at(threshold) + final flush.
        let mut sync = PimClusterBuilder::new(2, 30, 3)
            .auto_flush_at(threshold)
            .build()
            .expect("cluster");
        let xor_sync = sync.compile(&xor_nor).expect("compiles");
        let mux_sync = sync.compile(&mux_nor).expect("compiles");
        let mut sync_tickets = Vec::new();
        for &(wide, v) in &choices {
            let (program, inputs) = if wide {
                (&mux_sync, vec![v & 1 != 0, v & 2 != 0, v & 4 != 0])
            } else {
                (&xor_sync, vec![v & 1 != 0, v & 2 != 0])
            };
            sync_tickets.push(sync.submit(program, inputs).expect("submits"));
        }
        let reference = sync.flush().expect("flushes");

        // Service: same threshold, same stream, single producer (so the
        // channel order *is* the submission order), closed then drained.
        let service = PimClusterBuilder::new(2, 30, 3)
            .auto_flush_at(threshold)
            .spawn()
            .expect("spawns");
        let xor_svc = service.compile(&xor_nor).expect("compiles");
        let mux_svc = service.compile(&mux_nor).expect("compiles");
        let mut service_tickets = Vec::new();
        for &(wide, v) in &choices {
            let (program, inputs) = if wide {
                (&mux_svc, vec![v & 1 != 0, v & 2 != 0, v & 4 != 0])
            } else {
                (&xor_svc, vec![v & 1 != 0, v & 2 != 0])
            };
            service_tickets.push(service.submit(program, inputs).expect("submits"));
        }
        service.close().expect("closes");
        let outcome = service.drain().expect("drains");

        // Ticket ids agree (dense, submission-ordered) and every result —
        // outputs, shard, wave, axis, line, offset — is identical.
        // (TicketResult equality deliberately ignores the wall-clock
        // latency fields.)
        prop_assert_eq!(outcome.requests(), reference.requests());
        for (s, t) in sync_tickets.iter().zip(&service_tickets) {
            prop_assert_eq!(s.id(), t.id());
        }
        prop_assert_eq!(&outcome.results, &reference.results);
        prop_assert_eq!(outcome.stats, reference.stats);
        prop_assert_eq!(outcome.input_check, reference.input_check);
        prop_assert_eq!(outcome.wall_mem_cycles, reference.wall_mem_cycles);
        prop_assert_eq!(outcome.waves, reference.waves);
        prop_assert_eq!(&outcome.shard_reports, &reference.shard_reports);
    }

    // Concurrent producers over a shard whose fused replays fan out across
    // a random row-team width must stay bit-identical — outputs,
    // placements, `MachineStats` and input-`CheckReport`s — to a
    // synchronous *scalar-reference* cluster replaying the same stream in
    // channel (= ticket) order. Neither the thread boundary, nor the
    // producer interleaving, nor the worker team, nor the kernel lane
    // width may leak into anything but wall-clock time.
    #[test]
    fn concurrent_producers_on_a_threaded_shard_match_the_scalar_reference(
        threads in 1usize..9,
        choices in proptest::collection::vec((any::<bool>(), 0u32..256), 8..40),
    ) {
        let (xor_nor, _) = xor_circuit();
        let (mux_nor, _) = mux_circuit();

        let service = PimClusterBuilder::new(1, 30, 3)
            .threads(threads)
            .auto_flush_at(8)
            .spawn()
            .expect("spawns");
        let xor_svc = service.compile(&xor_nor).expect("compiles");
        let mux_svc = service.compile(&mux_nor).expect("compiles");
        // Two producers race over disjoint halves of the workload; the
        // channel serializes them into *some* dense ticket order, which the
        // log reconstructs afterwards.
        let submitted: Vec<(u64, bool, Vec<bool>)> = std::thread::scope(|s| {
            let mut joins = Vec::new();
            for producer in 0..2usize {
                let service = service.clone();
                let xor_svc = xor_svc.clone();
                let mux_svc = mux_svc.clone();
                let mine: Vec<(bool, u32)> = choices
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == producer)
                    .map(|(_, &c)| c)
                    .collect();
                joins.push(s.spawn(move || {
                    let mut log = Vec::new();
                    for (wide, v) in mine {
                        let (program, inputs) = if wide {
                            (&mux_svc, vec![v & 1 != 0, v & 2 != 0, v & 4 != 0])
                        } else {
                            (&xor_svc, vec![v & 1 != 0, v & 2 != 0])
                        };
                        let ticket = service.submit(program, inputs.clone()).expect("submits");
                        log.push((ticket.id(), wide, inputs));
                    }
                    log
                }));
            }
            joins
                .into_iter()
                .flat_map(|j| j.join().expect("producer"))
                .collect()
        });
        service.close().expect("closes");
        let outcome = service.drain().expect("drains");
        prop_assert_eq!(outcome.requests(), choices.len());

        let mut stream = submitted;
        stream.sort_by_key(|&(id, _, _)| id);

        // Scalar single-thread reference, same threshold, same stream.
        let mut scalar = PimClusterBuilder::new(1, 30, 3)
            .engine(SimEngine::ScalarReference)
            .auto_flush_at(8)
            .build()
            .expect("cluster");
        let xor_ref = scalar.compile(&xor_nor).expect("compiles");
        let mux_ref = scalar.compile(&mux_nor).expect("compiles");
        for (_, wide, inputs) in &stream {
            let program = if *wide { &mux_ref } else { &xor_ref };
            let _t = scalar.submit(program, inputs.clone()).expect("submits");
        }
        let reference = scalar.flush().expect("flushes");

        prop_assert_eq!(&outcome.results, &reference.results);
        prop_assert_eq!(outcome.stats, reference.stats);
        prop_assert_eq!(outcome.input_check, reference.input_check);
        prop_assert_eq!(outcome.wall_mem_cycles, reference.wall_mem_cycles);
        prop_assert_eq!(outcome.waves, reference.waves);
    }
}
