//! Property tests for pass-3 co-location and the heterogeneous router:
//! mixed-fingerprint waves must stay bit-identical to the serial
//! one-group-per-wave reference even on a degraded pool (a quarantined
//! shard plus a retired line), and scheduling must be a pure function of
//! submission order on a mixed-geometry pool.

use pimecc::netlist::{Netlist, NetlistBuilder};
use pimecc::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn xor_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(2);
    let g = b.xor(ins[0], ins[1]);
    b.output(g);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

fn mux_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(3);
    let g1 = b.xor(ins[0], ins[1]);
    let g2 = b.mux(ins[2], g1, ins[0]);
    b.output(g1);
    b.output(g2);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

/// Builds the degraded three-shard pool the properties run on: shard 1
/// quarantined, shard 0 with one block-line already retired (a one-shot
/// transient double fault during a warm-up flush trips `retire_after(1)`),
/// shard 2 clean. Fully deterministic, so two identically-configured pools
/// are bit-identical twins.
fn degraded_pool(colocate: bool) -> (PimCluster, CompiledProgram, CompiledProgram) {
    let (xor_nor, _) = xor_circuit();
    let (mux_nor, _) = mux_circuit();
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    let mut cluster = PimClusterBuilder::new(3, 30, 3)
        .retire_after(1)
        .colocate(colocate)
        .shard_fault_hook(0, move |pm| {
            if flag.swap(false, Ordering::Relaxed) {
                pm.inject_fault(0, 0);
                pm.inject_fault(0, 1);
            }
        })
        .build()
        .expect("builds");
    cluster.set_quarantined(1, true).expect("quarantines");
    let xor = cluster.compile(&xor_nor).expect("compiles");
    let mux = cluster.compile(&mux_nor).expect("compiles");
    // Warm-up: a single-fingerprint flush lands on shard 0, trips the
    // armed fault, retries to correct outputs and retires the struck
    // block-line — the measured traffic then runs on a clean but degraded
    // pool.
    for v in 0..4u32 {
        let _ = cluster
            .submit(&xor, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let warmup = cluster.flush().expect("warm-up flushes");
    assert!(warmup.failed.is_empty(), "warm-up must fully resolve");
    assert!(
        cluster.health().shards[0].retired_lines >= 1,
        "the warm-up fault must retire a line"
    );
    (cluster, xor, mux)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Pass-3 co-location shares waves between foreign fingerprints; it
    // must never change a single answer. Every ticket of a mixed stream
    // on the degraded pool resolves to the same bits as the serial
    // one-group-per-wave (`colocate(false)`) reference — and re-running
    // the co-located configuration reproduces outputs, placements, stats
    // and check counts bit-identically.
    #[test]
    fn colocated_waves_match_the_serial_reference_on_a_degraded_pool(
        choices in proptest::collection::vec((any::<bool>(), 0u32..256), 1..50),
    ) {
        let (_, xor_nl) = xor_circuit();
        let (_, mux_nl) = mux_circuit();
        let run = |colocate: bool| {
            let (mut cluster, xor, mux) = degraded_pool(colocate);
            let mut tickets = Vec::new();
            for &(is_mux, v) in &choices {
                let (program, inputs) = if is_mux {
                    (&mux, vec![v & 1 != 0, v & 2 != 0, v & 4 != 0])
                } else {
                    (&xor, vec![v & 1 != 0, v & 2 != 0])
                };
                tickets.push(cluster.submit(program, inputs).expect("submits"));
            }
            (tickets, cluster.flush().expect("flushes"))
        };
        let (tickets, colocated) = run(true);
        let (serial_tickets, serial) = run(false);
        let (again_tickets, again) = run(true);

        // Outputs: bit-identical to the serial reference *and* to the
        // host model, ticket by ticket.
        prop_assert_eq!(colocated.requests(), serial.requests());
        for (i, (&(is_mux, v), (t, s))) in
            choices.iter().zip(tickets.iter().zip(&serial_tickets)).enumerate()
        {
            let want = if is_mux {
                mux_nl.eval(&[v & 1 != 0, v & 2 != 0, v & 4 != 0])
            } else {
                xor_nl.eval(&[v & 1 != 0, v & 2 != 0])
            };
            prop_assert_eq!(colocated.outputs_for(*t), Some(want.as_slice()), "request {}", i);
            prop_assert_eq!(colocated.outputs_for(*t), serial.outputs_for(*s), "request {}", i);
        }
        // Co-location never lands traffic on the quarantined shard.
        prop_assert!(colocated.results.iter().all(|r| r.shard != 1));

        // Determinism pin: the identically-configured rerun is
        // bit-identical — results (placements included), machine stats,
        // check counts, wave count.
        for (t, a) in tickets.iter().zip(&again_tickets) {
            prop_assert_eq!(t.id(), a.id());
        }
        prop_assert_eq!(&again.results, &colocated.results);
        prop_assert_eq!(again.stats, colocated.stats);
        prop_assert_eq!(again.input_check, colocated.input_check);
        prop_assert_eq!(again.waves, colocated.waves);
        prop_assert_eq!(&again.shard_reports, &colocated.shard_reports);
    }

    // The mixed-geometry router: wide programs only fit the tall shard,
    // narrow traffic spreads over the short ones, and the whole schedule
    // is a pure function of submission order — a second identically-built
    // pool reproduces every placement and counter.
    #[test]
    fn heterogeneous_routing_is_deterministic(
        choices in proptest::collection::vec((any::<bool>(), 0u32..256), 1..50),
    ) {
        let (xor_nor, xor_nl) = xor_circuit();
        let run = || {
            let mut cluster = PimClusterBuilder::new(3, 30, 3)
                .shard_geometries(vec![(30, 3), (30, 3), (60, 3)])
                .build()
                .expect("builds");
            let narrow = cluster.compile(&xor_nor).expect("compiles");
            let mut donor = PimDevice::new(60, 3).expect("device");
            let wide = donor.compile(&xor_nor).expect("compiles");
            let wide = cluster.adopt(wide.program()).expect("adopts");
            let mut tickets = Vec::new();
            for &(use_wide, v) in &choices {
                let program = if use_wide { &wide } else { &narrow };
                let inputs = vec![v & 1 != 0, v & 2 != 0];
                tickets.push(cluster.submit(program, inputs).expect("submits"));
            }
            (tickets, cluster.flush().expect("flushes"))
        };
        let (tickets, first) = run();
        let (rerun_tickets, rerun) = run();

        prop_assert_eq!(first.requests(), choices.len());
        for (&(use_wide, v), t) in choices.iter().zip(&tickets) {
            let want = xor_nl.eval(&[v & 1 != 0, v & 2 != 0]);
            prop_assert_eq!(first.outputs_for(*t), Some(want.as_slice()));
            let r = first.results.iter().find(|r| r.ticket == *t).expect("served");
            if use_wide {
                prop_assert_eq!(r.shard, 2, "wide programs only fit the tall shard");
            } else {
                prop_assert!(r.shard < 2, "narrow traffic keeps the short shards");
            }
        }
        for (t, a) in tickets.iter().zip(&rerun_tickets) {
            prop_assert_eq!(t.id(), a.id());
        }
        prop_assert_eq!(&rerun.results, &first.results);
        prop_assert_eq!(rerun.stats, first.stats);
        prop_assert_eq!(rerun.input_check, first.input_check);
        prop_assert_eq!(rerun.waves, first.waves);
        prop_assert_eq!(&rerun.shard_reports, &first.shard_reports);
    }
}
