//! Integration tests for the self-healing health subsystem: SLO metric
//! percentiles pinned against a serial reference, error-budget
//! quarantine and scrub-driven recovery, deterministic rerouting around
//! quarantined shards, and scrub/deadline coexistence in the worker.

use pimecc::cluster::LatencyStats;
use pimecc::netlist::{Netlist, NetlistBuilder};
use pimecc::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn xor_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(2);
    let g = b.xor(ins[0], ins[1]);
    b.output(g);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

fn mux_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(3);
    let g1 = b.xor(ins[0], ins[1]);
    let g2 = b.mux(ins[2], g1, ins[0]);
    b.output(g1);
    b.output(g2);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

#[test]
fn metrics_percentiles_match_a_serial_reference() {
    // The snapshot's p50/p95/p99 must equal nearest-rank percentiles
    // computed independently over the very latencies the drain returned —
    // the snapshot is an aggregation, not an estimate.
    let (nor, _) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3)
        .flush_after(Duration::from_millis(1))
        .spawn()
        .expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    for v in 0..60u32 {
        let _ = handle
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let outcome = handle.drain().expect("drains");
    let snap = handle.metrics();
    handle.close().expect("closes");

    assert_eq!(outcome.requests(), 60);
    assert_eq!(snap.requests, 60);
    let queue: Vec<Duration> = outcome.results.iter().map(|r| r.queue_latency).collect();
    let execute: Vec<Duration> = outcome.results.iter().map(|r| r.execute_latency).collect();
    assert_eq!(snap.queue_latency, LatencyStats::from_samples(&queue));
    assert_eq!(snap.execute_latency, LatencyStats::from_samples(&execute));
    assert_eq!(snap.queue_latency.samples, 60);
}

#[test]
fn error_budget_quarantines_and_clean_scrubs_recover() {
    // Sync front-end, storm hook on shard 1: corrected errors drain the
    // budget until the shard is quarantined, flushes reroute to shard 0,
    // and consecutive clean scrubs lift the quarantine.
    let (nor, nl) = xor_circuit();
    let storm = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&storm);
    let mut cluster = PimClusterBuilder::new(2, 30, 3)
        .error_budget(1)
        .recovery_scrubs(2)
        .shard_fault_hook(1, move |pm| {
            if flag.load(Ordering::Relaxed) {
                pm.inject_fault(0, 0);
            }
        })
        .build()
        .expect("builds");
    let p = cluster.compile(&nor).expect("compiles");
    let verify = |outcome: &ClusterOutcome, base: u32| {
        for (i, r) in outcome.results.iter().enumerate() {
            let v = base + i as u32;
            assert_eq!(
                r.outputs,
                nl.eval(&[v & 1 != 0, v & 2 != 0]),
                "ticket #{}",
                r.ticket.id()
            );
        }
    };
    // 64 same-program requests overflow one batch, so the spread pass
    // puts traffic (and the fault hook) on shard 1 every flush.
    let mut rounds = 0;
    while cluster.health().shards[1].state != ShardState::Quarantined {
        rounds += 1;
        assert!(rounds <= 16, "the error budget never tripped");
        for v in 0..64u32 {
            let _ = cluster
                .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                .expect("submits");
        }
        let outcome = cluster.flush().expect("flushes");
        verify(&outcome, 0);
    }
    let tripped = cluster.health();
    assert_eq!(tripped.shards[1].quarantines, 1);
    assert!(tripped.shards[1].window_errors > 1, "budget exceeded");

    // Quarantined: the whole next flush lands on shard 0.
    for v in 0..64u32 {
        let _ = cluster
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let rerouted = cluster.flush().expect("flushes");
    verify(&rerouted, 0);
    assert!(
        rerouted.results.iter().all(|r| r.shard == 0),
        "no traffic may land on a quarantined shard"
    );
    assert_eq!(rerouted.shard_reports[1].batches, 0);

    // Storm over: the configured streak of clean scrubs recovers it.
    storm.store(false, Ordering::Relaxed);
    let mut scrubs = 0;
    while cluster.health().shards[1].state == ShardState::Quarantined {
        scrubs += 1;
        assert!(scrubs <= 8, "the shard never recovered");
        let _ = cluster.scrub_shard(1).expect("scrubs");
    }
    let healed = cluster.health();
    assert!(scrubs >= 2, "recovery takes the configured clean streak");
    assert_eq!(healed.shards[1].recoveries, 1);
    assert_eq!(healed.shards[1].state, ShardState::Healthy);
    assert_eq!(
        healed.uncorrectable(),
        0,
        "every injected flip was SEC-correctable"
    );

    // The recovered shard serves traffic again.
    for v in 0..64u32 {
        let _ = cluster
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let restored = cluster.flush().expect("flushes");
    verify(&restored, 0);
    assert!(restored.results.iter().any(|r| r.shard == 1));
}

#[test]
fn background_scrubs_coexist_with_deadline_flushes() {
    // Busy phase: deadline-flushed traffic keeps being served while the
    // scrub timer is far shorter than the deadline. Idle phase: the
    // worker keeps scrubbing on its own.
    let (nor, nl) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3)
        .flush_after(Duration::from_millis(2))
        .scrub_period(Duration::from_millis(1))
        .spawn()
        .expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    assert_eq!(
        handle.metrics().effective_flush_after,
        Some(Duration::from_millis(2)),
        "non-adaptive deadline is reported verbatim"
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    for v in 0..20u32 {
        let t = handle
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
        let r = t.wait().expect("served");
        assert_eq!(r.outputs, nl.eval(&[v & 1 != 0, v & 2 != 0]));
        assert!(Instant::now() < deadline, "scrubs starved the flush path");
    }
    let busy = handle.metrics();
    assert_eq!(busy.requests, 20);

    // Idle: scrub waves keep accumulating with no traffic at all.
    let before = handle.metrics().scrub_waves;
    let grown = loop {
        std::thread::sleep(Duration::from_millis(5));
        let now = handle.metrics().scrub_waves;
        if now > before {
            break now;
        }
        assert!(
            Instant::now() < deadline,
            "an idle worker must keep scrubbing"
        );
    };
    assert!(grown > before);
    handle.close().expect("closes");
}

/// Maps a 3-shard pool with shard 1 quarantined onto the equivalent
/// 2-shard pool: active[0]=0 → 0, active[1]=2 → 1.
fn map_shard(shard: usize) -> usize {
    match shard {
        0 => 0,
        2 => 1,
        other => panic!("traffic landed on quarantined shard {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn quarantine_reroutes_bit_identically_to_the_smaller_pool(
        choices in proptest::collection::vec((any::<bool>(), 0u32..256), 1..50),
    ) {
        // A pool with a quarantined shard must plan exactly like a pool
        // built without that shard, modulo the index renaming — the
        // determinism guarantee that makes quarantine safe to engage
        // between flushes.
        let (xor_nor, _) = xor_circuit();
        let (mux_nor, _) = mux_circuit();

        let mut big = PimClusterBuilder::new(3, 30, 3).build().expect("builds");
        big.set_quarantined(1, true).expect("quarantines");
        let mut small = PimClusterBuilder::new(2, 30, 3).build().expect("builds");

        let bp = (
            big.compile(&xor_nor).expect("compiles"),
            big.compile(&mux_nor).expect("compiles"),
        );
        let sp = (
            small.compile(&xor_nor).expect("compiles"),
            small.compile(&mux_nor).expect("compiles"),
        );
        for &(is_mux, v) in &choices {
            let inputs: Vec<bool> = if is_mux {
                (0..3).map(|b| v >> b & 1 != 0).collect()
            } else {
                (0..2).map(|b| v >> b & 1 != 0).collect()
            };
            let (b, s) = if is_mux { (&bp.1, &sp.1) } else { (&bp.0, &sp.0) };
            let _ = big.submit(b, inputs.clone()).expect("submits");
            let _ = small.submit(s, inputs).expect("submits");
        }
        let big_out = big.flush().expect("flushes");
        let small_out = small.flush().expect("flushes");

        prop_assert_eq!(big_out.results.len(), small_out.results.len());
        prop_assert_eq!(big_out.waves, small_out.waves);
        let mut big_sorted = big_out.results;
        let mut small_sorted = small_out.results;
        big_sorted.sort_by_key(|r| r.ticket.id());
        small_sorted.sort_by_key(|r| r.ticket.id());
        for (b, s) in big_sorted.iter().zip(&small_sorted) {
            prop_assert_eq!(b.ticket.id(), s.ticket.id());
            prop_assert_eq!(map_shard(b.shard), s.shard);
            prop_assert_eq!(b.wave, s.wave);
            prop_assert_eq!(b.axis, s.axis);
            prop_assert_eq!(b.line, s.line);
            prop_assert_eq!(b.offset, s.offset);
            prop_assert_eq!(&b.outputs, &s.outputs);
        }
    }
}
