//! Integration tests for the self-healing health subsystem: SLO metric
//! percentiles pinned against a serial reference, error-budget
//! quarantine and scrub-driven recovery, deterministic rerouting around
//! quarantined shards, and scrub/deadline coexistence in the worker.

use pimecc::cluster::LatencyStats;
use pimecc::core::{CampaignConfig, FaultCampaign};
use pimecc::netlist::{Netlist, NetlistBuilder};
use pimecc::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn xor_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(2);
    let g = b.xor(ins[0], ins[1]);
    b.output(g);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

fn mux_circuit() -> (pimecc::netlist::NorNetlist, Netlist) {
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(3);
    let g1 = b.xor(ins[0], ins[1]);
    let g2 = b.mux(ins[2], g1, ins[0]);
    b.output(g1);
    b.output(g2);
    let nl = b.finish();
    (nl.to_nor(), nl)
}

#[test]
fn metrics_percentiles_match_a_serial_reference() {
    // The snapshot's p50/p95/p99 must equal nearest-rank percentiles
    // computed independently over the very latencies the drain returned —
    // the snapshot is an aggregation, not an estimate.
    let (nor, _) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3)
        .flush_after(Duration::from_millis(1))
        .spawn()
        .expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    for v in 0..60u32 {
        let _ = handle
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let outcome = handle.drain().expect("drains");
    let snap = handle.metrics();
    handle.close().expect("closes");

    assert_eq!(outcome.requests(), 60);
    assert_eq!(snap.requests, 60);
    let queue: Vec<Duration> = outcome.results.iter().map(|r| r.queue_latency).collect();
    let execute: Vec<Duration> = outcome.results.iter().map(|r| r.execute_latency).collect();
    assert_eq!(snap.queue_latency, LatencyStats::from_samples(&queue));
    assert_eq!(snap.execute_latency, LatencyStats::from_samples(&execute));
    assert_eq!(snap.queue_latency.samples, 60);
}

#[test]
fn error_budget_quarantines_and_clean_scrubs_recover() {
    // Sync front-end, storm hook on shard 1: corrected errors drain the
    // budget until the shard is quarantined, flushes reroute to shard 0,
    // and consecutive clean scrubs lift the quarantine.
    let (nor, nl) = xor_circuit();
    let storm = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&storm);
    let mut cluster = PimClusterBuilder::new(2, 30, 3)
        .error_budget(1)
        .recovery_scrubs(2)
        .shard_fault_hook(1, move |pm| {
            if flag.load(Ordering::Relaxed) {
                pm.inject_fault(0, 0);
            }
        })
        .build()
        .expect("builds");
    let p = cluster.compile(&nor).expect("compiles");
    let verify = |outcome: &ClusterOutcome, base: u32| {
        for (i, r) in outcome.results.iter().enumerate() {
            let v = base + i as u32;
            assert_eq!(
                r.outputs,
                nl.eval(&[v & 1 != 0, v & 2 != 0]),
                "ticket #{}",
                r.ticket.id()
            );
        }
    };
    // 64 same-program requests overflow one batch, so the spread pass
    // puts traffic (and the fault hook) on shard 1 every flush.
    let mut rounds = 0;
    while cluster.health().shards[1].state != ShardState::Quarantined {
        rounds += 1;
        assert!(rounds <= 16, "the error budget never tripped");
        for v in 0..64u32 {
            let _ = cluster
                .submit(&p, vec![v & 1 != 0, v & 2 != 0])
                .expect("submits");
        }
        let outcome = cluster.flush().expect("flushes");
        verify(&outcome, 0);
    }
    let tripped = cluster.health();
    assert_eq!(tripped.shards[1].quarantines, 1);
    assert!(tripped.shards[1].window_errors > 1, "budget exceeded");

    // Quarantined: the whole next flush lands on shard 0.
    for v in 0..64u32 {
        let _ = cluster
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let rerouted = cluster.flush().expect("flushes");
    verify(&rerouted, 0);
    assert!(
        rerouted.results.iter().all(|r| r.shard == 0),
        "no traffic may land on a quarantined shard"
    );
    assert_eq!(rerouted.shard_reports[1].batches, 0);

    // Storm over: the configured streak of clean scrubs recovers it.
    storm.store(false, Ordering::Relaxed);
    let mut scrubs = 0;
    while cluster.health().shards[1].state == ShardState::Quarantined {
        scrubs += 1;
        assert!(scrubs <= 8, "the shard never recovered");
        let _ = cluster.scrub_shard(1).expect("scrubs");
    }
    let healed = cluster.health();
    assert!(scrubs >= 2, "recovery takes the configured clean streak");
    assert_eq!(healed.shards[1].recoveries, 1);
    assert_eq!(healed.shards[1].state, ShardState::Healthy);
    assert_eq!(
        healed.uncorrectable(),
        0,
        "every injected flip was SEC-correctable"
    );

    // The recovered shard serves traffic again.
    for v in 0..64u32 {
        let _ = cluster
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let restored = cluster.flush().expect("flushes");
    verify(&restored, 0);
    assert!(restored.results.iter().any(|r| r.shard == 1));
}

#[test]
fn background_scrubs_coexist_with_deadline_flushes() {
    // Busy phase: deadline-flushed traffic keeps being served while the
    // scrub timer is far shorter than the deadline. Idle phase: the
    // worker keeps scrubbing on its own.
    let (nor, nl) = xor_circuit();
    let handle = PimClusterBuilder::new(1, 30, 3)
        .flush_after(Duration::from_millis(2))
        .scrub_period(Duration::from_millis(1))
        .spawn()
        .expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    assert_eq!(
        handle.metrics().effective_flush_after,
        Some(Duration::from_millis(2)),
        "non-adaptive deadline is reported verbatim"
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    for v in 0..20u32 {
        let t = handle
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
        let r = t.wait().expect("served");
        assert_eq!(r.outputs, nl.eval(&[v & 1 != 0, v & 2 != 0]));
        assert!(Instant::now() < deadline, "scrubs starved the flush path");
    }
    let busy = handle.metrics();
    assert_eq!(busy.requests, 20);

    // Idle: scrub waves keep accumulating with no traffic at all.
    let before = handle.metrics().scrub_waves;
    let grown = loop {
        std::thread::sleep(Duration::from_millis(5));
        let now = handle.metrics().scrub_waves;
        if now > before {
            break now;
        }
        assert!(
            Instant::now() < deadline,
            "an idle worker must keep scrubbing"
        );
    };
    assert!(grown > before);
    handle.close().expect("closes");
}

#[test]
fn uncorrectable_precheck_retries_to_a_verified_answer() {
    // One double-bit strike on shard 0's block (0,0) before the first
    // wave: the pre-execution check reports the pattern uncorrectable,
    // the affected tickets are suppressed and re-dispatched, and every
    // request still resolves with bit-exact outputs — retried tickets
    // carrying their attempt accounting.
    let (nor, nl) = xor_circuit();
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    let mut cluster = PimClusterBuilder::new(2, 30, 3)
        .retire_after(1)
        .shard_fault_hook(0, move |pm| {
            if flag.swap(false, Ordering::Relaxed) {
                pm.inject_fault(0, 0);
                pm.inject_fault(0, 1);
            }
        })
        .build()
        .expect("builds");
    let p = cluster.compile(&nor).expect("compiles");
    let mut expected: HashMap<u64, Vec<bool>> = HashMap::new();
    for v in 0..64u32 {
        let inputs = vec![v & 1 != 0, v & 2 != 0];
        let t = cluster.submit(&p, inputs.clone()).expect("submits");
        expected.insert(t.id(), nl.eval(&inputs));
    }
    let outcome = cluster.flush().expect("flushes");

    assert!(
        outcome.failed.is_empty(),
        "one strike must not exhaust the retry budget"
    );
    assert_eq!(outcome.results.len(), 64);
    assert!(
        outcome.retries >= 1,
        "the uncorrectable verdict must suppress and re-dispatch"
    );
    let mut retried = 0u64;
    for r in &outcome.results {
        assert_eq!(
            r.outputs,
            expected[&r.ticket.id()],
            "ticket #{} resolved with corrupt outputs",
            r.ticket.id()
        );
        assert_eq!(
            r.attempt_latencies.len(),
            r.attempts as usize,
            "one latency sample per attempt"
        );
        assert_eq!(
            r.execute_latency,
            r.attempt_latencies.iter().sum(),
            "execute latency is cumulative across attempts"
        );
        if r.attempts > 1 {
            retried += 1;
        }
    }
    assert!(
        retried >= 1,
        "some ticket must have needed a second attempt"
    );
    assert!(outcome.retries >= retried);

    // `retire_after(1)`: the single uncorrectable verdict already takes
    // the struck block-line out of service, and the ledger surfaces it.
    let snap = cluster.health();
    assert!(snap.shards[0].retired_lines >= 1, "evidence must retire");
    assert_eq!(snap.shards[1].retired_lines, 0);
    assert_eq!(snap.retries, outcome.retries);
    assert_eq!(snap.dead_letters, 0);
}

#[test]
fn max_retries_zero_dead_letters_suspect_tickets() {
    // With no retry budget, a suppressed ticket dead-letters immediately:
    // it never resolves with outputs, surfaces as an explicit
    // `RequestFailed`, and the untouched tickets of the same wave still
    // verify bit-exact.
    let (nor, nl) = xor_circuit();
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    let mut cluster = PimClusterBuilder::new(1, 30, 3)
        .max_retries(0)
        .shard_fault_hook(0, move |pm| {
            if flag.swap(false, Ordering::Relaxed) {
                pm.inject_fault(0, 0);
                pm.inject_fault(0, 1);
            }
        })
        .build()
        .expect("builds");
    let p = cluster.compile(&nor).expect("compiles");
    let mut expected: HashMap<u64, Vec<bool>> = HashMap::new();
    for v in 0..8u32 {
        let inputs = vec![v & 1 != 0, v & 2 != 0];
        let t = cluster.submit(&p, inputs.clone()).expect("submits");
        expected.insert(t.id(), nl.eval(&inputs));
    }
    let outcome = cluster.flush().expect("flushes");

    // The double fault sits in one block, so exactly one block-line (m=3
    // physical lines, all occupied by this 8-request wave) is suspect.
    assert_eq!(outcome.failed.len(), 3);
    assert_eq!(outcome.results.len(), 5);
    assert_eq!(outcome.retries, 0);
    for f in &outcome.failed {
        assert_eq!(f.attempts, 1, "no budget means a single attempt");
        assert!(
            matches!(
                f.error(),
                ClusterError::RequestFailed { ticket, attempts: 1 } if ticket == f.ticket.id()
            ),
            "dead letters surface as explicit RequestFailed"
        );
        assert!(
            !outcome.results.iter().any(|r| r.ticket == f.ticket),
            "a dead-lettered ticket must never also resolve with outputs"
        );
    }
    for r in &outcome.results {
        assert_eq!(r.outputs, expected[&r.ticket.id()]);
        assert_eq!(r.attempts, 1);
    }
    assert_eq!(cluster.health().dead_letters, 3);
}

#[test]
fn persistent_uncorrectable_lines_exhaust_retries_into_dead_letters() {
    // A storm that re-poisons every occupied block-row after every batch
    // load: no attempt can ever verify, so after 1 + max_retries attempts
    // each ticket dead-letters — nothing resolves, nothing hangs, and the
    // attempt count is exact.
    let (nor, _) = xor_circuit();
    let mut cluster = PimClusterBuilder::new(1, 30, 3)
        .axis_policy(AxisPolicy::Rows)
        .max_retries(2)
        .shard_fault_hook(0, |pm| {
            // Two fresh flips per covered block: rows 0/3/6 are the first
            // row of block-rows 0..3, which an 8-request wave always
            // occupies. The device re-encodes suspect residue away each
            // wave, so every wave sees exactly this double-error pattern.
            for br in 0..3 {
                pm.inject_fault(br * 3, 0);
                pm.inject_fault(br * 3, 1);
            }
        })
        .build()
        .expect("builds");
    let p = cluster.compile(&nor).expect("compiles");
    for v in 0..8u32 {
        let _ = cluster
            .submit(&p, vec![v & 1 != 0, v & 2 != 0])
            .expect("submits");
    }
    let outcome = cluster.flush().expect("flushes");

    assert!(
        outcome.results.is_empty(),
        "no ticket may resolve with outputs off a poisoned line"
    );
    assert_eq!(outcome.failed.len(), 8);
    for f in &outcome.failed {
        assert_eq!(f.attempts, 3, "1 + max_retries attempts before giving up");
    }
    assert_eq!(outcome.retries, 16, "each ticket re-dispatched twice");
    let snap = cluster.health();
    assert_eq!(snap.dead_letters, 8);
    assert_eq!(snap.retries, 16);
}

#[test]
fn service_waits_surface_dead_letters_exactly_once() {
    // Service front-end, no retry budget: suppressed tickets come back
    // from `wait` as `RequestFailed`, a second claim reports the result
    // already taken, and the health snapshot counts the dead letters.
    let (nor, nl) = xor_circuit();
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    let handle = PimClusterBuilder::new(1, 30, 3)
        .max_retries(0)
        .shard_fault_hook(0, move |pm| {
            if flag.swap(false, Ordering::Relaxed) {
                pm.inject_fault(0, 0);
                pm.inject_fault(0, 1);
            }
        })
        .spawn()
        .expect("spawns");
    let p = handle.compile(&nor).expect("compiles");
    let tickets: Vec<_> = (0..8u32)
        .map(|v| {
            let inputs = vec![v & 1 != 0, v & 2 != 0];
            (handle.submit(&p, inputs.clone()).expect("submits"), inputs)
        })
        .collect();
    let mut dead = 0;
    for (t, inputs) in &tickets {
        match t.wait() {
            Ok(r) => assert_eq!(r.outputs, nl.eval(inputs)),
            Err(ClusterError::RequestFailed { ticket, attempts }) => {
                assert_eq!(ticket, t.id());
                assert_eq!(attempts, 1);
                dead += 1;
                // Exactly-once: the dead letter was consumed by the wait.
                assert!(matches!(
                    t.try_wait(),
                    Err(ClusterError::TicketUnserved { .. })
                ));
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(dead, 3);
    assert_eq!(handle.metrics().dead_letters, 3);
    handle.close().expect("closes");
}

/// How many random fault campaigns the chaos proptest runs; CI raises it
/// via `PIMECC_CHAOS_CASES` (see `.github/workflows`).
fn chaos_cases() -> u32 {
    std::env::var("PIMECC_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

fn chaos_campaign() -> CampaignConfig {
    CampaignConfig {
        transient_rate: 0.4,
        burst_rate: 0.0,
        burst_len: 0,
        stuck_rate: 0.5,
        max_stuck: 16,
    }
}

/// SplitMix64 — derives the request mix from the campaign seed so one
/// `u64` pins an entire chaos round.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One seeded chaos round against both front-ends: a random
/// [`FaultCampaign`] (transient flips + permanent stuck-at cells) strikes
/// shard 0 on every batch load while a seed-derived xor/mux mix flows
/// through. The invariant under test is the PR's contract: **every ticket
/// either resolves bit-exact against the fault-free reference or surfaces
/// an explicit retry-exhausted error** — never silently wrong outputs,
/// never a vanished ticket.
fn chaos_round(seed: u64) {
    let (xor_nor, xor_nl) = xor_circuit();
    let (mux_nor, mux_nl) = mux_circuit();
    let mut rng = SplitMix(seed);
    let nreq = 24 + (rng.next() % 72) as usize;
    let choices: Vec<(bool, u32)> = (0..nreq)
        .map(|_| {
            let r = rng.next();
            (r & 1 == 1, (r >> 1) as u32 % 8)
        })
        .collect();
    let expected = |is_mux: bool, v: u32| -> Vec<bool> {
        if is_mux {
            mux_nl.eval(&[v & 1 != 0, v & 2 != 0, v & 4 != 0])
        } else {
            xor_nl.eval(&[v & 1 != 0, v & 2 != 0])
        }
    };
    let build = |seed: u64| {
        let mut campaign = FaultCampaign::new(seed, chaos_campaign());
        PimClusterBuilder::new(2, 30, 3)
            .retire_after(2)
            .max_retries(2)
            .shard_fault_hook(0, move |pm| campaign.strike(pm))
    };

    // Sync front-end: one flush serves (or explicitly fails) everything.
    let mut cluster = build(seed).build().expect("builds");
    let px = cluster.compile(&xor_nor).expect("compiles");
    let pmx = cluster.compile(&mux_nor).expect("compiles");
    let tickets: Vec<_> = choices
        .iter()
        .map(|&(is_mux, v)| {
            let (p, w) = if is_mux { (&pmx, 3) } else { (&px, 2) };
            let inputs: Vec<bool> = (0..w).map(|b| v >> b & 1 != 0).collect();
            (cluster.submit(p, inputs).expect("submits"), is_mux, v)
        })
        .collect();
    let outcome = cluster.flush().expect("flushes");
    let failed: std::collections::HashSet<u64> =
        outcome.failed.iter().map(|f| f.ticket.id()).collect();
    assert_eq!(
        outcome.results.len() + failed.len(),
        nreq,
        "seed {seed:#x}: every ticket resolves exactly once — outputs or dead letter"
    );
    for (t, is_mux, v) in &tickets {
        match outcome.outputs_for(*t) {
            Some(outs) => assert_eq!(
                outs,
                expected(*is_mux, *v).as_slice(),
                "seed {seed:#x}: ticket #{} resolved with corrupt outputs",
                t.id()
            ),
            None => assert!(
                failed.contains(&t.id()),
                "seed {seed:#x}: ticket #{} vanished without an explicit error",
                t.id()
            ),
        }
    }

    // Service front-end, same campaign replayed from the same seed: every
    // wait returns a verified answer or an explicit RequestFailed.
    let handle = build(seed).spawn().expect("spawns");
    let px = handle.compile(&xor_nor).expect("compiles");
    let pmx = handle.compile(&mux_nor).expect("compiles");
    let tickets: Vec<_> = choices
        .iter()
        .map(|&(is_mux, v)| {
            let (p, w) = if is_mux { (&pmx, 3) } else { (&px, 2) };
            let inputs: Vec<bool> = (0..w).map(|b| v >> b & 1 != 0).collect();
            (handle.submit(p, inputs).expect("submits"), is_mux, v)
        })
        .collect();
    for (t, is_mux, v) in &tickets {
        match t.wait() {
            Ok(r) => assert_eq!(
                r.outputs,
                expected(*is_mux, *v),
                "seed {seed:#x}: service ticket #{} resolved with corrupt outputs",
                t.id()
            ),
            Err(ClusterError::RequestFailed { .. }) => {}
            Err(e) => panic!("seed {seed:#x}: unexpected error: {e}"),
        }
    }
    handle.close().expect("closes");
}

// Named regression pins: campaign seeds that previously exercised the
// full escalation ladder (suppression, retry, retirement, dead letters).
// Kept as plain tests so they run on every `cargo test`, independent of
// the proptest's random sampling.
#[test]
fn chaos_regression_seed_dac21() {
    chaos_round(0xDAC21);
}

#[test]
fn chaos_regression_seed_0ecc() {
    chaos_round(0x0ECC);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]
    #[test]
    fn chaos_campaign_never_yields_a_silently_wrong_answer(seed in any::<u64>()) {
        chaos_round(seed);
    }
}

/// Maps a 3-shard pool with shard 1 quarantined onto the equivalent
/// 2-shard pool: active[0]=0 → 0, active[1]=2 → 1.
fn map_shard(shard: usize) -> usize {
    match shard {
        0 => 0,
        2 => 1,
        other => panic!("traffic landed on quarantined shard {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn quarantine_reroutes_bit_identically_to_the_smaller_pool(
        choices in proptest::collection::vec((any::<bool>(), 0u32..256), 1..50),
    ) {
        // A pool with a quarantined shard must plan exactly like a pool
        // built without that shard, modulo the index renaming — the
        // determinism guarantee that makes quarantine safe to engage
        // between flushes.
        let (xor_nor, _) = xor_circuit();
        let (mux_nor, _) = mux_circuit();

        let mut big = PimClusterBuilder::new(3, 30, 3).build().expect("builds");
        big.set_quarantined(1, true).expect("quarantines");
        let mut small = PimClusterBuilder::new(2, 30, 3).build().expect("builds");

        let bp = (
            big.compile(&xor_nor).expect("compiles"),
            big.compile(&mux_nor).expect("compiles"),
        );
        let sp = (
            small.compile(&xor_nor).expect("compiles"),
            small.compile(&mux_nor).expect("compiles"),
        );
        for &(is_mux, v) in &choices {
            let inputs: Vec<bool> = if is_mux {
                (0..3).map(|b| v >> b & 1 != 0).collect()
            } else {
                (0..2).map(|b| v >> b & 1 != 0).collect()
            };
            let (b, s) = if is_mux { (&bp.1, &sp.1) } else { (&bp.0, &sp.0) };
            let _ = big.submit(b, inputs.clone()).expect("submits");
            let _ = small.submit(s, inputs).expect("submits");
        }
        let big_out = big.flush().expect("flushes");
        let small_out = small.flush().expect("flushes");

        prop_assert_eq!(big_out.results.len(), small_out.results.len());
        prop_assert_eq!(big_out.waves, small_out.waves);
        let mut big_sorted = big_out.results;
        let mut small_sorted = small_out.results;
        big_sorted.sort_by_key(|r| r.ticket.id());
        small_sorted.sort_by_key(|r| r.ticket.id());
        for (b, s) in big_sorted.iter().zip(&small_sorted) {
            prop_assert_eq!(b.ticket.id(), s.ticket.id());
            prop_assert_eq!(map_shard(b.shard), s.shard);
            prop_assert_eq!(b.wave, s.wave);
            prop_assert_eq!(b.axis, s.axis);
            prop_assert_eq!(b.line, s.line);
            prop_assert_eq!(b.offset, s.offset);
            prop_assert_eq!(&b.outputs, &s.outputs);
        }
    }
}
