//! Interop integration tests: BLIF round-trips through the mapper,
//! listing round-trips through the crossbar executor, the equivalence
//! checker guarding the whole transformation chain, and the
//! load/execute-separated device flow on a real benchmark.

use pimecc::cluster::PimCluster;
use pimecc::device::PimDevice;
use pimecc::netlist::blif::{parse_blif, write_blif};
use pimecc::netlist::equiv::{check_equivalence, Equivalence};
use pimecc::netlist::generators::{Benchmark, ExtraBenchmark};
use pimecc::simpler::{map, map_auto, parse_listing, write_listing, MapperConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn blif_export_import_then_map_and_execute() {
    // dec exported to BLIF, re-imported, mapped with SIMPLER, executed on
    // the crossbar simulator — the full external-tool interchange loop.
    let original = Benchmark::Dec.build();
    let text = write_blif(&original.netlist, "dec");
    let imported = parse_blif(&text).expect("re-imports");
    let verdict = check_equivalence(&original.netlist, &imported, 8, 0, 0);
    assert_eq!(
        verdict,
        Equivalence::Equivalent,
        "BLIF round trip is lossless"
    );

    let (program, _) = map_auto(&imported.to_nor(), 1020).expect("maps");
    for addr in [0usize, 1, 128, 255] {
        let inputs: Vec<bool> = (0..8).map(|i| addr >> i & 1 != 0).collect();
        let out = program.execute(&inputs).expect("legal program");
        assert_eq!(out, (original.reference)(&inputs), "addr {addr}");
    }
}

#[test]
fn listing_round_trip_for_every_benchmark() {
    let mut rng = StdRng::seed_from_u64(44);
    for b in Benchmark::ALL {
        let nor = b.build().netlist.to_nor();
        let (program, _) = map_auto(&nor, 1020).expect("maps");
        let text = write_listing(&program);
        let parsed = parse_listing(&text).unwrap_or_else(|e| panic!("{b}: {e}"));
        assert_eq!(parsed.steps.len(), program.steps.len(), "{b}");
        assert_eq!(parsed.critical_count(), program.critical_count(), "{b}");
        let inputs: Vec<bool> = (0..nor.num_inputs()).map(|_| rng.gen()).collect();
        assert_eq!(
            parsed.execute(&inputs).expect("legal"),
            program.execute(&inputs).expect("legal"),
            "{b}"
        );
    }
}

#[test]
fn equivalence_checker_guards_nor_lowering_of_extras() {
    for e in ExtraBenchmark::ALL {
        let c = e.build();
        // The NOR form evaluated through a rebuilt Netlist facade: compare
        // by direct sampling (NorNetlist has its own eval).
        let nor = c.netlist.to_nor();
        let mut rng = StdRng::seed_from_u64(e as u64 + 9);
        for _ in 0..5 {
            let inputs: Vec<bool> = (0..c.netlist.num_inputs()).map(|_| rng.gen()).collect();
            assert_eq!(nor.eval(&inputs), c.netlist.eval(&inputs), "{e}");
        }
    }
}

#[test]
fn load_execute_device_flow_runs_int2float_with_fault_recovery() {
    // A complete paper-flow run of a real Table I benchmark inside the
    // ECC-protected memory, including a pre-execution input repair — via
    // the device API's separated load / execute entry points.
    let circuit = Benchmark::Int2float.build();
    let nor = circuit.netlist.to_nor();
    let program = map(&nor, &MapperConfig { row_size: 255 }).expect("fits a 255-cell row");
    let mut device = PimDevice::new(255, 5).expect("device");
    let compiled = device.adopt(&program);

    for x in [0u32, 1, 0b100_0000_0000, 0x7FF] {
        let inputs: Vec<bool> = (0..11).map(|i| x >> i & 1 != 0).collect();
        device.load_request(&compiled, 0, &inputs).expect("loads");
        // Strike one input bit.
        device.inject_fault(0, (x as usize) % 11);
        let out = device.execute_rows(&compiled, &[0]).expect("runs");
        assert_eq!(out.input_check.corrected, 1, "x={x}");
        assert_eq!(out.outputs[0], (circuit.reference)(&inputs), "x={x}");
        assert!(device.memory().verify_consistency().is_ok());
    }
}

#[test]
fn serial_one_row_passes_and_batch_agree_on_a_real_benchmark() {
    // A serial one-request-per-pass loop and the batched flow must
    // produce identical outputs for identical requests.
    let circuit = Benchmark::Int2float.build();
    let nor = circuit.netlist.to_nor();
    let program = map(&nor, &MapperConfig { row_size: 255 }).expect("fits a 255-cell row");

    let mut serial = PimDevice::new(255, 5).expect("device");
    let serial_compiled = serial.adopt(&program);
    let mut device = PimDevice::new(255, 5).expect("device");
    let compiled = device.adopt(&program);

    let requests: Vec<Vec<bool>> = [3u32, 77, 1024, 2047]
        .iter()
        .map(|&x| (0..11).map(|i| x >> i & 1 != 0).collect())
        .collect();
    let batch = device.run_batch(&compiled, &requests).expect("batch runs");
    for (i, req) in requests.iter().enumerate() {
        let one = serial
            .run_batch(&serial_compiled, std::slice::from_ref(req))
            .expect("serial runs");
        assert_eq!(one.outputs[0], batch.outputs[i], "request {i}");
        assert_eq!(one.outputs[0], (circuit.reference)(req), "request {i}");
    }
    assert!(device.memory().verify_consistency().is_ok());
    assert!(serial.memory().verify_consistency().is_ok());
}

#[test]
fn device_compile_caches_blif_imported_circuits() {
    // Import a circuit from BLIF text twice; the device recognizes the
    // structure and compiles once.
    let original = Benchmark::Dec.build();
    let text = write_blif(&original.netlist, "dec");
    let mut device = PimDevice::new(1020, 15).expect("device");
    let a = device
        .compile(&parse_blif(&text).expect("imports").to_nor())
        .expect("compiles");
    let b = device
        .compile(&parse_blif(&text).expect("imports").to_nor())
        .expect("compiles");
    assert_eq!(a.id(), b.id());
    assert_eq!(device.compiled_count(), 1);

    let requests: Vec<Vec<bool>> = (0..4u32)
        .map(|addr| (0..8).map(|i| addr >> i & 1 != 0).collect())
        .collect();
    let outcome = device.run_batch(&b, &requests).expect("runs");
    for (i, req) in requests.iter().enumerate() {
        assert_eq!(outcome.outputs[i], (original.reference)(req), "addr {i}");
    }
}

#[test]
fn cluster_serves_blif_imported_and_listing_adopted_programs_together() {
    // The cluster's compile cache recognizes a BLIF re-import
    // structurally, and a program round-tripped through the listing format
    // rides the same queue — the full interchange loop, sharded.
    let original = Benchmark::Dec.build();
    let text = write_blif(&original.netlist, "dec");
    let mut cluster = PimCluster::new(2, 1020, 15).expect("cluster");
    let a = cluster
        .compile(&parse_blif(&text).expect("imports").to_nor())
        .expect("compiles");
    let b = cluster
        .compile(&parse_blif(&text).expect("imports").to_nor())
        .expect("compiles");
    assert_eq!(a.id(), b.id(), "structural cache hit across imports");
    assert_eq!(cluster.compiled_count(), 1);

    let listing = write_listing(a.program());
    let reparsed = parse_listing(&listing).expect("round-trips");
    let c = cluster.adopt(&reparsed).expect("fits");

    let mut expect = Vec::new();
    for addr in 0..6u32 {
        let inputs: Vec<bool> = (0..8).map(|i| addr >> i & 1 != 0).collect();
        let program = if addr % 2 == 0 { &b } else { &c };
        let t = cluster.submit(program, inputs.clone()).expect("submits");
        expect.push((t, (original.reference)(&inputs)));
    }
    let outcome = cluster.flush().expect("flushes");
    for (t, want) in &expect {
        assert_eq!(outcome.outputs_for(*t), Some(want.as_slice()), "{t}");
    }
}

#[test]
fn memory_array_hosts_simd_computation_with_faults() {
    use pimecc::core::{BlockGeometry, MemoryArray};
    use pimecc::xbar::LineSet;
    let geom = BlockGeometry::new(30, 3).expect("geom");
    let mut array = MemoryArray::new(geom, 2).expect("array");

    // Crossbar 0 computes; crossbar 1 sits idle with a latent fault.
    array.inject_fault_at(30 * 30 + 17);
    let xb = array.crossbar_mut(0);
    xb.exec_init_rows(&[5], &LineSet::All).expect("init");
    xb.exec_nor_rows(&[0, 1], 5, &LineSet::All).expect("nor");

    let report = array.check_all().expect("check");
    assert_eq!(report.corrected, 1);
    assert!(array.verify_consistency().is_ok());
}

#[test]
fn energy_accounting_tracks_machine_activity() {
    use pimecc::core::{BlockGeometry, EnergyModel, ProtectedMemory};
    use pimecc::xbar::LineSet;
    let mut pm = ProtectedMemory::new(BlockGeometry::new(30, 3).expect("geom")).expect("pm");
    let model = EnergyModel::default();
    let before = model.of_stats(pm.stats(), 10).total_fj();
    pm.exec_init_rows(&[2], &LineSet::All).expect("init");
    pm.exec_nor_rows(&[0, 1], 2, &LineSet::All).expect("nor");
    let after = model.of_stats(pm.stats(), 10);
    assert!(after.total_fj() > before);
    assert!(
        after.ecc_fraction() > 0.5,
        "XOR3 energy dominates: {after:?}"
    );
}
