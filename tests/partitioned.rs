//! Integration tests for the partition-and-route compiler: circuits too
//! wide for one shard line, split into a DAG of line-sized sub-programs
//! and served as dependency-ordered waves — through both the synchronous
//! [`PimCluster`] and the spawned [`ClusterHandle`] — with the outputs
//! pinned bit-identical to the word-level software reference.

use pimecc::netlist::generators::{from_bits, mul, mul16, to_bits};
use pimecc::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The flagship oversized workload: 16×16 → 32-bit product.
fn mul16_nor() -> pimecc::netlist::NorNetlist {
    mul16().netlist.to_nor()
}

fn mul16_reference(x: u64, y: u64) -> Vec<bool> {
    to_bits(u128::from(x) * u128::from(y), 32)
}

fn mul16_inputs(x: u64, y: u64) -> Vec<bool> {
    let mut v = to_bits(u128::from(x), 16);
    v.extend(to_bits(u128::from(y), 16));
    v
}

/// Deterministic operand pairs: corners first, then seeded random.
fn operand_pairs(count: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut pairs = vec![
        (0, 0),
        (0, 0xFFFF),
        (0xFFFF, 0xFFFF),
        (1, 0x1234),
        (0x8000, 2),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    while pairs.len() < count {
        pairs.push((rng.gen::<u64>() & 0xFFFF, rng.gen::<u64>() & 0xFFFF));
    }
    pairs.truncate(count);
    pairs
}

#[test]
fn mul16_exceeds_one_line_and_the_error_points_at_the_partitioned_api() {
    let nor = mul16_nor();
    let mut cluster = PimCluster::new(1, 30, 3).expect("cluster");
    // The single-line compilers cannot serve it at the default geometry…
    assert!(matches!(cluster.compile(&nor), Err(ClusterError::Map(_))));
    assert!(matches!(
        cluster.compile_packed(&nor),
        Err(ClusterError::Map(_))
    ));
    // …and the cluster-level width error names the way out.
    let err = ClusterError::ProgramTooWide {
        row_size: 64,
        n: 30,
    };
    let msg = err.to_string();
    assert!(msg.contains("compile_partitioned"), "{msg}");
    // The device-level twin reports the *post-remap footprint* — the
    // number that actually decides whether a request fits — and points at
    // the partitioned-compile API too.
    let msg = pimecc::device::DeviceError::ProgramTooWide {
        row_size: 64,
        footprint: 40,
        n: 30,
    }
    .to_string();
    assert!(msg.contains("footprint 40"), "{msg}");
    assert!(msg.contains("submit_partitioned"), "{msg}");
}

#[test]
fn mul16_partitioned_matches_the_word_reference_on_the_sync_cluster() {
    let nor = mul16_nor();
    let mut cluster = PimClusterBuilder::new(4, 60, 5).build().expect("cluster");
    let program = cluster.compile_partitioned(&nor).expect("partitions");
    assert!(program.num_parts() > 1, "mul16 must actually split");
    assert!(
        program.num_levels() > 1,
        "mul16 has cross-part dependencies"
    );
    assert!(program.cut_signals() > 0);
    assert!(program.max_row_size() <= cluster.shard_capacity());

    let pairs = operand_pairs(500, 0x5EED_0001);
    let tickets: Vec<Ticket> = pairs
        .iter()
        .map(|&(x, y)| {
            cluster
                .submit_partitioned(&program, mul16_inputs(x, y))
                .expect("submits")
        })
        .collect();
    let outcome = cluster.flush().expect("flushes");
    assert_eq!(outcome.requests(), pairs.len());
    for (t, &(x, y)) in tickets.iter().zip(&pairs) {
        assert_eq!(
            outcome.outputs_for(*t),
            Some(mul16_reference(x, y).as_slice()),
            "{x} * {y}"
        );
    }
    // Every sub-program wave ran the diagonal-ECC pre-execution check.
    assert!(outcome.input_check.checked > 0, "ECC pre-checks ran");
    assert_eq!(outcome.input_check.uncorrectable, 0);
    // The dependency chain needs at least one wave per level.
    assert!(outcome.waves >= program.num_levels());
}

#[test]
fn mul16_partitioned_matches_the_word_reference_on_the_service() {
    let nor = mul16_nor();
    let handle = PimClusterBuilder::new(4, 60, 5).spawn().expect("spawns");
    let program = handle.compile_partitioned(&nor).expect("partitions");
    let pairs = operand_pairs(500, 0x5EED_0002);
    let tickets: Vec<_> = pairs
        .iter()
        .map(|&(x, y)| {
            handle
                .submit_partitioned(&program, mul16_inputs(x, y))
                .expect("submits")
        })
        .collect();
    handle.flush().expect("flushes");
    for (t, &(x, y)) in tickets.into_iter().zip(&pairs) {
        let r = t.wait().expect("served");
        assert_eq!(r.outputs, mul16_reference(x, y), "{x} * {y}");
        assert_eq!(from_bits(&r.outputs), u128::from(x) * u128::from(y));
    }
    handle.close().expect("closes");
}

#[test]
fn partitioned_and_ordinary_traffic_share_one_flush() {
    // A small multiplier that *needs* partitioning at the default
    // geometry, mixed with ordinary single-line traffic: one flush, one
    // outcome, tickets interleaved.
    let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
    let wide = mul(6).to_nor();
    let narrow = mul(2).to_nor();
    let big = cluster.compile_partitioned(&wide).expect("partitions");
    let small = cluster.compile_packed(&narrow).expect("compiles");
    let t0 = cluster
        .submit_partitioned(&big, mul_inputs(6, 7, 9))
        .expect("submits");
    let t1 = cluster
        .submit(&small, mul_inputs(2, 3, 2))
        .expect("submits");
    let t2 = cluster
        .submit_partitioned(&big, mul_inputs(6, 63, 63))
        .expect("submits");
    let outcome = cluster.flush().expect("flushes");
    assert_eq!(outcome.requests(), 3);
    assert_eq!(outcome.outputs_for(t0), Some(to_bits(63, 12).as_slice()));
    assert_eq!(outcome.outputs_for(t1), Some(to_bits(6, 4).as_slice()));
    assert_eq!(
        outcome.outputs_for(t2),
        Some(to_bits(63 * 63, 12).as_slice())
    );
    assert_eq!(cluster.pending(), 0);
}

fn mul_inputs(width: usize, x: u128, y: u128) -> Vec<bool> {
    let mut v = to_bits(x, width);
    v.extend(to_bits(y, width));
    v
}

#[test]
fn partitioned_submission_is_validated_on_entry() {
    let mut cluster = PimCluster::new(1, 30, 3).expect("cluster");
    let program = cluster
        .compile_partitioned(&mul(6).to_nor())
        .expect("partitions");
    assert_eq!(
        cluster
            .submit_partitioned(&program, vec![true; 3])
            .unwrap_err(),
        ClusterError::InputArity { got: 3, want: 12 }
    );
    // A program partitioned for wider shards is rejected by a narrower
    // cluster, with the width that matters (the widest sub-program).
    let mut wide_cluster = PimCluster::new(1, 60, 5).expect("cluster");
    let wide = wide_cluster
        .compile_partitioned(&mul16_nor())
        .expect("partitions");
    if wide.max_row_size() > 30 {
        assert_eq!(
            cluster
                .submit_partitioned(&wide, vec![false; 32])
                .unwrap_err(),
            ClusterError::ProgramTooWide {
                row_size: wide.max_row_size(),
                n: 30
            }
        );
    }
}

#[test]
fn dependency_wave_scheduling_is_deterministic() {
    // Two identical runs — fresh cluster each time, same submission
    // order — must produce *identical* placements, wave counts and
    // results (TicketResult equality ignores wall-clock latencies).
    let nor = mul16_nor();
    let run = || {
        let mut cluster = PimClusterBuilder::new(4, 60, 5).build().expect("cluster");
        let program = cluster.compile_partitioned(&nor).expect("partitions");
        for &(x, y) in &operand_pairs(40, 0xDE7) {
            let _ = cluster
                .submit_partitioned(&program, mul16_inputs(x, y))
                .expect("submits");
        }
        cluster.flush().expect("flushes")
    };
    let a = run();
    let b = run();
    assert_eq!(a.waves, b.waves);
    assert_eq!(a.results, b.results);
}

#[test]
fn concurrent_producers_cannot_perturb_partitioned_outputs() {
    // Four producer threads race for queue positions; whatever order the
    // channel serializes them into, every ticket's outputs must match the
    // reference — the dependency-wave scheduler may not leak one
    // request's cut signals into another's.
    let nor = mul16_nor();
    let handle = PimClusterBuilder::new(4, 60, 5)
        .auto_flush_at(16)
        .spawn()
        .expect("spawns");
    let program = handle.compile_partitioned(&nor).expect("partitions");
    let mut joins = Vec::new();
    for p in 0..4u64 {
        let handle = handle.clone();
        let program = Arc::clone(&program);
        joins.push(std::thread::spawn(move || {
            let pairs = operand_pairs(32, 0xC0FE + p);
            let tickets: Vec<_> = pairs
                .iter()
                .map(|&(x, y)| {
                    handle
                        .submit_partitioned(&program, mul16_inputs(x, y))
                        .expect("submits")
                })
                .collect();
            handle.flush().expect("flushes");
            for (t, (x, y)) in tickets.into_iter().zip(pairs) {
                let r = t.wait().expect("served");
                assert_eq!(r.outputs, mul16_reference(x, y), "{x} * {y}");
            }
        }));
    }
    for j in joins {
        j.join().expect("producer thread");
    }
    handle.close().expect("closes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random operands through the partitioned path at the *default*
    // geometry equal the word-level reference, for a width that needs
    // several levels of sub-programs.
    #[test]
    fn partitioned_mul_matches_reference(x in 0u64..256, y in 0u64..256) {
        let (x, y) = (u128::from(x), u128::from(y));
        let mut cluster = PimCluster::new(2, 30, 3).expect("cluster");
        let program = cluster
            .compile_partitioned(&mul(8).to_nor())
            .expect("partitions");
        prop_assert!(program.num_parts() > 1);
        let t = cluster
            .submit_partitioned(&program, mul_inputs(8, x, y))
            .expect("submits");
        let outcome = cluster.flush().expect("flushes");
        prop_assert_eq!(
            outcome.outputs_for(t),
            Some(to_bits(x * y, 16).as_slice())
        );
    }
}
