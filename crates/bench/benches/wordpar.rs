//! Criterion micro-benchmarks for the word-parallel simulation engine:
//! every hot path of the machine measured against the retained scalar
//! reference on the same state and operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc_core::{BlockGeometry, ProtectedMemory, SimEngine};
use pimecc_xbar::{BitGrid, LineSet, ParallelStep};

const N: usize = 255;
const M: usize = 5;

fn machine(engine: SimEngine) -> ProtectedMemory {
    let mut pm = ProtectedMemory::new(BlockGeometry::new(N, M).expect("geom")).expect("machine");
    pm.set_engine(engine);
    let mut g = BitGrid::new(N, N);
    let mut s = 0x9E3779B97F4A7C15u64;
    for r in 0..N {
        for c in 0..N {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            g.set(r, c, s >> 63 != 0);
        }
    }
    pm.load_grid(&g);
    pm
}

fn engines() -> [(&'static str, SimEngine); 2] {
    [
        ("scalar", SimEngine::ScalarReference),
        ("wordpar", SimEngine::WordParallel),
    ]
}

fn bench_row_gates(c: &mut Criterion) {
    for (name, engine) in engines() {
        c.bench_function(&format!("wordpar/row_init_nor_255/{name}"), |b| {
            let mut pm = machine(engine);
            let mut i = 0usize;
            b.iter(|| {
                let out = 10 + i % 20;
                i += 1;
                pm.exec_init_rows(&[out], &LineSet::All).expect("init");
                pm.exec_nor_rows(&[i % 5, 5 + i % 5], out, &LineSet::All)
                    .expect("nor");
                black_box(pm.stats().critical_ops)
            })
        });
    }
}

fn bench_col_gates(c: &mut Criterion) {
    for (name, engine) in engines() {
        c.bench_function(&format!("wordpar/col_init_nor_255/{name}"), |b| {
            let mut pm = machine(engine);
            let mut i = 0usize;
            b.iter(|| {
                let out = 40 + i % 20;
                i += 1;
                pm.exec_init_cols(&[out], &LineSet::All).expect("init");
                pm.exec_nor_cols(&[i % 5, 5 + i % 5], out, &LineSet::All)
                    .expect("nor");
                black_box(pm.stats().critical_ops)
            })
        });
    }
}

fn bench_fused_program(c: &mut Criterion) {
    // A 32-gate self-arming sequence: the fused executor against its own
    // per-step replay (both word-parallel).
    let steps: Vec<ParallelStep> = (0..32usize)
        .flat_map(|i| {
            let out = 60 + i;
            [
                ParallelStep::Init(vec![out]),
                ParallelStep::Nor(vec![i % 30, 30 + i % 20], out),
            ]
        })
        .collect();
    c.bench_function("wordpar/program_32_gates/fused", |b| {
        let mut pm = machine(SimEngine::WordParallel);
        b.iter(|| {
            assert!(pm.exec_steps_rows(&steps, &LineSet::All).expect("fused"));
            black_box(pm.stats().mem_cycles)
        })
    });
    c.bench_function("wordpar/program_32_gates/per_step", |b| {
        let mut pm = machine(SimEngine::WordParallel);
        b.iter(|| {
            for step in &steps {
                match step {
                    ParallelStep::Init(cells) => {
                        pm.exec_init_rows(cells, &LineSet::All).expect("init")
                    }
                    ParallelStep::Nor(ins, out) => {
                        pm.exec_nor_rows(ins, *out, &LineSet::All).expect("nor")
                    }
                }
            }
            black_box(pm.stats().mem_cycles)
        })
    });
}

fn bench_loads_and_checks(c: &mut Criterion) {
    let cells: Vec<(usize, bool)> = (0..64).map(|i| (i * 2 % N, i % 3 == 0)).collect();
    for (name, engine) in engines() {
        c.bench_function(&format!("wordpar/write_row_cells_64/{name}"), |b| {
            let mut pm = machine(engine);
            let mut line = 0usize;
            b.iter(|| {
                line = (line + 1) % N;
                pm.write_row_cells(line, &cells).expect("write");
                black_box(pm.stats().mem_cycles)
            })
        });
        c.bench_function(&format!("wordpar/check_block_row/{name}"), |b| {
            let mut pm = machine(engine);
            b.iter(|| black_box(pm.check_block_row(3).expect("check")))
        });
        c.bench_function(&format!("wordpar/verify_consistency/{name}"), |b| {
            let pm = machine(engine);
            b.iter(|| black_box(pm.verify_consistency().is_ok()))
        });
    }
}

criterion_group!(
    benches,
    bench_row_gates,
    bench_col_gates,
    bench_fused_program,
    bench_loads_and_checks
);
criterion_main!(benches);
