//! Criterion micro-benchmarks for batched device execution: the serial
//! `ProtectedRunner` loop versus `PimDevice::run_batch` at batch sizes
//! 1 / 8 / 64 — the wall-clock side of the ~k× MEM-cycle amortization.

#![allow(deprecated)] // the serial baseline is the deprecated runner

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc::device::PimDevice;
use pimecc::ProtectedRunner;
use pimecc_netlist::generators::Benchmark;
use pimecc_simpler::{map, MapperConfig};

const N: usize = 255;
const M: usize = 5;

fn requests(k: usize) -> Vec<Vec<bool>> {
    (0..k)
        .map(|i| (0..11).map(|b| (i * 37) >> b & 1 != 0).collect())
        .collect()
}

fn bench_serial_runner(c: &mut Criterion) {
    let nor = Benchmark::Int2float.build().netlist.to_nor();
    let program = map(&nor, &MapperConfig { row_size: N }).expect("maps");
    for k in [1usize, 8, 64] {
        let reqs = requests(k);
        c.bench_function(&format!("batch/serial_runner_x{k}"), |b| {
            let mut runner = ProtectedRunner::new(N, M).expect("runner");
            b.iter(|| {
                for req in &reqs {
                    black_box(runner.run(&program, 0, req).expect("runs"));
                }
            })
        });
    }
}

fn bench_device_batch(c: &mut Criterion) {
    let nor = Benchmark::Int2float.build().netlist.to_nor();
    for k in [1usize, 8, 64] {
        let reqs = requests(k);
        c.bench_function(&format!("batch/device_run_batch_x{k}"), |b| {
            let mut device = PimDevice::new(N, M).expect("device");
            let program = device.compile(&nor).expect("compiles");
            b.iter(|| black_box(device.run_batch(&program, &reqs).expect("runs")))
        });
    }
}

criterion_group!(benches, bench_serial_runner, bench_device_batch);
criterion_main!(benches);
