//! Criterion micro-benchmarks for batched device execution: a serial
//! one-request-per-pass loop versus `PimDevice::run_batch` at batch sizes
//! 1 / 8 / 64 — the wall-clock side of the ~k× MEM-cycle amortization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc::device::PimDevice;
use pimecc_netlist::generators::Benchmark;

const N: usize = 255;
const M: usize = 5;

fn requests(k: usize) -> Vec<Vec<bool>> {
    (0..k)
        .map(|i| (0..11).map(|b| (i * 37) >> b & 1 != 0).collect())
        .collect()
}

fn bench_serial_loop(c: &mut Criterion) {
    // The pre-batching flow: every request pays the full program latency
    // in its own single-row pass.
    let nor = Benchmark::Int2float.build().netlist.to_nor();
    for k in [1usize, 8, 64] {
        let reqs = requests(k);
        c.bench_function(&format!("batch/serial_loop_x{k}"), |b| {
            let mut device = PimDevice::new(N, M).expect("device");
            let program = device.compile(&nor).expect("compiles");
            b.iter(|| {
                for req in &reqs {
                    let outcome = device
                        .run_batch(&program, std::slice::from_ref(req))
                        .expect("runs");
                    let _ = black_box(outcome);
                }
            })
        });
    }
}

fn bench_device_batch(c: &mut Criterion) {
    let nor = Benchmark::Int2float.build().netlist.to_nor();
    for k in [1usize, 8, 64] {
        let reqs = requests(k);
        c.bench_function(&format!("batch/device_run_batch_x{k}"), |b| {
            let mut device = PimDevice::new(N, M).expect("device");
            let program = device.compile(&nor).expect("compiles");
            b.iter(|| black_box(device.run_batch(&program, &reqs).expect("runs")))
        });
    }
}

criterion_group!(benches, bench_serial_loop, bench_device_batch);
criterion_main!(benches);
