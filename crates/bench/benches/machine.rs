//! Criterion micro-benchmarks for the protected-memory machine: the
//! critical-operation hot path, the XOR3 micro-program and checking
//! passes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc_core::{BlockGeometry, ProcessingCrossbar, ProtectedMemory};
use pimecc_xbar::LineSet;

fn machine(n: usize, m: usize) -> ProtectedMemory {
    ProtectedMemory::new(BlockGeometry::new(n, m).expect("geom")).expect("machine")
}

fn bench_critical_ops(c: &mut Criterion) {
    c.bench_function("machine/critical_nor_row_parallel_90x90", |b| {
        let mut pm = machine(90, 15);
        b.iter(|| {
            pm.exec_init_rows(&[3], &LineSet::All).expect("init");
            pm.exec_nor_rows(&[0, 1], 3, &LineSet::All).expect("nor");
            black_box(pm.stats().critical_ops)
        })
    });
}

fn bench_xor3(c: &mut Criterion) {
    c.bench_function("machine/xor3_microprogram_68_lanes", |b| {
        let mut pc = ProcessingCrossbar::new(68);
        let a = vec![true; 68];
        let x = vec![false; 68];
        let y = vec![true; 68];
        b.iter(|| black_box(pc.compute_xor3(&a, &x, &y).expect("xor3")))
    });
}

fn bench_checks(c: &mut Criterion) {
    c.bench_function("machine/check_block_row_90x90", |b| {
        let mut pm = machine(90, 15);
        b.iter(|| black_box(pm.check_block_row(2).expect("check")))
    });
    c.bench_function("machine/check_all_with_one_fault_90x90", |b| {
        let mut pm = machine(90, 15);
        b.iter(|| {
            pm.inject_fault(10, 20);
            black_box(pm.check_all().expect("check"))
        })
    });
    c.bench_function("machine/verify_consistency_90x90", |b| {
        let pm = machine(90, 15);
        b.iter(|| black_box(pm.verify_consistency().is_ok()))
    });
}

criterion_group!(benches, bench_critical_ops, bench_xor3, bench_checks);
criterion_main!(benches);
