//! Criterion micro-benchmarks for the reliability engine (Figure 6
//! machinery): the closed-form sweep, the per-block codec hot path, and
//! Monte-Carlo trial throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc_core::{BlockGeometry, DiagonalCode};
use pimecc_reliability::{MonteCarlo, ReliabilityModel, SoftErrorRate};
use pimecc_xbar::BitGrid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_closed_form_sweep(c: &mut Criterion) {
    let model = ReliabilityModel::paper().expect("model");
    c.bench_function("fig6/closed_form_sweep_33pts", |b| {
        b.iter(|| black_box(model.sensitivity(4)))
    });
    c.bench_function("fig6/single_point_flash", |b| {
        b.iter(|| black_box(model.point(SoftErrorRate::flash_like())))
    });
}

fn bench_codec(c: &mut Criterion) {
    let geom = BlockGeometry::new(15, 15).expect("geom");
    let code = DiagonalCode::new(geom);
    let mut rng = StdRng::seed_from_u64(1);
    let mut block = BitGrid::new(15, 15);
    for r in 0..15 {
        for col in 0..15 {
            block.set(r, col, rng.gen());
        }
    }
    let (lead, counter) = code.encode(&block);

    c.bench_function("codec/encode_15x15", |b| {
        b.iter(|| black_box(code.encode(&block)))
    });
    c.bench_function("codec/syndrome_clean_15x15", |b| {
        b.iter(|| black_box(code.syndrome(&block, &lead, &counter)))
    });
    c.bench_function("codec/correct_single_error_15x15", |b| {
        b.iter(|| {
            let mut corrupted = block.clone();
            corrupted.flip(7, 3);
            let mut l = lead.clone();
            let mut k = counter.clone();
            black_box(code.correct(&mut corrupted, &mut l, &mut k))
        })
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let model = ReliabilityModel::paper().expect("model");
    let ser = SoftErrorRate::from_fit_per_bit(1e5);
    let mc = MonteCarlo::new(99);
    c.bench_function("monte_carlo/1000_block_trials_4_threads", |b| {
        b.iter(|| black_box(mc.block_failure_rate(&model, ser, 1_000, 4)))
    });
}

criterion_group!(
    benches,
    bench_closed_form_sweep,
    bench_codec,
    bench_monte_carlo
);
criterion_main!(benches);
