//! Criterion micro-benchmarks for the Table I pipeline: circuit
//! generation, NOR lowering, SIMPLER mapping and ECC scheduling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc_netlist::generators::Benchmark;
use pimecc_simpler::{map, map_auto, schedule_with_ecc, EccConfig, MapperConfig};

fn bench_generation(c: &mut Criterion) {
    c.bench_function("netlist/generate_adder", |b| {
        b.iter(|| black_box(Benchmark::Adder.build()))
    });
    c.bench_function("netlist/generate_dec", |b| {
        b.iter(|| black_box(Benchmark::Dec.build()))
    });
    c.bench_function("netlist/lower_adder_to_nor", |b| {
        let nl = Benchmark::Adder.build().netlist;
        b.iter(|| black_box(nl.to_nor()))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let adder = Benchmark::Adder.build().netlist.to_nor();
    let dec = Benchmark::Dec.build().netlist.to_nor();
    c.bench_function("simpler/map_adder_1020", |b| {
        b.iter(|| black_box(map(&adder, &MapperConfig { row_size: 1020 }).expect("maps")))
    });
    c.bench_function("simpler/map_dec_1020", |b| {
        b.iter(|| black_box(map(&dec, &MapperConfig { row_size: 1020 }).expect("maps")))
    });
}

fn bench_schedule(c: &mut Criterion) {
    let (program, _) = map_auto(&Benchmark::Dec.build().netlist.to_nor(), 1020).expect("dec maps");
    let cfg = EccConfig::default();
    c.bench_function("ecc/schedule_dec", |b| {
        b.iter(|| black_box(schedule_with_ecc(&program, &cfg)))
    });
}

fn bench_execution(c: &mut Criterion) {
    let (program, _) = map_auto(&Benchmark::Dec.build().netlist.to_nor(), 1020).expect("dec maps");
    let inputs = vec![true; 8];
    c.bench_function("simpler/execute_dec_on_crossbar", |b| {
        b.iter(|| black_box(program.execute(&inputs).expect("legal program")))
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_mapping,
    bench_schedule,
    bench_execution
);
criterion_main!(benches);
