//! Criterion micro-benchmarks for the sharded cluster: one flush of mixed
//! int2float + adder traffic at 1 / 2 / 4 shards. The host does the same
//! total simulation work regardless of shard count (the modeled win —
//! wall MEM cycles — is what `examples/cluster_throughput.rs` records);
//! this bench guards the queue/scheduler overhead on top of it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc::prelude::*;
use pimecc_netlist::generators::{ripple_adder, Benchmark};

const N: usize = 255;
const M: usize = 5;
const PER_PROGRAM: usize = 64;

fn bench_cluster_flush(c: &mut Criterion) {
    let i2f_nor = Benchmark::Int2float.build().netlist.to_nor();
    let adder_nor = ripple_adder(8).to_nor();
    for shards in [1usize, 2, 4] {
        c.bench_function(&format!("cluster/mixed_flush_x{shards}"), |b| {
            let mut cluster = PimClusterBuilder::new(shards, N, M)
                .build()
                .expect("cluster");
            let pi = cluster.compile(&i2f_nor).expect("compiles");
            let pa = cluster.compile(&adder_nor).expect("compiles");
            b.iter(|| {
                for i in 0..PER_PROGRAM {
                    let x = (i * 37) as u32 & 0x7FF;
                    let _ = cluster
                        .submit(&pi, (0..11).map(|b| x >> b & 1 != 0).collect())
                        .expect("submits");
                    let y = (i * 73) as u32 & 0xFFFF;
                    let _ = cluster
                        .submit(&pa, (0..16).map(|b| y >> b & 1 != 0).collect())
                        .expect("submits");
                }
                black_box(cluster.flush().expect("flushes"))
            })
        });
    }
}

criterion_group!(benches, bench_cluster_flush);
criterion_main!(benches);
