//! Criterion micro-benchmarks for intra-shard parallelism: the fused
//! row-parallel replay swept over the thread-count × lane-config grid —
//! row-team widths 1/2/4/8 against the two kernel lane configs (scalar
//! cell-at-a-time vs 64-bit-word × 4-row-lane). Before anything is timed,
//! every grid point is executed once and asserted bit-identical (state
//! and `MachineStats`) to the scalar reference: the grid may only move
//! wall-clock time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimecc_core::{BlockGeometry, ProtectedMemory, SimEngine};
use pimecc_xbar::{BitGrid, LineSet, ParallelStep};

const N: usize = 255;
const M: usize = 5;
const GATES: usize = 32;
const TEAM_WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn machine(engine: SimEngine) -> ProtectedMemory {
    let mut pm = ProtectedMemory::new(BlockGeometry::new(N, M).expect("geom")).expect("machine");
    pm.set_engine(engine);
    let mut g = BitGrid::new(N, N);
    let mut s = 0x9E3779B97F4A7C15u64;
    for r in 0..N {
        for c in 0..N {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            g.set(r, c, s >> 63 != 0);
        }
    }
    pm.load_grid(&g);
    pm
}

/// A `GATES`-gate self-arming sequence touching a third of the columns.
fn program() -> Vec<ParallelStep> {
    (0..GATES)
        .flat_map(|i| {
            let out = 60 + i;
            [
                ParallelStep::Init(vec![out]),
                ParallelStep::Nor(vec![i % 30, 30 + i % 20], out),
            ]
        })
        .collect()
}

fn replay_scalar(pm: &mut ProtectedMemory, steps: &[ParallelStep]) {
    for step in steps {
        match step {
            ParallelStep::Init(cells) => pm.exec_init_rows(cells, &LineSet::All).expect("init"),
            ParallelStep::Nor(ins, out) => pm.exec_nor_rows(ins, *out, &LineSet::All).expect("nor"),
        }
    }
}

/// Every grid point must leave the machine in the same state as the
/// scalar reference — checked once, outside the timed loops.
fn assert_grid_is_bit_identical(steps: &[ParallelStep]) {
    let mut reference = machine(SimEngine::ScalarReference);
    replay_scalar(&mut reference, steps);
    let ref_stats = *reference.stats();
    let ref_report = reference.check_all().expect("checks");
    for threads in TEAM_WIDTHS {
        let mut pm = machine(SimEngine::WordParallel);
        let prog = pm.compile_fused_rows(steps).expect("fuses");
        pm.exec_fused_rows(&prog, 0..N, threads);
        assert_eq!(
            pm.mem().grid().diff(reference.mem().grid()),
            vec![],
            "t{threads} state diverged from the scalar reference"
        );
        assert_eq!(
            *pm.stats(),
            ref_stats,
            "t{threads} stats diverged from the scalar reference"
        );
        assert_eq!(
            pm.check_all().expect("checks"),
            ref_report,
            "t{threads} check report diverged from the scalar reference"
        );
    }
}

fn bench_team_grid(c: &mut Criterion) {
    let steps = program();
    assert_grid_is_bit_identical(&steps);
    // The word-lane kernel across the row-team widths.
    for threads in TEAM_WIDTHS {
        c.bench_function(
            &format!("intrashard/fused_{N}x{GATES}/word64x4/t{threads}"),
            |b| {
                let mut pm = machine(SimEngine::WordParallel);
                let prog = pm.compile_fused_rows(&steps).expect("fuses");
                b.iter(|| {
                    pm.exec_fused_rows(&prog, 0..N, threads);
                    black_box(pm.stats().mem_cycles)
                })
            },
        );
    }
    // The scalar lane config has no fused path and no team: the per-step
    // replay at width 1 is the whole scalar column of the grid.
    c.bench_function(&format!("intrashard/fused_{N}x{GATES}/scalar/t1"), |b| {
        let mut pm = machine(SimEngine::ScalarReference);
        b.iter(|| {
            replay_scalar(&mut pm, &steps);
            black_box(pm.stats().mem_cycles)
        })
    });
}

fn bench_team_sweep_cost(c: &mut Criterion) {
    // The ECC sweep that follows every fused replay, at each team width:
    // isolates the merge/flush overhead the row teams must not regress.
    for threads in TEAM_WIDTHS {
        c.bench_function(&format!("intrashard/check_all_cols/t{threads}"), |b| {
            let mut pm = machine(SimEngine::WordParallel);
            let prog = pm.compile_fused_rows(&program()).expect("fuses");
            pm.exec_fused_rows(&prog, 0..N, threads);
            b.iter(|| black_box(pm.check_all_cols().expect("sweep").checked))
        });
    }
}

criterion_group!(benches, bench_team_grid, bench_team_sweep_cost);
criterion_main!(benches);
