//! Regression pins for the regenerated artifacts: the exact numbers
//! printed by the `table1`, `table2` and `fig6` binaries. These are
//! deterministic (seeded generators, closed-form math), so any drift
//! signals an unintended change to a generator, the mapper, the scheduler
//! or the reliability model.

use pimecc_bench::{geomean_overhead_pct, table1, table1_fixed_pool};
use pimecc_core::AreaModel;
use pimecc_reliability::{ReliabilityModel, SoftErrorRate};
use pimecc_simpler::EccConfig;

#[test]
fn table1_is_pinned() {
    let rows = table1(&EccConfig::default());
    let expect: &[(&str, u64, u64, usize)] = &[
        ("adder", 2172, 2463, 3),
        ("arbiter", 6285, 6576, 4),
        ("bar", 2956, 3245, 4),
        // cavlc and ctrl are synthesized from seeded random truth tables,
        // so their pins are tied to the workspace PRNG stream (see the
        // in-tree `rand` crate).
        ("cavlc", 4589, 4644, 1),
        ("ctrl", 1139, 1224, 1),
        ("dec", 385, 930, 7),
        ("int2float", 148, 195, 6),
        ("max", 3711, 4004, 4),
        ("priority", 1394, 1443, 2),
        ("sin", 21612, 21695, 2),
        ("voter", 15928, 15963, 1),
    ];
    for (row, &(name, base, prop, pcs)) in rows.iter().zip(expect) {
        assert_eq!(row.name, name);
        assert_eq!(row.baseline, base, "{name} baseline");
        assert_eq!(row.proposed, prop, "{name} proposed");
        assert_eq!(row.min_pcs, pcs, "{name} PCs");
    }
    let geomean = geomean_overhead_pct(&rows);
    assert!((geomean - 15.91).abs() < 0.05, "geomean {geomean:.2}");
}

#[test]
fn table1_fixed_pool_geomean_is_pinned() {
    let rows = table1_fixed_pool(&EccConfig::default());
    let geomean = geomean_overhead_pct(&rows);
    assert!((geomean - 25.22).abs() < 0.05, "geomean {geomean:.2}");
    // dec stalls hard at k=3.
    let dec = rows.iter().find(|r| r.name == "dec").expect("dec row");
    assert_eq!(dec.proposed, 1875);
}

#[test]
fn table2_is_pinned_exactly() {
    let a = AreaModel::paper().expect("model");
    let mem: Vec<u64> = a.rows().iter().map(|r| r.memristors).collect();
    let tr: Vec<u64> = a.rows().iter().map(|r| r.transistors).collect();
    assert_eq!(mem, vec![1_040_400, 138_720, 67_320, 2_040, 0, 0]);
    assert_eq!(tr, vec![0, 0, 0, 0, 61_200, 14_280]);
}

#[test]
fn fig6_headline_is_pinned() {
    let model = ReliabilityModel::paper().expect("model");
    let p = model.point(SoftErrorRate::flash_like());
    // 3.3616e8 at 1e-3 FIT/bit; allow a ppm of float slack.
    let gain = p.improvement();
    assert!((gain / 3.3616e8 - 1.0).abs() < 1e-3, "gain {gain:.4e}");
    assert!((p.baseline_mttf_hours / 1.2883e2 - 1.0).abs() < 1e-3);
    assert!((p.proposed_mttf_hours / 4.3306e10 - 1.0).abs() < 1e-3);
}

#[test]
fn fig6_curve_endpoints_are_pinned() {
    let model = ReliabilityModel::paper().expect("model");
    let low = model.point(SoftErrorRate::from_fit_per_bit(1e-5));
    assert!((low.proposed_mttf_hours / 4.3306e14 - 1.0).abs() < 1e-3);
    let high = model.point(SoftErrorRate::from_fit_per_bit(1e3));
    assert!(
        (high.improvement() - 1.0).abs() < 1e-6,
        "saturation plateau"
    );
}
