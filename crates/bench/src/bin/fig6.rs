//! Regenerates the paper's Figure 6: 1 GB memory MTTF vs memristor soft
//! error rate, baseline (no ECC) vs the proposed diagonal ECC.
//!
//! Usage: `cargo run -p pimecc-bench --bin fig6 [--csv] [--monte-carlo]`
//!
//! `--monte-carlo` additionally cross-validates the closed-form per-block
//! failure probability against fault-injection trials through the actual
//! decoder at three high-SER points (where failures are frequent enough to
//! sample).

use pimecc_reliability::{MonteCarlo, ReliabilityModel, SoftErrorRate};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let monte_carlo = args.iter().any(|a| a == "--monte-carlo");

    let model = ReliabilityModel::paper().expect("paper model");
    let points = model.sensitivity(4);

    if csv {
        println!("ser_fit_per_bit,baseline_mttf_hours,proposed_mttf_hours,improvement");
        for p in &points {
            println!(
                "{:.6e},{:.6e},{:.6e},{:.6e}",
                p.ser.fit_per_bit(),
                p.baseline_mttf_hours,
                p.proposed_mttf_hours,
                p.improvement()
            );
        }
    } else {
        println!("Figure 6 — 1 GB memory MTTF (hours) vs memristor SER (FIT/bit)\n");
        println!(
            "{:>14} {:>16} {:>16} {:>12}",
            "SER (FIT/bit)", "Baseline MTTF", "Proposed MTTF", "Improvement"
        );
        for p in &points {
            println!(
                "{:>14.3e} {:>16.4e} {:>16.4e} {:>12.4e}",
                p.ser.fit_per_bit(),
                p.baseline_mttf_hours,
                p.proposed_mttf_hours,
                p.improvement()
            );
        }
        let flash = model.point(SoftErrorRate::flash_like());
        println!();
        println!(
            "headline at 1e-3 FIT/bit (Flash-like): improvement {:.3e} (paper: over 3e8)",
            flash.improvement()
        );
    }

    if monte_carlo {
        println!();
        println!("Monte-Carlo validation of per-block failure probability:");
        println!(
            "{:>14} {:>14} {:>14} {:>10} {:>8}",
            "SER (FIT/bit)", "analytical", "monte-carlo", "ci95", "agree"
        );
        let mc = MonteCarlo::new(0xF166);
        for fit in [3e4, 1e5, 3e5] {
            let ser = SoftErrorRate::from_fit_per_bit(fit);
            let analytical = model.block_failure_probability(ser);
            let result = mc.block_failure_rate(&model, ser, 20_000, 8);
            println!(
                "{:>14.3e} {:>14.6e} {:>14.6e} {:>10.2e} {:>8}",
                fit,
                analytical,
                result.estimate,
                result.confidence_95,
                result.contains(analytical)
            );
        }
    }
}
