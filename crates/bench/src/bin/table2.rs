//! Regenerates the paper's Table II (memristor/transistor counts) for the
//! case study n = 1020, m = 15, k = 3.
//!
//! Usage: `cargo run -p pimecc-bench --bin table2 [n m k]`

use pimecc_core::AreaModel;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let model = match args.as_slice() {
        [n, m, k] => AreaModel::new(*n, *m, *k).expect("valid geometry"),
        _ => AreaModel::paper().expect("paper geometry"),
    };
    println!(
        "Table II — device counts (n={}, m={}, k={})\n",
        model.n(),
        model.m(),
        model.k()
    );
    print!("{model}");
    println!();
    println!(
        "paper totals: 1.25e6 memristors, 7.55e4 transistors; ours: {:.3e} / {:.3e}",
        model.total_memristors() as f64,
        model.total_transistors() as f64
    );
    println!(
        "memristor overhead over bare data array: {:.1}%",
        model.memristor_overhead_fraction() * 100.0
    );
}
