//! Refresh-vs-ECC study (ours, beyond the paper): the paper's §II-B notes
//! that periodic refresh (prior work) addresses accumulated drift but not
//! abrupt upsets, and that refresh "can still be used in conjunction with
//! the mechanism proposed in this paper". This binary quantifies the
//! combination with the two-population drift model.
//!
//! Usage: `cargo run -p pimecc-bench --release --bin refresh`

use pimecc_reliability::{DriftModel, ReliabilityModel};

fn main() {
    // Abrupt population at 1e-4 FIT/bit; drift population averaging 1e-3
    // FIT/bit when refreshed daily, accelerating linearly (alpha = 1).
    let drift = DriftModel::new(1e-4, 1e-3, 24.0, 1.0);
    let model = ReliabilityModel::paper().expect("model");

    println!("1 GB memory MTTF (hours) vs refresh period — drift + abrupt populations\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "refresh (h)", "no protection", "refresh only", "ECC only", "refresh + ECC"
    );
    for refresh_hours in [1.0, 3.0, 6.0, 12.0, 24.0] {
        let [bare, refresh_only, ecc_only, both] = drift.mttf_matrix(&model, refresh_hours);
        println!(
            "{:>12} {:>14.4e} {:>14.4e} {:>14.4e} {:>14.4e}",
            refresh_hours, bare, refresh_only, ecc_only, both
        );
    }
    println!();
    println!("shape: refresh alone saturates at the abrupt-upset floor; the diagonal");
    println!("ECC multiplies MTTF at every refresh period, and the combination");
    println!("dominates both — the paper's \"used in conjunction\" claim, quantified.");
}
