//! Regenerates the paper's Table I (latency in clock cycles).
//!
//! Usage: `cargo run -p pimecc-bench --bin table1 [--csv]`
//!
//! Left block: this reproduction (regenerated EPFL-style circuits mapped
//! with our SIMPLER implementation and scheduled with the ECC extension).
//! Right block ("P.*"): the paper's reported values. Absolute cycle counts
//! differ because the circuits are regenerated from specification; the
//! comparison targets are the overhead *shape* and the PC counts.

use pimecc_bench::{geomean_overhead_pct, render_table1, table1, table1_csv, table1_fixed_pool};
use pimecc_simpler::EccConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    // `--pcs K` evaluates with a fixed pool of K processing crossbars
    // (stalls allowed) instead of the paper's no-starvation convention.
    let fixed_pcs = args
        .iter()
        .position(|a| a == "--pcs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let rows = match fixed_pcs {
        Some(k) => table1_fixed_pool(&EccConfig {
            num_pcs: k,
            ..EccConfig::default()
        }),
        None => table1(&EccConfig::default()),
    };
    if csv {
        print!("{}", table1_csv(&rows));
        return;
    }
    match fixed_pcs {
        Some(k) => {
            println!("Table I — latency (clock cycles), fixed pool of {k} PCs, ours vs paper\n")
        }
        None => println!("Table I — latency (clock cycles), ours vs paper\n"),
    }
    print!("{}", render_table1(&rows));
    println!();
    println!(
        "geomean overhead: {:.2}% (paper: 26.23%); max PC: {} (paper: 8)",
        geomean_overhead_pct(&rows),
        rows.iter().map(|r| r.min_pcs).max().unwrap_or(0)
    );
}
