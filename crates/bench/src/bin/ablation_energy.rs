//! Energy ablation (ours, beyond the paper): estimated switching-energy
//! overhead of the ECC mechanism per Table I benchmark, from the scheduled
//! operation counts and a documented per-event energy model.
//!
//! Usage: `cargo run -p pimecc-bench --release --bin ablation_energy`

use pimecc_core::EnergyModel;
use pimecc_netlist::generators::Benchmark;
use pimecc_simpler::{map_auto, schedule_with_ecc, EccConfig};

fn main() {
    let model = EnergyModel::default();
    let cfg = EccConfig::default();
    println!("Energy ablation (per-event model: {model:?})\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "bench", "base (pJ)", "ecc (pJ)", "total (pJ)", "ovh (%)"
    );
    let mut logsum = 0.0;
    for b in Benchmark::ALL {
        let nor = b.build().netlist.to_nor();
        let (program, row) = map_auto(&nor, 1020).expect("maps");
        let report = schedule_with_ecc(&program, &cfg);
        let lanes = row / cfg.m; // XOR3 lanes per full-width op

        let _ = lanes;
        // Single-row execution: each gate cycle switches one output cell;
        // each batched init arms the freed cells (bill the whole pool).
        let base_fj = program.gate_cycles() as f64 * model.nor_gate_fj
            + program.init_cycles() as f64 * model.init_cell_fj * row as f64 / 8.0;
        // ECC adds, per critical op, two one-bit transfers and two 8-NOR
        // XOR3 programs (leading + counter), plus the m-row input check.
        let ecc_fj = report.transfer_cycles as f64 * model.transfer_bit_fj
            + 2.0 * report.critical_ops as f64 * model.xor3_lane_fj;
        let total = base_fj + ecc_fj;
        let ovh = ecc_fj / base_fj * 100.0;
        logsum += (total / base_fj).ln();
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>10.2}",
            b.name(),
            base_fj / 1000.0,
            ecc_fj / 1000.0,
            total / 1000.0,
            ovh
        );
    }
    println!(
        "\ngeomean energy overhead: {:.2}% — notably HIGHER than the latency\n\
         overhead: the two 8-NOR XOR3 programs per covered write (~16 gate\n\
         events protecting one) hide behind pipelined processing crossbars in\n\
         time, but not in joules. Output-sparse workloads (sin, voter) stay\n\
         nearly free either way.",
        ((logsum / 11.0f64).exp() - 1.0) * 100.0
    );
}
