//! Extended Table I (ours, beyond the paper): the latency analysis applied
//! to multiplier-class EPFL-style workloads the paper does not evaluate.
//!
//! Usage: `cargo run -p pimecc-bench --release --bin table1x`

use pimecc_netlist::generators::ExtraBenchmark;
use pimecc_simpler::{map_auto, min_processing_crossbars, schedule_with_ecc, EccConfig};

fn main() {
    let cfg = EccConfig::default();
    println!("Extended Table I — multiplier-class workloads (no paper reference)\n");
    println!(
        "{:<10} {:>8} {:>7} {:>9} {:>9} {:>8} {:>4}",
        "bench", "gates", "row", "baseline", "proposed", "ovh(%)", "PC"
    );
    for e in ExtraBenchmark::ALL {
        let nor = e.build().netlist.to_nor();
        let (program, row) = map_auto(&nor, 1020).expect("maps");
        let report = schedule_with_ecc(&program, &EccConfig { num_pcs: 16, ..cfg });
        let pcs = min_processing_crossbars(&program, &cfg, 16);
        println!(
            "{:<10} {:>8} {:>7} {:>9} {:>9} {:>8.2} {:>4}",
            e.name(),
            nor.num_gates(),
            row,
            report.baseline_cycles,
            report.total_cycles,
            report.overhead_pct(),
            pcs
        );
    }
    println!();
    println!("expected profile: multipliers are adder-chain-dominated with moderate");
    println!("output density, landing between sin (<1%) and adder (~13%).");
}
