//! Ablation over the block dimension `m` — the paper's §III trade-off:
//! "Smaller blocks increase overall reliability at the cost of more data
//! overhead."
//!
//! For each odd divisor of n = 1020, prints the check-bit storage
//! overhead, the MTTF improvement at Flash-like SER, and the Table I
//! latency overhead of two representative workloads (`adder`, `dec`).
//!
//! Usage: `cargo run -p pimecc-bench --bin ablation_m`

use pimecc_core::{AreaModel, BlockGeometry};
use pimecc_netlist::generators::Benchmark;
use pimecc_reliability::{ReliabilityModel, SoftErrorRate};
use pimecc_simpler::{map_auto, schedule_with_ecc, EccConfig};

fn main() {
    // Odd divisors of 1020 that make valid geometries (m >= 3).
    let ms = [3usize, 5, 15, 17, 51, 85];
    let flash = SoftErrorRate::flash_like();

    let adder = map_auto(&Benchmark::Adder.build().netlist.to_nor(), 1020)
        .expect("adder maps")
        .0;
    let dec = map_auto(&Benchmark::Dec.build().netlist.to_nor(), 1020)
        .expect("dec maps")
        .0;

    println!("Ablation: block dimension m (n=1020, k=3, T=24h, 1GB)\n");
    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "m", "check bits", "storage ovh", "MTTF gain", "adder ovh%", "dec ovh%"
    );
    for m in ms {
        let geom = BlockGeometry::new(1020, m).expect("valid geometry");
        let area = AreaModel::new(1020, m, 3).expect("valid geometry");
        let check_bits = area.rows()[1].memristors;
        let storage = check_bits as f64 / (1020.0 * 1020.0);
        let model = ReliabilityModel::new(geom, 8 * (1 << 30), 24.0, false);
        let gain = model.improvement(flash);
        let cfg = EccConfig {
            m,
            ..EccConfig::default()
        };
        let adder_ovh = schedule_with_ecc(&adder, &cfg).overhead_pct();
        let dec_ovh = schedule_with_ecc(&dec, &cfg).overhead_pct();
        println!(
            "{:>4} {:>12} {:>13.1}% {:>14.3e} {:>11.2}% {:>11.2}%",
            m,
            check_bits,
            storage * 100.0,
            gain,
            adder_ovh,
            dec_ovh
        );
    }
    println!();
    println!("expected shape: smaller m -> more check-bit storage but higher MTTF gain;");
    println!("latency overhead rises with m only through the m-cycle input check.");
}
