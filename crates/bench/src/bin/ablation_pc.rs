//! Ablation over the number of processing crossbars `k` — the resource
//! behind Table I's "PC (#)" column and Table II's `k` parameter.
//!
//! Prints latency versus k for the three benchmarks with the most distinct
//! profiles: `dec` (critical-dense), `adder` (moderate), `sin` (sparse).
//!
//! Usage: `cargo run -p pimecc-bench --bin ablation_pc`

use pimecc_netlist::generators::Benchmark;
use pimecc_simpler::{map_auto, schedule_with_ecc, EccConfig};

fn main() {
    let picks = [Benchmark::Dec, Benchmark::Adder, Benchmark::Sin];
    let programs: Vec<_> = picks
        .iter()
        .map(|&b| {
            (
                b.name(),
                map_auto(&b.build().netlist.to_nor(), 1020).expect("maps").0,
            )
        })
        .collect();

    println!("Ablation: processing crossbar count k (m=15)\n");
    print!("{:>3}", "k");
    for (name, _) in &programs {
        print!(" {:>10}", name);
    }
    println!();
    for k in 1..=10 {
        print!("{:>3}", k);
        for (_, p) in &programs {
            let cfg = EccConfig {
                num_pcs: k,
                ..EccConfig::default()
            };
            print!(" {:>10}", schedule_with_ecc(p, &cfg).total_cycles);
        }
        println!();
    }
    println!();
    println!("latency is monotone non-increasing in k and flattens at the");
    println!("benchmark's PC(#) knee — dec needs the most, sin the fewest.");
}
