//! Shared harness code for regenerating every table and figure of the
//! paper: row computation, paper reference values, and plain-text/CSV
//! formatting. The `table1`, `table2`, `fig6`, `ablation_m` and
//! `ablation_pc` binaries print the artifacts; this library holds the logic
//! so integration tests can assert on the same numbers the binaries show.

use pimecc::device::PimDevice;
use pimecc_netlist::generators::Benchmark;
use pimecc_simpler::{map_auto, min_processing_crossbars, schedule_with_ecc, EccConfig};

/// One point of the batch-amortization curve: a `batch`-deep
/// [`PimDevice::run_batch`] of one benchmark on a fresh device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPoint {
    /// Requests packed into the batch.
    pub batch: usize,
    /// MEM cycles the whole batch consumed.
    pub mem_cycles: u64,
    /// MEM cycles per request — the amortized latency.
    pub mem_cycles_per_request: f64,
    /// Gate evaluations per MEM cycle — the throughput figure.
    pub gate_evals_per_mem_cycle: f64,
}

/// Measures the batch-amortization curve of `bench` on an `n×n` device
/// with `m×m` blocks, one fresh device per point so the deltas are
/// comparable.
///
/// # Panics
///
/// Panics if the benchmark does not fit an `n`-cell row, a batch exceeds
/// `n`, or the geometry is invalid — misconfigurations, not runtime
/// conditions.
pub fn batch_amortization(
    bench: Benchmark,
    n: usize,
    m: usize,
    batch_sizes: &[usize],
) -> Vec<BatchPoint> {
    let circuit = bench.build();
    let nor = circuit.netlist.to_nor();
    batch_sizes
        .iter()
        .map(|&k| {
            let mut device = PimDevice::new(n, m).expect("valid geometry");
            let program = device.compile(&nor).expect("benchmark fits the device row");
            let requests: Vec<Vec<bool>> = (0..k)
                .map(|i| {
                    (0..program.num_inputs())
                        .map(|b| (i * 37) >> (b % 11) & 1 != 0)
                        .collect()
                })
                .collect();
            let outcome = device.run_batch(&program, &requests).expect("batch fits");
            BatchPoint {
                batch: k,
                mem_cycles: outcome.stats.mem_cycles,
                mem_cycles_per_request: outcome.mem_cycles_per_request(),
                gate_evals_per_mem_cycle: outcome.gate_evals_per_mem_cycle(),
            }
        })
        .collect()
}

/// One row of the regenerated Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Row width the mapping used (1020 unless the circuit needed more).
    pub row_size: usize,
    /// SIMPLER baseline latency (cycles).
    pub baseline: u64,
    /// Latency with the proposed ECC mechanism (cycles).
    pub proposed: u64,
    /// Overhead percentage.
    pub overhead_pct: f64,
    /// Minimal processing-crossbar count achieving this latency.
    pub min_pcs: usize,
}

/// Paper Table I reference values `(baseline, proposed, overhead %, PC#)`
/// for side-by-side printing. Absolute cycle counts differ from ours
/// because the circuits are regenerated (see DESIGN.md), but the *shape* —
/// who is worst (`dec`), who is best (`sin`/`voter`), geomean magnitude —
/// must agree.
pub fn paper_table1(name: &str) -> Option<(u64, u64, f64, u32)> {
    Some(match name {
        "adder" => (1531, 2050, 34.0, 3),
        "arbiter" => (12798, 13316, 4.05, 2),
        "bar" => (4051, 4510, 11.3, 4),
        "cavlc" => (841, 879, 4.5, 3),
        "ctrl" => (134, 201, 50.0, 5),
        "dec" => (360, 1101, 205.8, 8),
        "int2float" => (295, 324, 9.83, 3),
        "max" => (4200, 5101, 21.5, 4),
        "priority" => (730, 876, 20.0, 3),
        "sin" => (7919, 7995, 0.96, 3),
        "voter" => (12738, 13733, 7.81, 2),
        _ => return None,
    })
}

/// Paper Table I geometric-mean overhead (percent).
pub const PAPER_GEOMEAN_OVERHEAD_PCT: f64 = 26.23;

/// Computes one Table I row for `bench` under `cfg`.
///
/// Following the paper's convention ("at most eight processing crossbars
/// to support any logic function **without stalling**"), the proposed
/// latency is evaluated with enough PCs that none of the critical
/// operations stall, and `min_pcs` reports the smallest count achieving
/// exactly that latency.
///
/// # Panics
///
/// Panics if the circuit cannot be mapped even with automatic row
/// widening (cannot happen for the built-in benchmarks).
pub fn table1_row(bench: Benchmark, cfg: &EccConfig) -> Table1Row {
    let nor = bench.build().netlist.to_nor();
    let (program, row_size) = map_auto(&nor, 1020).expect("benchmark must map");
    let report = schedule_with_ecc(
        &program,
        &EccConfig {
            num_pcs: 16,
            ..*cfg
        },
    );
    let min_pcs = min_processing_crossbars(&program, cfg, 16);
    Table1Row {
        name: bench.name(),
        row_size,
        baseline: report.baseline_cycles,
        proposed: report.total_cycles,
        overhead_pct: report.overhead_pct(),
        min_pcs,
    }
}

/// Computes the full Table I under the paper's no-PC-starvation
/// convention.
pub fn table1(cfg: &EccConfig) -> Vec<Table1Row> {
    Benchmark::ALL.iter().map(|&b| table1_row(b, cfg)).collect()
}

/// Computes Table I with a *fixed* processing-crossbar pool of
/// `cfg.num_pcs` (critical operations stall when the pool is exhausted) —
/// the alternative reading where Table II's `k = 3` bounds the hardware.
pub fn table1_fixed_pool(cfg: &EccConfig) -> Vec<Table1Row> {
    Benchmark::ALL
        .iter()
        .map(|&b| {
            let nor = b.build().netlist.to_nor();
            let (program, row_size) = map_auto(&nor, 1020).expect("benchmark must map");
            let report = schedule_with_ecc(&program, cfg);
            let min_pcs = min_processing_crossbars(&program, cfg, 16);
            Table1Row {
                name: b.name(),
                row_size,
                baseline: report.baseline_cycles,
                proposed: report.total_cycles,
                overhead_pct: report.overhead_pct(),
                min_pcs,
            }
        })
        .collect()
}

/// Geometric mean of the overhead across rows, in percent.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean_overhead_pct(rows: &[Table1Row]) -> f64 {
    assert!(!rows.is_empty(), "need at least one row");
    let logsum: f64 = rows
        .iter()
        .map(|r| (r.proposed as f64 / r.baseline as f64).ln())
        .sum();
    ((logsum / rows.len() as f64).exp() - 1.0) * 100.0
}

/// Renders rows as an aligned text table with the paper's values inline.
pub fn render_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>9} {:>9} {:>9} {:>4} | {:>9} {:>9} {:>9} {:>4}",
        "Benchmark",
        "row",
        "Baseline",
        "Proposed",
        "Ovh(%)",
        "PC",
        "P.Base",
        "P.Prop",
        "P.Ovh(%)",
        "P.PC"
    );
    for r in rows {
        let (pb, pp, po, ppc) = paper_table1(r.name).unwrap_or((0, 0, 0.0, 0));
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>9} {:>9} {:>9.2} {:>4} | {:>9} {:>9} {:>9.2} {:>4}",
            r.name, r.row_size, r.baseline, r.proposed, r.overhead_pct, r.min_pcs, pb, pp, po, ppc
        );
    }
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>9} {:>9} {:>9.2} {:>4} | {:>9} {:>9} {:>9.2} {:>4}",
        "Geo.Mean",
        "",
        "",
        "",
        geomean_overhead_pct(rows),
        "",
        "",
        "",
        PAPER_GEOMEAN_OVERHEAD_PCT,
        ""
    );
    out
}

/// Renders rows as CSV (for plotting).
pub fn table1_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from("benchmark,row_size,baseline,proposed,overhead_pct,min_pcs\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{}\n",
            r.name, r.row_size, r.baseline, r.proposed, r.overhead_pct, r.min_pcs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_cover_all_benchmarks() {
        for b in Benchmark::ALL {
            assert!(paper_table1(b.name()).is_some(), "{b}");
        }
        assert!(paper_table1("nope").is_none());
    }

    #[test]
    fn geomean_math() {
        let rows = vec![
            Table1Row {
                name: "a",
                row_size: 1020,
                baseline: 100,
                proposed: 121,
                overhead_pct: 21.0,
                min_pcs: 1,
            },
            Table1Row {
                name: "b",
                row_size: 1020,
                baseline: 100,
                proposed: 100,
                overhead_pct: 0.0,
                min_pcs: 1,
            },
        ];
        // sqrt(1.21 * 1.00) = 1.10 -> 10%
        assert!((geomean_overhead_pct(&rows) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_row_shape_for_dec() {
        // `dec` is the paper's stress case: overhead must dwarf the others.
        let row = table1_row(Benchmark::Dec, &EccConfig::default());
        assert!(row.overhead_pct > 100.0, "{row:?}");
        assert!(row.min_pcs >= 4, "{row:?}");
        let sin = table1_row(Benchmark::Sin, &EccConfig::default());
        assert!(sin.overhead_pct < 2.0, "{sin:?}");
    }

    #[test]
    fn batch_amortization_curve_shows_the_kx_win() {
        let points = batch_amortization(Benchmark::Int2float, 255, 5, &[1, 8, 64]);
        assert_eq!(points.len(), 3);
        let single = points[0];
        let deep = points[2];
        // Each step executes once per batch: 64 requests stay under twice
        // the single-request cycle count...
        assert!(deep.mem_cycles < 2 * single.mem_cycles, "{points:?}");
        // ...so the per-request latency collapses and throughput scales.
        assert!(deep.mem_cycles_per_request * 8.0 < single.mem_cycles_per_request);
        assert!(deep.gate_evals_per_mem_cycle > 8.0 * single.gate_evals_per_mem_cycle);
    }

    #[test]
    fn render_includes_all_rows_and_geomean() {
        let rows = table1(&EccConfig::default());
        let text = render_table1(&rows);
        for b in Benchmark::ALL {
            assert!(text.contains(b.name()), "{b} missing");
        }
        assert!(text.contains("Geo.Mean"));
        let csv = table1_csv(&rows);
        assert_eq!(csv.lines().count(), 12);
    }
}
