//! Lowering to the MAGIC-native gate set: multi-input NOR (and its 1-input
//! special case, NOT).
//!
//! MAGIC executes k-input NOR gates natively inside a crossbar row or
//! column; every other gate must be decomposed. The decompositions used here
//! are the textbook ones (and the XNOR-in-4-NORs construction that gives the
//! paper its 8-NOR XOR3):
//!
//! | gate        | NOR form                                   | gates |
//! |-------------|--------------------------------------------|-------|
//! | NOT a       | NOR(a)                                     | 1     |
//! | OR(a,b)     | NOT(NOR(a,b))                              | 2     |
//! | AND(a,b)    | NOR(¬a, ¬b)                                | 1 (+2)|
//! | NAND(a,b)   | NOT(AND(a,b))                              | 2 (+2)|
//! | XNOR(a,b)   | NOR(NOR(a,x), NOR(b,x)), x = NOR(a,b)      | 4     |
//! | XOR(a,b)    | NOT(XNOR(a,b))                             | 5     |
//! | MUX(s,h,l)  | NOT(NOR(AND(s,h), AND(¬s,l)))              | ≤6    |
//! | MAJ(a,b,c)  | NOT(NOR(ab, ac, bc))                       | ≤8    |
//!
//! Inverters are hash-consed so a signal is complemented at most once.

use crate::gate::Gate;
use crate::netlist::Netlist;
use std::collections::HashMap;

/// A signal feeding a NOR gate: either a primary input or the output of an
/// earlier NOR gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NorSource {
    /// Primary input number.
    Input(usize),
    /// Output of gate number (index into [`NorNetlist::gates`]).
    Gate(usize),
}

/// One k-input NOR gate (k = 1 is a NOT).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NorGate {
    /// The gate's input signals (at least one).
    pub inputs: Vec<NorSource>,
}

/// A netlist whose every gate is a NOR — the form SIMPLER maps onto a
/// crossbar row.
///
/// # Example
///
/// ```
/// use pimecc_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let g = b.xor(x, y);
/// b.output(g);
/// let nor = b.finish().to_nor();
/// assert_eq!(nor.num_gates(), 5); // XOR costs 5 NORs
/// assert_eq!(nor.eval(&[true, false]), vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct NorNetlist {
    num_inputs: usize,
    gates: Vec<NorGate>,
    outputs: Vec<NorSource>,
}

impl NorNetlist {
    /// Lowers `netlist` to NOR-only form. Prefer [`Netlist::to_nor`].
    pub fn from_netlist(netlist: &Netlist) -> Self {
        Lowering::new(netlist.num_inputs()).run(netlist)
    }

    /// Assembles a NOR netlist from raw parts. The caller guarantees the
    /// gates are in topological order (used by the partitioner to carve
    /// sub-netlists; `debug_assert`-validated there).
    pub(crate) fn from_parts(
        num_inputs: usize,
        gates: Vec<NorGate>,
        outputs: Vec<NorSource>,
    ) -> Self {
        NorNetlist {
            num_inputs,
            gates,
            outputs,
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of NOR gates (1-input NOTs included).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[NorGate] {
        &self.gates
    }

    /// The output signals in declaration order.
    pub fn outputs(&self) -> &[NorSource] {
        &self.outputs
    }

    /// Fanout count per gate (references from other gates and from the
    /// output list combined).
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.gates.len()];
        for g in &self.gates {
            for &s in &g.inputs {
                if let NorSource::Gate(i) = s {
                    fo[i] += 1;
                }
            }
        }
        for &s in &self.outputs {
            if let NorSource::Gate(i) = s {
                fo[i] += 1;
            }
        }
        fo
    }

    /// Evaluates the NOR netlist on `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.eval_all(inputs);
        self.outputs
            .iter()
            .map(|s| resolve(*s, inputs, &values))
            .collect()
    }

    /// Evaluates every gate, returning the per-gate value vector.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_all(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let any = g.inputs.iter().any(|&s| resolve(s, inputs, &values));
            values.push(!any);
        }
        values
    }

    /// Structural validation: every gate references only inputs or earlier
    /// gates, and has at least one input.
    pub fn validate(&self) -> Result<(), String> {
        for (i, g) in self.gates.iter().enumerate() {
            if g.inputs.is_empty() {
                return Err(format!("gate {i} has no inputs"));
            }
            for &s in &g.inputs {
                match s {
                    NorSource::Input(k) if k >= self.num_inputs => {
                        return Err(format!("gate {i} reads undefined input {k}"));
                    }
                    NorSource::Gate(j) if j >= i => {
                        return Err(format!("gate {i} reads non-preceding gate {j}"));
                    }
                    _ => {}
                }
            }
        }
        for &s in &self.outputs {
            if let NorSource::Gate(j) = s {
                if j >= self.gates.len() {
                    return Err(format!("output reads undefined gate {j}"));
                }
            }
        }
        Ok(())
    }

    /// Set of gate indices whose values are primary outputs. These are the
    /// *ECC-critical* writes of the DAC'21 paper: the data that must be
    /// covered by check-bits once the function completes.
    pub fn output_gate_set(&self) -> Vec<bool> {
        let mut is_out = vec![false; self.gates.len()];
        for &s in &self.outputs {
            if let NorSource::Gate(i) = s {
                is_out[i] = true;
            }
        }
        is_out
    }
}

fn resolve(s: NorSource, inputs: &[bool], values: &[bool]) -> bool {
    match s {
        NorSource::Input(i) => inputs[i],
        NorSource::Gate(g) => values[g],
    }
}

/// Working state of the Netlist→NOR lowering.
struct Lowering {
    gates: Vec<NorGate>,
    /// Cache of inverters: source → gate index of its NOT.
    inverters: HashMap<NorSource, usize>,
    num_inputs: usize,
    const_cache: Option<(NorSource, NorSource)>, // (zero, one)
}

impl Lowering {
    fn new(num_inputs: usize) -> Self {
        Lowering {
            gates: Vec::new(),
            inverters: HashMap::new(),
            num_inputs,
            const_cache: None,
        }
    }

    fn emit(&mut self, inputs: Vec<NorSource>) -> NorSource {
        self.gates.push(NorGate { inputs });
        NorSource::Gate(self.gates.len() - 1)
    }

    fn inv(&mut self, s: NorSource) -> NorSource {
        if let Some(&g) = self.inverters.get(&s) {
            return NorSource::Gate(g);
        }
        let out = self.emit(vec![s]);
        let NorSource::Gate(g) = out else {
            unreachable!()
        };
        self.inverters.insert(s, g);
        if let NorSource::Gate(g2) = s {
            // NOT(out) is s itself; reuse it instead of a third inverter.
            self.inverters.entry(out).or_insert(g2);
        }
        out
    }

    fn consts(&mut self) -> (NorSource, NorSource) {
        if let Some(c) = self.const_cache {
            return c;
        }
        assert!(
            self.num_inputs > 0,
            "cannot synthesize constants without inputs"
        );
        let x = NorSource::Input(0);
        let nx = self.inv(x);
        let zero = self.emit(vec![x, nx]); // NOR(x, ¬x) = 0
        let one = self.inv(zero);
        self.const_cache = Some((zero, one));
        (zero, one)
    }

    fn and(&mut self, a: NorSource, b: NorSource) -> NorSource {
        let na = self.inv(a);
        let nb = self.inv(b);
        self.emit(vec![na, nb])
    }

    fn or(&mut self, a: NorSource, b: NorSource) -> NorSource {
        let n = self.emit(vec![a, b]);
        self.inv(n)
    }

    fn xnor(&mut self, a: NorSource, b: NorSource) -> NorSource {
        let x = self.emit(vec![a, b]);
        let y = self.emit(vec![a, x]);
        let z = self.emit(vec![b, x]);
        self.emit(vec![y, z])
    }

    fn run(mut self, netlist: &Netlist) -> NorNetlist {
        let mut map: Vec<NorSource> = Vec::with_capacity(netlist.nodes().len());
        for gate in netlist.nodes() {
            let src = match *gate {
                Gate::Input(i) => NorSource::Input(i),
                Gate::Const(c) => {
                    let (zero, one) = self.consts();
                    if c {
                        one
                    } else {
                        zero
                    }
                }
                Gate::Not(a) => self.inv(map[a.index()]),
                Gate::Nor(a, b) => self.emit(vec![map[a.index()], map[b.index()]]),
                Gate::Or(a, b) => self.or(map[a.index()], map[b.index()]),
                Gate::And(a, b) => self.and(map[a.index()], map[b.index()]),
                Gate::Nand(a, b) => {
                    let x = self.and(map[a.index()], map[b.index()]);
                    self.inv(x)
                }
                Gate::Xnor(a, b) => self.xnor(map[a.index()], map[b.index()]),
                Gate::Xor(a, b) => {
                    let x = self.xnor(map[a.index()], map[b.index()]);
                    self.inv(x)
                }
                Gate::Mux { sel, hi, lo } => {
                    let s = map[sel.index()];
                    let h = map[hi.index()];
                    let l = map[lo.index()];
                    let ns = self.inv(s);
                    let u = {
                        let nh = self.inv(h);
                        self.emit(vec![ns, nh]) // AND(s, h)
                    };
                    let v = {
                        let nl = self.inv(l);
                        self.emit(vec![s, nl]) // AND(¬s, l)
                    };
                    let w = self.emit(vec![u, v]);
                    self.inv(w) // OR(u, v)
                }
                Gate::Maj(a, b, c) => {
                    let (a, b, c) = (map[a.index()], map[b.index()], map[c.index()]);
                    let ab = self.and(a, b);
                    let ac = self.and(a, c);
                    let bc = self.and(b, c);
                    let n = self.emit(vec![ab, ac, bc]);
                    self.inv(n)
                }
            };
            map.push(src);
        }
        let outputs = netlist.outputs().iter().map(|o| map[o.index()]).collect();
        let out = NorNetlist {
            num_inputs: self.num_inputs,
            gates: self.gates,
            outputs,
        };
        let out = out.prune_dead();
        debug_assert_eq!(out.validate(), Ok(()));
        out
    }
}

impl NorNetlist {
    /// Removes gates not reachable from any output (dead logic left behind
    /// by inverter-cache shortcuts during lowering), compacting indices.
    pub fn prune_dead(&self) -> NorNetlist {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<usize> = self
            .outputs
            .iter()
            .filter_map(|s| match s {
                NorSource::Gate(i) => Some(*i),
                NorSource::Input(_) => None,
            })
            .collect();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut live[i], true) {
                continue;
            }
            for &s in &self.gates[i].inputs {
                if let NorSource::Gate(j) = s {
                    stack.push(j);
                }
            }
        }
        let mut remap = vec![usize::MAX; self.gates.len()];
        let mut gates = Vec::with_capacity(live.iter().filter(|&&l| l).count());
        for (i, gate) in self.gates.iter().enumerate() {
            if !live[i] {
                continue;
            }
            remap[i] = gates.len();
            gates.push(NorGate {
                inputs: gate
                    .inputs
                    .iter()
                    .map(|&s| match s {
                        NorSource::Gate(j) => NorSource::Gate(remap[j]),
                        input => input,
                    })
                    .collect(),
            });
        }
        let outputs = self
            .outputs
            .iter()
            .map(|&s| match s {
                NorSource::Gate(j) => NorSource::Gate(remap[j]),
                input => input,
            })
            .collect();
        NorNetlist {
            num_inputs: self.num_inputs,
            gates,
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    /// Exhaustively compares netlist and NOR-lowered evaluation for a small
    /// circuit.
    fn assert_equivalent(netlist: &Netlist) {
        let nor = netlist.to_nor();
        assert_eq!(nor.validate(), Ok(()));
        let n = netlist.num_inputs();
        assert!(n <= 16, "exhaustive check limited to 16 inputs");
        for v in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(
                netlist.eval(&inputs),
                nor.eval(&inputs),
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn all_two_input_gates_lower_correctly() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let gates = [
            b.and(x, y),
            b.or(x, y),
            b.nor(x, y),
            b.nand(x, y),
            b.xor(x, y),
            b.xnor(x, y),
        ];
        b.output_all(gates);
        assert_equivalent(&b.finish());
    }

    #[test]
    fn mux_and_maj_lower_correctly() {
        let mut b = NetlistBuilder::new();
        let s = b.input();
        let h = b.input();
        let l = b.input();
        let m = b.mux(s, h, l);
        let j = b.maj(s, h, l);
        b.output(m);
        b.output(j);
        assert_equivalent(&b.finish());
    }

    #[test]
    fn constants_lower_correctly() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let one = b.constant(true);
        let zero = b.constant(false);
        // Keep the constants alive through non-foldable paths: output them.
        b.output(one);
        b.output(zero);
        b.output(x);
        assert_equivalent(&b.finish());
    }

    #[test]
    fn xor_costs_five_nors_and_xnor_four() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.xnor(x, y);
        b.output(g);
        assert_eq!(b.finish().to_nor().num_gates(), 4);

        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.xor(x, y);
        b.output(g);
        assert_eq!(b.finish().to_nor().num_gates(), 5);
    }

    #[test]
    fn inverters_are_shared() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.input();
        // Both ANDs need ¬x; lowering must create it once.
        let g1 = b.and(x, y);
        let g2 = b.and(x, z);
        b.output(g1);
        b.output(g2);
        let nor = b.finish().to_nor();
        // gates: ¬x, ¬y, AND1, ¬z, AND2 = 5 (not 6).
        assert_eq!(nor.num_gates(), 5);
        assert_equivalent(&{
            let mut b = NetlistBuilder::new();
            let x = b.input();
            let y = b.input();
            let z = b.input();
            let g1 = b.and(x, y);
            let g2 = b.and(x, z);
            b.output(g1);
            b.output(g2);
            b.finish()
        });
    }

    #[test]
    fn ripple_adder_equivalence() {
        // 3-bit adder exercising deep sharing.
        let mut b = NetlistBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.input()).collect();
        let x: Vec<_> = (0..3).map(|_| b.input()).collect();
        let mut carry = b.constant(false);
        for i in 0..3 {
            let s1 = b.xor(a[i], x[i]);
            let sum = b.xor(s1, carry);
            let c = b.maj(a[i], x[i], carry);
            b.output(sum);
            carry = c;
        }
        b.output(carry);
        assert_equivalent(&b.finish());
    }

    #[test]
    fn fanouts_count_gate_and_output_references() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let n = b.nor(x, y);
        b.output(n);
        let nor = b.finish().to_nor();
        let fo = nor.fanouts();
        // Final gate has fanout 1 (the output).
        assert_eq!(*fo.last().unwrap(), 1);
    }

    #[test]
    fn output_gate_set_marks_outputs_only() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.and(x, y);
        b.output(g);
        let nor = b.finish().to_nor();
        let set = nor.output_gate_set();
        assert_eq!(set.iter().filter(|&&v| v).count(), 1);
        assert!(set[nor.num_gates() - 1]);
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let broken = NorNetlist {
            num_inputs: 1,
            gates: vec![NorGate {
                inputs: vec![NorSource::Gate(1)],
            }],
            outputs: vec![NorSource::Gate(0)],
        };
        assert!(broken.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_gate() {
        let broken = NorNetlist {
            num_inputs: 1,
            gates: vec![NorGate { inputs: vec![] }],
            outputs: vec![NorSource::Gate(0)],
        };
        assert!(broken.validate().is_err());
    }
}
