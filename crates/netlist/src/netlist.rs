//! The immutable netlist produced by [`crate::NetlistBuilder`].

use crate::gate::{Gate, NodeId};
use crate::nor::NorNetlist;
use std::collections::HashMap;

/// An immutable combinational netlist in topological node order.
///
/// Construct through [`crate::NetlistBuilder`]; evaluate with
/// [`Netlist::eval`]; lower to the MAGIC-native gate set with
/// [`Netlist::to_nor`].
///
/// # Example
///
/// ```
/// use pimecc_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let a = b.input();
/// let n = b.not(a);
/// b.output(n);
/// let nl = b.finish();
/// assert_eq!(nl.eval(&[false]), vec![true]);
/// assert_eq!(nl.num_inputs(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) nodes: Vec<Gate>,
    pub(crate) num_inputs: usize,
    pub(crate) outputs: Vec<NodeId>,
}

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Logic gates (excludes `Input`/`Const` sources).
    pub gates: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Longest input-to-output path measured in gates.
    pub depth: usize,
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} gates, {} inputs, {} outputs, depth {}",
            self.gates, self.inputs, self.outputs, self.depth
        )
    }
}

impl Netlist {
    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The output nodes, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All nodes in topological order (operands precede users).
    pub fn nodes(&self) -> &[Gate] {
        &self.nodes
    }

    /// The gate at `id`.
    pub fn gate(&self, id: NodeId) -> &Gate {
        &self.nodes[id.index()]
    }

    /// Evaluates the netlist on `inputs`, returning one bool per output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.eval_all(inputs);
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Evaluates every node, returning the full value vector indexed by
    /// [`NodeId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_all(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = vec![false; self.nodes.len()];
        for (i, gate) in self.nodes.iter().enumerate() {
            values[i] = gate.eval(|n| values[n.index()], inputs);
        }
        values
    }

    /// Per-gate fanout counts (number of gate references to each node;
    /// output references are *not* counted).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.nodes.len()];
        for gate in &self.nodes {
            for op in gate.operands() {
                fo[op.index()] += 1;
            }
        }
        fo
    }

    /// Summary statistics (gate count, IO arity, logic depth).
    pub fn stats(&self) -> NetlistStats {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max_depth = 0;
        let mut gates = 0;
        for (i, gate) in self.nodes.iter().enumerate() {
            if gate.is_source() {
                continue;
            }
            gates += 1;
            let d = gate
                .operands()
                .iter()
                .map(|op| depth[op.index()])
                .max()
                .unwrap_or(0)
                + 1;
            depth[i] = d;
            max_depth = max_depth.max(d);
        }
        NetlistStats {
            gates,
            inputs: self.num_inputs,
            outputs: self.outputs.len(),
            depth: max_depth,
        }
    }

    /// Per-kind gate histogram keyed by a short mnemonic (`"and"`, `"xor"`,
    /// ...).
    pub fn gate_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for gate in &self.nodes {
            let key = match gate {
                Gate::Input(_) | Gate::Const(_) => continue,
                Gate::Not(_) => "not",
                Gate::And(..) => "and",
                Gate::Or(..) => "or",
                Gate::Nor(..) => "nor",
                Gate::Nand(..) => "nand",
                Gate::Xor(..) => "xor",
                Gate::Xnor(..) => "xnor",
                Gate::Mux { .. } => "mux",
                Gate::Maj(..) => "maj",
            };
            *h.entry(key).or_insert(0) += 1;
        }
        h
    }

    /// Checks structural invariants: topological operand order and
    /// in-bounds references. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, gate) in self.nodes.iter().enumerate() {
            for op in gate.operands() {
                if op.index() >= self.nodes.len() {
                    return Err(format!("node {i} references out-of-bounds {op}"));
                }
                if op.index() >= i {
                    return Err(format!("node {i} references non-preceding {op}"));
                }
            }
            if let Gate::Input(k) = gate {
                if *k >= self.num_inputs {
                    return Err(format!(
                        "node {i} is input {k} but only {} inputs",
                        self.num_inputs
                    ));
                }
            }
        }
        for out in &self.outputs {
            if out.index() >= self.nodes.len() {
                return Err(format!("output references out-of-bounds {out}"));
            }
        }
        Ok(())
    }

    /// Lowers the netlist to NOR/NOT-only form for MAGIC execution.
    pub fn to_nor(&self) -> NorNetlist {
        NorNetlist::from_netlist(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new();
        let a = b.input();
        let x = b.input();
        let cin = b.input();
        let s1 = b.xor(a, x);
        let sum = b.xor(s1, cin);
        let carry = b.maj(a, x, cin);
        b.output(sum);
        b.output(carry);
        b.finish()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for v in 0..8u32 {
            let a = v & 1 != 0;
            let x = v & 2 != 0;
            let c = v & 4 != 0;
            let got = nl.eval(&[a, x, c]);
            let total = a as u32 + x as u32 + c as u32;
            assert_eq!(got[0], total & 1 != 0, "sum for {v:03b}");
            assert_eq!(got[1], total >= 2, "carry for {v:03b}");
        }
    }

    #[test]
    fn stats_count_gates_and_depth() {
        let nl = full_adder();
        let s = nl.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 3); // xor, xor, maj
        assert_eq!(s.depth, 2); // xor -> xor
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert_eq!(full_adder().validate(), Ok(()));
    }

    #[test]
    fn fanout_counts() {
        let nl = full_adder();
        // Each input feeds the first xor and/or maj.
        let fo = nl.fanout_counts();
        // input a: xor + maj = 2
        assert_eq!(fo[0], 2);
        // s1 feeds sum xor only.
        let s1_idx = 3; // inputs occupy 0..3
        assert_eq!(fo[s1_idx], 1);
    }

    #[test]
    fn gate_histogram_counts_kinds() {
        let h = full_adder().gate_histogram();
        assert_eq!(h.get("xor"), Some(&2));
        assert_eq!(h.get("maj"), Some(&1));
        assert_eq!(h.get("and"), None);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn eval_rejects_wrong_arity() {
        full_adder().eval(&[true]);
    }

    #[test]
    fn stats_display_nonempty() {
        assert!(!full_adder().stats().to_string().is_empty());
    }
}
