//! BLIF (Berkeley Logic Interchange Format) import and export.
//!
//! The EPFL benchmark suite the paper evaluates on ships as BLIF files.
//! This workspace regenerates the circuits structurally (no network
//! access), but a downstream user with the real files can load them
//! through [`parse_blif`] and run the exact original netlists through the
//! SIMPLER mapper and the ECC scheduler. [`write_blif`] exports any
//! [`Netlist`] for inspection with standard EDA tools (abc, yosys).
//!
//! Supported subset: `.model`, `.inputs`, `.outputs`, `.names` with
//! don't-cares and multi-line covers (on-set or off-set), `\`
//! line-continuations, `#` comments, `.end`. Latches and hierarchy are
//! rejected — the paper's flow is purely combinational.

use crate::builder::NetlistBuilder;
use crate::gate::{Gate, NodeId};
use crate::netlist::Netlist;
use crate::synth::{Synthesizer, TruthTable};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while parsing BLIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlifError {
    /// The file has no `.model` declaration.
    MissingModel,
    /// A construct outside the supported combinational subset.
    Unsupported {
        /// The offending directive (e.g. `.latch`).
        directive: String,
        /// 1-based line number.
        line: usize,
    },
    /// A `.names` cover row is malformed.
    BadCover {
        /// Description of the problem.
        reason: String,
        /// 1-based line number.
        line: usize,
    },
    /// A signal is referenced but never defined (and is not an input).
    UndefinedSignal {
        /// The signal name.
        name: String,
    },
    /// Two `.names` blocks drive the same signal.
    Redefined {
        /// The signal name.
        name: String,
    },
    /// Combinational loop among `.names` blocks.
    CombinationalLoop {
        /// A signal on the cycle.
        name: String,
    },
    /// A `.names` block has too many inputs to tabulate (> 16).
    TooManyInputs {
        /// The driven signal.
        name: String,
        /// Its input count.
        inputs: usize,
    },
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlifError::MissingModel => write!(f, "missing .model declaration"),
            BlifError::Unsupported { directive, line } => {
                write!(f, "unsupported directive {directive} on line {line}")
            }
            BlifError::BadCover { reason, line } => {
                write!(f, "malformed cover on line {line}: {reason}")
            }
            BlifError::UndefinedSignal { name } => write!(f, "undefined signal {name}"),
            BlifError::Redefined { name } => write!(f, "signal {name} driven twice"),
            BlifError::CombinationalLoop { name } => {
                write!(f, "combinational loop through signal {name}")
            }
            BlifError::TooManyInputs { name, inputs } => {
                write!(f, "signal {name} has {inputs} cover inputs (max 16)")
            }
        }
    }
}

impl std::error::Error for BlifError {}

/// One `.names` block: cover rows mapping input patterns to the output.
#[derive(Debug, Clone)]
struct NamesBlock {
    inputs: Vec<String>,
    /// Rows of `(pattern, value)`; pattern chars are '0', '1', '-'.
    rows: Vec<(String, bool)>,
    line: usize,
}

/// A parsed BLIF model, before elaboration.
#[derive(Debug, Clone)]
struct RawModel {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    blocks: HashMap<String, NamesBlock>,
}

/// Parses BLIF text into a [`Netlist`]. Input order follows the `.inputs`
/// declaration; output order follows `.outputs`.
///
/// # Errors
///
/// See [`BlifError`] for all failure modes.
///
/// # Example
///
/// ```
/// use pimecc_netlist::blif::parse_blif;
///
/// # fn main() -> Result<(), pimecc_netlist::blif::BlifError> {
/// let nl = parse_blif(
///     ".model xor2\n.inputs a b\n.outputs y\n.names a b y\n01 1\n10 1\n.end\n",
/// )?;
/// assert_eq!(nl.eval(&[true, false]), vec![true]);
/// assert_eq!(nl.eval(&[true, true]), vec![false]);
/// # Ok(())
/// # }
/// ```
pub fn parse_blif(text: &str) -> Result<Netlist, BlifError> {
    let raw = tokenize(text)?;
    elaborate(&raw)
}

fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut continuation = false;
    for (i, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(p) => &line[..p],
            None => line,
        };
        let (body, continues) = match line.trim_end().strip_suffix('\\') {
            Some(b) => (b.trim(), true),
            None => (line.trim(), false),
        };
        if continuation {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(body);
            }
        } else if !body.is_empty() {
            out.push((i + 1, body.to_string()));
        }
        continuation = continues;
    }
    out
}

fn tokenize(text: &str) -> Result<RawModel, BlifError> {
    let mut model: Option<String> = None;
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut blocks: HashMap<String, NamesBlock> = HashMap::new();
    let mut current: Option<NamesBlock> = None;
    let mut current_output: Option<String> = None;

    let finish_block = |cur: &mut Option<NamesBlock>,
                        out: &mut Option<String>,
                        blocks: &mut HashMap<String, NamesBlock>|
     -> Result<(), BlifError> {
        if let (Some(block), Some(name)) = (cur.take(), out.take()) {
            if blocks.insert(name.clone(), block).is_some() {
                return Err(BlifError::Redefined { name });
            }
        }
        Ok(())
    };

    for (line_no, line) in logical_lines(text) {
        let mut parts = line.split_whitespace();
        let head = parts.next().unwrap_or("");
        match head {
            ".model" => {
                model = Some(parts.next().unwrap_or("top").to_string());
            }
            ".inputs" => inputs.extend(parts.map(str::to_string)),
            ".outputs" => outputs.extend(parts.map(str::to_string)),
            ".names" => {
                finish_block(&mut current, &mut current_output, &mut blocks)?;
                let signals: Vec<String> = parts.map(str::to_string).collect();
                let (output, ins) = match signals.split_last() {
                    Some((o, i)) => (o.clone(), i.to_vec()),
                    None => {
                        return Err(BlifError::BadCover {
                            reason: ".names with no signals".into(),
                            line: line_no,
                        })
                    }
                };
                current = Some(NamesBlock {
                    inputs: ins,
                    rows: Vec::new(),
                    line: line_no,
                });
                current_output = Some(output);
            }
            ".end" => break,
            ".latch" | ".subckt" | ".gate" | ".mlatch" | ".clock" => {
                return Err(BlifError::Unsupported {
                    directive: head.to_string(),
                    line: line_no,
                })
            }
            _ if head.starts_with('.') => {
                // Other dot-directives (e.g. .default_input_arrival) are
                // benign metadata; skip them.
            }
            _ => {
                // A cover row for the open .names block.
                let Some(block) = current.as_mut() else {
                    return Err(BlifError::BadCover {
                        reason: format!("cover row '{line}' outside .names"),
                        line: line_no,
                    });
                };
                let tokens: Vec<&str> = line.split_whitespace().collect();
                let (pattern, value) = match tokens.as_slice() {
                    [v] if block.inputs.is_empty() => (String::new(), *v),
                    [p, v] => ((*p).to_string(), *v),
                    _ => {
                        return Err(BlifError::BadCover {
                            reason: format!("expected 'pattern value', got '{line}'"),
                            line: line_no,
                        })
                    }
                };
                if pattern.len() != block.inputs.len() {
                    return Err(BlifError::BadCover {
                        reason: format!(
                            "pattern width {} does not match {} inputs",
                            pattern.len(),
                            block.inputs.len()
                        ),
                        line: line_no,
                    });
                }
                if !pattern.chars().all(|c| matches!(c, '0' | '1' | '-')) {
                    return Err(BlifError::BadCover {
                        reason: format!("bad pattern character in '{pattern}'"),
                        line: line_no,
                    });
                }
                let value = match value {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(BlifError::BadCover {
                            reason: format!("output value must be 0/1, got '{other}'"),
                            line: line_no,
                        })
                    }
                };
                block.rows.push((pattern, value));
            }
        }
    }
    finish_block(&mut current, &mut current_output, &mut blocks)?;
    let name = model.ok_or(BlifError::MissingModel)?;
    Ok(RawModel {
        name,
        inputs,
        outputs,
        blocks,
    })
}

/// Elaborates the raw model into a netlist: resolves signal dependencies
/// topologically and synthesizes each cover via Shannon decomposition.
fn elaborate(raw: &RawModel) -> Result<Netlist, BlifError> {
    let mut b = NetlistBuilder::new();
    let mut env: HashMap<String, NodeId> = HashMap::new();
    for name in &raw.inputs {
        let node = b.input();
        env.insert(name.clone(), node);
    }

    // Iterative topological elaboration with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<String, Mark> = HashMap::new();
    let mut synth = Synthesizer::new();

    for out in raw.outputs.iter() {
        // DFS stack of (signal, expanded?).
        let mut stack = vec![(out.clone(), false)];
        while let Some((name, expanded)) = stack.pop() {
            if env.contains_key(&name) && marks.get(&name) != Some(&Mark::Visiting) {
                continue;
            }
            let Some(block) = raw.blocks.get(&name) else {
                if env.contains_key(&name) {
                    continue;
                }
                return Err(BlifError::UndefinedSignal { name });
            };
            if expanded {
                // All dependencies resolved: synthesize the cover.
                let node = synthesize_cover(&mut b, &mut synth, block, &env)?;
                env.insert(name.clone(), node);
                marks.insert(name, Mark::Done);
                continue;
            }
            match marks.get(&name) {
                Some(Mark::Done) => continue,
                Some(Mark::Visiting) => {
                    return Err(BlifError::CombinationalLoop { name });
                }
                None => {}
            }
            marks.insert(name.clone(), Mark::Visiting);
            stack.push((name.clone(), true));
            for dep in &block.inputs {
                if !env.contains_key(dep) || marks.get(dep) == Some(&Mark::Visiting) {
                    if marks.get(dep) == Some(&Mark::Visiting) {
                        return Err(BlifError::CombinationalLoop { name: dep.clone() });
                    }
                    stack.push((dep.clone(), false));
                }
            }
        }
    }

    for out in &raw.outputs {
        let node = env
            .get(out)
            .copied()
            .ok_or_else(|| BlifError::UndefinedSignal { name: out.clone() })?;
        b.output(node);
    }
    let _ = &raw.name;
    Ok(b.finish())
}

fn synthesize_cover(
    b: &mut NetlistBuilder,
    synth: &mut Synthesizer,
    block: &NamesBlock,
    env: &HashMap<String, NodeId>,
) -> Result<NodeId, BlifError> {
    let k = block.inputs.len();
    if k > 16 {
        return Err(BlifError::TooManyInputs {
            name: block.inputs.join(","),
            inputs: k,
        });
    }
    // Constant blocks: no inputs. "1" row -> const 1; empty/0 -> const 0.
    if k == 0 {
        let value = block.rows.iter().any(|(_, v)| *v);
        return Ok(b.constant(value));
    }
    // The cover is either an on-set (all rows output 1) or an off-set.
    let on_set = block.rows.first().map(|(_, v)| *v).unwrap_or(true);
    if block.rows.iter().any(|(_, v)| *v != on_set) {
        return Err(BlifError::BadCover {
            reason: "mixed on-set and off-set rows".into(),
            line: block.line,
        });
    }
    let covered = |v: usize| -> bool {
        block.rows.iter().any(|(pattern, _)| {
            pattern.chars().enumerate().all(|(i, ch)| match ch {
                '0' => v >> i & 1 == 0,
                '1' => v >> i & 1 == 1,
                _ => true,
            })
        })
    };
    let table = TruthTable::from_fn(k, |v| covered(v) == on_set);
    let input_nodes: Vec<NodeId> = block
        .inputs
        .iter()
        .map(|n| {
            env.get(n)
                .copied()
                .ok_or_else(|| BlifError::UndefinedSignal { name: n.clone() })
        })
        .collect::<Result<_, _>>()?;
    Ok(synth.synthesize(b, &input_nodes, &table))
}

/// Serializes a netlist as BLIF.
///
/// Inputs are named `x0..`, outputs `y0..`, internal nodes `n<id>`.
///
/// # Example
///
/// ```
/// use pimecc_netlist::blif::{parse_blif, write_blif};
/// use pimecc_netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), pimecc_netlist::blif::BlifError> {
/// let mut b = NetlistBuilder::new();
/// let p = b.input();
/// let q = b.input();
/// let g = b.and(p, q);
/// b.output(g);
/// let blif = write_blif(&b.finish(), "and2");
/// let back = parse_blif(&blif)?;
/// assert_eq!(back.eval(&[true, true]), vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn write_blif(netlist: &Netlist, model_name: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let name_of = |id: NodeId| -> String {
        match netlist.gate(id) {
            Gate::Input(i) => format!("x{i}"),
            _ => format!("n{}", id.index()),
        }
    };
    let _ = writeln!(out, ".model {model_name}");
    let input_names: Vec<String> = (0..netlist.num_inputs()).map(|i| format!("x{i}")).collect();
    let _ = writeln!(out, ".inputs {}", input_names.join(" "));
    let output_names: Vec<String> = (0..netlist.num_outputs())
        .map(|i| format!("y{i}"))
        .collect();
    let _ = writeln!(out, ".outputs {}", output_names.join(" "));

    for (idx, gate) in netlist.nodes().iter().enumerate() {
        let this = format!("n{idx}");
        let ops: Vec<String> = gate.operands().iter().map(|&o| name_of(o)).collect();
        match gate {
            Gate::Input(_) => {}
            Gate::Const(c) => {
                let _ = writeln!(out, ".names {this}");
                if *c {
                    let _ = writeln!(out, "1");
                }
            }
            Gate::Not(_) => {
                let _ = writeln!(out, ".names {} {this}\n0 1", ops[0]);
            }
            Gate::And(..) => {
                let _ = writeln!(out, ".names {} {} {this}\n11 1", ops[0], ops[1]);
            }
            Gate::Or(..) => {
                let _ = writeln!(out, ".names {} {} {this}\n1- 1\n-1 1", ops[0], ops[1]);
            }
            Gate::Nor(..) => {
                let _ = writeln!(out, ".names {} {} {this}\n00 1", ops[0], ops[1]);
            }
            Gate::Nand(..) => {
                let _ = writeln!(out, ".names {} {} {this}\n0- 1\n-0 1", ops[0], ops[1]);
            }
            Gate::Xor(..) => {
                let _ = writeln!(out, ".names {} {} {this}\n01 1\n10 1", ops[0], ops[1]);
            }
            Gate::Xnor(..) => {
                let _ = writeln!(out, ".names {} {} {this}\n00 1\n11 1", ops[0], ops[1]);
            }
            Gate::Mux { .. } => {
                // inputs: sel hi lo; output = sel?hi:lo
                let _ = writeln!(
                    out,
                    ".names {} {} {} {this}\n11- 1\n0-1 1",
                    ops[0], ops[1], ops[2]
                );
            }
            Gate::Maj(..) => {
                let _ = writeln!(
                    out,
                    ".names {} {} {} {this}\n11- 1\n1-1 1\n-11 1",
                    ops[0], ops[1], ops[2]
                );
            }
        }
    }
    // Output buffers connect internal names to y<i>.
    for (i, &o) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, ".names {} y{i}\n1 1", name_of(o));
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Benchmark;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parse_minimal_and_gate() {
        let nl = parse_blif(".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end")
            .expect("parses");
        assert_eq!(nl.eval(&[true, true]), vec![true]);
        assert_eq!(nl.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn parse_off_set_cover() {
        // Rows with output 0 define the OFF-set: y = NOT(a AND b).
        let nl = parse_blif(".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end")
            .expect("parses");
        assert_eq!(nl.eval(&[true, true]), vec![false]);
        assert_eq!(nl.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn parse_dont_cares_and_multi_row() {
        let nl =
            parse_blif(".model t\n.inputs a b c\n.outputs y\n.names a b c y\n1-- 1\n-11 1\n.end")
                .expect("parses");
        // y = a OR (b AND c)
        for v in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(nl.eval(&ins)[0], ins[0] | (ins[1] & ins[2]), "v={v}");
        }
    }

    #[test]
    fn parse_constants() {
        let nl =
            parse_blif(".model t\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end")
                .expect("parses");
        assert_eq!(nl.eval(&[false]), vec![true, false]);
    }

    #[test]
    fn parse_comments_and_continuations() {
        let nl = parse_blif(
            "# a comment\n.model t\n.inputs a \\\n b\n.outputs y # trailing\n.names a b y\n11 1\n.end",
        )
        .expect("parses");
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn blocks_elaborate_in_any_textual_order() {
        // y's block references t, defined later in the file.
        let nl = parse_blif(
            ".model t\n.inputs a b\n.outputs y\n.names t y\n0 1\n.names a b t\n11 1\n.end",
        )
        .expect("parses");
        // y = NOT(a AND b)
        assert_eq!(nl.eval(&[true, true]), vec![false]);
        assert_eq!(nl.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            parse_blif(".inputs a\n.outputs y\n").unwrap_err(),
            BlifError::MissingModel
        );
        assert!(matches!(
            parse_blif(".model t\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end"),
            Err(BlifError::Unsupported { .. })
        ));
        assert!(matches!(
            parse_blif(".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end"),
            Err(BlifError::Redefined { .. })
        ));
        assert!(matches!(
            parse_blif(".model t\n.inputs a\n.outputs y\n.end"),
            Err(BlifError::UndefinedSignal { .. })
        ));
        assert!(matches!(
            parse_blif(".model t\n.inputs a\n.outputs y\n.names a y\n11 1\n.end"),
            Err(BlifError::BadCover { .. })
        ));
        assert!(matches!(
            parse_blif(".model t\n.inputs a\n.outputs y\n.names y2 y\n1 1\n.names y y2\n1 1\n.end"),
            Err(BlifError::CombinationalLoop { .. })
        ));
        assert!(matches!(
            parse_blif(".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end"),
            Err(BlifError::BadCover { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let errs: Vec<BlifError> = vec![
            BlifError::MissingModel,
            BlifError::Unsupported {
                directive: ".latch".into(),
                line: 3,
            },
            BlifError::BadCover {
                reason: "x".into(),
                line: 9,
            },
            BlifError::UndefinedSignal { name: "q".into() },
            BlifError::Redefined { name: "q".into() },
            BlifError::CombinationalLoop { name: "q".into() },
            BlifError::TooManyInputs {
                name: "q".into(),
                inputs: 20,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn round_trip_small_circuits() {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(4);
        let g1 = b.xor(ins[0], ins[1]);
        let g2 = b.mux(ins[2], g1, ins[3]);
        let g3 = b.maj(g1, g2, ins[0]);
        let g4 = b.constant(true);
        b.output(g2);
        b.output(g3);
        b.output(g4);
        let nl = b.finish();
        let text = write_blif(&nl, "small");
        let back = parse_blif(&text).expect("round trip parses");
        for v in 0..16u32 {
            let ins: Vec<bool> = (0..4).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(back.eval(&ins), nl.eval(&ins), "v={v}");
        }
    }

    #[test]
    fn round_trip_benchmarks_by_sampling() {
        let mut rng = StdRng::seed_from_u64(123);
        // Skip the largest circuits to keep test time sane; coverage of
        // every gate kind is guaranteed by the smaller ones.
        for bench in [
            Benchmark::Dec,
            Benchmark::Ctrl,
            Benchmark::Int2float,
            Benchmark::Priority,
            Benchmark::Cavlc,
        ] {
            let circuit = bench.build();
            let text = write_blif(&circuit.netlist, bench.name());
            let back = parse_blif(&text).unwrap_or_else(|e| panic!("{bench}: {e}"));
            assert_eq!(back.num_inputs(), circuit.netlist.num_inputs());
            assert_eq!(back.num_outputs(), circuit.netlist.num_outputs());
            for _ in 0..5 {
                let ins: Vec<bool> = (0..back.num_inputs()).map(|_| rng.gen()).collect();
                assert_eq!(back.eval(&ins), circuit.netlist.eval(&ins), "{bench}");
            }
        }
    }

    #[test]
    fn written_blif_mentions_model_and_io() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let n = b.not(x);
        b.output(n);
        let text = write_blif(&b.finish(), "inv");
        assert!(text.starts_with(".model inv"));
        assert!(text.contains(".inputs x0"));
        assert!(text.contains(".outputs y0"));
        assert!(text.trim_end().ends_with(".end"));
    }
}
