//! ASCII AIGER (`.aag`) import and export.
//!
//! The EPFL benchmark suite's primary distribution format is the
//! And-Inverter Graph; this module reads and writes the ASCII AIGER
//! flavour so original benchmark files can run through the SIMPLER/ECC
//! flow unmodified, and our regenerated circuits can be handed to ABC &
//! friends for independent verification.
//!
//! Supported: combinational AAG (`aag M I L O A` with `L = 0`), comments,
//! and the constant literals 0/1. Latches are rejected (the paper's flow
//! is combinational).

use crate::builder::NetlistBuilder;
use crate::gate::{Gate, NodeId};
use crate::netlist::Netlist;
use std::fmt;

/// Errors raised while parsing AAG text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigError {
    /// The header line is missing or malformed.
    BadHeader {
        /// What was found.
        found: String,
    },
    /// The file declares latches, which are unsupported.
    HasLatches {
        /// Number of latches declared.
        latches: usize,
    },
    /// A line has the wrong number of fields or a non-numeric literal.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
    /// A literal exceeds the declared maximum variable index.
    LiteralOutOfRange {
        /// The literal.
        literal: u64,
        /// Declared maximum variable index `M`.
        max_var: u64,
    },
    /// An AND gate's output literal is negated or is an input/constant.
    BadAndOutput {
        /// The literal.
        literal: u64,
    },
    /// An AND references a variable defined by no input or earlier AND.
    UndefinedVariable {
        /// The variable index.
        variable: u64,
    },
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::BadHeader { found } => write!(f, "malformed aag header: '{found}'"),
            AigError::HasLatches { latches } => {
                write!(f, "sequential aig with {latches} latches is unsupported")
            }
            AigError::BadLine { line, reason } => write!(f, "aag line {line}: {reason}"),
            AigError::LiteralOutOfRange { literal, max_var } => {
                write!(f, "literal {literal} exceeds max variable {max_var}")
            }
            AigError::BadAndOutput { literal } => {
                write!(
                    f,
                    "and output literal {literal} must be a fresh even literal"
                )
            }
            AigError::UndefinedVariable { variable } => {
                write!(f, "variable {variable} is never defined")
            }
        }
    }
}

impl std::error::Error for AigError {}

/// Parses ASCII AIGER into a [`Netlist`].
///
/// # Errors
///
/// See [`AigError`].
///
/// # Example
///
/// ```
/// use pimecc_netlist::aiger::parse_aag;
///
/// # fn main() -> Result<(), pimecc_netlist::aiger::AigError> {
/// // AND of two inputs: literals 2 and 4 in, gate 6, output 6.
/// let nl = parse_aag("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n")?;
/// assert_eq!(nl.eval(&[true, true]), vec![true]);
/// assert_eq!(nl.eval(&[true, false]), vec![false]);
/// # Ok(())
/// # }
/// ```
pub fn parse_aag(text: &str) -> Result<Netlist, AigError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| AigError::BadHeader {
        found: String::new(),
    })?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    let nums: Vec<u64> = fields
        .iter()
        .skip(1)
        .filter_map(|t| t.parse().ok())
        .collect();
    if fields.first() != Some(&"aag") || nums.len() != 5 {
        return Err(AigError::BadHeader {
            found: header.to_string(),
        });
    }
    let (max_var, num_in, num_latch, num_out, num_and) = (
        nums[0],
        nums[1] as usize,
        nums[2] as usize,
        nums[3] as usize,
        nums[4] as usize,
    );
    if num_latch != 0 {
        return Err(AigError::HasLatches { latches: num_latch });
    }

    let mut b = NetlistBuilder::new();
    // var index -> positive-polarity node (var 0 is the constant FALSE).
    let mut nodes: Vec<Option<NodeId>> = vec![None; max_var as usize + 1];
    nodes[0] = Some(b.constant(false));

    let read_numbers = |expected: usize,
                        lines: &mut std::iter::Enumerate<std::str::Lines<'_>>|
     -> Result<Vec<(usize, Vec<u64>)>, AigError> {
        let mut out = Vec::with_capacity(expected);
        while out.len() < expected {
            let Some((i, raw)) = lines.next() else {
                return Err(AigError::BadLine {
                    line: i_last(&out),
                    reason: "unexpected end of file".into(),
                });
            };
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let vals: Result<Vec<u64>, _> = line.split_whitespace().map(str::parse).collect();
            match vals {
                Ok(v) => out.push((i + 1, v)),
                Err(_) => {
                    return Err(AigError::BadLine {
                        line: i + 1,
                        reason: format!("non-numeric token in '{line}'"),
                    })
                }
            }
        }
        Ok(out)
    };

    fn i_last(v: &[(usize, Vec<u64>)]) -> usize {
        v.last().map(|(i, _)| *i).unwrap_or(1)
    }

    // Inputs: even literals 2, 4, ...
    let input_lines = read_numbers(num_in, &mut lines)?;
    for (line, vals) in &input_lines {
        let [lit] = vals.as_slice() else {
            return Err(AigError::BadLine {
                line: *line,
                reason: "input needs 1 literal".into(),
            });
        };
        if lit % 2 != 0 || lit / 2 > max_var {
            return Err(AigError::LiteralOutOfRange {
                literal: *lit,
                max_var,
            });
        }
        let node = b.input();
        nodes[(lit / 2) as usize] = Some(node);
    }

    // Outputs (literals, possibly negated) — resolved after ANDs.
    let output_lines = read_numbers(num_out, &mut lines)?;

    // AND gates: `lhs rhs0 rhs1`.
    let and_lines = read_numbers(num_and, &mut lines)?;
    for (line, vals) in &and_lines {
        let [lhs, rhs0, rhs1] = vals.as_slice() else {
            return Err(AigError::BadLine {
                line: *line,
                reason: "and needs 3 literals".into(),
            });
        };
        for lit in [lhs, rhs0, rhs1] {
            if lit / 2 > max_var {
                return Err(AigError::LiteralOutOfRange {
                    literal: *lit,
                    max_var,
                });
            }
        }
        if lhs % 2 != 0 || nodes[(lhs / 2) as usize].is_some() {
            return Err(AigError::BadAndOutput { literal: *lhs });
        }
        let a = literal_node(&mut b, &nodes, *rhs0)?;
        let c = literal_node(&mut b, &nodes, *rhs1)?;
        let node = b.and(a, c);
        nodes[(lhs / 2) as usize] = Some(node);
    }

    for (line, vals) in &output_lines {
        let [lit] = vals.as_slice() else {
            return Err(AigError::BadLine {
                line: *line,
                reason: "output needs 1 literal".into(),
            });
        };
        if lit / 2 > max_var {
            return Err(AigError::LiteralOutOfRange {
                literal: *lit,
                max_var,
            });
        }
        let node = literal_node(&mut b, &nodes, *lit)?;
        b.output(node);
    }
    Ok(b.finish())
}

/// Resolves an AIGER literal (variable + polarity) to a netlist node.
fn literal_node(
    b: &mut NetlistBuilder,
    nodes: &[Option<NodeId>],
    literal: u64,
) -> Result<NodeId, AigError> {
    let var = (literal / 2) as usize;
    let node = nodes[var].ok_or(AigError::UndefinedVariable {
        variable: var as u64,
    })?;
    Ok(if literal % 2 == 1 { b.not(node) } else { node })
}

/// Serializes a netlist as ASCII AIGER, structurally rewriting every gate
/// into AND/NOT form.
///
/// # Example
///
/// ```
/// use pimecc_netlist::aiger::{parse_aag, write_aag};
/// use pimecc_netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), pimecc_netlist::aiger::AigError> {
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let g = b.xor(x, y);
/// b.output(g);
/// let round = parse_aag(&write_aag(&b.finish()))?;
/// assert_eq!(round.eval(&[true, false]), vec![true]);
/// assert_eq!(round.eval(&[true, true]), vec![false]);
/// # Ok(())
/// # }
/// ```
pub fn write_aag(netlist: &Netlist) -> String {
    // Literal of each source node; ANDs are emitted on demand.
    let mut lits: Vec<u64> = Vec::with_capacity(netlist.nodes().len());
    let mut ands: Vec<(u64, u64, u64)> = Vec::new();
    let mut next_var: u64 = netlist.num_inputs() as u64; // vars 1..=I are inputs

    let mut fresh_and = |a: u64, c: u64, ands: &mut Vec<(u64, u64, u64)>| -> u64 {
        next_var += 1;
        let lhs = next_var * 2;
        ands.push((lhs, a, c));
        lhs
    };

    for gate in netlist.nodes() {
        let lit = match *gate {
            Gate::Input(i) => (i as u64 + 1) * 2,
            Gate::Const(c) => c as u64, // 0 = false, 1 = true
            Gate::Not(a) => lits[a.index()] ^ 1,
            Gate::And(a, c) => fresh_and(lits[a.index()], lits[c.index()], &mut ands),
            Gate::Or(a, c) => fresh_and(lits[a.index()] ^ 1, lits[c.index()] ^ 1, &mut ands) ^ 1,
            Gate::Nor(a, c) => fresh_and(lits[a.index()] ^ 1, lits[c.index()] ^ 1, &mut ands),
            Gate::Nand(a, c) => fresh_and(lits[a.index()], lits[c.index()], &mut ands) ^ 1,
            Gate::Xor(a, c) => {
                let (la, lc) = (lits[a.index()], lits[c.index()]);
                let u = fresh_and(la, lc ^ 1, &mut ands);
                let v = fresh_and(la ^ 1, lc, &mut ands);
                fresh_and(u ^ 1, v ^ 1, &mut ands) ^ 1
            }
            Gate::Xnor(a, c) => {
                let (la, lc) = (lits[a.index()], lits[c.index()]);
                let u = fresh_and(la, lc ^ 1, &mut ands);
                let v = fresh_and(la ^ 1, lc, &mut ands);
                fresh_and(u ^ 1, v ^ 1, &mut ands)
            }
            Gate::Mux { sel, hi, lo } => {
                let (ls, lh, ll) = (lits[sel.index()], lits[hi.index()], lits[lo.index()]);
                let u = fresh_and(ls, lh, &mut ands);
                let v = fresh_and(ls ^ 1, ll, &mut ands);
                fresh_and(u ^ 1, v ^ 1, &mut ands) ^ 1
            }
            Gate::Maj(a, c, d) => {
                let (la, lc, ld) = (lits[a.index()], lits[c.index()], lits[d.index()]);
                let u = fresh_and(la, lc, &mut ands);
                let v = fresh_and(la, ld, &mut ands);
                let w = fresh_and(lc, ld, &mut ands);
                let uv = fresh_and(u ^ 1, v ^ 1, &mut ands);
                fresh_and(uv, w ^ 1, &mut ands) ^ 1
            }
        };
        lits.push(lit);
    }

    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "aag {} {} 0 {} {}",
        next_var,
        netlist.num_inputs(),
        netlist.num_outputs(),
        ands.len()
    );
    for i in 0..netlist.num_inputs() {
        let _ = writeln!(out, "{}", (i as u64 + 1) * 2);
    }
    for o in netlist.outputs() {
        let _ = writeln!(out, "{}", lits[o.index()]);
    }
    for (lhs, a, c) in ands {
        let _ = writeln!(out, "{lhs} {a} {c}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Benchmark;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parse_minimal_and() {
        let nl = parse_aag("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n").expect("parses");
        for (a, b) in [(false, false), (true, false), (true, true)] {
            assert_eq!(nl.eval(&[a, b]), vec![a & b]);
        }
    }

    #[test]
    fn parse_negated_output_and_constants() {
        // Output = NOT input; plus constant-true output (literal 1).
        let nl = parse_aag("aag 1 1 0 2 0\n2\n3\n1\n").expect("parses");
        assert_eq!(nl.eval(&[false]), vec![true, true]);
        assert_eq!(nl.eval(&[true]), vec![false, true]);
    }

    #[test]
    fn rejects_latches_and_bad_headers() {
        assert!(matches!(
            parse_aag("aag 3 1 1 1 0\n2\n4 2\n2\n"),
            Err(AigError::HasLatches { latches: 1 })
        ));
        assert!(matches!(
            parse_aag("nonsense"),
            Err(AigError::BadHeader { .. })
        ));
        assert!(matches!(parse_aag(""), Err(AigError::BadHeader { .. })));
    }

    #[test]
    fn rejects_malformed_bodies() {
        assert!(matches!(
            parse_aag("aag 3 2 0 1 1\n2\n4\n6\n6 2\n"),
            Err(AigError::BadLine { .. })
        ));
        assert!(matches!(
            parse_aag("aag 3 2 0 1 1\n2\n4\n99\n6 2 4\n"),
            Err(AigError::LiteralOutOfRange { literal: 99, .. })
        ));
        assert!(matches!(
            parse_aag("aag 3 2 0 1 1\n2\n4\n6\n7 2 4\n"),
            Err(AigError::BadAndOutput { literal: 7 })
        ));
        assert!(matches!(
            parse_aag("aag 3 2 0 1 1\n2\n4\n6\nx y z\n"),
            Err(AigError::BadLine { .. })
        ));
    }

    #[test]
    fn error_display() {
        for e in [
            AigError::BadHeader { found: "x".into() },
            AigError::HasLatches { latches: 2 },
            AigError::BadLine {
                line: 3,
                reason: "r".into(),
            },
            AigError::LiteralOutOfRange {
                literal: 9,
                max_var: 3,
            },
            AigError::BadAndOutput { literal: 7 },
            AigError::UndefinedVariable { variable: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn round_trip_every_gate_kind() {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(3);
        let gates = [
            b.and(ins[0], ins[1]),
            b.or(ins[0], ins[2]),
            b.nor(ins[1], ins[2]),
            b.nand(ins[0], ins[1]),
            b.xor(ins[0], ins[2]),
            b.xnor(ins[1], ins[2]),
            b.mux(ins[0], ins[1], ins[2]),
            b.maj(ins[0], ins[1], ins[2]),
            b.not(ins[0]),
            b.constant(true),
        ];
        b.output_all(gates);
        let nl = b.finish();
        let round = parse_aag(&write_aag(&nl)).expect("round trip");
        for v in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(round.eval(&inputs), nl.eval(&inputs), "v={v}");
        }
    }

    #[test]
    fn round_trip_benchmarks_by_sampling() {
        let mut rng = StdRng::seed_from_u64(321);
        for bench in [
            Benchmark::Dec,
            Benchmark::Int2float,
            Benchmark::Ctrl,
            Benchmark::Adder,
        ] {
            let c = bench.build();
            let round =
                parse_aag(&write_aag(&c.netlist)).unwrap_or_else(|e| panic!("{bench}: {e}"));
            assert_eq!(round.num_inputs(), c.netlist.num_inputs(), "{bench}");
            assert_eq!(round.num_outputs(), c.netlist.num_outputs(), "{bench}");
            for _ in 0..5 {
                let inputs: Vec<bool> = (0..round.num_inputs()).map(|_| rng.gen()).collect();
                assert_eq!(round.eval(&inputs), c.netlist.eval(&inputs), "{bench}");
            }
        }
    }

    #[test]
    fn written_header_counts_are_consistent() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.xor(x, y);
        b.output(g);
        let text = write_aag(&b.finish());
        let header: Vec<&str> = text.lines().next().unwrap().split_whitespace().collect();
        let a: usize = header[5].parse().unwrap();
        // XOR = 3 ANDs.
        assert_eq!(a, 3);
        // Body line count = I + O + A + header.
        assert_eq!(text.lines().count(), 1 + 2 + 1 + a);
    }
}
