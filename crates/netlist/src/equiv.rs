//! Combinational equivalence checking between netlists.
//!
//! Used throughout the workspace to validate transformations (NOR
//! lowering, BLIF round-trips, generator refactors): exhaustive for small
//! input counts, seeded random simulation above that, and a miter
//! construction for integration with external SAT-based flows.

use crate::builder::NetlistBuilder;
use crate::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Proven equal on every input valuation (exhaustive).
    Equivalent,
    /// No mismatch found across the sampled valuations (statistical).
    ProbablyEquivalent {
        /// Number of random vectors simulated.
        samples: usize,
    },
    /// A concrete counterexample.
    Mismatch {
        /// The differing input valuation.
        inputs: Vec<bool>,
        /// First differing output index.
        output: usize,
    },
}

impl Equivalence {
    /// True unless a counterexample was found.
    pub fn holds(&self) -> bool {
        !matches!(self, Equivalence::Mismatch { .. })
    }
}

/// Compares two netlists with the same I/O arity: exhaustively when the
/// input count is at most `exhaustive_limit`, otherwise with `samples`
/// seeded random vectors.
///
/// # Panics
///
/// Panics if the two netlists disagree on input or output arity.
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    exhaustive_limit: usize,
    samples: usize,
    seed: u64,
) -> Equivalence {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output arity mismatch");
    let n = a.num_inputs();
    if n <= exhaustive_limit && n < usize::BITS as usize {
        for v in 0..1usize << n {
            let inputs: Vec<bool> = (0..n).map(|i| v >> i & 1 != 0).collect();
            if let Some(output) = first_diff(a, b, &inputs) {
                return Equivalence::Mismatch { inputs, output };
            }
        }
        return Equivalence::Equivalent;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..samples {
        let inputs: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        if let Some(output) = first_diff(a, b, &inputs) {
            return Equivalence::Mismatch { inputs, output };
        }
    }
    Equivalence::ProbablyEquivalent { samples }
}

fn first_diff(a: &Netlist, b: &Netlist, inputs: &[bool]) -> Option<usize> {
    let va = a.eval(inputs);
    let vb = b.eval(inputs);
    va.iter().zip(&vb).position(|(x, y)| x != y)
}

/// Builds the *miter* of two netlists: a single-output circuit that is 1
/// iff the two disagree on some output for the given inputs. Feeding the
/// miter to a SAT-capable flow proves equivalence; here it is also handy
/// as a self-test artifact.
///
/// # Panics
///
/// Panics if the arities disagree.
pub fn miter(a: &Netlist, b: &Netlist) -> Netlist {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output arity mismatch");
    let mut builder = NetlistBuilder::new();
    let inputs = builder.inputs(a.num_inputs());
    let outs_a = clone_into(a, &mut builder, &inputs);
    let outs_b = clone_into(b, &mut builder, &inputs);
    let mut any = builder.constant(false);
    for (x, y) in outs_a.into_iter().zip(outs_b) {
        let d = builder.xor(x, y);
        any = builder.or(any, d);
    }
    builder.output(any);
    builder.finish()
}

/// Re-elaborates `source` into `builder`, substituting `inputs` for its
/// primary inputs; returns the mapped output nodes.
fn clone_into(
    source: &Netlist,
    builder: &mut NetlistBuilder,
    inputs: &[crate::gate::NodeId],
) -> Vec<crate::gate::NodeId> {
    use crate::gate::Gate;
    let mut map = Vec::with_capacity(source.nodes().len());
    for gate in source.nodes() {
        let node = match *gate {
            Gate::Input(i) => inputs[i],
            Gate::Const(c) => builder.constant(c),
            Gate::Not(a) => builder.not(map[a.index()]),
            Gate::And(a, b) => builder.and(map[a.index()], map[b.index()]),
            Gate::Or(a, b) => builder.or(map[a.index()], map[b.index()]),
            Gate::Nor(a, b) => builder.nor(map[a.index()], map[b.index()]),
            Gate::Nand(a, b) => builder.nand(map[a.index()], map[b.index()]),
            Gate::Xor(a, b) => builder.xor(map[a.index()], map[b.index()]),
            Gate::Xnor(a, b) => builder.xnor(map[a.index()], map[b.index()]),
            Gate::Mux { sel, hi, lo } => {
                builder.mux(map[sel.index()], map[hi.index()], map[lo.index()])
            }
            Gate::Maj(a, b, c) => builder.maj(map[a.index()], map[b.index()], map[c.index()]),
        };
        map.push(node);
    }
    source.outputs().iter().map(|o| map[o.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_gate() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.xor(x, y);
        b.output(g);
        b.finish()
    }

    fn xor_via_nors() -> Netlist {
        // x^y = NOR(NOR(x, NOR(x,y)), NOR(y, NOR(x,y)))... via builder ops.
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let t = b.nor(x, y);
        let u = b.nor(x, t);
        let v = b.nor(y, t);
        let g = b.nor(u, v);
        let out = b.not(g);
        b.output(out);
        b.finish()
    }

    fn and_gate() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.and(x, y);
        b.output(g);
        b.finish()
    }

    #[test]
    fn equivalent_structures_prove_exhaustively() {
        let v = check_equivalence(&xor_gate(), &xor_via_nors(), 16, 0, 0);
        assert_eq!(v, Equivalence::Equivalent);
        assert!(v.holds());
    }

    #[test]
    fn mismatch_produces_a_counterexample() {
        let v = check_equivalence(&xor_gate(), &and_gate(), 16, 0, 0);
        let Equivalence::Mismatch { inputs, output } = v else {
            panic!("expected mismatch, got {v:?}");
        };
        assert_eq!(output, 0);
        // The counterexample must actually differ.
        assert_ne!(xor_gate().eval(&inputs), and_gate().eval(&inputs));
    }

    #[test]
    fn sampling_mode_for_wide_circuits() {
        use crate::generators::Benchmark;
        let a = Benchmark::Adder.build().netlist;
        let b = Benchmark::Adder.build().netlist;
        let v = check_equivalence(&a, &b, 16, 25, 7);
        assert_eq!(v, Equivalence::ProbablyEquivalent { samples: 25 });
    }

    #[test]
    fn miter_is_constant_zero_for_equivalent_circuits() {
        let m = miter(&xor_gate(), &xor_via_nors());
        for v in 0..4usize {
            let inputs: Vec<bool> = (0..2).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(m.eval(&inputs), vec![false], "v={v}");
        }
    }

    #[test]
    fn miter_fires_exactly_on_disagreements() {
        let m = miter(&xor_gate(), &and_gate());
        for v in 0..4usize {
            let inputs: Vec<bool> = (0..2).map(|i| v >> i & 1 != 0).collect();
            let differ = xor_gate().eval(&inputs) != and_gate().eval(&inputs);
            assert_eq!(m.eval(&inputs), vec![differ], "v={v}");
        }
    }

    #[test]
    fn nor_lowering_equivalence_via_miter_sampling() {
        use crate::generators::Benchmark;
        // Rebuild the dec benchmark's NOR form as a Netlist-level clone by
        // checking the generated netlist against itself through a miter.
        let a = Benchmark::Int2float.build().netlist;
        let m = miter(&a, &a);
        // Self-miter is constant 0 for every vector.
        for v in [0usize, 1, 77, 2047] {
            let inputs: Vec<bool> = (0..11).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(m.eval(&inputs), vec![false]);
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        b.output(x);
        let one_in = b.finish();
        let _ = check_equivalence(&one_in, &xor_gate(), 4, 0, 0);
    }
}
