//! Word-level construction helpers: multi-bit buses over the bit-level
//! builder.
//!
//! Datapath generators (adder, max, sin, ...) are far clearer when written
//! against little-endian bit vectors with ripple-carry arithmetic than
//! against individual gates. Everything here elaborates straight into the
//! [`NetlistBuilder`], so the resulting circuits are ordinary netlists.

use crate::builder::NetlistBuilder;
use crate::gate::NodeId;

/// A little-endian bus of netlist bits (`bits[0]` is the LSB).
///
/// # Example
///
/// ```
/// use pimecc_netlist::NetlistBuilder;
/// use pimecc_netlist::words::{self, Word};
///
/// let mut b = NetlistBuilder::new();
/// let x = Word::input(&mut b, 8);
/// let y = Word::input(&mut b, 8);
/// let (sum, carry) = words::add(&mut b, &x, &y);
/// b.output_all(sum.bits().iter().copied());
/// b.output(carry);
/// let nl = b.finish();
/// // 200 + 100 = 300 = 256 + 44 -> sum 44, carry 1
/// let mut inputs = Vec::new();
/// inputs.extend((0..8).map(|i| 200u32 >> i & 1 != 0));
/// inputs.extend((0..8).map(|i| 100u32 >> i & 1 != 0));
/// let out = nl.eval(&inputs);
/// let sum_val: u32 = (0..8).map(|i| (out[i] as u32) << i).sum();
/// assert_eq!(sum_val, 44);
/// assert!(out[8]); // carry out
/// ```
#[derive(Debug, Clone)]
pub struct Word(Vec<NodeId>);

impl Word {
    /// Wraps an explicit little-endian bit vector.
    pub fn from_bits(bits: Vec<NodeId>) -> Self {
        Word(bits)
    }

    /// Declares `width` fresh primary inputs (LSB first).
    pub fn input(b: &mut NetlistBuilder, width: usize) -> Self {
        Word((0..width).map(|_| b.input()).collect())
    }

    /// A constant word holding the low `width` bits of `value`.
    pub fn constant(b: &mut NetlistBuilder, value: u128, width: usize) -> Self {
        Word(
            (0..width)
                .map(|i| b.constant(value >> i & 1 != 0))
                .collect(),
        )
    }

    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The `i`-th bit (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> NodeId {
        self.0[i]
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics on an empty word.
    pub fn msb(&self) -> NodeId {
        *self.0.last().expect("empty word")
    }

    /// All bits, LSB first.
    pub fn bits(&self) -> &[NodeId] {
        &self.0
    }

    /// A sub-range of bits as a new word.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Word {
        Word(self.0[range].to_vec())
    }

    /// Arithmetic shift right by a constant (sign bit replicated) — pure
    /// rewiring, zero gates.
    pub fn shift_right_arith(&self, k: usize) -> Word {
        let w = self.width();
        let msb = self.msb();
        Word(
            (0..w)
                .map(|i| if i + k < w { self.0[i + k] } else { msb })
                .collect(),
        )
    }

    /// Logical shift left by a constant, filling with `zero` — rewiring
    /// only.
    pub fn shift_left(&self, k: usize, zero: NodeId) -> Word {
        let w = self.width();
        Word(
            (0..w)
                .map(|i| if i >= k { self.0[i - k] } else { zero })
                .collect(),
        )
    }
}

/// Ripple-carry addition; returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if widths differ.
pub fn add(b: &mut NetlistBuilder, x: &Word, y: &Word) -> (Word, NodeId) {
    assert_eq!(x.width(), y.width(), "width mismatch");
    let mut carry = b.constant(false);
    let mut bits = Vec::with_capacity(x.width());
    for i in 0..x.width() {
        let s1 = b.xor(x.bit(i), y.bit(i));
        let sum = b.xor(s1, carry);
        carry = b.maj(x.bit(i), y.bit(i), carry);
        bits.push(sum);
    }
    (Word(bits), carry)
}

/// Ripple-borrow subtraction `x - y`; returns `(difference, borrow_out)`
/// (borrow is 1 iff `x < y` for unsigned operands).
///
/// # Panics
///
/// Panics if widths differ.
pub fn sub(b: &mut NetlistBuilder, x: &Word, y: &Word) -> (Word, NodeId) {
    assert_eq!(x.width(), y.width(), "width mismatch");
    // x - y = x + ¬y + 1; borrow_out = ¬carry_out.
    let mut carry = b.constant(true);
    let mut bits = Vec::with_capacity(x.width());
    for i in 0..x.width() {
        let ny = b.not(y.bit(i));
        let s1 = b.xor(x.bit(i), ny);
        let sum = b.xor(s1, carry);
        carry = b.maj(x.bit(i), ny, carry);
        bits.push(sum);
    }
    let borrow = b.not(carry);
    (Word(bits), borrow)
}

/// Conditional add/subtract: `sel ? x - y : x + y` in a single ripple chain
/// (the CORDIC workhorse). Returns only the result word.
///
/// # Panics
///
/// Panics if widths differ.
pub fn add_sub(b: &mut NetlistBuilder, x: &Word, y: &Word, sel_subtract: NodeId) -> Word {
    assert_eq!(x.width(), y.width(), "width mismatch");
    let mut carry = sel_subtract; // +1 when subtracting (two's complement)
    let mut bits = Vec::with_capacity(x.width());
    for i in 0..x.width() {
        let yi = b.xor(y.bit(i), sel_subtract);
        let s1 = b.xor(x.bit(i), yi);
        let sum = b.xor(s1, carry);
        carry = b.maj(x.bit(i), yi, carry);
        bits.push(sum);
    }
    Word(bits)
}

/// Bitwise word mux `sel ? hi : lo`.
///
/// # Panics
///
/// Panics if widths differ.
pub fn mux(b: &mut NetlistBuilder, sel: NodeId, hi: &Word, lo: &Word) -> Word {
    assert_eq!(hi.width(), lo.width(), "width mismatch");
    Word(
        (0..hi.width())
            .map(|i| b.mux(sel, hi.bit(i), lo.bit(i)))
            .collect(),
    )
}

/// Unsigned `x < y` via the subtractor borrow.
///
/// # Panics
///
/// Panics if widths differ.
pub fn lt(b: &mut NetlistBuilder, x: &Word, y: &Word) -> NodeId {
    let (_, borrow) = sub(b, x, y);
    borrow
}

/// Word equality (AND-reduce of per-bit XNOR).
///
/// # Panics
///
/// Panics if widths differ.
pub fn eq(b: &mut NetlistBuilder, x: &Word, y: &Word) -> NodeId {
    assert_eq!(x.width(), y.width(), "width mismatch");
    let mut acc = b.constant(true);
    for i in 0..x.width() {
        let e = b.xnor(x.bit(i), y.bit(i));
        acc = b.and(acc, e);
    }
    acc
}

/// OR-reduce over all bits.
pub fn any(b: &mut NetlistBuilder, x: &Word) -> NodeId {
    let mut acc = b.constant(false);
    for i in 0..x.width() {
        acc = b.or(acc, x.bit(i));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a circuit with one or two word inputs and numeric outputs.
    fn eval_words(nl: &crate::Netlist, vals: &[(u128, usize)]) -> Vec<bool> {
        let mut inputs = Vec::new();
        for &(v, w) in vals {
            inputs.extend((0..w).map(|i| v >> i & 1 != 0));
        }
        nl.eval(&inputs)
    }

    fn to_u128(bits: &[bool]) -> u128 {
        bits.iter().rev().fold(0, |acc, &b| (acc << 1) | b as u128)
    }

    #[test]
    fn add_matches_integer_addition() {
        let mut b = NetlistBuilder::new();
        let x = Word::input(&mut b, 16);
        let y = Word::input(&mut b, 16);
        let (s, c) = add(&mut b, &x, &y);
        b.output_all(s.bits().iter().copied());
        b.output(c);
        let nl = b.finish();
        for (xv, yv) in [
            (0u128, 0u128),
            (1, 1),
            (65535, 1),
            (12345, 54321),
            (65535, 65535),
        ] {
            let out = eval_words(&nl, &[(xv, 16), (yv, 16)]);
            let total = xv + yv;
            assert_eq!(to_u128(&out[0..16]), total & 0xFFFF, "{xv}+{yv}");
            assert_eq!(out[16], total > 0xFFFF, "carry of {xv}+{yv}");
        }
    }

    #[test]
    fn sub_matches_integer_subtraction() {
        let mut b = NetlistBuilder::new();
        let x = Word::input(&mut b, 12);
        let y = Word::input(&mut b, 12);
        let (d, borrow) = sub(&mut b, &x, &y);
        b.output_all(d.bits().iter().copied());
        b.output(borrow);
        let nl = b.finish();
        for (xv, yv) in [(0u128, 0u128), (5, 3), (3, 5), (4095, 4095), (0, 1)] {
            let out = eval_words(&nl, &[(xv, 12), (yv, 12)]);
            assert_eq!(
                to_u128(&out[0..12]),
                xv.wrapping_sub(yv) & 0xFFF,
                "{xv}-{yv}"
            );
            assert_eq!(out[12], xv < yv, "borrow of {xv}-{yv}");
        }
    }

    #[test]
    fn add_sub_selects_operation() {
        let mut b = NetlistBuilder::new();
        let x = Word::input(&mut b, 8);
        let y = Word::input(&mut b, 8);
        let sel = b.input();
        let r = add_sub(&mut b, &x, &y, sel);
        b.output_all(r.bits().iter().copied());
        let nl = b.finish();
        for (xv, yv) in [(10u128, 3u128), (3, 10), (255, 255), (0, 0)] {
            for s in [false, true] {
                let mut inputs = Vec::new();
                inputs.extend((0..8).map(|i| xv >> i & 1 != 0));
                inputs.extend((0..8).map(|i| yv >> i & 1 != 0));
                inputs.push(s);
                let out = nl.eval(&inputs);
                let want = if s { xv.wrapping_sub(yv) } else { xv + yv } & 0xFF;
                assert_eq!(to_u128(&out), want, "x={xv} y={yv} sub={s}");
            }
        }
    }

    #[test]
    fn comparator_and_equality() {
        let mut b = NetlistBuilder::new();
        let x = Word::input(&mut b, 8);
        let y = Word::input(&mut b, 8);
        let l = lt(&mut b, &x, &y);
        let e = eq(&mut b, &x, &y);
        b.output(l);
        b.output(e);
        let nl = b.finish();
        for (xv, yv) in [(1u128, 2u128), (2, 1), (7, 7), (0, 255), (255, 0)] {
            let out = eval_words(&nl, &[(xv, 8), (yv, 8)]);
            assert_eq!(out[0], xv < yv, "{xv}<{yv}");
            assert_eq!(out[1], xv == yv, "{xv}=={yv}");
        }
    }

    #[test]
    fn mux_selects_words() {
        let mut b = NetlistBuilder::new();
        let s = b.input();
        let x = Word::input(&mut b, 4);
        let y = Word::input(&mut b, 4);
        let m = mux(&mut b, s, &x, &y);
        b.output_all(m.bits().iter().copied());
        let nl = b.finish();
        let mut inputs = vec![true];
        inputs.extend((0..4).map(|i| 0b1010u32 >> i & 1 != 0));
        inputs.extend((0..4).map(|i| 0b0101u32 >> i & 1 != 0));
        assert_eq!(to_u128(&nl.eval(&inputs)), 0b1010);
        inputs[0] = false;
        assert_eq!(to_u128(&nl.eval(&inputs)), 0b0101);
    }

    #[test]
    fn shifts_are_pure_rewiring() {
        let mut b = NetlistBuilder::new();
        let x = Word::input(&mut b, 8);
        let zero = b.constant(false);
        let before = b.len();
        let sr = x.shift_right_arith(2);
        let sl = x.shift_left(3, zero);
        assert_eq!(b.len(), before, "no gates created");
        b.output_all(sr.bits().iter().copied());
        b.output_all(sl.bits().iter().copied());
        let nl = b.finish();
        // x = 0b1000_0110 (signed msb=1)
        let out = eval_words(&nl, &[(0b1000_0110, 8)]);
        assert_eq!(to_u128(&out[0..8]), 0b1110_0001, "asr by 2 replicates sign");
        assert_eq!(to_u128(&out[8..16]), 0b0011_0000, "shl by 3 fills zeros");
    }

    #[test]
    fn any_reduces_or() {
        let mut b = NetlistBuilder::new();
        let x = Word::input(&mut b, 5);
        let a = any(&mut b, &x);
        b.output(a);
        let nl = b.finish();
        assert_eq!(eval_words(&nl, &[(0, 5)]), vec![false]);
        assert_eq!(eval_words(&nl, &[(8, 5)]), vec![true]);
    }

    #[test]
    fn slice_and_accessors() {
        let mut b = NetlistBuilder::new();
        let x = Word::input(&mut b, 8);
        let hi = x.slice(4..8);
        assert_eq!(hi.width(), 4);
        assert_eq!(hi.bit(0), x.bit(4));
        assert_eq!(x.msb(), x.bit(7));
    }
}
