//! Graphviz DOT export for netlist visualization.
//!
//! Small circuits (decoders, codec fragments, lowering outputs) are much
//! easier to review as graphs; `dot -Tsvg` renders the output of
//! [`write_dot`] directly.

use crate::gate::Gate;
use crate::netlist::Netlist;
use crate::nor::NorSource;
use crate::partition::NetlistPartition;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serializes a netlist as a Graphviz digraph. Inputs are boxes, outputs
/// are double circles, gates are labelled ellipses; inverted semantics
/// (NOT, NOR, NAND, XNOR) render with a dot suffix like schematic bubbles.
///
/// # Example
///
/// ```
/// use pimecc_netlist::{dot::write_dot, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let g = b.nor(x, y);
/// b.output(g);
/// let text = write_dot(&b.finish(), "nor2");
/// assert!(text.starts_with("digraph nor2"));
/// assert!(text.contains("NOR"));
/// ```
pub fn write_dot(netlist: &Netlist, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for (i, gate) in netlist.nodes().iter().enumerate() {
        let (label, shape) = match gate {
            Gate::Input(k) => (format!("x{k}"), "box"),
            Gate::Const(c) => (format!("{}", *c as u8), "plaintext"),
            Gate::Not(_) => ("NOT".to_string(), "ellipse"),
            Gate::And(..) => ("AND".to_string(), "ellipse"),
            Gate::Or(..) => ("OR".to_string(), "ellipse"),
            Gate::Nor(..) => ("NOR".to_string(), "ellipse"),
            Gate::Nand(..) => ("NAND".to_string(), "ellipse"),
            Gate::Xor(..) => ("XOR".to_string(), "ellipse"),
            Gate::Xnor(..) => ("XNOR".to_string(), "ellipse"),
            Gate::Mux { .. } => ("MUX".to_string(), "trapezium"),
            Gate::Maj(..) => ("MAJ".to_string(), "ellipse"),
        };
        let _ = writeln!(out, "  n{i} [label=\"{label}\", shape={shape}];");
        for (slot, op) in gate.operands().iter().enumerate() {
            let attr = match (gate, slot) {
                (Gate::Mux { .. }, 0) => " [label=\"sel\"]",
                _ => "",
            };
            let _ = writeln!(out, "  n{} -> n{i}{attr};", op.index());
        }
    }
    for (k, o) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, "  y{k} [label=\"y{k}\", shape=doublecircle];");
        let _ = writeln!(out, "  n{} -> y{k};", o.index());
    }
    let _ = writeln!(out, "}}");
    out
}

/// Serializes a [`NetlistPartition`] as a Graphviz digraph of its part
/// DAG: one box per part (gate count and level), a single box for the
/// primary inputs, edges labelled with how many signals they route, and
/// one double circle per primary output — the debugging view of what the
/// partitioned scheduler will execute wave by wave.
///
/// # Example
///
/// ```
/// use pimecc_netlist::dot::write_partition_dot;
/// use pimecc_netlist::generators;
/// use pimecc_netlist::partition::partition_nor;
///
/// let nor = generators::mul(4).to_nor();
/// let parts = partition_nor(&nor, 16).unwrap();
/// let text = write_partition_dot(&parts, "mul4");
/// assert!(text.starts_with("digraph mul4"));
/// ```
pub fn write_partition_dot(partition: &NetlistPartition, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    let _ = writeln!(
        out,
        "  in [label=\"inputs ({})\", shape=box];",
        partition.num_inputs()
    );
    for (pi, part) in partition.parts().iter().enumerate() {
        let _ = writeln!(
            out,
            "  p{pi} [label=\"p{pi} L{} ({} gates)\", shape=box];",
            part.level(),
            part.netlist().num_gates()
        );
        // Count routed signals per source: a sibling part or the host.
        let mut from_part: BTreeMap<usize, usize> = BTreeMap::new();
        let mut from_host = 0usize;
        for &s in part.inputs() {
            match s {
                NorSource::Input(_) => from_host += 1,
                NorSource::Gate(g) => *from_part.entry(partition.part_of(g)).or_insert(0) += 1,
            }
        }
        if from_host > 0 {
            let _ = writeln!(out, "  in -> p{pi} [label=\"{from_host}\"];");
        }
        for (src, count) in from_part {
            let _ = writeln!(out, "  p{src} -> p{pi} [label=\"{count}\"];");
        }
    }
    for (k, &o) in partition.outputs().iter().enumerate() {
        let _ = writeln!(out, "  y{k} [label=\"y{k}\", shape=doublecircle];");
        match o {
            NorSource::Input(_) => {
                let _ = writeln!(out, "  in -> y{k};");
            }
            NorSource::Gate(g) => {
                let _ = writeln!(out, "  p{} -> y{k};", partition.part_of(g));
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let s = b.input();
        let g1 = b.xor(x, y);
        let g2 = b.mux(s, g1, x);
        b.output(g2);
        b.finish()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let nl = sample();
        let text = write_dot(&nl, "sample");
        assert!(text.starts_with("digraph sample {"));
        assert!(text.trim_end().ends_with('}'));
        // One node line per netlist node plus one per output.
        let node_lines = text.lines().filter(|l| l.contains("shape=")).count();
        assert_eq!(node_lines, nl.nodes().len() + nl.num_outputs());
        // One edge per operand reference plus one per output.
        let edge_lines = text.lines().filter(|l| l.contains("->")).count();
        let operand_edges: usize = nl.nodes().iter().map(|g| g.operands().len()).sum();
        assert_eq!(edge_lines, operand_edges + nl.num_outputs());
    }

    #[test]
    fn mux_select_edge_is_labelled() {
        let text = write_dot(&sample(), "m");
        assert!(text.contains("[label=\"sel\"]"));
    }

    #[test]
    fn identifiers_are_graphviz_safe() {
        let text = write_dot(&sample(), "g");
        for line in text.lines() {
            assert!(!line.contains(".."), "no weird tokens: {line}");
        }
    }

    #[test]
    fn partition_dot_shows_every_part_and_output() {
        let nor = crate::generators::ripple_adder(8).to_nor();
        let parts = crate::partition::partition_nor(&nor, 8).unwrap();
        let text = write_partition_dot(&parts, "adder8");
        assert!(text.starts_with("digraph adder8 {"));
        assert!(text.trim_end().ends_with('}'));
        // One box per part plus the input box, one double circle per output.
        let boxes = text.lines().filter(|l| l.contains("shape=box")).count();
        assert_eq!(boxes, parts.num_parts() + 1);
        let outs = text.lines().filter(|l| l.contains("doublecircle")).count();
        assert_eq!(outs, nor.num_outputs());
        // Multi-part split must route at least one inter-part signal.
        assert!(parts.num_parts() > 1);
        assert!(text
            .lines()
            .any(|l| l.starts_with("  p") && l.contains("-> p")));
    }
}
