//! Incremental netlist construction with structural hashing and local
//! simplification.

use crate::gate::{Gate, NodeId};
use crate::netlist::Netlist;
use std::collections::HashMap;

/// Builds a [`Netlist`] gate by gate.
///
/// The builder performs the standard light-weight optimizations of an EDA
/// front end so generated circuits don't carry dead weight into mapping:
///
/// * **structural hashing** — an identical gate over identical operands is
///   created once and shared;
/// * **constant folding** — gates with constant operands reduce immediately;
/// * **local identities** — `NOT NOT x = x`, `x AND x = x`, `x XOR x = 0`,
///   commutative operand canonicalization, and friends.
///
/// # Example
///
/// ```
/// use pimecc_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let a = b.and(x, x);
/// assert_eq!(a, x); // x AND x folds to x
/// let n1 = b.not(x);
/// let n2 = b.not(n1);
/// assert_eq!(n2, x); // double negation folds
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    nodes: Vec<Gate>,
    num_inputs: usize,
    outputs: Vec<NodeId>,
    dedup: HashMap<Gate, NodeId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes created so far (sources included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been created.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        if let Some(&id) = self.dedup.get(&gate) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(gate);
        self.dedup.insert(gate, id);
        id
    }

    fn const_of(&self, id: NodeId) -> Option<bool> {
        match self.nodes[id.index()] {
            Gate::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Declares the next primary input and returns its node.
    pub fn input(&mut self) -> NodeId {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        self.push(Gate::Input(idx))
    }

    /// Declares `n` primary inputs and returns their nodes in order.
    pub fn inputs(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// The constant node for `value`.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Gate::Const(value))
    }

    /// Marks `node` as the next primary output.
    pub fn output(&mut self, node: NodeId) {
        self.outputs.push(node);
    }

    /// Marks many outputs at once, preserving order.
    pub fn output_all<I: IntoIterator<Item = NodeId>>(&mut self, nodes: I) {
        self.outputs.extend(nodes);
    }

    /// Logical NOT with double-negation and constant folding.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        if let Some(c) = self.const_of(a) {
            return self.constant(!c);
        }
        if let Gate::Not(inner) = self.nodes[a.index()] {
            return inner;
        }
        self.push(Gate::Not(a))
    }

    /// Two-input AND with folding (`x·x = x`, `x·0 = 0`, `x·1 = x`,
    /// `x·¬x = 0`).
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = canonical(a, b);
        if a == b {
            return a;
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => return self.constant(false),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if self.complementary(a, b) {
            return self.constant(false);
        }
        self.push(Gate::And(a, b))
    }

    /// Two-input OR with folding.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = canonical(a, b);
        if a == b {
            return a;
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => return self.constant(true),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if self.complementary(a, b) {
            return self.constant(true);
        }
        self.push(Gate::Or(a, b))
    }

    /// Two-input NOR with folding (`NOR(x,x) = ¬x`, `NOR(x,1) = 0`,
    /// `NOR(x,0) = ¬x`, `NOR(x,¬x) = 0`). Emitted as a native gate so the
    /// MAGIC lowering maps it to a single NOR.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = canonical(a, b);
        if a == b {
            return self.not(a);
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => return self.constant(false),
            (Some(false), _) => return self.not(b),
            (_, Some(false)) => return self.not(a),
            _ => {}
        }
        if self.complementary(a, b) {
            return self.constant(false);
        }
        self.push(Gate::Nor(a, b))
    }

    /// Two-input NAND with folding.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = canonical(a, b);
        if a == b {
            return self.not(a);
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => return self.constant(true),
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if self.complementary(a, b) {
            return self.constant(true);
        }
        self.push(Gate::Nand(a, b))
    }

    /// Two-input XOR with folding (`x⊕x = 0`, `x⊕0 = x`, `x⊕1 = ¬x`,
    /// `x⊕¬x = 1`).
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = canonical(a, b);
        if a == b {
            return self.constant(false);
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if self.complementary(a, b) {
            return self.constant(true);
        }
        self.push(Gate::Xor(a, b))
    }

    /// Two-input XNOR with folding.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (a, b) = canonical(a, b);
        if a == b {
            return self.constant(true);
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            (Some(false), _) => return self.not(b),
            (_, Some(false)) => return self.not(a),
            _ => {}
        }
        if self.complementary(a, b) {
            return self.constant(false);
        }
        self.push(Gate::Xnor(a, b))
    }

    /// Multiplexer `sel ? hi : lo` with folding (constant select, equal
    /// branches).
    pub fn mux(&mut self, sel: NodeId, hi: NodeId, lo: NodeId) -> NodeId {
        if hi == lo {
            return hi;
        }
        match self.const_of(sel) {
            Some(true) => return hi,
            Some(false) => return lo,
            None => {}
        }
        match (self.const_of(hi), self.const_of(lo)) {
            (Some(true), Some(false)) => return sel,
            (Some(false), Some(true)) => return self.not(sel),
            (Some(true), None) => return self.or(sel, lo),
            (Some(false), None) => {
                let ns = self.not(sel);
                return self.and(ns, lo);
            }
            (None, Some(false)) => return self.and(sel, hi),
            (None, Some(true)) => {
                let ns = self.not(sel);
                return self.or(ns, hi);
            }
            _ => {}
        }
        self.push(Gate::Mux { sel, hi, lo })
    }

    /// Three-input majority with constant folding.
    pub fn maj(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        let mut ids = [a, b, c];
        ids.sort();
        let [a, b, c] = ids;
        if a == b {
            return a;
        }
        if b == c {
            return b;
        }
        // Fold any constant operand: MAJ(1,b,c)=OR(b,c), MAJ(0,b,c)=AND(b,c).
        for (i, id) in ids.iter().enumerate() {
            if let Some(v) = self.const_of(*id) {
                let (x, y) = match i {
                    0 => (b, c),
                    1 => (a, c),
                    _ => (a, b),
                };
                return if v { self.or(x, y) } else { self.and(x, y) };
            }
        }
        self.push(Gate::Maj(a, b, c))
    }

    /// True when one operand is the direct negation of the other.
    fn complementary(&self, a: NodeId, b: NodeId) -> bool {
        matches!(self.nodes[a.index()], Gate::Not(x) if x == b)
            || matches!(self.nodes[b.index()], Gate::Not(x) if x == a)
    }

    /// Finalizes the netlist.
    ///
    /// # Panics
    ///
    /// Panics if no outputs were declared — an output-less netlist is
    /// always a construction bug.
    pub fn finish(self) -> Netlist {
        assert!(!self.outputs.is_empty(), "netlist has no outputs");
        let nl = Netlist {
            nodes: self.nodes,
            num_inputs: self.num_inputs,
            outputs: self.outputs,
        };
        debug_assert_eq!(nl.validate(), Ok(()));
        nl
    }
}

/// Canonical operand order for commutative gates (enables hash-consing of
/// `f(a,b)` with `f(b,a)`).
fn canonical(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_gates() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g1 = b.and(x, y);
        let g2 = b.and(y, x); // commuted
        assert_eq!(g1, g2);
        assert_eq!(b.len(), 3); // two inputs + one AND
    }

    #[test]
    fn constant_folding_and() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let one = b.constant(true);
        let zero = b.constant(false);
        assert_eq!(b.and(x, one), x);
        let f = b.and(x, zero);
        assert_eq!(b.const_of(f), Some(false));
    }

    #[test]
    fn constant_folding_or_xor() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let one = b.constant(true);
        let zero = b.constant(false);
        assert_eq!(b.or(x, zero), x);
        let t = b.or(x, one);
        assert_eq!(b.const_of(t), Some(true));
        assert_eq!(b.xor(x, zero), x);
        let nx = b.not(x);
        assert_eq!(b.xor(x, one), nx);
        let z = b.xor(x, x);
        assert_eq!(b.const_of(z), Some(false));
    }

    #[test]
    fn complement_identities() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let nx = b.not(x);
        let a = b.and(x, nx);
        assert_eq!(b.const_of(a), Some(false));
        let o = b.or(x, nx);
        assert_eq!(b.const_of(o), Some(true));
        let e = b.xor(x, nx);
        assert_eq!(b.const_of(e), Some(true));
    }

    #[test]
    fn double_negation_folds() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let nx = b.not(x);
        assert_eq!(b.not(nx), x);
    }

    #[test]
    fn mux_foldings() {
        let mut b = NetlistBuilder::new();
        let s = b.input();
        let x = b.input();
        let one = b.constant(true);
        let zero = b.constant(false);
        assert_eq!(b.mux(s, x, x), x);
        assert_eq!(b.mux(one, x, s), x);
        assert_eq!(b.mux(zero, x, s), s);
        assert_eq!(b.mux(s, one, zero), s);
        let ns = b.not(s);
        assert_eq!(b.mux(s, zero, one), ns);
    }

    #[test]
    fn maj_foldings() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let one = b.constant(true);
        let zero = b.constant(false);
        let or_xy = b.or(x, y);
        assert_eq!(b.maj(x, y, one), or_xy);
        let and_xy = b.and(x, y);
        assert_eq!(b.maj(x, y, zero), and_xy);
        assert_eq!(b.maj(x, x, y), x);
    }

    #[test]
    fn nor_nand_build_on_or_and() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let n = b.nor(x, y);
        b.output(n);
        let m = b.nand(x, y);
        b.output(m);
        let nl = b.finish();
        assert_eq!(nl.eval(&[false, false]), vec![true, true]);
        assert_eq!(nl.eval(&[true, true]), vec![false, false]);
        assert_eq!(nl.eval(&[true, false]), vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "no outputs")]
    fn finish_without_outputs_panics() {
        let mut b = NetlistBuilder::new();
        b.input();
        let _ = b.finish();
    }

    #[test]
    fn inputs_helper_allocates_in_order() {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(4);
        assert_eq!(ins.len(), 4);
        let out = b.or(ins[0], ins[3]);
        b.output(out);
        let nl = b.finish();
        assert_eq!(nl.eval(&[false, false, false, true]), vec![true]);
        assert_eq!(nl.eval(&[false, true, true, false]), vec![false]);
    }
}
