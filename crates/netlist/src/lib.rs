//! Gate-level netlist IR, NOR-only lowering and EPFL-style benchmark
//! circuit generators.
//!
//! The DAC'21 paper evaluates its ECC mechanism by mapping the EPFL
//! combinational benchmark suite onto a MAGIC crossbar row with the SIMPLER
//! tool. This crate provides everything upstream of that mapping:
//!
//! * a compact netlist IR ([`Netlist`], [`Gate`]) built through a
//!   hash-consing, constant-folding [`NetlistBuilder`];
//! * word-level construction helpers ([`words::Word`]) for datapath circuits
//!   (adders, comparators, shifters, CORDIC);
//! * truth-table (Shannon) synthesis for random-logic blocks
//!   ([`synth::synthesize_table`]);
//! * lowering to a NOR/NOT-only netlist ([`nor::NorNetlist`]) — the gate set
//!   MAGIC executes natively;
//! * structural generators for the eleven benchmark circuits of the paper's
//!   Table I ([`generators`]), each paired with a software reference model
//!   so every netlist is validated bit-exactly.
//!
//! # Example
//!
//! ```
//! use pimecc_netlist::{NetlistBuilder, generators::Benchmark};
//!
//! // Build a half adder by hand...
//! let mut b = NetlistBuilder::new();
//! let x = b.input();
//! let y = b.input();
//! let sum = b.xor(x, y);
//! let carry = b.and(x, y);
//! b.output(sum);
//! b.output(carry);
//! let nl = b.finish();
//! assert_eq!(nl.eval(&[true, true]), vec![false, true]);
//!
//! // ...or generate a full benchmark circuit and lower it to NOR-only form.
//! let circuit = Benchmark::Dec.build();
//! let nor = circuit.netlist.to_nor();
//! assert_eq!(nor.num_outputs(), 256);
//! ```

pub mod aiger;
pub mod blif;
pub mod builder;
pub mod dot;
pub mod equiv;
pub mod gate;
pub mod generators;
pub mod netlist;
pub mod nor;
pub mod partition;
pub mod synth;
pub mod words;

pub use builder::NetlistBuilder;
pub use gate::{Gate, NodeId};
pub use netlist::{Netlist, NetlistStats};
pub use nor::{NorGate, NorNetlist, NorSource};
pub use synth::TruthTable;
