//! Gate types and node identifiers of the netlist IR.

/// Index of a node inside a [`crate::Netlist`].
///
/// Nodes are numbered in construction order, which the builder guarantees to
/// be a topological order (a gate's operands always have smaller ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The position of this node in the netlist's node array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A combinational gate (or source) in the netlist IR.
///
/// The gate set covers everything the benchmark generators need; the
/// NOR-only lowering in [`crate::nor`] decomposes each into MAGIC-native
/// NOR/NOT gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// External primary input number `usize`.
    Input(usize),
    /// Constant `0`/`1`.
    Const(bool),
    /// Logical negation.
    Not(NodeId),
    /// Two-input AND.
    And(NodeId, NodeId),
    /// Two-input OR.
    Or(NodeId, NodeId),
    /// Two-input NOR.
    Nor(NodeId, NodeId),
    /// Two-input NAND.
    Nand(NodeId, NodeId),
    /// Two-input XOR.
    Xor(NodeId, NodeId),
    /// Two-input XNOR.
    Xnor(NodeId, NodeId),
    /// Multiplexer: `sel ? hi : lo`.
    Mux {
        /// Select signal.
        sel: NodeId,
        /// Value when `sel` is 1.
        hi: NodeId,
        /// Value when `sel` is 0.
        lo: NodeId,
    },
    /// Three-input majority.
    Maj(NodeId, NodeId, NodeId),
}

impl Gate {
    /// The operands of this gate, in a fixed order.
    pub fn operands(&self) -> Vec<NodeId> {
        match *self {
            Gate::Input(_) | Gate::Const(_) => vec![],
            Gate::Not(a) => vec![a],
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Nor(a, b)
            | Gate::Nand(a, b)
            | Gate::Xor(a, b)
            | Gate::Xnor(a, b) => vec![a, b],
            Gate::Mux { sel, hi, lo } => vec![sel, hi, lo],
            Gate::Maj(a, b, c) => vec![a, b, c],
        }
    }

    /// Evaluates the gate given a resolver for operand values.
    pub fn eval(&self, value: impl Fn(NodeId) -> bool, inputs: &[bool]) -> bool {
        match *self {
            Gate::Input(i) => inputs[i],
            Gate::Const(c) => c,
            Gate::Not(a) => !value(a),
            Gate::And(a, b) => value(a) & value(b),
            Gate::Or(a, b) => value(a) | value(b),
            Gate::Nor(a, b) => !(value(a) | value(b)),
            Gate::Nand(a, b) => !(value(a) & value(b)),
            Gate::Xor(a, b) => value(a) ^ value(b),
            Gate::Xnor(a, b) => !(value(a) ^ value(b)),
            Gate::Mux { sel, hi, lo } => {
                if value(sel) {
                    value(hi)
                } else {
                    value(lo)
                }
            }
            Gate::Maj(a, b, c) => {
                let (a, b, c) = (value(a), value(b), value(c));
                (a & b) | (a & c) | (b & c)
            }
        }
    }

    /// True for `Input`/`Const` nodes, which carry no logic.
    pub fn is_source(&self) -> bool {
        matches!(self, Gate::Input(_) | Gate::Const(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn operands_match_arity() {
        assert!(Gate::Input(3).operands().is_empty());
        assert!(Gate::Const(true).operands().is_empty());
        assert_eq!(Gate::Not(id(1)).operands().len(), 1);
        assert_eq!(Gate::Xor(id(1), id(2)).operands().len(), 2);
        assert_eq!(
            Gate::Mux {
                sel: id(0),
                hi: id(1),
                lo: id(2)
            }
            .operands()
            .len(),
            3
        );
        assert_eq!(Gate::Maj(id(0), id(1), id(2)).operands().len(), 3);
    }

    #[test]
    fn eval_truth_tables() {
        let vals = [false, true];
        for a in vals {
            for b in vals {
                let v = |n: NodeId| if n == id(0) { a } else { b };
                assert_eq!(Gate::And(id(0), id(1)).eval(v, &[]), a & b);
                assert_eq!(Gate::Or(id(0), id(1)).eval(v, &[]), a | b);
                assert_eq!(Gate::Nor(id(0), id(1)).eval(v, &[]), !(a | b));
                assert_eq!(Gate::Nand(id(0), id(1)).eval(v, &[]), !(a & b));
                assert_eq!(Gate::Xor(id(0), id(1)).eval(v, &[]), a ^ b);
                assert_eq!(Gate::Xnor(id(0), id(1)).eval(v, &[]), !(a ^ b));
            }
        }
    }

    #[test]
    fn eval_mux_and_maj() {
        let vals = [false, true];
        for s in vals {
            for h in vals {
                for l in vals {
                    let v = |n: NodeId| match n.index() {
                        0 => s,
                        1 => h,
                        _ => l,
                    };
                    let got = Gate::Mux {
                        sel: id(0),
                        hi: id(1),
                        lo: id(2),
                    }
                    .eval(v, &[]);
                    assert_eq!(got, if s { h } else { l });
                    let maj = Gate::Maj(id(0), id(1), id(2)).eval(v, &[]);
                    assert_eq!(maj, (s as u8 + h as u8 + l as u8) >= 2);
                }
            }
        }
    }

    #[test]
    fn eval_sources() {
        let v = |_: NodeId| unreachable!();
        assert!(Gate::Const(true).eval(v, &[]));
        assert!(Gate::Input(1).eval(|_| false, &[false, true]));
        assert!(Gate::Input(0).is_source());
        assert!(!Gate::Not(id(0)).is_source());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(id(7).to_string(), "n7");
        assert_eq!(id(7).index(), 7);
    }
}
