//! Capacity-bounded partitioning of a NOR netlist into a DAG of
//! sub-netlists with host-routed cut signals.
//!
//! A crossbar line can hold only so many gates; circuits that exceed it
//! after dense remap (the 16-bit multiplier, wide ALUs) must be split into
//! line-sized *parts* and executed as dependent waves: run every part of
//! level 0, read back the cut signals, feed them to level 1, and so on.
//! [`partition_nor`] performs that split — a topological, capacity-bounded
//! greedy cut of the gate DAG that prefers placing each gate where most of
//! its inputs already live (min-cut flavored; correctness first) — and
//! returns a validated [`NetlistPartition`].
//!
//! Every part is an ordinary [`NorNetlist`] whose primary inputs are the
//! part's *imports* (original primary inputs plus cut signals from
//! strictly lower levels) and whose outputs are its *exports* (gate values
//! some other part or a primary output needs). The host routes exports to
//! imports between levels; [`NetlistPartition::eval`] is the reference
//! implementation of that routing.
//!
//! # Example
//!
//! ```
//! use pimecc_netlist::generators;
//! use pimecc_netlist::partition::partition_nor;
//!
//! let nor = generators::mul(4).to_nor();
//! let parts = partition_nor(&nor, 16).unwrap();
//! assert!(parts.num_parts() > 1);
//! assert_eq!(parts.validate(), Ok(()));
//! // Host-routed evaluation matches the flat netlist bit for bit.
//! let inputs: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
//! assert_eq!(parts.eval(&inputs), nor.eval(&inputs));
//! ```

use std::collections::{HashMap, HashSet};
use std::ops::Range;

use crate::nor::{NorGate, NorNetlist, NorSource};

/// One line-sized slice of a partitioned netlist: a self-contained
/// [`NorNetlist`] plus the routing metadata tying it back to the original
/// circuit.
#[derive(Debug, Clone)]
pub struct SubNetlist {
    netlist: NorNetlist,
    inputs: Vec<NorSource>,
    exports: Vec<usize>,
    level: usize,
}

impl SubNetlist {
    /// The part's gates as a standalone NOR netlist. Its primary inputs
    /// are [`SubNetlist::inputs`] in order; its outputs are
    /// [`SubNetlist::exports`] in order.
    pub fn netlist(&self) -> &NorNetlist {
        &self.netlist
    }

    /// What each local primary input carries, in input order: an original
    /// primary input ([`NorSource::Input`]) or a cut signal produced by a
    /// gate in a strictly lower level ([`NorSource::Gate`], global index).
    pub fn inputs(&self) -> &[NorSource] {
        &self.inputs
    }

    /// Global indices of the gates this part exports (referenced by a
    /// later part or by a primary output), ascending; the part netlist's
    /// `k`-th output carries the value of gate `exports()[k]`.
    pub fn exports(&self) -> &[usize] {
        &self.exports
    }

    /// The part's dependency level: every cut signal it imports comes
    /// from a part of a strictly lower level.
    pub fn level(&self) -> usize {
        self.level
    }
}

/// A validated partitioning of one NOR netlist: parts ordered by level,
/// the per-level ranges, and the routing of the original primary outputs.
///
/// Produced by [`partition_nor`]; consumed by the device-side partitioned
/// compiler, which maps each part through SIMPLER and schedules the levels
/// as dependent waves.
#[derive(Debug, Clone)]
pub struct NetlistPartition {
    parts: Vec<SubNetlist>,
    levels: Vec<Range<usize>>,
    num_inputs: usize,
    num_gates: usize,
    outputs: Vec<NorSource>,
    part_of_gate: Vec<usize>,
}

impl NetlistPartition {
    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Number of dependency levels (sequential waves a request needs).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The parts, sorted by level.
    pub fn parts(&self) -> &[SubNetlist] {
        &self.parts
    }

    /// Part-index range of each level: parts `levels()[l]` are exactly
    /// the parts with [`SubNetlist::level`] `l`.
    pub fn levels(&self) -> &[Range<usize>] {
        &self.levels
    }

    /// Primary-input count of the original netlist.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Primary-output count of the original netlist.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Gate count of the original netlist.
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// The original netlist's primary outputs (global sources); resolve
    /// gate sources through [`NetlistPartition::part_of`] and the
    /// producer's [`SubNetlist::exports`].
    pub fn outputs(&self) -> &[NorSource] {
        &self.outputs
    }

    /// The part holding global gate `gate`.
    ///
    /// # Panics
    ///
    /// Panics if `gate >= num_gates()`.
    pub fn part_of(&self, gate: usize) -> usize {
        self.part_of_gate[gate]
    }

    /// Total number of cut signals — gate values some part imports from
    /// another part. Each one costs a host-side readback + re-load.
    pub fn cut_size(&self) -> usize {
        self.parts
            .iter()
            .flat_map(|p| p.inputs.iter())
            .filter(|s| matches!(s, NorSource::Gate(_)))
            .count()
    }

    /// Host-routed reference evaluation: runs every part in level order,
    /// routing exports to imports, and resolves the primary outputs —
    /// bit-identical to evaluating the original flat netlist.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut part_outputs: Vec<Vec<bool>> = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            let local: Vec<bool> = part
                .inputs
                .iter()
                .map(|&s| self.resolve(s, inputs, &part_outputs))
                .collect();
            part_outputs.push(part.netlist.eval(&local));
        }
        self.outputs
            .iter()
            .map(|&s| self.resolve(s, inputs, &part_outputs))
            .collect()
    }

    fn resolve(&self, s: NorSource, inputs: &[bool], part_outputs: &[Vec<bool>]) -> bool {
        match s {
            NorSource::Input(i) => inputs[i],
            NorSource::Gate(g) => {
                let p = self.part_of_gate[g];
                let k = self.parts[p]
                    .exports
                    .binary_search(&g)
                    .expect("producer exports its referenced gate");
                part_outputs[p][k]
            }
        }
    }

    /// Structural validation, mirroring [`NorNetlist::validate`]: parts
    /// sorted by level with consistent level ranges, every gate covered by
    /// exactly one part, every import sourced from a strictly lower level,
    /// exports ascending and resolvable, and each part netlist valid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut covered = vec![false; self.num_gates];
        let mut expected = 0usize;
        for (l, range) in self.levels.iter().enumerate() {
            if range.start != expected {
                return Err(format!("level {l} range does not follow its predecessor"));
            }
            if range.is_empty() {
                return Err(format!("level {l} is empty"));
            }
            for p in range.clone() {
                if self.parts[p].level != l {
                    return Err(format!("part {p} is in level {l}'s range but claims level"));
                }
            }
            expected = range.end;
        }
        if expected != self.parts.len() {
            return Err("level ranges do not cover every part".into());
        }
        for (pi, part) in self.parts.iter().enumerate() {
            part.netlist
                .validate()
                .map_err(|e| format!("part {pi}: {e}"))?;
            if part.netlist.num_inputs() != part.inputs.len() {
                return Err(format!("part {pi}: import arity mismatch"));
            }
            if part.netlist.num_outputs() != part.exports.len() {
                return Err(format!("part {pi}: export arity mismatch"));
            }
            if !part.exports.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("part {pi}: exports not strictly ascending"));
            }
            for &s in &part.inputs {
                match s {
                    NorSource::Input(i) if i >= self.num_inputs => {
                        return Err(format!("part {pi} imports undefined input {i}"));
                    }
                    NorSource::Gate(g) => {
                        if g >= self.num_gates {
                            return Err(format!("part {pi} imports undefined gate {g}"));
                        }
                        let producer = self.part_of_gate[g];
                        if self.parts[producer].level >= part.level {
                            return Err(format!(
                                "part {pi} (level {}) imports gate {g} from level {}",
                                part.level, self.parts[producer].level
                            ));
                        }
                        if self.parts[producer].exports.binary_search(&g).is_err() {
                            return Err(format!("gate {g} imported but not exported"));
                        }
                    }
                    _ => {}
                }
            }
            for &g in &part.exports {
                if g >= self.num_gates || self.part_of_gate[g] != pi {
                    return Err(format!("part {pi} exports gate {g} it does not own"));
                }
                if covered[g] {
                    return Err(format!("gate {g} exported twice"));
                }
                covered[g] = true;
            }
        }
        for (g, &p) in self.part_of_gate.iter().enumerate() {
            if p >= self.parts.len() {
                return Err(format!("gate {g} assigned to undefined part {p}"));
            }
        }
        let total: usize = self.parts.iter().map(|p| p.netlist.num_gates()).sum();
        if total != self.num_gates {
            return Err(format!(
                "parts hold {total} gates, original netlist has {}",
                self.num_gates
            ));
        }
        for &s in &self.outputs {
            if let NorSource::Gate(g) = s {
                if g >= self.num_gates {
                    return Err(format!("output reads undefined gate {g}"));
                }
                let p = self.part_of_gate[g];
                if self.parts[p].exports.binary_search(&g).is_err() {
                    return Err(format!("output gate {g} is not exported by its part"));
                }
            }
        }
        Ok(())
    }
}

/// Working state of one part while the greedy sweep runs.
struct PartBuild {
    level: usize,
    gates: Vec<usize>,
    /// Signals the part can read without a new import: its own gates plus
    /// everything already imported.
    avail: HashSet<NorSource>,
    open: bool,
}

/// Partitions `nor` into parts of at most `max_gates` gates each, ordered
/// by dependency level, such that every cut signal flows from a strictly
/// lower level to a higher one.
///
/// The sweep visits gates in topological order and scores each candidate
/// part by how many of the gate's inputs are already available there
/// (internal or previously imported), preferring to extend the producing
/// part at the same level when the gate's deepest inputs all come from one
/// part. The result is deterministic for a given netlist and budget.
///
/// # Errors
///
/// Returns an error when `max_gates` is zero.
pub fn partition_nor(nor: &NorNetlist, max_gates: usize) -> Result<NetlistPartition, String> {
    if max_gates == 0 {
        return Err("partition budget must be at least one gate per part".into());
    }
    debug_assert_eq!(nor.validate(), Ok(()));

    let gates = nor.gates();
    let mut builds: Vec<PartBuild> = Vec::new();
    let mut part_of = vec![usize::MAX; gates.len()];

    for (g, gate) in gates.iter().enumerate() {
        // Deepest level among this gate's producing parts, if any.
        let lmax = gate
            .inputs
            .iter()
            .filter_map(|&s| match s {
                NorSource::Gate(j) => Some(builds[part_of[j]].level),
                NorSource::Input(_) => None,
            })
            .max();
        let target = lmax.map_or(0, |l| l + 1);

        // Candidate A: the unique producing part at the deepest level —
        // legal to join (keeping the chain local) only when *every*
        // deepest-level input comes from that one part.
        let same_level: Option<usize> = lmax.and_then(|l| {
            let mut owner = None;
            for &s in &gate.inputs {
                if let NorSource::Gate(j) = s {
                    let p = part_of[j];
                    if builds[p].level == l {
                        match owner {
                            None => owner = Some(p),
                            Some(o) if o != p => return None,
                            Some(_) => {}
                        }
                    }
                }
            }
            owner.filter(|&p| builds[p].open)
        });

        // Candidate B: any open part at the target level.
        let mut best: Option<(usize, usize)> = None; // (score, part)
        let mut consider = |p: usize, builds: &[PartBuild]| {
            let score = gate
                .inputs
                .iter()
                .filter(|s| builds[p].avail.contains(s))
                .count();
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, p));
            }
        };
        for p in 0..builds.len() {
            if builds[p].open && builds[p].level == target {
                consider(p, &builds);
            }
        }
        if let Some(p) = same_level {
            consider(p, &builds);
        }

        let chosen = match best {
            Some((_, p)) => p,
            None => {
                builds.push(PartBuild {
                    level: target,
                    gates: Vec::new(),
                    avail: HashSet::new(),
                    open: true,
                });
                builds.len() - 1
            }
        };
        let part = &mut builds[chosen];
        for &s in &gate.inputs {
            part.avail.insert(s);
        }
        part.avail.insert(NorSource::Gate(g));
        part.gates.push(g);
        part_of[g] = chosen;
        if part.gates.len() >= max_gates {
            part.open = false;
        }
    }

    // Final part order: by (level, creation index) — creation order is
    // already stable, so a stable sort by level suffices.
    let mut order: Vec<usize> = (0..builds.len()).collect();
    order.sort_by_key(|&p| builds[p].level);
    let mut final_of_build = vec![usize::MAX; builds.len()];
    for (fi, &p) in order.iter().enumerate() {
        final_of_build[p] = fi;
    }
    let part_of_gate: Vec<usize> = part_of.iter().map(|&p| final_of_build[p]).collect();

    // Which gates must be exported: referenced by a *different* part or by
    // a primary output.
    let mut exported = vec![false; gates.len()];
    for (g, gate) in gates.iter().enumerate() {
        for &s in &gate.inputs {
            if let NorSource::Gate(j) = s {
                if part_of_gate[j] != part_of_gate[g] {
                    exported[j] = true;
                }
            }
        }
    }
    for &s in nor.outputs() {
        if let NorSource::Gate(j) = s {
            exported[j] = true;
        }
    }

    let mut parts = Vec::with_capacity(order.len());
    let mut levels: Vec<Range<usize>> = Vec::new();
    for &bi in &order {
        let build = &builds[bi];
        let fi = parts.len();
        // Local index of each of this part's gates.
        let local_of: HashMap<usize, usize> = build
            .gates
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l))
            .collect();
        let mut imports: Vec<NorSource> = Vec::new();
        let mut import_of: HashMap<NorSource, usize> = HashMap::new();
        let local_gates: Vec<NorGate> = build
            .gates
            .iter()
            .map(|&g| NorGate {
                inputs: gates[g]
                    .inputs
                    .iter()
                    .map(|&s| match s {
                        NorSource::Gate(j) if part_of_gate[j] == fi => {
                            NorSource::Gate(local_of[&j])
                        }
                        other => {
                            let idx = *import_of.entry(other).or_insert_with(|| {
                                imports.push(other);
                                imports.len() - 1
                            });
                            NorSource::Input(idx)
                        }
                    })
                    .collect(),
            })
            .collect();
        let exports: Vec<usize> = {
            let mut e: Vec<usize> = build
                .gates
                .iter()
                .copied()
                .filter(|&g| exported[g])
                .collect();
            e.sort_unstable();
            e
        };
        let local_outputs: Vec<NorSource> = exports
            .iter()
            .map(|g| NorSource::Gate(local_of[g]))
            .collect();
        let netlist = NorNetlist::from_parts(imports.len(), local_gates, local_outputs);
        debug_assert_eq!(netlist.validate(), Ok(()));
        if build.level + 1 == levels.len() {
            levels.last_mut().expect("non-empty").end = fi + 1;
        } else {
            debug_assert_eq!(build.level, levels.len());
            levels.push(fi..fi + 1);
        }
        parts.push(SubNetlist {
            netlist,
            inputs: imports,
            exports,
            level: build.level,
        });
    }

    let partition = NetlistPartition {
        parts,
        levels,
        num_inputs: nor.num_inputs(),
        num_gates: gates.len(),
        outputs: nor.outputs().to_vec(),
        part_of_gate,
    };
    debug_assert_eq!(partition.validate(), Ok(()));
    Ok(partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn adder_nor(width: usize) -> NorNetlist {
        generators::ripple_adder(width).to_nor()
    }

    #[test]
    fn budget_zero_is_an_error() {
        let nor = adder_nor(4);
        assert!(partition_nor(&nor, 0).is_err());
    }

    #[test]
    fn whole_netlist_in_one_part_when_budget_allows() {
        let nor = adder_nor(4);
        let p = partition_nor(&nor, nor.num_gates()).unwrap();
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.num_levels(), 1);
        assert_eq!(p.cut_size(), 0);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn small_budget_forces_multiple_levels() {
        let nor = adder_nor(8);
        let p = partition_nor(&nor, 8).unwrap();
        assert!(p.num_parts() > 1);
        assert!(p.num_levels() > 1);
        assert!(p.cut_size() > 0);
        assert_eq!(p.validate(), Ok(()));
        // Budget respected by every part.
        assert!(p.parts().iter().all(|s| s.netlist().num_gates() <= 8));
    }

    #[test]
    fn exhaustive_equivalence_on_small_adder() {
        let nor = adder_nor(3);
        for budget in [1, 2, 5, 9] {
            let p = partition_nor(&nor, budget).unwrap();
            assert_eq!(p.validate(), Ok(()));
            for v in 0..64u32 {
                let inputs: Vec<bool> = (0..6).map(|i| v >> i & 1 != 0).collect();
                assert_eq!(p.eval(&inputs), nor.eval(&inputs), "budget {budget} v {v}");
            }
        }
    }

    #[test]
    fn randomized_equivalence_across_circuits_and_budgets() {
        let mut rng = StdRng::seed_from_u64(7);
        let circuits: Vec<NorNetlist> = vec![
            adder_nor(16),
            generators::mul(6).to_nor(),
            generators::Benchmark::Int2float.build().netlist.to_nor(),
        ];
        for nor in &circuits {
            for budget in [3, 17, 64] {
                let p = partition_nor(nor, budget).unwrap();
                assert_eq!(p.validate(), Ok(()));
                for _ in 0..16 {
                    let inputs: Vec<bool> = (0..nor.num_inputs()).map(|_| rng.gen()).collect();
                    assert_eq!(p.eval(&inputs), nor.eval(&inputs));
                }
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let nor = generators::mul(8).to_nor();
        let a = partition_nor(&nor, 24).unwrap();
        let b = partition_nor(&nor, 24).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn levels_cover_parts_in_order() {
        let nor = generators::mul(8).to_nor();
        let p = partition_nor(&nor, 24).unwrap();
        let mut expected = 0;
        for (l, range) in p.levels().iter().enumerate() {
            assert_eq!(range.start, expected);
            expected = range.end;
            for part in &p.parts()[range.clone()] {
                assert_eq!(part.level(), l);
            }
        }
        assert_eq!(expected, p.num_parts());
    }

    #[test]
    fn pass_through_outputs_survive() {
        // A netlist whose output is a primary input directly.
        let mut b = crate::NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g = b.nor(x, y);
        b.output(x);
        b.output(g);
        let nor = b.finish().to_nor();
        let p = partition_nor(&nor, 1).unwrap();
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.eval(&[true, false]), nor.eval(&[true, false]));
    }
}
