//! Truth-table synthesis via recursive Shannon decomposition.
//!
//! The `cavlc` and `ctrl` benchmarks of the EPFL suite are random-looking
//! control logic; we regenerate equivalents by synthesizing circuits from
//! (seeded) truth tables. Decomposition is the classic
//! `f = MUX(x, f|x=1, f|x=0)` recursion with memoization on sub-table
//! contents, so shared subfunctions across outputs elaborate once.

use crate::builder::NetlistBuilder;
use crate::gate::NodeId;
use rand::Rng;
use std::collections::HashMap;

/// A complete truth table over `num_inputs` variables.
///
/// Bit `v` of the table is the function value at input valuation `v`, where
/// input `i` contributes bit `i` of `v`.
///
/// # Example
///
/// ```
/// use pimecc_netlist::TruthTable;
///
/// // XOR of two variables: true at valuations 01 and 10.
/// let tt = TruthTable::from_fn(2, |v| (v & 1) ^ (v >> 1 & 1) == 1);
/// assert!(tt.value(0b01));
/// assert!(!tt.value(0b11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_inputs: usize,
    /// `2^num_inputs` bits packed into words.
    bits: Vec<u64>,
}

impl TruthTable {
    /// Builds a table by evaluating `f` at every valuation.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 20` (tables get enormous).
    pub fn from_fn(num_inputs: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        assert!(num_inputs <= 20, "truth table too large");
        let size = 1usize << num_inputs;
        let mut bits = vec![0u64; size.div_ceil(64)];
        for v in 0..size {
            if f(v) {
                bits[v / 64] |= 1 << (v % 64);
            }
        }
        TruthTable { num_inputs, bits }
    }

    /// A random table where each entry is true with probability `density`.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 20` or `density` is outside `[0, 1]`.
    pub fn random<R: Rng + ?Sized>(num_inputs: usize, density: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        Self::from_fn(num_inputs, |_| rng.gen_bool(density))
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The function value at valuation `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= 2^num_inputs`.
    pub fn value(&self, v: usize) -> bool {
        assert!(v < 1usize << self.num_inputs, "valuation out of range");
        self.bits[v / 64] >> (v % 64) & 1 != 0
    }

    /// Number of true entries.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `Some(c)` if the table is the constant `c`.
    fn as_const(&self) -> Option<bool> {
        let ones = self.count_ones();
        if ones == 0 {
            Some(false)
        } else if ones == 1usize << self.num_inputs {
            Some(true)
        } else {
            None
        }
    }

    /// Cofactors on the top variable: `(f|top=0, f|top=1)`.
    ///
    /// # Panics
    ///
    /// Panics on a zero-variable table.
    fn cofactors(&self) -> (TruthTable, TruthTable) {
        assert!(self.num_inputs > 0, "cannot cofactor a constant");
        let k = self.num_inputs - 1;
        let half = 1usize << k;
        let lo = TruthTable::from_fn(k, |v| self.value(v));
        let hi = TruthTable::from_fn(k, |v| self.value(v + half));
        (lo, hi)
    }
}

/// Shannon-synthesizes one truth table over the given input nodes.
///
/// Shared sub-functions (including across repeated calls with the same
/// `Synthesizer`) elaborate to shared gates.
///
/// # Example
///
/// ```
/// use pimecc_netlist::{NetlistBuilder, TruthTable};
/// use pimecc_netlist::synth::Synthesizer;
///
/// let mut b = NetlistBuilder::new();
/// let ins = b.inputs(3);
/// let tt = TruthTable::from_fn(3, |v| v.count_ones() % 2 == 1); // parity
/// let mut s = Synthesizer::new();
/// let out = s.synthesize(&mut b, &ins, &tt);
/// b.output(out);
/// let nl = b.finish();
/// assert_eq!(nl.eval(&[true, true, false]), vec![false]);
/// assert_eq!(nl.eval(&[true, true, true]), vec![true]);
/// ```
#[derive(Debug, Default)]
pub struct Synthesizer {
    /// Keyed by (the input nodes the sub-table ranges over, the table):
    /// the same table over different signals is a different function.
    memo: HashMap<(Vec<NodeId>, TruthTable), NodeId>,
}

impl Synthesizer {
    /// Creates a synthesizer with an empty sharing cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Elaborates `table` over `inputs[..table.num_inputs()]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer input nodes than table variables are supplied.
    pub fn synthesize(
        &mut self,
        b: &mut NetlistBuilder,
        inputs: &[NodeId],
        table: &TruthTable,
    ) -> NodeId {
        assert!(
            inputs.len() >= table.num_inputs(),
            "need {} input nodes, got {}",
            table.num_inputs(),
            inputs.len()
        );
        self.synth_rec(b, inputs, table)
    }

    fn synth_rec(&mut self, b: &mut NetlistBuilder, inputs: &[NodeId], t: &TruthTable) -> NodeId {
        if let Some(c) = t.as_const() {
            return b.constant(c);
        }
        let key = (inputs[..t.num_inputs()].to_vec(), t.clone());
        if let Some(&hit) = self.memo.get(&key) {
            return hit;
        }
        let (lo, hi) = t.cofactors();
        let top = inputs[t.num_inputs() - 1];
        let lo_node = self.synth_rec(b, inputs, &lo);
        let hi_node = self.synth_rec(b, inputs, &hi);
        let out = b.mux(top, hi_node, lo_node);
        self.memo.insert(key, out);
        out
    }
}

/// Convenience wrapper synthesizing several output tables with shared logic.
///
/// # Panics
///
/// Panics if any table's variable count exceeds `inputs.len()`.
pub fn synthesize_table(
    b: &mut NetlistBuilder,
    inputs: &[NodeId],
    tables: &[TruthTable],
) -> Vec<NodeId> {
    let mut s = Synthesizer::new();
    tables.iter().map(|t| s.synthesize(b, inputs, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_table(tt: &TruthTable) {
        let n = tt.num_inputs();
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(n);
        let out = synthesize_table(&mut b, &ins, std::slice::from_ref(tt));
        b.output(out[0]);
        let nl = b.finish();
        for v in 0..1usize << n {
            let inputs: Vec<bool> = (0..n).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(nl.eval(&inputs)[0], tt.value(v), "valuation {v:b}");
        }
    }

    #[test]
    fn synthesizes_constants() {
        check_table(&TruthTable::from_fn(3, |_| false));
        check_table(&TruthTable::from_fn(3, |_| true));
    }

    #[test]
    fn synthesizes_projections_and_parity() {
        check_table(&TruthTable::from_fn(4, |v| v & 1 != 0));
        check_table(&TruthTable::from_fn(4, |v| v >> 3 & 1 != 0));
        check_table(&TruthTable::from_fn(5, |v| v.count_ones() % 2 == 0));
    }

    #[test]
    fn synthesizes_random_tables_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 1..=8 {
            for density in [0.1, 0.5, 0.9] {
                check_table(&TruthTable::random(n, density, &mut rng));
            }
        }
    }

    #[test]
    fn sharing_across_outputs_reduces_gates() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = TruthTable::random(6, 0.5, &mut rng);
        // Duplicate output: second synthesis must be free.
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(6);
        let outs = synthesize_table(&mut b, &ins, &[t.clone(), t.clone()]);
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn count_ones_and_value() {
        let tt = TruthTable::from_fn(2, |v| v == 3);
        assert_eq!(tt.count_ones(), 1);
        assert!(tt.value(3));
        assert!(!tt.value(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn value_out_of_range_panics() {
        TruthTable::from_fn(2, |_| false).value(4);
    }

    #[test]
    fn random_density_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(TruthTable::random(6, 0.0, &mut rng).count_ones(), 0);
        assert_eq!(TruthTable::random(6, 1.0, &mut rng).count_ones(), 64);
    }
}
