//! `max`: maximum of four 128-bit unsigned words plus the 2-bit argmax
//! index (512 inputs, 130 outputs).
//!
//! Tournament structure: two leaf comparators feed a final comparator;
//! ties resolve to the lower index, matching the reference model.

use super::{from_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Word width.
pub const WIDTH: usize = 128;
/// Number of candidate words.
pub const WORDS: usize = 4;

/// Builds the max benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let w: Vec<Word> = (0..WORDS).map(|_| Word::input(&mut b, WIDTH)).collect();

    // Leaf 0: max(w0, w1). `lt` is strict, so ties pick the lower index.
    let l0 = words::lt(&mut b, &w[0], &w[1]); // w0 < w1
    let m01 = words::mux(&mut b, l0, &w[1], &w[0]);
    // Leaf 1: max(w2, w3).
    let l1 = words::lt(&mut b, &w[2], &w[3]);
    let m23 = words::mux(&mut b, l1, &w[3], &w[2]);
    // Root: max(m01, m23).
    let l2 = words::lt(&mut b, &m01, &m23);
    let maximum = words::mux(&mut b, l2, &m23, &m01);

    // index bit0 = which element won inside the winning pair,
    // index bit1 = which pair won.
    let idx0 = b.mux(l2, l1, l0);
    let idx1 = l2;

    b.output_all(maximum.bits().iter().copied());
    b.output(idx0);
    b.output(idx1);
    Circuit {
        name: "max",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let vals: Vec<u128> = (0..WORDS)
        .map(|i| from_bits(&inputs[i * WIDTH..(i + 1) * WIDTH]))
        .collect();
    // Strictly-greater comparison: first occurrence of the maximum wins.
    let mut best = 0usize;
    for i in 1..WORDS {
        if vals[i] > vals[best] {
            best = i;
        }
    }
    let mut out: Vec<bool> = (0..WIDTH).map(|i| vals[best] >> i & 1 != 0).collect();
    out.push(best & 1 != 0);
    out.push(best & 2 != 0);
    out
}

#[cfg(test)]
mod tests {
    use super::super::to_bits;
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 512);
        assert_eq!(c.netlist.num_outputs(), 130);
    }

    #[test]
    fn random_tournaments_match() {
        build().validate_sample(30, 5).unwrap();
    }

    fn eval_max(c: &Circuit, vals: [u128; 4]) -> (u128, usize) {
        let mut inputs = Vec::new();
        for v in vals {
            inputs.extend(to_bits(v, WIDTH));
        }
        let out = c.netlist.eval(&inputs);
        let m = from_bits(&out[..WIDTH]);
        let idx = out[WIDTH] as usize | (out[WIDTH + 1] as usize) << 1;
        (m, idx)
    }

    #[test]
    fn each_position_can_win() {
        let c = build();
        assert_eq!(eval_max(&c, [9, 1, 2, 3]), (9, 0));
        assert_eq!(eval_max(&c, [1, 9, 2, 3]), (9, 1));
        assert_eq!(eval_max(&c, [1, 2, 9, 3]), (9, 2));
        assert_eq!(eval_max(&c, [1, 2, 3, 9]), (9, 3));
    }

    #[test]
    fn ties_pick_the_lowest_index() {
        let c = build();
        assert_eq!(eval_max(&c, [7, 7, 7, 7]), (7, 0));
        assert_eq!(eval_max(&c, [1, 7, 7, 2]), (7, 1));
        assert_eq!(eval_max(&c, [1, 2, 7, 7]), (7, 2));
    }

    #[test]
    fn handles_extreme_values() {
        let c = build();
        assert_eq!(
            eval_max(&c, [u128::MAX, 0, u128::MAX - 1, 5]),
            (u128::MAX, 0)
        );
        assert_eq!(eval_max(&c, [0, 0, 0, 0]), (0, 0));
    }
}
