//! `dec`: 8→256 one-hot decoder (8 inputs, 256 outputs).
//!
//! Built as two 4→16 half-decoders whose outputs are AND-combined — the
//! standard two-level construction, yielding the same output-dense profile
//! that makes `dec` the worst case of the paper's Table I (nearly every
//! gate writes a primary output).

use super::{from_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::gate::NodeId;

/// Address width.
pub const ADDR_BITS: usize = 8;
/// Number of one-hot outputs.
pub const OUTPUTS: usize = 256;

fn half_decoder(b: &mut NetlistBuilder, addr: &[NodeId]) -> Vec<NodeId> {
    let n = addr.len();
    let lits: Vec<(NodeId, NodeId)> = addr.iter().map(|&a| (b.not(a), a)).collect();
    (0..1usize << n)
        .map(|v| {
            let mut acc = if v & 1 != 0 { lits[0].1 } else { lits[0].0 };
            for (i, lit) in lits.iter().enumerate().skip(1) {
                let l = if v >> i & 1 != 0 { lit.1 } else { lit.0 };
                acc = b.and(acc, l);
            }
            acc
        })
        .collect()
}

/// Builds the decoder benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let addr: Vec<_> = (0..ADDR_BITS).map(|_| b.input()).collect();
    let lo = half_decoder(&mut b, &addr[..4]);
    let hi = half_decoder(&mut b, &addr[4..]);
    for h in &hi {
        for l in &lo {
            let out = b.and(*h, *l);
            b.output(out);
        }
    }
    Circuit {
        name: "dec",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let addr = from_bits(&inputs[..ADDR_BITS]) as usize;
    let mut out = vec![false; OUTPUTS];
    out[addr] = true;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 8);
        assert_eq!(c.netlist.num_outputs(), 256);
    }

    #[test]
    fn exhaustive_all_256_addresses() {
        let c = build();
        for addr in 0..OUTPUTS {
            let inputs: Vec<bool> = (0..ADDR_BITS).map(|i| addr >> i & 1 != 0).collect();
            let out = c.netlist.eval(&inputs);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == addr, "address {addr}, output {i}");
            }
        }
    }

    #[test]
    fn is_output_dense() {
        // The property that drives the paper's 205.8% overhead: the ratio
        // of outputs to total gates is high.
        let c = build();
        let s = c.netlist.stats();
        assert!(
            s.outputs as f64 / s.gates as f64 > 0.5,
            "dec must be output-dense: {s}"
        );
    }
}
