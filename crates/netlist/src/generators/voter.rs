//! `voter`: 1001-input majority function (1001 inputs, 1 output).
//!
//! Structure: a carry-save (3:2 compressor) population-count tree reduces
//! the 1001 single-bit votes to one 10-bit count, followed by a constant
//! comparison `count >= 501` — the same adder-tree profile as the EPFL
//! original, with a single primary output at the very end.

use super::Circuit;
use crate::builder::NetlistBuilder;
use crate::gate::NodeId;
use crate::words::{self, Word};

/// Number of voters (odd, so majority is never a tie).
pub const VOTERS: usize = 1001;
/// Votes needed to win.
pub const THRESHOLD: usize = VOTERS / 2 + 1;
/// Bits needed to count to `VOTERS`.
const COUNT_BITS: usize = 10;

/// Builds the voter benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let votes: Vec<NodeId> = (0..VOTERS).map(|_| b.input()).collect();

    // Carry-save reduction: per-weight buckets of single-bit signals.
    let mut buckets: Vec<Vec<NodeId>> = vec![votes];
    let mut weight = 0;
    while weight < buckets.len() {
        while buckets[weight].len() >= 3 {
            let a = buckets[weight].pop().expect("len>=3");
            let x = buckets[weight].pop().expect("len>=3");
            let c = buckets[weight].pop().expect("len>=3");
            // Full adder: sum stays at this weight, carry moves up.
            let s1 = b.xor(a, x);
            let sum = b.xor(s1, c);
            let carry = b.maj(a, x, c);
            buckets[weight].insert(0, sum);
            if buckets.len() == weight + 1 {
                buckets.push(Vec::new());
            }
            buckets[weight + 1].push(carry);
        }
        if buckets[weight].len() == 2 {
            // Half adder clears the bucket to a single bit.
            let a = buckets[weight].pop().expect("len==2");
            let x = buckets[weight].pop().expect("len==2");
            let sum = b.xor(a, x);
            let carry = b.and(a, x);
            buckets[weight].push(sum);
            if buckets.len() == weight + 1 {
                buckets.push(Vec::new());
            }
            buckets[weight + 1].push(carry);
        }
        weight += 1;
    }
    let zero = b.constant(false);
    let count = Word::from_bits(
        (0..COUNT_BITS)
            .map(|w| {
                buckets
                    .get(w)
                    .and_then(|v| v.first())
                    .copied()
                    .unwrap_or(zero)
            })
            .collect(),
    );

    // majority <=> count >= THRESHOLD <=> !(count < THRESHOLD)
    let threshold = Word::constant(&mut b, THRESHOLD as u128, COUNT_BITS);
    let below = words::lt(&mut b, &count, &threshold);
    let majority = b.not(below);
    b.output(majority);
    Circuit {
        name: "voter",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let ones = inputs.iter().filter(|&&v| v).count();
    vec![ones >= THRESHOLD]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 1001);
        assert_eq!(c.netlist.num_outputs(), 1);
    }

    #[test]
    fn random_votes_match_reference() {
        build().validate_sample(20, 6).unwrap();
    }

    #[test]
    fn threshold_edge_exactly() {
        let c = build();
        // Exactly THRESHOLD-1 ones: minority.
        let mut inputs = vec![false; VOTERS];
        for v in inputs.iter_mut().take(THRESHOLD - 1) {
            *v = true;
        }
        assert_eq!(c.netlist.eval(&inputs), vec![false]);
        // One more vote tips it.
        inputs[THRESHOLD - 1] = true;
        assert_eq!(c.netlist.eval(&inputs), vec![true]);
    }

    #[test]
    fn unanimous_cases() {
        let c = build();
        assert_eq!(c.netlist.eval(&vec![false; VOTERS]), vec![false]);
        assert_eq!(c.netlist.eval(&vec![true; VOTERS]), vec![true]);
    }

    #[test]
    fn is_extremely_output_sparse() {
        let s = build().netlist.stats();
        assert_eq!(s.outputs, 1);
        assert!(s.gates > 1000, "popcount tree is big: {s}");
    }
}
