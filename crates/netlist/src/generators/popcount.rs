//! `popcount`: population count at a parameterized width — the zoo's
//! reduction shape. A ripple accumulator over the input bits keeps the
//! structure narrow (small SIMPLER footprint) rather than fast.

use super::{from_bits, to_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Zoo widths with a stable benchmark name each.
fn name_for(width: usize) -> &'static str {
    match width {
        4 => "pop4",
        8 => "pop8",
        16 => "pop16",
        32 => "pop32",
        64 => "pop64",
        _ => "pop",
    }
}

/// Output bits needed to count up to `width` ones.
fn count_bits(width: usize) -> usize {
    (usize::BITS - width.leading_zeros()) as usize
}

/// Builds a `width`-bit popcount: `width` inputs,
/// `floor(log2(width)) + 1` outputs holding the number of set bits.
///
/// # Panics
///
/// Panics on zero width.
pub fn build_width(width: usize) -> Circuit {
    assert!(width > 0, "popcount needs at least one bit");
    let out_bits = count_bits(width);
    let mut b = NetlistBuilder::new();
    let input = Word::input(&mut b, width);
    let zero = b.constant(false);
    let mut acc = Word::constant(&mut b, 0, out_bits);
    for i in 0..width {
        let mut addend = vec![zero; out_bits];
        addend[0] = input.bit(i);
        let (sum, _) = words::add(&mut b, &acc, &Word::from_bits(addend));
        acc = sum;
    }
    b.output_all(acc.bits().iter().copied());
    Circuit {
        name: name_for(width),
        netlist: b.finish(),
        reference: Box::new(move |inputs| reference(width, inputs)),
    }
}

fn reference(width: usize, inputs: &[bool]) -> Vec<bool> {
    let ones = from_bits(&inputs[..width]).count_ones();
    to_bits(u128::from(ones), count_bits(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build_width(8);
        assert_eq!(c.netlist.num_inputs(), 8);
        assert_eq!(c.netlist.num_outputs(), 4, "counts 0..=8");
        assert_eq!(c.name, "pop8");
    }

    /// Width 4: all 16 vectors against the host reference.
    #[test]
    fn width_4_is_exhaustively_correct() {
        let c = build_width(4);
        for v in 0..16u32 {
            let inputs: Vec<bool> = (0..4).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(c.netlist.eval(&inputs), (c.reference)(&inputs), "{v:#x}");
        }
    }

    /// Width 8 (256 vectors) exhaustively, post-NOR too.
    #[test]
    fn width_8_is_exhaustively_correct_after_nor_lowering() {
        let c = build_width(8);
        let nor = c.netlist.to_nor();
        for v in 0..256u32 {
            let inputs: Vec<bool> = (0..8).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(nor.eval(&inputs), (c.reference)(&inputs), "{v:#x}");
        }
    }

    #[test]
    fn all_ones_counts_to_width() {
        for w in [4usize, 8, 16, 32] {
            let c = build_width(w);
            let inputs = vec![true; w];
            assert_eq!(from_bits(&c.netlist.eval(&inputs)), w as u128, "width {w}");
        }
    }

    #[test]
    fn wider_builds_validate_on_samples() {
        for w in [16usize, 32, 64] {
            build_width(w).validate_sample(24, w as u64).unwrap();
        }
    }
}
