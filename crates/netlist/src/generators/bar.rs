//! `bar`: 128-bit barrel shifter — rotate left by a 7-bit amount
//! (135 inputs, 128 outputs, log-shifter structure).

use super::{from_bits, to_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Data width (power of two so every rotate amount is valid).
pub const WIDTH: usize = 128;
/// Shift-amount width (`log2(WIDTH)`).
pub const SHIFT_BITS: usize = 7;

/// Builds the barrel-shifter benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let data = Word::input(&mut b, WIDTH);
    let amount: Vec<_> = (0..SHIFT_BITS).map(|_| b.input()).collect();
    let mut current = data;
    for (stage, &sel) in amount.iter().enumerate() {
        let k = 1usize << stage;
        let rotated = Word::from_bits(
            (0..WIDTH)
                .map(|i| current.bit((i + WIDTH - k) % WIDTH))
                .collect(),
        );
        current = words::mux(&mut b, sel, &rotated, &current);
    }
    b.output_all(current.bits().iter().copied());
    Circuit {
        name: "bar",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let data = from_bits(&inputs[..WIDTH]);
    let amount = from_bits(&inputs[WIDTH..WIDTH + SHIFT_BITS]) as u32;
    to_bits(data.rotate_left(amount), WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 135);
        assert_eq!(c.netlist.num_outputs(), 128);
    }

    #[test]
    fn random_rotations_match() {
        build().validate_sample(40, 2).unwrap();
    }

    #[test]
    fn rotate_by_zero_is_identity() {
        let c = build();
        let mut inputs = to_bits(0x1234_5678_9ABC_DEF0, WIDTH);
        inputs.extend(std::iter::repeat_n(false, SHIFT_BITS));
        let out = c.netlist.eval(&inputs);
        assert_eq!(from_bits(&out), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn rotate_each_power_of_two() {
        let c = build();
        let value = 1u128; // single set bit walks around
        for stage in 0..SHIFT_BITS {
            let amt = 1usize << stage;
            let mut inputs = to_bits(value, WIDTH);
            inputs.extend((0..SHIFT_BITS).map(|i| amt >> i & 1 != 0));
            let out = c.netlist.eval(&inputs);
            assert_eq!(from_bits(&out), 1u128 << amt, "amount {amt}");
        }
    }

    #[test]
    fn is_log_depth_mux_network() {
        let s = build().netlist.stats();
        // 7 mux stages, each a couple of levels deep after lowering to mux.
        assert!(
            s.depth <= 3 * SHIFT_BITS,
            "log shifter should be shallow: {s}"
        );
        assert!(
            s.gates >= WIDTH * SHIFT_BITS / 2,
            "needs ~a mux per bit per stage: {s}"
        );
    }
}
