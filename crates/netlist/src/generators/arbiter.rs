//! `arbiter`: round-robin arbiter over 128 requestors (135 inputs,
//! 129 outputs).
//!
//! Inputs are 128 request lines plus a 7-bit priority pointer; the grant
//! goes to the first active requestor at or after the pointer, wrapping
//! around. Structure: rotate requests right by the pointer (log shifter),
//! fixed-priority select, rotate the one-hot grant back — the classic
//! programmable-priority-encoder construction, which is also why the EPFL
//! original is mux-dominated.

use super::{from_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Number of requestors.
pub const REQUESTORS: usize = 128;
/// Pointer width (`log2(REQUESTORS)`).
pub const PTR_BITS: usize = 7;

fn rotate_right(b: &mut NetlistBuilder, word: &Word, amount: &[crate::NodeId]) -> Word {
    let w = word.width();
    let mut current = word.clone();
    for (stage, &sel) in amount.iter().enumerate() {
        let k = 1usize << stage;
        let rotated = Word::from_bits((0..w).map(|i| current.bit((i + k) % w)).collect());
        current = words::mux(b, sel, &rotated, &current);
    }
    current
}

fn rotate_left(b: &mut NetlistBuilder, word: &Word, amount: &[crate::NodeId]) -> Word {
    let w = word.width();
    let mut current = word.clone();
    for (stage, &sel) in amount.iter().enumerate() {
        let k = 1usize << stage;
        let rotated = Word::from_bits((0..w).map(|i| current.bit((i + w - k) % w)).collect());
        current = words::mux(b, sel, &rotated, &current);
    }
    current
}

/// Builds the arbiter benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let requests = Word::input(&mut b, REQUESTORS);
    let pointer: Vec<_> = (0..PTR_BITS).map(|_| b.input()).collect();

    // Rotate so the pointer's requestor lands at index 0.
    let rotated = rotate_right(&mut b, &requests, &pointer);

    // Fixed-priority selection of the lowest set bit.
    let mut grant_bits = Vec::with_capacity(REQUESTORS);
    let mut any_before = b.constant(false);
    for i in 0..REQUESTORS {
        let not_before = b.not(any_before);
        let g = b.and(rotated.bit(i), not_before);
        grant_bits.push(g);
        any_before = b.or(any_before, rotated.bit(i));
    }
    let grants_rot = Word::from_bits(grant_bits);
    let valid = any_before;

    // Rotate the one-hot grant back to requestor numbering.
    let grants = rotate_left(&mut b, &grants_rot, &pointer);
    b.output_all(grants.bits().iter().copied());
    b.output(valid);
    Circuit {
        name: "arbiter",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let requests = &inputs[..REQUESTORS];
    let pointer = from_bits(&inputs[REQUESTORS..REQUESTORS + PTR_BITS]) as usize;
    let mut out = vec![false; REQUESTORS + 1];
    for k in 0..REQUESTORS {
        let i = (pointer + k) % REQUESTORS;
        if requests[i] {
            out[i] = true;
            out[REQUESTORS] = true;
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 135);
        assert_eq!(c.netlist.num_outputs(), 129);
    }

    #[test]
    fn random_arbitrations_match() {
        build().validate_sample(40, 3).unwrap();
    }

    #[test]
    fn no_requests_means_no_grant() {
        let c = build();
        let inputs = vec![false; REQUESTORS + PTR_BITS];
        let out = c.netlist.eval(&inputs);
        assert!(out.iter().all(|&b| !b), "idle arbiter grants nothing");
    }

    #[test]
    fn pointer_wraps_around() {
        let c = build();
        // Only requestor 3 active; pointer at 100 -> wraps to grant 3.
        let mut inputs = vec![false; REQUESTORS + PTR_BITS];
        inputs[3] = true;
        for i in 0..PTR_BITS {
            inputs[REQUESTORS + i] = 100usize >> i & 1 != 0;
        }
        let out = c.netlist.eval(&inputs);
        assert!(out[3]);
        assert!(out[REQUESTORS], "valid");
        assert_eq!(
            out[..REQUESTORS].iter().filter(|&&g| g).count(),
            1,
            "one-hot"
        );
    }

    #[test]
    fn grant_is_always_one_hot_and_to_a_requestor() {
        let c = build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        use rand::Rng;
        use rand::SeedableRng;
        for _ in 0..20 {
            let inputs: Vec<bool> = (0..REQUESTORS + PTR_BITS).map(|_| rng.gen()).collect();
            let out = c.netlist.eval(&inputs);
            let grants: Vec<usize> = (0..REQUESTORS).filter(|&i| out[i]).collect();
            if out[REQUESTORS] {
                assert_eq!(grants.len(), 1);
                assert!(inputs[grants[0]], "granted line must be requesting");
            } else {
                assert!(grants.is_empty());
            }
        }
    }
}
