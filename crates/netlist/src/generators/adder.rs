//! `adder`: 128-bit ripple-carry adder (256 inputs, 129 outputs).

use super::{from_bits, to_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Datapath width in bits.
pub const WIDTH: usize = 128;

/// Builds a `width`-bit ripple-carry adder netlist (`2·width` inputs,
/// `width + 1` outputs) — the benchmark's shape at an arbitrary width,
/// e.g. for traffic mixes on devices too narrow for the 128-bit version.
pub fn build_width(width: usize) -> crate::Netlist {
    let mut b = NetlistBuilder::new();
    let x = Word::input(&mut b, width);
    let y = Word::input(&mut b, width);
    let (sum, carry) = words::add(&mut b, &x, &y);
    b.output_all(sum.bits().iter().copied());
    b.output(carry);
    b.finish()
}

/// Builds the adder benchmark.
pub fn build() -> Circuit {
    Circuit {
        name: "adder",
        netlist: build_width(WIDTH),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let x = from_bits(&inputs[..WIDTH]);
    let y = from_bits(&inputs[WIDTH..2 * WIDTH]);
    let (sum, carry) = x.overflowing_add(y);
    let mut out = to_bits(sum, WIDTH);
    out.push(carry);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape_matches_paper_style() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 256);
        assert_eq!(c.netlist.num_outputs(), 129);
    }

    #[test]
    fn random_additions_match() {
        build().validate_sample(50, 1).unwrap();
    }

    #[test]
    fn carry_chain_corner_cases() {
        let c = build();
        // all-ones + 1 -> zero with carry out
        let mut inputs = vec![true; WIDTH];
        inputs.extend(to_bits(1, WIDTH));
        let out = c.netlist.eval(&inputs);
        assert!(out[..WIDTH].iter().all(|&b| !b));
        assert!(out[WIDTH]);
        // zero + zero
        let inputs = vec![false; 2 * WIDTH];
        let out = c.netlist.eval(&inputs);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn gate_count_is_linear_in_width() {
        let s = build().netlist.stats();
        // ~3 gates per bit (2 xor + 1 maj), well under 8/bit.
        assert!(s.gates >= 2 * WIDTH && s.gates <= 8 * WIDTH, "{s}");
        assert!(s.depth >= WIDTH / 2, "ripple chain must be deep, got {s}");
    }
}
