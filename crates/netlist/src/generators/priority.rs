//! `priority`: 128-bit priority encoder (128 inputs, 8 outputs — 7-bit
//! index of the lowest-numbered active line plus a valid flag).

use super::Circuit;
use crate::builder::NetlistBuilder;

/// Number of request lines.
pub const LINES: usize = 128;
/// Encoded index width.
pub const INDEX_BITS: usize = 7;

/// Builds the priority-encoder benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let lines: Vec<_> = (0..LINES).map(|_| b.input()).collect();

    // first[i] = lines[i] AND nothing-before; computed with a scan chain.
    let mut any_before = b.constant(false);
    let mut index = vec![b.constant(false); INDEX_BITS];
    for (i, &line) in lines.iter().enumerate() {
        let not_before = b.not(any_before);
        let first = b.and(line, not_before);
        for (j, idx) in index.iter_mut().enumerate() {
            if i >> j & 1 != 0 {
                *idx = b.or(*idx, first);
            }
        }
        any_before = b.or(any_before, line);
    }
    b.output_all(index);
    b.output(any_before);
    Circuit {
        name: "priority",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let mut out = vec![false; INDEX_BITS + 1];
    if let Some(first) = inputs.iter().position(|&b| b) {
        for (j, bit) in out.iter_mut().take(INDEX_BITS).enumerate() {
            *bit = first >> j & 1 != 0;
        }
        out[INDEX_BITS] = true;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::from_bits;
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 128);
        assert_eq!(c.netlist.num_outputs(), 8);
    }

    #[test]
    fn random_inputs_match_reference() {
        build().validate_sample(40, 4).unwrap();
    }

    #[test]
    fn single_line_encodes_its_index() {
        let c = build();
        for i in [0usize, 1, 63, 64, 127] {
            let mut inputs = vec![false; LINES];
            inputs[i] = true;
            let out = c.netlist.eval(&inputs);
            assert_eq!(from_bits(&out[..INDEX_BITS]) as usize, i);
            assert!(out[INDEX_BITS]);
        }
    }

    #[test]
    fn lower_index_wins() {
        let c = build();
        let mut inputs = vec![false; LINES];
        inputs[100] = true;
        inputs[5] = true;
        let out = c.netlist.eval(&inputs);
        assert_eq!(from_bits(&out[..INDEX_BITS]), 5);
    }

    #[test]
    fn idle_encoder_reports_invalid() {
        let c = build();
        let out = c.netlist.eval(&[false; LINES]);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn is_output_sparse() {
        let s = build().netlist.stats();
        assert!(
            (s.outputs as f64) / (s.gates as f64) < 0.05,
            "priority is output-sparse: {s}"
        );
    }
}
