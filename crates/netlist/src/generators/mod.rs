//! Structural generators for the eleven EPFL-style benchmark circuits of
//! the paper's Table I.
//!
//! The original EPFL suite ships as BLIF/AIG files; this workspace has no
//! network access, so each benchmark is *regenerated structurally* from its
//! functional specification (see `DESIGN.md` for the substitution
//! rationale). Every generated [`Circuit`] carries a software reference
//! model, and [`Circuit::validate_sample`] checks netlist-vs-reference
//! equality on randomized inputs.

mod adder;
mod arbiter;
mod bar;
mod cavlc;
pub mod comparator;
mod ctrl;
mod dec;
pub mod extra;
mod int2float;
mod max;
mod mul;
pub mod popcount;
mod priority;
pub mod shifter;
mod sin;
mod voter;

pub use adder::build_width as ripple_adder;
pub use extra::ExtraBenchmark;
pub use mul::{build as mul16, build_width as mul};

use crate::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Software model mapping input bits to expected output bits.
pub type ReferenceModel = Box<dyn Fn(&[bool]) -> Vec<bool> + Send + Sync>;

/// A generated benchmark circuit: the netlist plus its bit-exact software
/// reference model.
pub struct Circuit {
    /// Benchmark name (matches the paper's Table I row labels).
    pub name: &'static str,
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Software model mapping input bits to expected output bits.
    pub reference: ReferenceModel,
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Circuit({}, {})", self.name, self.netlist.stats())
    }
}

impl Circuit {
    /// Checks the netlist against the reference model on `samples` random
    /// input vectors (seeded, deterministic).
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching sample.
    pub fn validate_sample(&self, samples: usize, seed: u64) -> Result<(), String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.netlist.num_inputs();
        for s in 0..samples {
            let inputs: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let got = self.netlist.eval(&inputs);
            let want = (self.reference)(&inputs);
            if got != want {
                return Err(format!(
                    "{}: sample {s} mismatch (first bad output bit {:?})",
                    self.name,
                    got.iter().zip(&want).position(|(g, w)| g != w)
                ));
            }
        }
        Ok(())
    }
}

/// The benchmark set of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// 128-bit ripple-carry adder.
    Adder,
    /// Round-robin arbiter over 128 requestors.
    Arbiter,
    /// 128-bit barrel shifter (rotate left).
    Bar,
    /// Random-logic block shaped like the CAVLC decoder (10→11).
    Cavlc,
    /// Random-logic controller block (7→26).
    Ctrl,
    /// 8→256 one-hot decoder.
    Dec,
    /// 11-bit integer to compact float converter.
    Int2float,
    /// Maximum of four 128-bit words plus argmax index.
    Max,
    /// 128-bit priority encoder.
    Priority,
    /// Fixed-point CORDIC sine.
    Sin,
    /// 1001-input majority voter.
    Voter,
}

impl Benchmark {
    /// All benchmarks in the paper's Table I row order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Adder,
        Benchmark::Arbiter,
        Benchmark::Bar,
        Benchmark::Cavlc,
        Benchmark::Ctrl,
        Benchmark::Dec,
        Benchmark::Int2float,
        Benchmark::Max,
        Benchmark::Priority,
        Benchmark::Sin,
        Benchmark::Voter,
    ];

    /// The paper's row label.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Adder => "adder",
            Benchmark::Arbiter => "arbiter",
            Benchmark::Bar => "bar",
            Benchmark::Cavlc => "cavlc",
            Benchmark::Ctrl => "ctrl",
            Benchmark::Dec => "dec",
            Benchmark::Int2float => "int2float",
            Benchmark::Max => "max",
            Benchmark::Priority => "priority",
            Benchmark::Sin => "sin",
            Benchmark::Voter => "voter",
        }
    }

    /// Generates the circuit.
    pub fn build(self) -> Circuit {
        match self {
            Benchmark::Adder => adder::build(),
            Benchmark::Arbiter => arbiter::build(),
            Benchmark::Bar => bar::build(),
            Benchmark::Cavlc => cavlc::build(),
            Benchmark::Ctrl => ctrl::build(),
            Benchmark::Dec => dec::build(),
            Benchmark::Int2float => int2float::build(),
            Benchmark::Max => max::build(),
            Benchmark::Priority => priority::build(),
            Benchmark::Sin => sin::build(),
            Benchmark::Voter => voter::build(),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The program zoo: a long tail of 20+ distinct small circuits for
/// mixed-traffic experiments — shifters, comparators, popcounts and
/// ripple adders at several widths, each with its bit-exact host
/// reference. Deterministic: the same list in the same order every call.
pub fn zoo() -> Vec<Circuit> {
    let mut circuits = Vec::new();
    for w in [4usize, 8, 16, 32] {
        circuits.push(shifter::build_width(w));
    }
    for w in [2usize, 3, 4, 8, 16, 32] {
        circuits.push(comparator::build_width(w));
    }
    for w in [4usize, 8, 16, 32, 64] {
        circuits.push(popcount::build_width(w));
    }
    for (w, name) in [(2usize, "add2"), (4, "add4"), (8, "add8"), (16, "add16")] {
        circuits.push(Circuit {
            name,
            netlist: ripple_adder(w),
            reference: Box::new(move |inputs: &[bool]| {
                let x = from_bits(&inputs[..w]);
                let y = from_bits(&inputs[w..2 * w]);
                let total = x + y;
                let mut out = to_bits(total, w);
                out.push(total >> w & 1 != 0);
                out
            }),
        });
    }
    circuits.push(Benchmark::Ctrl.build());
    circuits.push(Benchmark::Int2float.build());
    circuits.push(Benchmark::Cavlc.build());
    circuits
}

/// Packs the low `width` bits of `value` into a little-endian bool vector
/// (shared helper for generator reference models and tests).
pub fn to_bits(value: u128, width: usize) -> Vec<bool> {
    (0..width).map(|i| value >> i & 1 != 0).collect()
}

/// Interprets a little-endian bool slice as an unsigned integer.
///
/// # Panics
///
/// Panics if `bits.len() > 128`.
pub fn from_bits(bits: &[bool]) -> u128 {
    assert!(bits.len() <= 128, "too wide for u128");
    bits.iter()
        .rev()
        .fold(0u128, |acc, &b| (acc << 1) | b as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 11);
        assert_eq!(names[0], "adder");
        assert_eq!(names[10], "voter");
        assert_eq!(Benchmark::Sin.to_string(), "sin");
    }

    #[test]
    fn bits_roundtrip() {
        for v in [0u128, 1, 0xDEAD_BEEF, u128::MAX >> 1] {
            assert_eq!(from_bits(&to_bits(v, 128)), v);
        }
        assert_eq!(from_bits(&to_bits(0b101, 3)), 0b101);
    }

    /// Every benchmark builds, validates structurally, and matches its
    /// reference model on random samples. (The heavier per-circuit checks
    /// live in each submodule.)
    #[test]
    fn all_benchmarks_validate() {
        for b in Benchmark::ALL {
            let c = b.build();
            assert_eq!(c.netlist.validate(), Ok(()), "{b}");
            c.validate_sample(8, 0xC0FFEE)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn nor_lowering_preserves_every_benchmark() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for b in Benchmark::ALL {
            let c = b.build();
            let nor = c.netlist.to_nor();
            assert_eq!(nor.validate(), Ok(()), "{b}");
            for _ in 0..4 {
                let inputs: Vec<bool> = (0..c.netlist.num_inputs()).map(|_| rng.gen()).collect();
                assert_eq!(nor.eval(&inputs), c.netlist.eval(&inputs), "{b}");
            }
        }
    }

    #[test]
    fn the_zoo_is_big_distinct_and_correct() {
        let circuits = zoo();
        assert!(circuits.len() >= 20, "long tail needs 20+ programs");
        let mut names: Vec<_> = circuits.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), circuits.len(), "zoo names must be distinct");
        for c in &circuits {
            assert_eq!(c.netlist.validate(), Ok(()), "{}", c.name);
            c.validate_sample(6, 0x5EED)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn debug_formats_mention_name() {
        let c = Benchmark::Ctrl.build();
        assert!(format!("{c:?}").contains("ctrl"));
    }
}
