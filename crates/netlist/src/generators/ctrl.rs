//! `ctrl`: random-logic controller block (7 inputs, 26 outputs).
//!
//! Shaped like the EPFL `ctrl` decode logic: many sparse outputs over a few
//! inputs. Regenerated from seeded sparse truth tables (density 0.15).

use super::Circuit;
use crate::builder::NetlistBuilder;
use crate::synth::{synthesize_table, TruthTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of inputs.
pub const INPUTS: usize = 7;
/// Number of outputs.
pub const OUTPUTS: usize = 26;
const SEED: u64 = 0xC7A1;
const DENSITY: f64 = 0.15;

fn tables() -> Vec<TruthTable> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..OUTPUTS)
        .map(|_| TruthTable::random(INPUTS, DENSITY, &mut rng))
        .collect()
}

/// Builds the ctrl benchmark.
pub fn build() -> Circuit {
    let tabs = tables();
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(INPUTS);
    let outs = synthesize_table(&mut b, &ins, &tabs);
    b.output_all(outs);
    let reference = move |inputs: &[bool]| {
        let v = inputs
            .iter()
            .take(INPUTS)
            .enumerate()
            .fold(0usize, |acc, (i, &bit)| acc | (bit as usize) << i);
        tabs.iter().map(|t| t.value(v)).collect()
    };
    Circuit {
        name: "ctrl",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 7);
        assert_eq!(c.netlist.num_outputs(), 26);
    }

    #[test]
    fn exhaustive_equivalence_with_tables() {
        let c = build();
        for v in 0..1usize << INPUTS {
            let inputs: Vec<bool> = (0..INPUTS).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(
                c.netlist.eval(&inputs),
                (c.reference)(&inputs),
                "valuation {v}"
            );
        }
    }

    #[test]
    fn is_small_and_output_dense() {
        let s = build().netlist.stats();
        assert!(s.gates < 1500, "ctrl is a small block: {s}");
        assert!(s.outputs as f64 / s.gates as f64 > 0.02, "{s}");
    }
}
