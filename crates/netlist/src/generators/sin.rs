//! `sin`: fixed-point CORDIC sine (24 inputs, 25 outputs).
//!
//! The input is an unsigned Q0.24 angle `z ∈ [0, 1)` radians; the output is
//! the Q1.24 sine truncated to 25 bits. Twenty rotation-mode CORDIC
//! iterations run on a 27-bit two's-complement datapath; each iteration is a
//! pair of conditional add/subtract chains plus a constant-rotation of the
//! residual angle — deep, narrow logic with very few primary outputs,
//! exactly the profile that gives `sin` its ~1% ECC overhead in the paper's
//! Table I.
//!
//! The software reference implements the *identical* wrap-around fixed-point
//! algorithm, so netlist and reference agree bit-exactly.

use super::{from_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Input angle width (Q0.24).
pub const IN_BITS: usize = 24;
/// Output width (Q1.24).
pub const OUT_BITS: usize = 25;
/// Internal datapath width (1 sign + 2 integer + 24 fraction bits).
const W: usize = 27;
/// CORDIC iterations.
const ITER: usize = 20;

/// `round(atan(2^-i) * 2^24)` for `i = 0..20`.
const ATAN_TABLE: [i64; ITER] = [
    13176795, 7778716, 4110060, 2086331, 1047214, 524117, 262123, 131069, 65536, 32768, 16384,
    8192, 4096, 2048, 1024, 512, 256, 128, 64, 32,
];
/// `round(2^24 / prod sqrt(1 + 2^-2i))` — the CORDIC gain compensation.
const K_INV: i64 = 10188014;

/// Sign-extends the low `W` bits of `v` into an `i64`.
fn wrap(v: i64) -> i64 {
    (v << (64 - W)) >> (64 - W)
}

/// The bit-exact software specification: Q0.24 angle in, Q1.24 sine out.
pub fn spec(theta: u32) -> u32 {
    let mut x = K_INV;
    let mut y = 0i64;
    let mut z = theta as i64;
    for (i, &atan) in ATAN_TABLE.iter().enumerate() {
        let (xs, ys) = (x >> i, y >> i);
        if z >= 0 {
            (x, y, z) = (wrap(x - ys), wrap(y + xs), wrap(z - atan));
        } else {
            (x, y, z) = (wrap(x + ys), wrap(y - xs), wrap(z + atan));
        }
    }
    (y as u32) & ((1 << OUT_BITS) - 1)
}

/// Builds the sin benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let theta = Word::input(&mut b, IN_BITS);
    let zero = b.constant(false);

    // Zero-extend the angle into the 27-bit datapath.
    let mut z = Word::from_bits(
        theta
            .bits()
            .iter()
            .copied()
            .chain(std::iter::repeat_n(zero, W - IN_BITS))
            .collect(),
    );
    let mut x = Word::constant(&mut b, K_INV as u128, W);
    let mut y = Word::constant(&mut b, 0, W);

    for (i, &atan) in ATAN_TABLE.iter().enumerate() {
        let xs = x.shift_right_arith(i);
        let ys = y.shift_right_arith(i);
        let z_neg = z.msb();
        let z_nonneg = b.not(z_neg);
        // z >= 0: x -= y>>i, y += x>>i, z -= atan.
        x = words::add_sub(&mut b, &x, &ys, z_nonneg);
        y = words::add_sub(&mut b, &y, &xs, z_neg);
        let rot = Word::constant(&mut b, atan as u128, W);
        z = words::add_sub(&mut b, &z, &rot, z_nonneg);
    }

    b.output_all(y.bits().iter().take(OUT_BITS).copied());
    Circuit {
        name: "sin",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let theta = from_bits(&inputs[..IN_BITS]) as u32;
    let s = spec(theta);
    (0..OUT_BITS).map(|i| s >> i & 1 != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 24);
        assert_eq!(c.netlist.num_outputs(), 25);
    }

    #[test]
    fn random_angles_match_reference() {
        build().validate_sample(25, 8).unwrap();
    }

    /// Sign-extends a 25-bit two's-complement value.
    fn as_signed(v: u32) -> i64 {
        ((v as i64) << (64 - OUT_BITS)) >> (64 - OUT_BITS)
    }

    #[test]
    fn spec_approximates_real_sine() {
        // The CORDIC result must track f64 sin within a few ulps of Q24.
        for theta in [0u32, 1 << 20, 1 << 22, 1 << 23, (1 << 24) - 1] {
            let angle = theta as f64 / (1u64 << 24) as f64;
            let want = (angle.sin() * (1u64 << 24) as f64).round() as i64;
            let got = as_signed(spec(theta));
            assert!(
                (got - want).abs() <= 64,
                "theta={theta}: got {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn zero_angle_gives_zero_sine() {
        let c = build();
        let out = c.netlist.eval(&[false; IN_BITS]);
        let got = as_signed(from_bits(&out) as u32);
        assert!(got.abs() <= 64, "sin(0) ~ 0, got {got}");
    }

    #[test]
    fn is_deep_and_output_sparse() {
        let s = build().netlist.stats();
        assert!(s.depth > 100, "20 chained ripple adders are deep: {s}");
        assert!(
            (s.outputs as f64) / (s.gates as f64) < 0.02,
            "sin is output-sparse: {s}"
        );
    }
}
