//! Extra benchmark circuits beyond the paper's Table I set.
//!
//! The EPFL suite contains further arithmetic workloads (`mult`, `square`,
//! `log2`, ...) that the paper does not evaluate; we regenerate three of
//! them so the ECC scheduler can be stressed on multiplier-class circuits
//! — much larger, adder-chain-dominated, output-moderate profiles that sit
//! between `sin` and `adder` in criticality density.

use super::{from_bits, to_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::synth::{synthesize_table, TruthTable};
use crate::words::{self, Word};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Extra benchmarks (not part of the paper's Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtraBenchmark {
    /// 32×32 → 64-bit shift-add multiplier.
    Mult,
    /// 24-bit squarer (multiplier with shared operand).
    Square,
    /// Control-logic-heavy random block (12 → 40), mem_ctrl-like profile.
    LogicMix,
}

impl ExtraBenchmark {
    /// All extra benchmarks.
    pub const ALL: [ExtraBenchmark; 3] = [
        ExtraBenchmark::Mult,
        ExtraBenchmark::Square,
        ExtraBenchmark::LogicMix,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ExtraBenchmark::Mult => "mult",
            ExtraBenchmark::Square => "square",
            ExtraBenchmark::LogicMix => "logicmix",
        }
    }

    /// Generates the circuit.
    pub fn build(self) -> Circuit {
        match self {
            ExtraBenchmark::Mult => build_mult(),
            ExtraBenchmark::Square => build_square(),
            ExtraBenchmark::LogicMix => build_logicmix(),
        }
    }
}

impl std::fmt::Display for ExtraBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shift-add product of an `xw`-bit and a `yw`-bit word, `xw + yw` bits
/// wide.
fn multiplier(b: &mut NetlistBuilder, x: &Word, y: &Word) -> Word {
    let (xw, yw) = (x.width(), y.width());
    let out_w = xw + yw;
    let zero = b.constant(false);
    // Zero-extend x to the product width once.
    let x_ext = Word::from_bits(
        x.bits()
            .iter()
            .copied()
            .chain(std::iter::repeat_n(zero, out_w - xw))
            .collect(),
    );
    let mut acc = Word::constant(b, 0, out_w);
    for i in 0..yw {
        // Partial product: x gated by y[i], shifted left i (pure rewiring).
        let shifted = x_ext.shift_left(i, zero);
        let gated = Word::from_bits(
            shifted
                .bits()
                .iter()
                .map(|&bit| b.and(bit, y.bit(i)))
                .collect(),
        );
        let (sum, _carry) = words::add(b, &acc, &gated);
        acc = sum;
    }
    acc
}

const MULT_W: usize = 32;

fn build_mult() -> Circuit {
    let mut b = NetlistBuilder::new();
    let x = Word::input(&mut b, MULT_W);
    let y = Word::input(&mut b, MULT_W);
    let p = multiplier(&mut b, &x, &y);
    b.output_all(p.bits().iter().copied());
    Circuit {
        name: "mult",
        netlist: b.finish(),
        reference: Box::new(|inputs| {
            let x = from_bits(&inputs[..MULT_W]);
            let y = from_bits(&inputs[MULT_W..2 * MULT_W]);
            to_bits(x * y, 2 * MULT_W)
        }),
    }
}

const SQ_W: usize = 24;

fn build_square() -> Circuit {
    let mut b = NetlistBuilder::new();
    let x = Word::input(&mut b, SQ_W);
    let p = multiplier(&mut b, &x, &x.clone());
    b.output_all(p.bits().iter().copied());
    Circuit {
        name: "square",
        netlist: b.finish(),
        reference: Box::new(|inputs| {
            let x = from_bits(&inputs[..SQ_W]);
            to_bits(x * x, 2 * SQ_W)
        }),
    }
}

const MIX_IN: usize = 12;
const MIX_OUT: usize = 40;

fn build_logicmix() -> Circuit {
    let mut rng = StdRng::seed_from_u64(0x10C1);
    let tabs: Vec<TruthTable> = (0..MIX_OUT)
        .map(|_| TruthTable::random(MIX_IN, 0.25, &mut rng))
        .collect();
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(MIX_IN);
    let outs = synthesize_table(&mut b, &ins, &tabs);
    b.output_all(outs);
    let reference = move |inputs: &[bool]| {
        let v = inputs
            .iter()
            .take(MIX_IN)
            .enumerate()
            .fold(0usize, |acc, (i, &bit)| acc | (bit as usize) << i);
        tabs.iter().map(|t| t.value(v)).collect()
    };
    Circuit {
        name: "logicmix",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mult_shape_and_correctness() {
        let c = ExtraBenchmark::Mult.build();
        assert_eq!(c.netlist.num_inputs(), 64);
        assert_eq!(c.netlist.num_outputs(), 64);
        c.validate_sample(15, 31).unwrap();
    }

    #[test]
    fn mult_corner_cases() {
        let c = ExtraBenchmark::Mult.build();
        let eval = |x: u128, y: u128| {
            let mut inputs = to_bits(x, MULT_W);
            inputs.extend(to_bits(y, MULT_W));
            from_bits(&c.netlist.eval(&inputs))
        };
        assert_eq!(eval(0, 12345), 0);
        assert_eq!(eval(1, 12345), 12345);
        assert_eq!(eval(0xFFFF_FFFF, 0xFFFF_FFFF), 0xFFFF_FFFF * 0xFFFF_FFFF);
        assert_eq!(eval(1 << 31, 2), 1 << 32);
    }

    #[test]
    fn square_matches_self_product() {
        let c = ExtraBenchmark::Square.build();
        assert_eq!(c.netlist.num_inputs(), 24);
        assert_eq!(c.netlist.num_outputs(), 48);
        c.validate_sample(15, 32).unwrap();
        let mut inputs = to_bits(0xABCDEF, SQ_W);
        inputs.truncate(SQ_W);
        let got = from_bits(&c.netlist.eval(&inputs));
        assert_eq!(got, 0xABCDEFu128 * 0xABCDEF);
    }

    #[test]
    fn logicmix_exhaustive() {
        let c = ExtraBenchmark::LogicMix.build();
        assert_eq!(c.netlist.num_inputs(), 12);
        assert_eq!(c.netlist.num_outputs(), 40);
        // 4096 valuations is cheap enough to do exhaustively.
        for v in 0..1usize << MIX_IN {
            let inputs: Vec<bool> = (0..MIX_IN).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(c.netlist.eval(&inputs), (c.reference)(&inputs), "v={v}");
        }
    }

    #[test]
    fn extras_lower_to_nor_correctly() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(5);
        for e in ExtraBenchmark::ALL {
            let c = e.build();
            let nor = c.netlist.to_nor();
            assert_eq!(nor.validate(), Ok(()), "{e}");
            for _ in 0..3 {
                let inputs: Vec<bool> = (0..c.netlist.num_inputs()).map(|_| rng.gen()).collect();
                assert_eq!(nor.eval(&inputs), c.netlist.eval(&inputs), "{e}");
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ExtraBenchmark::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 3);
        assert_eq!(ExtraBenchmark::Mult.to_string(), "mult");
    }
}
