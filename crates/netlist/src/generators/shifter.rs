//! `shifter`: variable logical left shifter (zero-fill) at a
//! parameterized power-of-two width — the zoo's log-stage datapath shape,
//! distinct from `bar`'s rotate in that shifted-out bits are lost.

use super::{from_bits, to_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Zoo widths with a stable benchmark name each.
fn name_for(width: usize) -> &'static str {
    match width {
        4 => "shifter4",
        8 => "shifter8",
        16 => "shifter16",
        32 => "shifter32",
        64 => "shifter64",
        _ => "shifter",
    }
}

/// Builds a `width`-bit logical left shifter: `width` data inputs plus
/// `log2(width)` amount inputs, `width` outputs, log-stage mux structure.
///
/// # Panics
///
/// Panics unless `width` is a power of two of at least 2.
pub fn build_width(width: usize) -> Circuit {
    assert!(
        width.is_power_of_two() && width >= 2,
        "shifter width must be a power of two"
    );
    let shift_bits = width.trailing_zeros() as usize;
    let mut b = NetlistBuilder::new();
    let data = Word::input(&mut b, width);
    let amount: Vec<_> = (0..shift_bits).map(|_| b.input()).collect();
    let zero = b.constant(false);
    let mut current = data;
    for (stage, &sel) in amount.iter().enumerate() {
        let shifted = current.shift_left(1 << stage, zero);
        current = words::mux(&mut b, sel, &shifted, &current);
    }
    b.output_all(current.bits().iter().copied());
    Circuit {
        name: name_for(width),
        netlist: b.finish(),
        reference: Box::new(move |inputs| reference(width, inputs)),
    }
}

fn reference(width: usize, inputs: &[bool]) -> Vec<bool> {
    let shift_bits = width.trailing_zeros() as usize;
    let data = from_bits(&inputs[..width]);
    let amount = from_bits(&inputs[width..width + shift_bits]) as u32;
    let mask = if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    to_bits((data << amount) & mask, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build_width(16);
        assert_eq!(c.netlist.num_inputs(), 20);
        assert_eq!(c.netlist.num_outputs(), 16);
        assert_eq!(c.name, "shifter16");
    }

    /// Width 4 has 6 input bits — every one of the 64 vectors is checked
    /// against the host reference.
    #[test]
    fn width_4_is_exhaustively_correct() {
        let c = build_width(4);
        for v in 0..64u32 {
            let inputs: Vec<bool> = (0..6).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(c.netlist.eval(&inputs), (c.reference)(&inputs), "{v:#x}");
        }
    }

    /// Width 8 (11 input bits, 2048 vectors) exhaustively, post-NOR too.
    #[test]
    fn width_8_is_exhaustively_correct_after_nor_lowering() {
        let c = build_width(8);
        let nor = c.netlist.to_nor();
        for v in 0..2048u32 {
            let inputs: Vec<bool> = (0..11).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(nor.eval(&inputs), (c.reference)(&inputs), "{v:#x}");
        }
    }

    #[test]
    fn shifted_out_bits_are_lost_not_rotated() {
        let c = build_width(8);
        // 0b1000_0001 << 1 = 0b0000_0010 (top bit falls off).
        let mut inputs = to_bits(0x81, 8);
        inputs.extend([true, false, false]);
        assert_eq!(from_bits(&c.netlist.eval(&inputs)), 0x02);
    }

    #[test]
    fn wider_builds_validate_on_samples() {
        for w in [16usize, 32, 64] {
            build_width(w).validate_sample(24, w as u64).unwrap();
        }
    }
}
