//! `mul16`: 16×16-bit shift-and-add multiplier (32 inputs, 32 outputs).
//!
//! The partition-and-route compiler's flagship workload: the full 32-bit
//! product datapath is quadratic in the operand width, so even after dense
//! remap it exceeds one crossbar line at the default geometry and must be
//! served as a DAG of line-sized sub-programs.

use super::{from_bits, to_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Operand width in bits (the product is `2 * WIDTH` bits).
pub const WIDTH: usize = 16;

/// Builds a `width`-bit shift-and-add multiplier netlist (`2·width`
/// inputs, `2·width` outputs carrying the full double-width product).
///
/// # Panics
///
/// Panics if `width` is zero or exceeds 64 (the reference models compute
/// the product in `u128`).
pub fn build_width(width: usize) -> crate::Netlist {
    assert!(width >= 1, "multiplier width must be at least 1");
    assert!(width <= 64, "multiplier width must fit a u64 operand");
    let mut b = NetlistBuilder::new();
    let x = Word::input(&mut b, width);
    let y = Word::input(&mut b, width);
    let zero = b.constant(false);
    // acc += (x << i) when y[i]; the builder's constant folding erases the
    // all-zero lanes of early partial products.
    let mut acc = Word::constant(&mut b, 0, 2 * width);
    for i in 0..width {
        let pp = Word::from_bits(
            (0..2 * width)
                .map(|j| {
                    if j >= i && j - i < width {
                        b.and(y.bit(i), x.bit(j - i))
                    } else {
                        zero
                    }
                })
                .collect(),
        );
        let (sum, _carry) = words::add(&mut b, &acc, &pp);
        acc = sum;
    }
    b.output_all(acc.bits().iter().copied());
    b.finish()
}

/// Builds the multiplier benchmark.
pub fn build() -> Circuit {
    Circuit {
        name: "mul16",
        netlist: build_width(WIDTH),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let x = from_bits(&inputs[..WIDTH]);
    let y = from_bits(&inputs[WIDTH..2 * WIDTH]);
    // Two 16-bit operands: the exact product fits 32 bits, no wrap.
    to_bits(x * y, 2 * WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape_is_double_width() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 2 * WIDTH);
        assert_eq!(c.netlist.num_outputs(), 2 * WIDTH);
    }

    #[test]
    fn random_products_match() {
        build().validate_sample(50, 1).unwrap();
    }

    #[test]
    fn product_corner_cases() {
        let c = build();
        // 0 * anything = 0
        let mut inputs = vec![false; WIDTH];
        inputs.extend(to_bits(0xBEEF, WIDTH));
        assert!(c.netlist.eval(&inputs).iter().all(|&b| !b));
        // max * max = (2^16 - 1)^2, exact in 32 bits
        let inputs = vec![true; 2 * WIDTH];
        let out = c.netlist.eval(&inputs);
        assert_eq!(from_bits(&out), 0xFFFFu128 * 0xFFFF);
        // 1 * x = x (zero-extended)
        let mut inputs = to_bits(1, WIDTH);
        inputs.extend(to_bits(0x1234, WIDTH));
        let out = c.netlist.eval(&inputs);
        assert_eq!(from_bits(&out), 0x1234);
    }

    #[test]
    fn gate_count_is_quadratic_in_width() {
        let s = build().netlist.stats();
        // ~width partial products folded through 2·width-bit ripple adds:
        // between w^2 and 12·w^2 gates after constant folding.
        assert!(
            s.gates >= WIDTH * WIDTH && s.gates <= 12 * WIDTH * WIDTH,
            "{s}"
        );
    }

    #[test]
    fn small_widths_are_exhaustively_correct() {
        for width in 1..=4usize {
            let nl = build_width(width);
            for x in 0..1u128 << width {
                for y in 0..1u128 << width {
                    let mut inputs = to_bits(x, width);
                    inputs.extend(to_bits(y, width));
                    let out = nl.eval(&inputs);
                    assert_eq!(from_bits(&out), x * y, "{width}-bit {x}*{y}");
                }
            }
        }
    }
}
