//! `int2float`: 11-bit unsigned integer to compact 7-bit float
//! (11 inputs, 7 outputs).
//!
//! Format: `out[6:3]` = 4-bit exponent `e` (position of the leading one,
//! 0–10; all-zero input encodes as 0), `out[2:0]` = the 3 bits immediately
//! below the leading one (zero-padded, truncated). Structure: priority
//! detection of the MSB plus a one-hot-selected mantissa mux — the same
//! normalize-and-round shape as the EPFL original.

use super::{from_bits, Circuit};
use crate::builder::NetlistBuilder;

/// Input width.
pub const IN_BITS: usize = 11;
/// Output width (4-bit exponent + 3-bit mantissa).
pub const OUT_BITS: usize = 7;

/// Software specification shared by the reference model and tests.
pub fn spec(x: u32) -> u32 {
    if x == 0 {
        return 0;
    }
    let e = 31 - x.leading_zeros(); // position of leading one, 0..=10
    let m = if e >= 3 {
        (x >> (e - 3)) & 0x7
    } else {
        (x << (3 - e)) & 0x7
    };
    (e << 3) | m
}

/// Builds the int2float benchmark.
pub fn build() -> Circuit {
    let mut b = NetlistBuilder::new();
    let x: Vec<_> = (0..IN_BITS).map(|_| b.input()).collect();

    // One-hot leading-one detection, scanning from the MSB down.
    let mut seen = b.constant(false);
    let zero = b.constant(false);
    let mut lead = [zero; IN_BITS];
    for i in (0..IN_BITS).rev() {
        let not_seen = b.not(seen);
        lead[i] = b.and(x[i], not_seen);
        seen = b.or(seen, x[i]);
    }

    // Exponent: binary encode of the one-hot leading position.
    let mut exp = vec![b.constant(false); 4];
    for (i, &l) in lead.iter().enumerate() {
        for (j, e) in exp.iter_mut().enumerate() {
            if i >> j & 1 != 0 {
                *e = b.or(*e, l);
            }
        }
    }

    // Mantissa: for each leading position e, the source bits are
    // x[e-1], x[e-2], x[e-3] (zero when the index underflows).
    let zero = b.constant(false);
    let mut man = vec![zero; 3];
    for (e, &l) in lead.iter().enumerate() {
        for (k, m) in man.iter_mut().enumerate() {
            // mantissa bit k (k=0 is LSB) comes from x[e-3+k]
            let src_index = e as isize - 3 + k as isize;
            if src_index >= 0 {
                let term = b.and(l, x[src_index as usize]);
                *m = b.or(*m, term);
            }
        }
    }

    b.output_all(man);
    b.output_all(exp);
    Circuit {
        name: "int2float",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

fn reference(inputs: &[bool]) -> Vec<bool> {
    let x = from_bits(&inputs[..IN_BITS]) as u32;
    let f = spec(x);
    (0..OUT_BITS).map(|i| f >> i & 1 != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 11);
        assert_eq!(c.netlist.num_outputs(), 7);
    }

    #[test]
    fn exhaustive_all_2048_inputs() {
        let c = build();
        for v in 0..1u32 << IN_BITS {
            let inputs: Vec<bool> = (0..IN_BITS).map(|i| v >> i & 1 != 0).collect();
            let out = c.netlist.eval(&inputs);
            let got = from_bits(&out) as u32;
            assert_eq!(got, spec(v), "input {v}");
        }
    }

    #[test]
    fn spec_examples() {
        assert_eq!(spec(0), 0);
        assert_eq!(spec(1), 0); // e = 0, m = 0 (denormal collapse)
        assert_eq!(spec(0b11), 1 << 3 | 0b100); // e=1, fraction bit promoted
        assert_eq!(spec(0b1000), 3 << 3); // e=3, m=000
        assert_eq!(spec(0b1011), 3 << 3 | 0b011);
        assert_eq!(spec(0b111_1111_1111), 10 << 3 | 0b111);
    }
}
