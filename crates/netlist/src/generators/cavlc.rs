//! `cavlc`: random-logic block shaped like the EPFL CAVLC coefficient-token
//! decoder (10 inputs, 11 outputs).
//!
//! The original is H.264 table-lookup logic; we regenerate an equivalent
//! profile by Shannon-synthesizing seeded sparse truth tables (density 0.3),
//! which yields mux-tree logic of comparable size and output/gate ratio.

use super::Circuit;
use crate::builder::NetlistBuilder;
use crate::synth::{synthesize_table, TruthTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of inputs.
pub const INPUTS: usize = 10;
/// Number of outputs.
pub const OUTPUTS: usize = 11;
/// Fixed seed: the benchmark must be identical across runs.
const SEED: u64 = 0xCA51C;
/// Fraction of true minterms per output.
const DENSITY: f64 = 0.3;

fn tables() -> Vec<TruthTable> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..OUTPUTS)
        .map(|_| TruthTable::random(INPUTS, DENSITY, &mut rng))
        .collect()
}

/// Builds the cavlc benchmark.
pub fn build() -> Circuit {
    let tabs = tables();
    let mut b = NetlistBuilder::new();
    let ins = b.inputs(INPUTS);
    let outs = synthesize_table(&mut b, &ins, &tabs);
    b.output_all(outs);
    let reference = move |inputs: &[bool]| {
        let v = inputs
            .iter()
            .take(INPUTS)
            .enumerate()
            .fold(0usize, |acc, (i, &bit)| acc | (bit as usize) << i);
        tabs.iter().map(|t| t.value(v)).collect()
    };
    Circuit {
        name: "cavlc",
        netlist: b.finish(),
        reference: Box::new(reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build();
        assert_eq!(c.netlist.num_inputs(), 10);
        assert_eq!(c.netlist.num_outputs(), 11);
    }

    #[test]
    fn exhaustive_equivalence_with_tables() {
        let c = build();
        for v in 0..1usize << INPUTS {
            let inputs: Vec<bool> = (0..INPUTS).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(
                c.netlist.eval(&inputs),
                (c.reference)(&inputs),
                "valuation {v}"
            );
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = build();
        let b = build();
        assert_eq!(a.netlist.stats(), b.netlist.stats());
        let inputs = vec![true; INPUTS];
        assert_eq!(a.netlist.eval(&inputs), b.netlist.eval(&inputs));
    }

    #[test]
    fn size_is_in_the_epfl_ballpark() {
        let s = build().netlist.stats();
        // EPFL cavlc is ~700 gates; random tables land within a small factor.
        assert!(s.gates > 100 && s.gates < 4000, "{s}");
    }
}
