//! `comparator`: unsigned magnitude comparator at a parameterized width —
//! two operands in, the three verdict bits (`x < y`, `x == y`, `x > y`)
//! out. The zoo's small-footprint, wide-fan-in control shape.

use super::{from_bits, Circuit};
use crate::builder::NetlistBuilder;
use crate::words::{self, Word};

/// Zoo widths with a stable benchmark name each.
fn name_for(width: usize) -> &'static str {
    match width {
        2 => "cmp2",
        3 => "cmp3",
        4 => "cmp4",
        8 => "cmp8",
        16 => "cmp16",
        32 => "cmp32",
        _ => "cmp",
    }
}

/// Builds a `width`-bit unsigned comparator: `2·width` inputs, 3 outputs
/// (`lt`, `eq`, `gt` in that order).
///
/// # Panics
///
/// Panics on zero width.
pub fn build_width(width: usize) -> Circuit {
    assert!(width > 0, "comparator needs at least one bit");
    let mut b = NetlistBuilder::new();
    let x = Word::input(&mut b, width);
    let y = Word::input(&mut b, width);
    let lt = words::lt(&mut b, &x, &y);
    let eq = words::eq(&mut b, &x, &y);
    let ge = b.not(lt);
    let ne = b.not(eq);
    let gt = b.and(ge, ne);
    b.output(lt);
    b.output(eq);
    b.output(gt);
    Circuit {
        name: name_for(width),
        netlist: b.finish(),
        reference: Box::new(move |inputs| reference(width, inputs)),
    }
}

fn reference(width: usize, inputs: &[bool]) -> Vec<bool> {
    let x = from_bits(&inputs[..width]);
    let y = from_bits(&inputs[width..2 * width]);
    vec![x < y, x == y, x > y]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_shape() {
        let c = build_width(8);
        assert_eq!(c.netlist.num_inputs(), 16);
        assert_eq!(c.netlist.num_outputs(), 3);
        assert_eq!(c.name, "cmp8");
    }

    /// Width 3 (6 input bits): all 64 operand pairs against the host.
    #[test]
    fn width_3_is_exhaustively_correct() {
        let c = build_width(3);
        for v in 0..64u32 {
            let inputs: Vec<bool> = (0..6).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(c.netlist.eval(&inputs), (c.reference)(&inputs), "{v:#x}");
        }
    }

    /// Width 4 (8 input bits, 256 pairs) exhaustively, post-NOR too.
    #[test]
    fn width_4_is_exhaustively_correct_after_nor_lowering() {
        let c = build_width(4);
        let nor = c.netlist.to_nor();
        for v in 0..256u32 {
            let inputs: Vec<bool> = (0..8).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(nor.eval(&inputs), (c.reference)(&inputs), "{v:#x}");
        }
    }

    #[test]
    fn exactly_one_verdict_fires() {
        let c = build_width(4);
        for v in 0..256u32 {
            let inputs: Vec<bool> = (0..8).map(|i| v >> i & 1 != 0).collect();
            let out = c.netlist.eval(&inputs);
            assert_eq!(out.iter().filter(|&&b| b).count(), 1, "{v:#x}");
        }
    }

    #[test]
    fn wider_builds_validate_on_samples() {
        for w in [8usize, 16, 32] {
            build_width(w).validate_sample(24, w as u64).unwrap();
        }
    }
}
