//! Prints the size profile (I/O arity, gate count, NOR-lowered gate count)
//! of every generated benchmark circuit — handy when comparing against the
//! original EPFL suite's statistics.
//!
//! Run with: `cargo run -p pimecc-netlist --release --example sizes`

fn main() {
    println!(
        "{:<10} {:>6} {:>6} {:>8} {:>10} {:>7}",
        "bench", "in", "out", "gates", "nor_gates", "depth"
    );
    for b in pimecc_netlist::generators::Benchmark::ALL {
        let c = b.build();
        let s = c.netlist.stats();
        let nor = c.netlist.to_nor();
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>10} {:>7}",
            b.name(),
            s.inputs,
            s.outputs,
            s.gates,
            nor.num_gates(),
            s.depth
        );
    }
    for e in pimecc_netlist::generators::ExtraBenchmark::ALL {
        let c = e.build();
        let s = c.netlist.stats();
        let nor = c.netlist.to_nor();
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>10} {:>7}",
            e.name(),
            s.inputs,
            s.outputs,
            s.gates,
            nor.num_gates(),
            s.depth
        );
    }
}
