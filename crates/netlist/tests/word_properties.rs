//! Property-based tests for the word-level construction helpers: the
//! elaborated circuits must agree with native integer arithmetic for any
//! width and any operands.

use pimecc_netlist::words::{self, Word};
use pimecc_netlist::NetlistBuilder;
use proptest::prelude::*;

fn bits_of(v: u128, w: usize) -> Vec<bool> {
    (0..w).map(|i| v >> i & 1 != 0).collect()
}

fn val_of(bits: &[bool]) -> u128 {
    bits.iter().rev().fold(0, |acc, &b| (acc << 1) | b as u128)
}

fn mask(w: usize) -> u128 {
    if w == 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_matches_integers(w in 1usize..64, x in any::<u64>(), y in any::<u64>()) {
        let (x, y) = (x as u128 & mask(w), y as u128 & mask(w));
        let mut b = NetlistBuilder::new();
        let xs = Word::input(&mut b, w);
        let ys = Word::input(&mut b, w);
        let (sum, carry) = words::add(&mut b, &xs, &ys);
        b.output_all(sum.bits().iter().copied());
        b.output(carry);
        let nl = b.finish();
        let mut inputs = bits_of(x, w);
        inputs.extend(bits_of(y, w));
        let out = nl.eval(&inputs);
        prop_assert_eq!(val_of(&out[..w]), (x + y) & mask(w));
        prop_assert_eq!(out[w], (x + y) >> w != 0);
    }

    #[test]
    fn sub_matches_wrapping_subtraction(w in 1usize..64, x in any::<u64>(), y in any::<u64>()) {
        let (x, y) = (x as u128 & mask(w), y as u128 & mask(w));
        let mut b = NetlistBuilder::new();
        let xs = Word::input(&mut b, w);
        let ys = Word::input(&mut b, w);
        let (diff, borrow) = words::sub(&mut b, &xs, &ys);
        b.output_all(diff.bits().iter().copied());
        b.output(borrow);
        let nl = b.finish();
        let mut inputs = bits_of(x, w);
        inputs.extend(bits_of(y, w));
        let out = nl.eval(&inputs);
        prop_assert_eq!(val_of(&out[..w]), x.wrapping_sub(y) & mask(w));
        prop_assert_eq!(out[w], x < y);
    }

    #[test]
    fn add_sub_selects(w in 1usize..48, x in any::<u64>(), y in any::<u64>(), sel in any::<bool>()) {
        let (x, y) = (x as u128 & mask(w), y as u128 & mask(w));
        let mut b = NetlistBuilder::new();
        let xs = Word::input(&mut b, w);
        let ys = Word::input(&mut b, w);
        let s = b.input();
        let r = words::add_sub(&mut b, &xs, &ys, s);
        b.output_all(r.bits().iter().copied());
        let nl = b.finish();
        let mut inputs = bits_of(x, w);
        inputs.extend(bits_of(y, w));
        inputs.push(sel);
        let out = nl.eval(&inputs);
        let want = if sel { x.wrapping_sub(y) } else { x + y } & mask(w);
        prop_assert_eq!(val_of(&out), want);
    }

    #[test]
    fn lt_and_eq_match(w in 1usize..48, x in any::<u64>(), y in any::<u64>()) {
        let (x, y) = (x as u128 & mask(w), y as u128 & mask(w));
        let mut b = NetlistBuilder::new();
        let xs = Word::input(&mut b, w);
        let ys = Word::input(&mut b, w);
        let lt = words::lt(&mut b, &xs, &ys);
        let eq = words::eq(&mut b, &xs, &ys);
        b.output(lt);
        b.output(eq);
        let nl = b.finish();
        let mut inputs = bits_of(x, w);
        inputs.extend(bits_of(y, w));
        let out = nl.eval(&inputs);
        prop_assert_eq!(out[0], x < y);
        prop_assert_eq!(out[1], x == y);
    }

    #[test]
    fn shifts_match_integer_shifts(w in 2usize..64, x in any::<u64>(), k in 0usize..8) {
        let k = k % w;
        let x = x as u128 & mask(w);
        let mut b = NetlistBuilder::new();
        let xs = Word::input(&mut b, w);
        let zero = b.constant(false);
        let sl = xs.shift_left(k, zero);
        let sr = xs.shift_right_arith(k);
        b.output_all(sl.bits().iter().copied());
        b.output_all(sr.bits().iter().copied());
        let nl = b.finish();
        let out = nl.eval(&bits_of(x, w));
        prop_assert_eq!(val_of(&out[..w]), (x << k) & mask(w));
        // Arithmetic right shift with sign replication.
        let sign = x >> (w - 1) & 1 != 0;
        let mut want = x >> k;
        if sign {
            for i in (w - k)..w {
                want |= 1 << i;
            }
        }
        prop_assert_eq!(val_of(&out[w..]), want);
    }
}
