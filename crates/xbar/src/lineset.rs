//! Selection of the rows (or columns) that participate in a parallel MAGIC
//! operation.

/// Which wordlines (or bitlines) a parallel MAGIC operation is applied to.
///
/// MAGIC applies the *same* gate simultaneously to every selected line in a
/// single clock cycle; the selection is made by the controller driving the
/// line voltages. `LineSet` mirrors that: `All` selects every line, `One`
/// selects a single line (a plain sequential gate), `Range` a contiguous
/// band and `Explicit` an arbitrary subset.
///
/// # Example
///
/// ```
/// use pimecc_xbar::LineSet;
///
/// assert_eq!(LineSet::All.indices(4), vec![0, 1, 2, 3]);
/// assert_eq!(LineSet::One(2).indices(4), vec![2]);
/// assert_eq!(LineSet::Range(1..3).indices(4), vec![1, 2]);
/// assert_eq!(LineSet::Explicit(vec![3, 0]).indices(4), vec![3, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineSet {
    /// Every line of the crossbar.
    All,
    /// A single line.
    One(usize),
    /// A half-open contiguous range of lines.
    Range(std::ops::Range<usize>),
    /// An arbitrary set of lines (order preserved, duplicates allowed but
    /// pointless).
    Explicit(Vec<usize>),
}

impl LineSet {
    /// Materializes the selected indices given the crossbar's line count.
    ///
    /// Out-of-range indices are *not* filtered here; bounds are validated by
    /// the executing crossbar so the error can carry context.
    pub fn indices(&self, line_count: usize) -> Vec<usize> {
        match self {
            LineSet::All => (0..line_count).collect(),
            LineSet::One(i) => vec![*i],
            LineSet::Range(r) => r.clone().collect(),
            LineSet::Explicit(v) => v.clone(),
        }
    }

    /// Number of selected lines given the crossbar's line count.
    pub fn len(&self, line_count: usize) -> usize {
        match self {
            LineSet::All => line_count,
            LineSet::One(_) => 1,
            LineSet::Range(r) => r.len(),
            LineSet::Explicit(v) => v.len(),
        }
    }

    /// True if the selection is empty for a crossbar with `line_count` lines.
    pub fn is_empty(&self, line_count: usize) -> bool {
        self.len(line_count) == 0
    }

    /// Largest index selected, if any (used for bounds validation).
    pub fn max_index(&self, line_count: usize) -> Option<usize> {
        match self {
            LineSet::All => line_count.checked_sub(1),
            LineSet::One(i) => Some(*i),
            LineSet::Range(r) => r.end.checked_sub(1).filter(|_| !r.is_empty()),
            LineSet::Explicit(v) => v.iter().copied().max(),
        }
    }
}

impl From<usize> for LineSet {
    fn from(i: usize) -> Self {
        LineSet::One(i)
    }
}

impl From<std::ops::Range<usize>> for LineSet {
    fn from(r: std::ops::Range<usize>) -> Self {
        LineSet::Range(r)
    }
}

impl From<Vec<usize>> for LineSet {
    fn from(v: Vec<usize>) -> Self {
        LineSet::Explicit(v)
    }
}

impl FromIterator<usize> for LineSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        LineSet::Explicit(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_everything() {
        assert_eq!(LineSet::All.indices(3), vec![0, 1, 2]);
        assert_eq!(LineSet::All.len(3), 3);
        assert_eq!(LineSet::All.max_index(3), Some(2));
        assert!(LineSet::All.is_empty(0));
    }

    #[test]
    fn one_and_from_usize() {
        let ls: LineSet = 7usize.into();
        assert_eq!(ls.indices(10), vec![7]);
        assert_eq!(ls.max_index(10), Some(7));
    }

    #[test]
    fn range_selection() {
        let ls: LineSet = (2..5).into();
        assert_eq!(ls.indices(10), vec![2, 3, 4]);
        assert_eq!(ls.len(10), 3);
        assert_eq!(ls.max_index(10), Some(4));
        let empty: LineSet = (3..3).into();
        assert!(empty.is_empty(10));
        assert_eq!(empty.max_index(10), None);
    }

    #[test]
    fn explicit_and_collect() {
        let ls: LineSet = vec![4, 1].into();
        assert_eq!(ls.indices(10), vec![4, 1]);
        let collected: LineSet = [0usize, 9].into_iter().collect();
        assert_eq!(collected.max_index(10), Some(9));
    }
}
