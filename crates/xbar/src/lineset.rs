//! Selection of the rows (or columns) that participate in a parallel MAGIC
//! operation.

/// Which wordlines (or bitlines) a parallel MAGIC operation is applied to.
///
/// MAGIC applies the *same* gate simultaneously to every selected line in a
/// single clock cycle; the selection is made by the controller driving the
/// line voltages. `LineSet` mirrors that: `All` selects every line, `One`
/// selects a single line (a plain sequential gate), `Range` a contiguous
/// band and `Explicit` an arbitrary subset.
///
/// Executors consume a selection either as an order-preserving iterator
/// ([`LineSet::iter`]) or as a packed [`LineMask`] ([`LineSet::fill_mask`])
/// that drives whole-word crossbar operations.
///
/// # Example
///
/// ```
/// use pimecc_xbar::LineSet;
///
/// let sel = LineSet::Range(1..3);
/// assert_eq!(sel.iter(4).collect::<Vec<_>>(), vec![1, 2]);
/// assert_eq!(sel.len(4), 2);
/// let mask = sel.mask(4);
/// assert_eq!(mask.words(), &[0b0110]);
/// assert_eq!(mask.iter().collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineSet {
    /// Every line of the crossbar.
    All,
    /// A single line.
    One(usize),
    /// A half-open contiguous range of lines.
    Range(std::ops::Range<usize>),
    /// An arbitrary set of lines (order preserved, duplicates allowed but
    /// pointless).
    Explicit(Vec<usize>),
}

impl LineSet {
    /// Iterates the selected indices in selection order (without
    /// materializing them), given the crossbar's line count.
    ///
    /// Out-of-range indices are *not* filtered; bounds are validated by the
    /// executing crossbar so the error can carry context.
    pub fn iter(&self, line_count: usize) -> LineIter<'_> {
        match self {
            LineSet::All => LineIter::Range(0..line_count),
            LineSet::One(i) => LineIter::Range(*i..*i + 1),
            LineSet::Range(r) => LineIter::Range(r.clone()),
            LineSet::Explicit(v) => LineIter::Slice(v.iter()),
        }
    }

    /// Number of selected lines given the crossbar's line count.
    pub fn len(&self, line_count: usize) -> usize {
        match self {
            LineSet::All => line_count,
            LineSet::One(_) => 1,
            LineSet::Range(r) => r.len(),
            LineSet::Explicit(v) => v.len(),
        }
    }

    /// True if the selection is empty for a crossbar with `line_count` lines.
    pub fn is_empty(&self, line_count: usize) -> bool {
        self.len(line_count) == 0
    }

    /// Largest index selected, if any (used for bounds validation).
    pub fn max_index(&self, line_count: usize) -> Option<usize> {
        match self {
            LineSet::All => line_count.checked_sub(1),
            LineSet::One(i) => Some(*i),
            LineSet::Range(r) => r.end.checked_sub(1).filter(|_| !r.is_empty()),
            LineSet::Explicit(v) => v.iter().copied().max(),
        }
    }

    /// Builds a fresh [`LineMask`] of the selection (see
    /// [`LineSet::fill_mask`] for the buffer-reusing form).
    ///
    /// # Panics
    ///
    /// Panics if the selection contains an index `>= line_count`; validate
    /// bounds (e.g. via [`LineSet::max_index`]) first.
    pub fn mask(&self, line_count: usize) -> LineMask {
        let mut mask = LineMask::new(line_count);
        self.fill_mask(line_count, &mut mask);
        mask
    }

    /// Re-initializes `mask` to this selection over `line_count` lines,
    /// reusing its storage — the allocation-free path executors take once
    /// per operation.
    ///
    /// # Panics
    ///
    /// Panics if the selection contains an index `>= line_count`.
    pub fn fill_mask(&self, line_count: usize, mask: &mut LineMask) {
        mask.reset(line_count);
        match self {
            LineSet::All => mask.set_range(0..line_count),
            LineSet::One(i) => mask.set(*i),
            LineSet::Range(r) => mask.set_range(r.clone()),
            LineSet::Explicit(v) => {
                // Borrow the word slice once so the per-line work is a
                // plain shift-or (this is the per-operation hot fill).
                let words = mask.words_mut();
                for &i in v {
                    assert!(
                        i < line_count,
                        "line {i} out of range for a {line_count}-line mask"
                    );
                    words[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
    }
}

/// Order-preserving iterator over a [`LineSet`]'s selected indices
/// (returned by [`LineSet::iter`]).
#[derive(Debug, Clone)]
pub enum LineIter<'a> {
    /// Contiguous selections (`All`, `One`, `Range`).
    Range(std::ops::Range<usize>),
    /// Explicit selections, in the order given.
    Slice(std::slice::Iter<'a, usize>),
}

impl Iterator for LineIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            LineIter::Range(r) => r.next(),
            LineIter::Slice(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            LineIter::Range(r) => r.size_hint(),
            LineIter::Slice(it) => it.size_hint(),
        }
    }
}

/// How many mask words [`LineMask`] stores inline before spilling to the
/// heap — 4 words cover crossbars up to 256 lines without allocating.
const INLINE_WORDS: usize = 4;

/// A packed bitset over the lines of a crossbar — the word-parallel form of
/// a [`LineSet`].
///
/// Bit `i % 64` of word `i / 64` is line `i`. Selections of up to
/// `64 × INLINE_WORDS = 256` lines live entirely on the stack; larger
/// geometries spill to one heap allocation that
/// [`LineSet::fill_mask`] reuses across operations.
///
/// # Example
///
/// ```
/// use pimecc_xbar::{LineMask, LineSet};
///
/// let mask = LineSet::Explicit(vec![0, 65]).mask(70);
/// assert_eq!(mask.count(), 2);
/// assert!(mask.contains(65) && !mask.contains(1));
/// assert_eq!(mask.words().len(), 2);
/// assert_eq!(mask.iter().collect::<Vec<_>>(), vec![0, 65]);
/// let empty = LineMask::new(70);
/// assert!(empty.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineMask {
    line_count: usize,
    inline: [u64; INLINE_WORDS],
    heap: Vec<u64>,
}

impl LineMask {
    /// An empty mask over `line_count` lines.
    pub fn new(line_count: usize) -> Self {
        let mut mask = LineMask {
            line_count: 0,
            inline: [0; INLINE_WORDS],
            heap: Vec::new(),
        };
        mask.reset(line_count);
        mask
    }

    /// Number of words backing the mask.
    #[inline]
    fn word_count(&self) -> usize {
        self.line_count.div_ceil(64)
    }

    /// Clears the mask and re-sizes it to `line_count` lines, reusing any
    /// heap storage already acquired. Both representations are cleared so
    /// the derived equality never sees stale words from a previous size.
    pub fn reset(&mut self, line_count: usize) {
        self.line_count = line_count;
        let words = line_count.div_ceil(64);
        self.inline.fill(0);
        self.heap.clear();
        if words > INLINE_WORDS {
            self.heap.resize(words, 0);
        }
    }

    /// The number of lines the mask ranges over.
    #[inline]
    pub fn line_count(&self) -> usize {
        self.line_count
    }

    /// The packed words (length `ceil(line_count / 64)`); bits past
    /// `line_count` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        let words = self.word_count();
        if words <= INLINE_WORDS {
            &self.inline[..words]
        } else {
            &self.heap
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let words = self.word_count();
        if words <= INLINE_WORDS {
            &mut self.inline[..words]
        } else {
            &mut self.heap
        }
    }

    /// Selects line `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= line_count`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.line_count,
            "line {i} out of range for a {}-line mask",
            self.line_count
        );
        self.words_mut()[i / 64] |= 1u64 << (i % 64);
    }

    /// Selects every line in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds `line_count`.
    pub fn set_range(&mut self, range: std::ops::Range<usize>) {
        if range.is_empty() {
            return;
        }
        assert!(
            range.end <= self.line_count,
            "range end {} out of range for a {}-line mask",
            range.end,
            self.line_count
        );
        let words = self.words_mut();
        let (first, last) = (range.start / 64, (range.end - 1) / 64);
        let lo = u64::MAX << (range.start % 64);
        let hi = u64::MAX >> (63 - (range.end - 1) % 64);
        if first == last {
            words[first] |= lo & hi;
        } else {
            words[first] |= lo;
            for w in &mut words[first + 1..last] {
                *w = u64::MAX;
            }
            words[last] |= hi;
        }
    }

    /// Whether line `i` is selected (false past `line_count`).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.line_count && self.words()[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of selected lines.
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no line is selected.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Iterates the selected lines in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

impl From<usize> for LineSet {
    fn from(i: usize) -> Self {
        LineSet::One(i)
    }
}

impl From<std::ops::Range<usize>> for LineSet {
    fn from(r: std::ops::Range<usize>) -> Self {
        LineSet::Range(r)
    }
}

impl From<Vec<usize>> for LineSet {
    fn from(v: Vec<usize>) -> Self {
        LineSet::Explicit(v)
    }
}

impl FromIterator<usize> for LineSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        LineSet::Explicit(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected(ls: &LineSet, n: usize) -> Vec<usize> {
        ls.iter(n).collect()
    }

    #[test]
    fn all_selects_everything() {
        assert_eq!(collected(&LineSet::All, 3), vec![0, 1, 2]);
        assert_eq!(LineSet::All.len(3), 3);
        assert_eq!(LineSet::All.max_index(3), Some(2));
        assert!(LineSet::All.is_empty(0));
    }

    #[test]
    fn one_and_from_usize() {
        let ls: LineSet = 7usize.into();
        assert_eq!(collected(&ls, 10), vec![7]);
        assert_eq!(ls.max_index(10), Some(7));
    }

    #[test]
    fn range_selection() {
        let ls: LineSet = (2..5).into();
        assert_eq!(collected(&ls, 10), vec![2, 3, 4]);
        assert_eq!(ls.len(10), 3);
        assert_eq!(ls.max_index(10), Some(4));
        let empty: LineSet = (3..3).into();
        assert!(empty.is_empty(10));
        assert_eq!(empty.max_index(10), None);
        assert!(empty.mask(10).is_empty());
    }

    #[test]
    fn explicit_and_collect() {
        let ls: LineSet = vec![4, 1].into();
        assert_eq!(collected(&ls, 10), vec![4, 1]);
        let collected: LineSet = [0usize, 9].into_iter().collect();
        assert_eq!(collected.max_index(10), Some(9));
    }

    #[test]
    fn mask_matches_selection_for_every_variant() {
        for (ls, n) in [
            (LineSet::All, 70usize),
            (LineSet::One(64), 70),
            (LineSet::Range(60..66), 70),
            (LineSet::Explicit(vec![69, 0, 69]), 70),
            (LineSet::All, 256),
            (LineSet::Range(100..300), 300),
        ] {
            let mask = ls.mask(n);
            assert_eq!(mask.line_count(), n);
            let mut want: Vec<usize> = ls.iter(n).collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(mask.iter().collect::<Vec<_>>(), want, "{ls:?}");
            assert_eq!(mask.count(), want.len());
            for i in 0..n {
                assert_eq!(mask.contains(i), want.contains(&i), "{ls:?} line {i}");
            }
        }
    }

    #[test]
    fn mask_reuses_storage_across_geometries() {
        let mut mask = LineMask::new(300);
        LineSet::All.fill_mask(300, &mut mask);
        assert_eq!(mask.count(), 300);
        // Shrinking back under the inline threshold keeps it correct.
        LineSet::One(3).fill_mask(10, &mut mask);
        assert_eq!(mask.words(), &[0b1000]);
        assert_eq!(mask.count(), 1);
        assert!(!mask.contains(300));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_rejects_out_of_range_lines() {
        let _ = LineSet::One(10).mask(10);
    }
}
